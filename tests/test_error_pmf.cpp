// The analytic error-PMF propagation contract (analysis/error_pmf.*):
//
//  * the propagated distribution is a true PMF — mass 1 within 1e-12,
//    strictly sorted support, positive probabilities — over 200+
//    randomized hybrid chains at widths 4..16;
//  * MED/MSE/WCE/error-rate and the full point-by-point distribution
//    match the weighted-exhaustive oracle (2^(2N+1) enumeration);
//  * an exact chain collapses to the point mass at 0;
//  * the dense and sparse mixture accumulators are bit-identical, and
//    convolve()'s FFT path agrees with the exact naive product;
//  * the engine integrations (IncrementalAnalyzer PMF tracking and the
//    ChainEvaluator PMF prefix cache) reproduce the batch propagation
//    exactly while accounting their cache traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/cell.hpp"
#include "sealpaa/analysis/error_pmf.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/engine/chain_evaluator.hpp"
#include "sealpaa/engine/incremental.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/metrics.hpp"

namespace {

using sealpaa::adders::AdderCell;
using sealpaa::analysis::ErrorPmf;
using sealpaa::analysis::ErrorPmfState;
using sealpaa::analysis::PmfOptions;
using sealpaa::baseline::ExhaustiveReport;
using sealpaa::baseline::WeightedExhaustive;
using sealpaa::engine::ChainEvaluator;
using sealpaa::engine::ChainEvaluatorOptions;
using sealpaa::engine::IncrementalAnalyzer;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

/// Random 8-row truth table; exact tables are rerolled so every case
/// exercises a genuinely approximate cell.
AdderCell random_cell(sealpaa::prob::SplitMix64& rng, int index) {
  for (;;) {
    std::string sum_column(8, '0');
    std::string carry_column(8, '0');
    const std::uint64_t bits = rng.next();
    for (int row = 0; row < 8; ++row) {
      if (((bits >> row) & 1ULL) != 0) {
        sum_column[static_cast<std::size_t>(row)] = '1';
      }
      if (((bits >> (8 + row)) & 1ULL) != 0) {
        carry_column[static_cast<std::size_t>(row)] = '1';
      }
    }
    AdderCell cell = AdderCell::from_columns(
        "RND" + std::to_string(index), sum_column, carry_column,
        "randomized error-PMF test cell");
    if (!cell.is_exact()) return cell;
  }
}

std::vector<AdderCell> random_chain(sealpaa::prob::SplitMix64& rng,
                                    std::size_t width, int trial) {
  std::vector<AdderCell> stages;
  stages.reserve(width);
  for (std::size_t s = 0; s < width; ++s) {
    stages.push_back(random_cell(rng, trial * 100 + static_cast<int>(s)));
  }
  return stages;
}

/// "Within 1e-12" at any magnitude: absolute for probabilities, relative
/// once the oracle moments grow past 1.
void expect_close(double got, double want, const std::string& context) {
  const double tolerance = 1e-12 * std::max(1.0, std::abs(want));
  EXPECT_NEAR(got, want, tolerance) << context;
}

void expect_same_entries(const ErrorPmf& got, const ErrorPmf& want,
                         const std::string& context) {
  ASSERT_EQ(got.support_size(), want.support_size()) << context;
  for (std::size_t i = 0; i < want.support_size(); ++i) {
    EXPECT_EQ(got.entries()[i].value, want.entries()[i].value)
        << context << " point " << i;
    EXPECT_EQ(got.entries()[i].probability, want.entries()[i].probability)
        << context << " point " << i;
  }
}

// ---------------------------------------------------------------------------
// PMF invariants over randomized hybrid chains

TEST(ErrorPmf, MassSumsToOneOverRandomHybridChains) {
  sealpaa::prob::SplitMix64 cell_rng(0x70f'0000'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0x70f'0000'0002ULL);
  for (int trial = 0; trial < 208; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 13);
    const std::vector<AdderCell> stages = random_chain(cell_rng, width, trial);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const std::string context =
        "trial " + std::to_string(trial) + " width " + std::to_string(width);

    const ErrorPmf pmf =
        sealpaa::analysis::propagate_error_pmf(AdderChain(stages), profile);
    ASSERT_FALSE(pmf.empty()) << context;
    EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12) << context;
    for (std::size_t i = 0; i < pmf.support_size(); ++i) {
      EXPECT_GT(pmf.entries()[i].probability, 0.0) << context;
      if (i > 0) {
        EXPECT_LT(pmf.entries()[i - 1].value, pmf.entries()[i].value)
            << context;
      }
    }
    // The worst-case point is the entry the simulators' worse_error
    // total order selects from the support.
    std::int64_t worst = 0;
    for (const ErrorPmf::Entry& entry : pmf.entries()) {
      if (sealpaa::sim::worse_error(entry.value, worst)) worst = entry.value;
    }
    EXPECT_EQ(pmf.worst_case_error(), worst) << context;
  }
}

TEST(ErrorPmf, JointSegmentMassesStayNormalizedMidPropagation) {
  sealpaa::prob::SplitMix64 cell_rng(0x70f'0000'0003ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0x70f'0000'0004ULL);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 13);
    const std::vector<AdderCell> stages = random_chain(cell_rng, width, trial);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    ErrorPmfState state =
        sealpaa::analysis::make_error_pmf_state(profile.p_cin());
    for (std::size_t i = 0; i < width; ++i) {
      sealpaa::analysis::advance_error_pmf(state, stages[i], profile.p_a(i),
                                           profile.p_b(i));
      double mass = 0.0;
      for (const ErrorPmf& segment : state.joint) {
        mass += segment.total_mass();
      }
      EXPECT_NEAR(mass, 1.0, 1e-12)
          << "trial " << trial << " after stage " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Weighted-exhaustive oracle

TEST(ErrorPmf, MatchesWeightedExhaustiveGroundTruth) {
  sealpaa::prob::SplitMix64 cell_rng(0x70f'0000'0005ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0x70f'0000'0006ULL);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 5);
    const std::vector<AdderCell> stages = random_chain(cell_rng, width, trial);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const AdderChain chain(stages);
    const std::string context =
        "trial " + std::to_string(trial) + " width " + std::to_string(width);

    const ExhaustiveReport oracle =
        WeightedExhaustive::analyze(chain, profile);
    const ErrorPmf pmf = sealpaa::analysis::propagate_error_pmf(chain, profile);

    expect_close(pmf.error_rate(), 1.0 - oracle.p_value_correct, context);
    expect_close(pmf.probability_of(0), oracle.p_value_correct, context);
    expect_close(pmf.mean_error(), oracle.mean_error, context);
    expect_close(pmf.mean_error_distance(), oracle.mean_abs_error, context);
    expect_close(pmf.mean_squared_error(), oracle.mean_squared_error,
                 context);
    // The oracle accumulates its worst case through the same
    // sim::worse_error total order, signed — must agree exactly.
    EXPECT_EQ(pmf.worst_case_error(), oracle.worst_case_error) << context;

    // Point-by-point: every assignment has positive probability under a
    // (0.05, 0.95) profile, so the supports must coincide exactly.
    ASSERT_EQ(pmf.support_size(), oracle.error_distribution.size()) << context;
    std::size_t i = 0;
    for (const auto& [value, probability] : oracle.error_distribution) {
      EXPECT_EQ(pmf.entries()[i].value, value) << context;
      EXPECT_NEAR(pmf.entries()[i].probability, probability, 1e-12) << context;
      ++i;
    }
  }
}

TEST(ErrorPmf, ExactChainIsPointMassAtZero) {
  const AdderCell& exact = sealpaa::adders::accurate();
  for (std::size_t width : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    const auto chain = AdderChain::homogeneous(exact, width);
    const InputProfile profile = InputProfile::uniform(width, 0.37);
    const ErrorPmf pmf = sealpaa::analysis::propagate_error_pmf(chain, profile);
    ASSERT_EQ(pmf.support_size(), 1u) << width;
    EXPECT_EQ(pmf.min_value(), 0) << width;
    // All mass sits at 0; the value itself carries the rounding of the
    // per-stage carry-split products, so "within 1e-12", not bitwise.
    EXPECT_NEAR(pmf.probability_of(0), 1.0, 1e-12) << width;
    EXPECT_EQ(pmf.error_rate(), 0.0) << width;
    EXPECT_EQ(pmf.mean_error_distance(), 0.0) << width;
    EXPECT_EQ(pmf.worst_case_error(), 0) << width;
    EXPECT_EQ(pmf.entropy_bits(), 0.0) << width;
    EXPECT_TRUE(std::isinf(pmf.psnr_db(width))) << width;
  }
}

// ---------------------------------------------------------------------------
// Representation switchovers

TEST(ErrorPmf, DenseAndSparseMixturePathsAreBitIdentical) {
  sealpaa::prob::SplitMix64 cell_rng(0x70f'0000'0007ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0x70f'0000'0008ULL);
  PmfOptions sparse_only;
  sparse_only.dense_threshold = 0;  // forbid the dense accumulator
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 9);
    const std::vector<AdderCell> stages = random_chain(cell_rng, width, trial);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const AdderChain chain(stages);
    const ErrorPmf dense =
        sealpaa::analysis::propagate_error_pmf(chain, profile);
    const ErrorPmf sparse =
        sealpaa::analysis::propagate_error_pmf(chain, profile, sparse_only);
    expect_same_entries(sparse, dense, "trial " + std::to_string(trial));
  }
}

TEST(ErrorPmf, ConvolveFftPathMatchesExactProduct) {
  sealpaa::prob::Xoshiro256StarStar rng(0x70f'0000'0009ULL);
  for (int trial = 0; trial < 10; ++trial) {
    ErrorPmf::Entries a_entries;
    ErrorPmf::Entries b_entries;
    for (int i = 0; i < 48; ++i) {
      a_entries.push_back(
          {static_cast<std::int64_t>(rng.next() % 600) - 300,
           rng.uniform01()});
      b_entries.push_back(
          {static_cast<std::int64_t>(rng.next() % 400) - 200,
           rng.uniform01()});
    }
    const ErrorPmf a = ErrorPmf::from_entries(a_entries);
    const ErrorPmf b = ErrorPmf::from_entries(b_entries);

    PmfOptions naive_only;
    naive_only.fft_threshold = std::numeric_limits<std::size_t>::max();
    PmfOptions fft_always;
    fft_always.fft_threshold = 1;

    const ErrorPmf exact = ErrorPmf::convolve(a, b, naive_only);
    const ErrorPmf fast = ErrorPmf::convolve(a, b, fft_always);
    ASSERT_EQ(fast.support_size(), exact.support_size()) << trial;
    for (std::size_t i = 0; i < exact.support_size(); ++i) {
      EXPECT_EQ(fast.entries()[i].value, exact.entries()[i].value) << trial;
      EXPECT_NEAR(fast.entries()[i].probability, exact.entries()[i].probability,
                  1e-12)
          << trial;
    }
    expect_close(fast.total_mass(), exact.total_mass(),
                 "mass trial " + std::to_string(trial));
  }
}

TEST(ErrorPmf, FromEntriesMergesValidatesAndDropsZeros) {
  const ErrorPmf merged = ErrorPmf::from_entries(
      {{5, 0.25}, {-3, 0.5}, {5, 0.25}, {7, 0.0}});
  ASSERT_EQ(merged.support_size(), 2u);
  EXPECT_EQ(merged.min_value(), -3);
  EXPECT_EQ(merged.max_value(), 5);
  EXPECT_EQ(merged.probability_of(5), 0.5);
  EXPECT_EQ(merged.probability_of(7), 0.0);
  EXPECT_THROW((void)ErrorPmf::from_entries({{1, -0.5}}),
               std::invalid_argument);
}

TEST(ErrorPmf, TopMassPointsOrderByProbabilityThenValue) {
  const ErrorPmf pmf = ErrorPmf::from_entries(
      {{-8, 0.2}, {0, 0.4}, {3, 0.2}, {11, 0.15}, {12, 0.05}});
  const ErrorPmf::Entries top = pmf.top_mass_points(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].value, 0);
  EXPECT_EQ(top[1].value, -8);  // probability tie with +3 → lower value first
  EXPECT_EQ(top[2].value, 3);
  EXPECT_EQ(pmf.top_mass_points(99).size(), pmf.support_size());
}

TEST(ErrorPmf, SupportGuardAndWidthGuardThrow) {
  const auto chain =
      AdderChain::homogeneous(sealpaa::adders::lpaa(1), 8);
  const InputProfile profile = InputProfile::uniform(8, 0.3);
  PmfOptions tiny;
  tiny.max_support = 4;  // LPAA1 at width 8 reaches a 400+-point support
  EXPECT_THROW(
      (void)sealpaa::analysis::propagate_error_pmf(chain, profile, tiny),
      std::length_error);

  ErrorPmfState state = sealpaa::analysis::make_error_pmf_state(0.5);
  state.stage = 62;  // the carry-out weight 2^63 would overflow int64
  EXPECT_THROW(sealpaa::analysis::advance_error_pmf(
                   state, sealpaa::adders::lpaa(1), 0.5, 0.5),
               std::length_error);
}

// ---------------------------------------------------------------------------
// Engine integrations

TEST(ErrorPmf, IncrementalTrackingMatchesBatchPropagation) {
  sealpaa::prob::SplitMix64 cell_rng(0x70f'0000'000aULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0x70f'0000'000bULL);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 9);
    const std::vector<AdderCell> stages = random_chain(cell_rng, width, trial);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);

    IncrementalAnalyzer inc(profile);
    inc.enable_pmf_tracking();
    for (const AdderCell& cell : stages) inc.push_stage(cell);
    const ErrorPmf batch =
        sealpaa::analysis::propagate_error_pmf(AdderChain(stages), profile);
    expect_same_entries(inc.error_pmf(), batch,
                        "full chain trial " + std::to_string(trial));

    // The DFS access pattern: rewind two stages, push replacements, and
    // the tracked PMF must equal a from-scratch propagation of the new
    // stage sequence.
    inc.rewind(width - 2);
    std::vector<AdderCell> replayed(stages.begin(),
                                    stages.begin() +
                                        static_cast<std::ptrdiff_t>(width - 2));
    for (std::size_t s = width - 2; s < width; ++s) {
      replayed.push_back(
          random_cell(cell_rng, trial * 100 + 50 + static_cast<int>(s)));
      inc.push_stage(replayed.back());
    }
    const ErrorPmf rebatch =
        sealpaa::analysis::propagate_error_pmf(AdderChain(replayed), profile);
    expect_same_entries(inc.error_pmf(), rebatch,
                        "rewound chain trial " + std::to_string(trial));
  }
}

TEST(ErrorPmf, IncrementalTrackingGuards) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  IncrementalAnalyzer inc(profile);
  inc.enable_pmf_tracking();
  // The matrices-only fast path cannot advance the PMF (no sum column).
  sealpaa::engine::MklCache cache;
  EXPECT_THROW((void)inc.push_stage(cache.of(sealpaa::adders::lpaa(1))),
               std::logic_error);
  inc.push_stage(sealpaa::adders::lpaa(1));
  EXPECT_THROW(inc.enable_pmf_tracking(), std::logic_error);

  IncrementalAnalyzer untracked(profile);
  EXPECT_THROW((void)untracked.error_pmf(), std::logic_error);
}

TEST(ErrorPmf, ChainEvaluatorPmfPrefixCacheIsExactAndAccounted) {
  sealpaa::prob::SplitMix64 cell_rng(0x70f'0000'000cULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0x70f'0000'000dULL);
  const std::size_t width = 8;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 4; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.05, 0.95);
  ChainEvaluator evaluator(profile, palette);

  sealpaa::prob::SplitMix64 walk_rng(0x70f'0000'000eULL);
  for (int query = 0; query < 40; ++query) {
    std::vector<std::size_t> choices(width);
    std::vector<AdderCell> stages;
    for (std::size_t i = 0; i < width; ++i) {
      choices[i] = walk_rng.next() % palette.size();
      stages.push_back(palette[choices[i]]);
    }
    const ErrorPmf cached = evaluator.error_pmf(choices);
    const ErrorPmf batch =
        sealpaa::analysis::propagate_error_pmf(AdderChain(stages), profile);
    expect_same_entries(cached, batch, "query " + std::to_string(query));
  }
  EXPECT_GT(evaluator.pmf_stats().hits, 0u);
  EXPECT_GT(evaluator.pmf_stats().stages_computed, 0u);
  EXPECT_EQ(evaluator.pmf_stats().chains_evaluated, 40u);
  EXPECT_GT(evaluator.pmf_cache_size(), 0u);
  // A stage budget far below the no-cache cost: 40 full-width chains over
  // a 4-cell palette share prefixes massively.
  EXPECT_LT(evaluator.pmf_stats().stages_computed, 40u * width);

  // Identical repeat query: answered entirely from the cache.
  const std::vector<std::size_t> probe(width, 0);
  (void)evaluator.error_pmf(probe);
  const auto hits_before = evaluator.pmf_stats().hits;
  const auto stages_before = evaluator.pmf_stats().stages_computed;
  (void)evaluator.error_pmf(probe);
  EXPECT_GT(evaluator.pmf_stats().hits, hits_before);
  EXPECT_EQ(evaluator.pmf_stats().stages_computed, stages_before);

  evaluator.clear();
  EXPECT_EQ(evaluator.pmf_cache_size(), 0u);
  EXPECT_EQ(evaluator.cache_size(), 0u);
}

TEST(ErrorPmf, ChainEvaluatorPartialPrefixMatchesPartialChain) {
  // error_pmf on a k-stage prefix equals the batch propagation of the
  // k-stage chain under the truncated profile.
  sealpaa::prob::SplitMix64 cell_rng(0x70f'0000'000fULL);
  const std::size_t width = 8;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 3; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile = InputProfile::uniform(width, 0.42);
  ChainEvaluator evaluator(profile, palette);

  const std::vector<std::size_t> prefix{0, 1, 2, 1};
  std::vector<AdderCell> stages;
  for (const std::size_t c : prefix) stages.push_back(palette[c]);
  const InputProfile truncated = InputProfile::uniform(prefix.size(), 0.42);
  const ErrorPmf batch = sealpaa::analysis::propagate_error_pmf(
      AdderChain(stages), truncated);
  expect_same_entries(evaluator.error_pmf(prefix), batch, "prefix of 4");
}

}  // namespace

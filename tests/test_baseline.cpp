// The traditional baselines: inclusion-exclusion engine + Table 3 cost
// model and the weighted-exhaustive oracle's internal consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/inclusion_exclusion.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::baseline::inclusion_exclusion_cost;
using sealpaa::baseline::InclusionExclusionAnalyzer;
using sealpaa::baseline::WeightedExhaustive;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

TEST(Table3, SmallKRowsMatchThePaperExactly) {
  // k = 4: 15 terms, 28 multiplications, 14 additions, 31 memory units.
  const auto c4 = inclusion_exclusion_cost(4);
  EXPECT_DOUBLE_EQ(c4.terms, 15.0);
  EXPECT_DOUBLE_EQ(c4.multiplications, 28.0);
  EXPECT_DOUBLE_EQ(c4.additions, 14.0);
  EXPECT_DOUBLE_EQ(c4.memory_units, 31.0);

  const auto c8 = inclusion_exclusion_cost(8);
  EXPECT_DOUBLE_EQ(c8.terms, 255.0);
  EXPECT_DOUBLE_EQ(c8.multiplications, 1016.0);
  EXPECT_DOUBLE_EQ(c8.additions, 254.0);
  EXPECT_DOUBLE_EQ(c8.memory_units, 511.0);

  const auto c12 = inclusion_exclusion_cost(12);
  EXPECT_DOUBLE_EQ(c12.terms, 4095.0);
  EXPECT_DOUBLE_EQ(c12.multiplications, 24564.0);
  EXPECT_DOUBLE_EQ(c12.additions, 4094.0);
  EXPECT_DOUBLE_EQ(c12.memory_units, 8191.0);
}

TEST(Table3, LargeKRowsMatchTheClosedForms) {
  // k = 20 memory: 2.10x10^6; k = 32 memory: 8.5x10^9 (paper rounding).
  EXPECT_NEAR(inclusion_exclusion_cost(20).memory_units, 2.10e6, 0.01e6);
  EXPECT_NEAR(inclusion_exclusion_cost(32).memory_units, 8.59e9, 0.01e9);
  // k = 20 multiplications: 10.5x10^6; k = 32: 68.7x10^9.
  EXPECT_NEAR(inclusion_exclusion_cost(20).multiplications, 10.5e6, 0.05e6);
  EXPECT_NEAR(inclusion_exclusion_cost(32).multiplications, 68.7e9, 0.05e9);
}

TEST(Table3, ExponentialGrowth) {
  for (int k = 4; k <= 28; k += 4) {
    const auto now = inclusion_exclusion_cost(k);
    const auto next = inclusion_exclusion_cost(k + 4);
    EXPECT_GT(next.terms, 15.0 * now.terms);  // 2^4 - 1 per 4 stages
  }
}

TEST(InclusionExclusion, MatchesRecursiveAnalyzerExactly) {
  // The whole point: same probability, exponentially more work.
  sealpaa::prob::Xoshiro256StarStar rng(61);
  for (int cell = 1; cell <= 7; ++cell) {
    for (std::size_t width : {1u, 3u, 6u, 10u}) {
      const InputProfile profile = InputProfile::random(width, rng);
      const AdderChain chain = AdderChain::homogeneous(lpaa(cell), width);
      const auto ie = InclusionExclusionAnalyzer::analyze(chain, profile);
      const auto rec = RecursiveAnalyzer::analyze(chain, profile);
      EXPECT_NEAR(ie.p_error, rec.p_error, 1e-10)
          << "LPAA" << cell << " width " << width;
      EXPECT_EQ(ie.terms_evaluated, (1ULL << width) - 1);
    }
  }
}

TEST(InclusionExclusion, HybridChains) {
  const AdderChain chain({lpaa(2), lpaa(6), lpaa(7), accurate(), lpaa(5)});
  const InputProfile profile = InputProfile::uniform(5, 0.42);
  const auto ie = InclusionExclusionAnalyzer::analyze(chain, profile);
  const auto rec = RecursiveAnalyzer::analyze(chain, profile);
  EXPECT_NEAR(ie.p_error, rec.p_error, 1e-12);
}

TEST(InclusionExclusion, AccurateChainHasZeroUnion) {
  const AdderChain chain = AdderChain::homogeneous(accurate(), 8);
  const InputProfile profile = InputProfile::uniform(8, 0.5);
  const auto ie = InclusionExclusionAnalyzer::analyze(chain, profile);
  EXPECT_NEAR(ie.p_error, 0.0, 1e-12);
}

TEST(InclusionExclusion, GuardRejectsHugeWidths) {
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 24);
  const InputProfile profile = InputProfile::uniform(24, 0.5);
  EXPECT_THROW((void)InclusionExclusionAnalyzer::analyze(chain, profile),
               std::invalid_argument);
}

TEST(InclusionExclusion, CountsWorkAgainstTheCostModel) {
  // Measured multiplication count must be within the closed-form bound
  // (the model counts dense joint products; the engine prunes zeros).
  sealpaa::util::OpCounter counter;
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 8);
  const InputProfile profile = InputProfile::uniform(8, 0.3);
  (void)InclusionExclusionAnalyzer::analyze(chain, profile, 20, &counter);
  EXPECT_GT(counter.counts().multiplications, 1000u);
  EXPECT_GT(counter.counts().additions, 250u);
}

TEST(WeightedExhaustive, DistributionSumsToOne) {
  const AdderChain chain = AdderChain::homogeneous(lpaa(3), 5);
  const InputProfile profile = InputProfile::uniform(5, 0.25);
  const auto report = WeightedExhaustive::analyze(chain, profile);
  double total = 0.0;
  for (const auto& [error, probability] : report.error_distribution) {
    total += probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(report.assignments, 1ULL << 11);
}

TEST(WeightedExhaustive, MomentsConsistentWithDistribution) {
  const AdderChain chain = AdderChain::homogeneous(lpaa(6), 4);
  const InputProfile profile = InputProfile::uniform(4, 0.6);
  const auto report = WeightedExhaustive::analyze(chain, profile);
  double mean = 0.0;
  double mean_sq = 0.0;
  double mean_abs = 0.0;
  for (const auto& [error, probability] : report.error_distribution) {
    mean += probability * static_cast<double>(error);
    mean_abs += probability * std::abs(static_cast<double>(error));
    mean_sq +=
        probability * static_cast<double>(error) * static_cast<double>(error);
  }
  EXPECT_NEAR(report.mean_error, mean, 1e-12);
  EXPECT_NEAR(report.mean_abs_error, mean_abs, 1e-12);
  EXPECT_NEAR(report.mean_squared_error, mean_sq, 1e-12);
}

TEST(WeightedExhaustive, DeterministicInputsCollapseTheSupport) {
  // All probabilities 0/1: exactly one assignment has nonzero mass.
  const InputProfile profile({1.0, 0.0, 1.0}, {1.0, 1.0, 0.0}, 0.0);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 3);
  const auto report = WeightedExhaustive::analyze(chain, profile);
  EXPECT_EQ(report.error_distribution.size(), 1u);
  const double p = report.error_distribution.begin()->second;
  EXPECT_NEAR(p, 1.0, 1e-12);
}

TEST(WeightedExhaustive, GuardRejectsHugeWidths) {
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 15);
  const InputProfile profile = InputProfile::uniform(15, 0.5);
  EXPECT_THROW((void)WeightedExhaustive::analyze(chain, profile),
               std::invalid_argument);
}

TEST(WeightedExhaustive, AccurateChainPerfectEverywhere) {
  const AdderChain chain = AdderChain::homogeneous(accurate(), 6);
  const InputProfile profile = InputProfile::uniform(6, 0.31);
  const auto report = WeightedExhaustive::analyze(chain, profile);
  EXPECT_NEAR(report.p_value_correct, 1.0, 1e-12);
  EXPECT_NEAR(report.p_stage_success, 1.0, 1e-12);
  EXPECT_EQ(report.worst_case_error, 0);
}

}  // namespace

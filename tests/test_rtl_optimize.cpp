// Netlist optimization: equivalence preservation, gate-count reduction,
// specific folding rules, idempotence.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/rtl/optimize.hpp"
#include "sealpaa/rtl/synth.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::multibit::AdderChain;
using sealpaa::rtl::GateKind;
using sealpaa::rtl::Netlist;
using sealpaa::rtl::optimize;
using sealpaa::rtl::synthesize_cell;
using sealpaa::rtl::synthesize_chain;

void expect_equivalent(const Netlist& a, const Netlist& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  sealpaa::prob::Xoshiro256StarStar rng(seed);
  const std::size_t trials =
      a.inputs().size() <= 10 ? (1ULL << a.inputs().size()) : 300;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<bool> inputs;
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      const bool bit = a.inputs().size() <= 10 ? ((t >> i) & 1ULL) != 0
                                               : rng.bernoulli(0.5);
      inputs.push_back(bit);
    }
    EXPECT_EQ(a.evaluate(inputs), b.evaluate(inputs)) << "trial " << t;
  }
}

TEST(Optimize, PreservesEveryCellFunction) {
  for (const auto& cell : sealpaa::adders::all_builtin_cells()) {
    const Netlist raw = synthesize_cell(cell);
    const Netlist opt = optimize(raw);
    expect_equivalent(raw, opt, 601);
    EXPECT_LE(opt.logic_gate_count(), raw.logic_gate_count()) << cell.name();
  }
}

TEST(Optimize, PreservesChainsAndGear) {
  const Netlist chain =
      synthesize_chain(AdderChain::homogeneous(lpaa(2), 6));
  expect_equivalent(chain, optimize(chain), 607);

  const Netlist gear =
      sealpaa::rtl::synthesize_gear(sealpaa::gear::GearConfig(8, 2, 2));
  expect_equivalent(gear, optimize(gear), 613);
}

TEST(Optimize, SharesCommonSubexpressions) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int b = netlist.add_input("b");
  const int x1 = netlist.add_binary(GateKind::And, a, b);
  const int x2 = netlist.add_binary(GateKind::And, b, a);  // commuted dup
  const int y = netlist.add_binary(GateKind::Or, x1, x2);  // Or(x, x) -> x
  netlist.set_output("y", y);
  const Netlist opt = optimize(netlist);
  EXPECT_EQ(opt.logic_gate_count(), 1u);  // single AND survives
  expect_equivalent(netlist, opt, 617);
}

TEST(Optimize, FoldsConstantsAndIdentities) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int zero = netlist.add_const(false);
  const int one = netlist.add_const(true);
  const int and0 = netlist.add_binary(GateKind::And, a, zero);  // -> 0
  const int or0 = netlist.add_binary(GateKind::Or, a, zero);    // -> a
  const int xor1 = netlist.add_binary(GateKind::Xor, a, one);   // -> !a
  const int xorself = netlist.add_binary(GateKind::Xor, a, a);  // -> 0
  netlist.set_output("and0", and0);
  netlist.set_output("or0", or0);
  netlist.set_output("xor1", xor1);
  netlist.set_output("xorself", xorself);
  const Netlist opt = optimize(netlist);
  EXPECT_EQ(opt.logic_gate_count(), 1u);  // just the NOT
  expect_equivalent(netlist, opt, 619);
}

TEST(Optimize, EliminatesDoubleNegationAndBuffers) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int n1 = netlist.add_unary(GateKind::Not, a);
  const int n2 = netlist.add_unary(GateKind::Not, n1);
  const int buf = netlist.add_unary(GateKind::Buf, n2);
  netlist.set_output("y", buf);
  const Netlist opt = optimize(netlist);
  EXPECT_EQ(opt.logic_gate_count(), 0u);
  expect_equivalent(netlist, opt, 631);
}

TEST(Optimize, RemovesDeadLogicKeepsPorts) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int b = netlist.add_input("b");
  (void)netlist.add_binary(GateKind::Xor, a, b);  // dead
  const int live = netlist.add_binary(GateKind::And, a, b);
  netlist.set_output("y", live);
  const Netlist opt = optimize(netlist);
  EXPECT_EQ(opt.logic_gate_count(), 1u);
  EXPECT_EQ(opt.inputs().size(), 2u);  // unused port b survives
}

TEST(Optimize, Idempotent) {
  const Netlist raw = synthesize_cell(lpaa(3));
  const Netlist once = optimize(raw);
  const Netlist twice = optimize(once);
  EXPECT_EQ(once.logic_gate_count(), twice.logic_gate_count());
  EXPECT_EQ(once.gate_count(), twice.gate_count());
  expect_equivalent(once, twice, 641);
}

TEST(Optimize, RandomNetlistFuzz) {
  sealpaa::prob::Xoshiro256StarStar rng(643);
  for (int trial = 0; trial < 20; ++trial) {
    Netlist netlist;
    std::vector<int> nets;
    for (int i = 0; i < 4; ++i) {
      nets.push_back(netlist.add_input("i" + std::to_string(i)));
    }
    nets.push_back(netlist.add_const(false));
    nets.push_back(netlist.add_const(true));
    for (int g = 0; g < 40; ++g) {
      const auto pick = [&] {
        return nets[rng.next() % nets.size()];
      };
      const int choice = static_cast<int>(rng.next() % 5);
      switch (choice) {
        case 0:
          nets.push_back(netlist.add_unary(GateKind::Not, pick()));
          break;
        case 1:
          nets.push_back(netlist.add_unary(GateKind::Buf, pick()));
          break;
        case 2:
          nets.push_back(netlist.add_binary(GateKind::And, pick(), pick()));
          break;
        case 3:
          nets.push_back(netlist.add_binary(GateKind::Or, pick(), pick()));
          break;
        default:
          nets.push_back(netlist.add_binary(GateKind::Xor, pick(), pick()));
          break;
      }
    }
    for (int o = 0; o < 3; ++o) {
      netlist.set_output("o" + std::to_string(o), nets[nets.size() - 1 -
                                                       static_cast<std::size_t>(o)]);
    }
    const Netlist opt = optimize(netlist);
    expect_equivalent(netlist, opt,
                      700 + static_cast<std::uint64_t>(trial));
    EXPECT_LE(opt.logic_gate_count(), netlist.logic_gate_count());
  }
}

}  // namespace

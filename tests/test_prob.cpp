// Unit tests for the probability/statistics substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "sealpaa/prob/kahan.hpp"
#include "sealpaa/prob/probability.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/prob/stats.hpp"

namespace {

using sealpaa::prob::KahanSum;
using sealpaa::prob::Probability;
using sealpaa::prob::RunningStats;
using sealpaa::prob::SplitMix64;
using sealpaa::prob::Xoshiro256StarStar;

TEST(Probability, ValidRangeAccepted) {
  EXPECT_DOUBLE_EQ(Probability(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability(1.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Probability(0.37).value(), 0.37);
}

TEST(Probability, OutOfRangeRejected) {
  EXPECT_THROW(Probability(-0.1), std::domain_error);
  EXPECT_THROW(Probability(1.1), std::domain_error);
  EXPECT_THROW(Probability(std::nan("")), std::domain_error);
}

TEST(Probability, SlackBandClamped) {
  // Values just outside [0,1] from rounding are clamped, not rejected.
  EXPECT_DOUBLE_EQ(Probability(-1e-12).value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability(1.0 + 1e-12).value(), 1.0);
}

TEST(Probability, ComplementAndProduct) {
  const Probability p(0.25);
  EXPECT_DOUBLE_EQ(p.complement().value(), 0.75);
  EXPECT_DOUBLE_EQ((p * Probability(0.5)).value(), 0.125);
  EXPECT_DOUBLE_EQ(Probability::half().value(), 0.5);
}

TEST(Probability, ComparisonOperators) {
  EXPECT_TRUE(Probability(0.2) < Probability(0.3));
  EXPECT_TRUE(Probability(0.2) <= Probability(0.2));
  EXPECT_TRUE(Probability(0.2) == Probability(0.2));
  EXPECT_FALSE(Probability(0.4) < Probability(0.3));
  EXPECT_DOUBLE_EQ(Probability::zero().value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability::one().value(), 1.0);
  EXPECT_DOUBLE_EQ(Probability::unchecked(0.77).value(), 0.77);
}

TEST(RequireProbability, MessageNamesTheContext) {
  try {
    (void)sealpaa::prob::require_probability(2.0, "P(A)");
    FAIL() << "expected throw";
  } catch (const std::domain_error& e) {
    EXPECT_NE(std::string(e.what()).find("P(A)"), std::string::npos);
  }
}

TEST(Kahan, RecoversSmallAddendsLostToNaiveSummation) {
  KahanSum sum;
  double naive = 0.0;
  sum.add(1.0);
  naive += 1.0;
  for (int i = 0; i < 10'000'000; ++i) {
    sum.add(1e-17);
    naive += 1e-17;
  }
  // Naive summation loses all the tiny addends entirely.
  EXPECT_DOUBLE_EQ(naive, 1.0);
  EXPECT_NEAR(sum.value(), 1.0 + 1e-10, 1e-14);
}

TEST(Kahan, NeumaierHandlesAddendLargerThanSum) {
  KahanSum sum;
  sum.add(1.0);
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_DOUBLE_EQ(sum.value(), 2.0);
}

TEST(Kahan, ResetClearsState) {
  KahanSum sum;
  sum.add(5.0);
  sum.reset();
  EXPECT_DOUBLE_EQ(sum.value(), 0.0);
}

TEST(SplitMix, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(123);
  Xoshiro256StarStar b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, Uniform01InHalfOpenInterval) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, BernoulliFrequencyTracksP) {
  Xoshiro256StarStar rng(99);
  const double p = 0.3;
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  const double frequency = static_cast<double>(hits) / trials;
  EXPECT_NEAR(frequency, p, 0.005);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256StarStar a(5);
  Xoshiro256StarStar b(5);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) collisions += first.count(b.next()) != 0;
  EXPECT_EQ(collisions, 0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Wilson, CoversTrueProportion) {
  // 300 successes in 1000 trials: interval must contain 0.3.
  const auto ci = sealpaa::prob::wilson_interval(300, 1000, 1.96);
  EXPECT_TRUE(ci.contains(0.3));
  EXPECT_GT(ci.low, 0.25);
  EXPECT_LT(ci.high, 0.35);
}

TEST(Wilson, DegenerateCases) {
  // Zero trials carry no information: the interval is explicitly empty,
  // not the fake-but-plausible [0, 1].
  const auto empty = sealpaa::prob::wilson_interval(0, 0, 1.96);
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.contains(0.5));
  const auto zero = sealpaa::prob::wilson_interval(0, 100, 1.96);
  EXPECT_FALSE(zero.empty());
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const auto all = sealpaa::prob::wilson_interval(100, 100, 1.96);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
}

TEST(Wilson, RejectsMoreSuccessesThanTrials) {
  EXPECT_THROW(sealpaa::prob::wilson_interval(5, 4, 1.96),
               std::invalid_argument);
}

TEST(Interval, EmptyIntervalSemantics) {
  const auto empty = sealpaa::prob::Interval::empty_interval();
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.contains(0.0));
  EXPECT_FALSE(empty.contains(1.0));
  const sealpaa::prob::Interval point{0.5, 0.5};
  EXPECT_FALSE(point.empty());
  EXPECT_TRUE(point.contains(0.5));
}

TEST(BinomialStderr, ShrinksWithSamples) {
  const double se_small = sealpaa::prob::binomial_stderr(0.5, 100);
  const double se_large = sealpaa::prob::binomial_stderr(0.5, 10000);
  EXPECT_NEAR(se_small, 0.05, 1e-12);
  EXPECT_NEAR(se_large, 0.005, 1e-12);
}

}  // namespace

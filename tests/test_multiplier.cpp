// Approximate array multiplier and the accelerator MAC datapath.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/multiplier/array_multiplier.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::multibit::AdderChain;
using sealpaa::multiplier::approx_dot_product;
using sealpaa::multiplier::ApproxMultiplier;
using sealpaa::multiplier::exhaustive_multiplier;
using sealpaa::multiplier::measure_multiplier;
using sealpaa::multiplier::ReductionMode;

TEST(Multiplier, ExactCellsGiveExactProductsRipple) {
  const ApproxMultiplier mult(8, accurate(), ReductionMode::RippleAccumulate);
  sealpaa::prob::Xoshiro256StarStar rng(301);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t a = rng.next() & 0xFF;
    const std::uint64_t b = rng.next() & 0xFF;
    EXPECT_EQ(mult.multiply(a, b), a * b) << a << " * " << b;
  }
}

TEST(Multiplier, ExactCellsGiveExactProductsCarrySave) {
  const ApproxMultiplier mult(8, accurate(), ReductionMode::CarrySaveTree);
  sealpaa::prob::Xoshiro256StarStar rng(307);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t a = rng.next() & 0xFF;
    const std::uint64_t b = rng.next() & 0xFF;
    EXPECT_EQ(mult.multiply(a, b), a * b) << a << " * " << b;
  }
}

TEST(Multiplier, EdgeOperandsExactCell) {
  const ApproxMultiplier mult(6, accurate());
  EXPECT_EQ(mult.multiply(0, 63), 0u);
  EXPECT_EQ(mult.multiply(63, 0), 0u);
  EXPECT_EQ(mult.multiply(21, 1), 21u);
  EXPECT_EQ(mult.multiply(21, 32), 21u * 32u);
  EXPECT_EQ(mult.multiply(63, 63), 63u * 63u);
}

TEST(Multiplier, ApproximateArrayComputesItsZeros) {
  // Hardware-faithful behaviour: the zero partial products still flow
  // through the (approximate) accumulation adders, so 0 * x need not be
  // 0.  LPAA3 maps the all-zero row to sum = 1, yielding all-ones.
  const ApproxMultiplier mult(6, lpaa(3));
  EXPECT_EQ(mult.multiply(0, 63), 0xFFFu);
  EXPECT_LT(mult.multiply(63, 63), 1ULL << 12);
}

TEST(Multiplier, SignedMultiplySignMagnitude) {
  const ApproxMultiplier exact_mult(8, accurate());
  EXPECT_EQ(exact_mult.multiply_signed(-7, 9), -63);
  EXPECT_EQ(exact_mult.multiply_signed(-7, -9), 63);
  EXPECT_EQ(exact_mult.multiply_signed(7, -9), -63);
  EXPECT_EQ(exact_mult.multiply_signed(0, -9), 0);
  EXPECT_THROW((void)exact_mult.multiply_signed(-256, 1), std::domain_error);

  // Approximate cell: sign symmetry must hold regardless of the error.
  const ApproxMultiplier approx_mult(8, lpaa(6));
  const std::int64_t pp = approx_mult.multiply_signed(113, 57);
  EXPECT_EQ(approx_mult.multiply_signed(-113, 57), -pp);
  EXPECT_EQ(approx_mult.multiply_signed(-113, -57), pp);
}

TEST(Multiplier, OperandsAboveWidthAreMasked) {
  const ApproxMultiplier mult(4, accurate());
  EXPECT_EQ(mult.multiply(0xFF, 0x11), (0xFULL) * (0x1ULL));
}

TEST(Multiplier, Validation) {
  EXPECT_THROW(ApproxMultiplier(0, accurate()), std::invalid_argument);
  EXPECT_THROW(ApproxMultiplier(40, accurate()), std::invalid_argument);
}

TEST(Multiplier, ApproximateCellsDegradeMonotonicallyWithErrorCases) {
  // More truth-table error cases should not make the multiplier better.
  const auto report_for = [](int cell) {
    const ApproxMultiplier mult(6, lpaa(cell));
    return exhaustive_multiplier(mult).metrics.error_rate();
  };
  const double lpaa7_rate = report_for(7);  // 2 error cases, exact carry
  const double lpaa5_rate = report_for(5);  // 4 error cases
  EXPECT_LT(lpaa7_rate, lpaa5_rate);
  EXPECT_GT(lpaa7_rate, 0.0);
}

TEST(Multiplier, ExhaustiveAndMonteCarloAgree) {
  const ApproxMultiplier mult(5, lpaa(6));
  const auto exhaustive = exhaustive_multiplier(mult);
  const auto sampled = measure_multiplier(mult, 200000);
  EXPECT_NEAR(exhaustive.metrics.error_rate(), sampled.metrics.error_rate(),
              0.01);
  EXPECT_EQ(exhaustive.samples, 1024u);
}

TEST(Multiplier, NormalizedMedIsSmallFraction) {
  const ApproxMultiplier mult(8, lpaa(6));
  const auto report = measure_multiplier(mult, 50000);
  EXPECT_GT(report.normalized_med(), 0.0);
  EXPECT_LT(report.normalized_med(), 0.5);
}

TEST(Multiplier, GuardOnExhaustiveWidth) {
  const ApproxMultiplier mult(12, accurate());
  EXPECT_THROW((void)exhaustive_multiplier(mult), std::invalid_argument);
}

// Parameterized sweep: (cell x reduction mode x width), each validated
// exhaustively for the exact cell and sanity-bounded for approximate
// ones.
class MultiplierSweep
    : public ::testing::TestWithParam<
          std::tuple<int, ReductionMode, std::size_t>> {};

TEST_P(MultiplierSweep, ExhaustiveMetricsAreConsistent) {
  const auto [cell_index, mode, width] = GetParam();
  const ApproxMultiplier mult(
      width, cell_index == 0 ? accurate() : lpaa(cell_index), mode);
  const auto report = exhaustive_multiplier(mult);
  EXPECT_EQ(report.samples, 1ULL << (2 * width));
  if (cell_index == 0) {
    EXPECT_EQ(report.metrics.value_errors(), 0u);
    EXPECT_EQ(report.metrics.worst_case_error(), 0);
  } else {
    // Approximate multipliers stay within the representable range.
    EXPECT_LE(static_cast<std::uint64_t>(
                  std::llabs(report.metrics.worst_case_error())),
              (1ULL << (2 * width)) - 1);
    EXPECT_GE(report.metrics.mean_squared_error(),
              report.metrics.mean_error() * report.metrics.mean_error() -
                  1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiplierSweep,
    ::testing::Combine(::testing::Values(0, 1, 5, 6, 7),
                       ::testing::Values(ReductionMode::RippleAccumulate,
                                         ReductionMode::CarrySaveTree),
                       ::testing::Values(std::size_t{3}, std::size_t{5})),
    [](const auto& param_info) {
      const int cell = std::get<0>(param_info.param);
      return std::string(cell == 0 ? "AccuFA" : "LPAA" + std::to_string(cell)) +
             (std::get<1>(param_info.param) ==
                      ReductionMode::RippleAccumulate
                  ? "_ripple"
                  : "_csa") +
             "_w" + std::to_string(std::get<2>(param_info.param));
    });

TEST(DotProduct, ExactPathMatchesReference) {
  const ApproxMultiplier mult(8, accurate());
  const AdderChain acc = AdderChain::homogeneous(accurate(), 24);
  const std::vector<std::uint64_t> values = {12, 250, 3, 99, 180};
  const std::vector<std::uint64_t> weights = {7, 2, 255, 31, 64};
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    expected = (expected + values[i] * weights[i]) & ((1ULL << 24) - 1);
  }
  EXPECT_EQ(approx_dot_product(values, weights, mult, acc), expected);
}

TEST(DotProduct, SizeMismatchThrows) {
  const ApproxMultiplier mult(8, accurate());
  const AdderChain acc = AdderChain::homogeneous(accurate(), 24);
  EXPECT_THROW((void)approx_dot_product({1, 2}, {1}, mult, acc),
               std::invalid_argument);
}

TEST(DotProduct, ApproximateAccumulatorStaysClose) {
  const ApproxMultiplier mult(8, accurate());
  // Approximate only the accumulator's low byte.
  std::vector<sealpaa::adders::AdderCell> stages;
  for (int i = 0; i < 8; ++i) stages.push_back(lpaa(6));
  for (int i = 8; i < 24; ++i) stages.push_back(accurate());
  const AdderChain acc(stages);
  const AdderChain exact_acc = AdderChain::homogeneous(accurate(), 24);

  sealpaa::prob::Xoshiro256StarStar rng(311);
  std::vector<std::uint64_t> values(16);
  std::vector<std::uint64_t> weights(16);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = rng.next() & 0xFF;
    weights[i] = rng.next() & 0xFF;
  }
  const std::uint64_t approx = approx_dot_product(values, weights, mult, acc);
  const std::uint64_t exact =
      approx_dot_product(values, weights, mult, exact_acc);
  const auto diff = static_cast<std::int64_t>(approx) -
                    static_cast<std::int64_t>(exact);
  // 16 accumulations, each off by at most +-511 in the approximate low
  // byte (sum bits plus the carry into bit 8): well under 2^14.
  EXPECT_LT(std::llabs(diff), 1LL << 14);
}

}  // namespace

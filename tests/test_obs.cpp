// Tests for the observability layer: the JSON builder, hierarchical
// counters, the versioned run report, and the serializers that project
// library report structs into JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/obs/counters.hpp"
#include "sealpaa/obs/json.hpp"
#include "sealpaa/obs/report.hpp"
#include "sealpaa/obs/serialize.hpp"
#include "sealpaa/prob/stats.hpp"
#include "sealpaa/sim/montecarlo.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/parallel.hpp"

namespace {

using sealpaa::obs::Counters;
using sealpaa::obs::Json;
using sealpaa::obs::RunReport;
using sealpaa::obs::ScopedTimer;
using sealpaa::util::CliArgs;

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Json().dump(0), "null");
  EXPECT_EQ(Json(true).dump(0), "true");
  EXPECT_EQ(Json(false).dump(0), "false");
  EXPECT_EQ(Json(-42).dump(0), "-42");
  EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(0),
            "18446744073709551615");
  EXPECT_EQ(Json(0.5).dump(0), "0.5");
  EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(0), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(0), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(0), "null");
}

TEST(Json, DoubleRoundTripsAtFullPrecision) {
  const double value = 0.1234567890123456789;
  const std::string text = Json(value).dump(0);
  EXPECT_DOUBLE_EQ(std::stod(text), value);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(0), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(0), "\"back\\\\slash\"");
  EXPECT_EQ(Json("tab\there").dump(0), "\"tab\\there\"");
  EXPECT_EQ(Json(std::string("ctrl\x01")).dump(0), "\"ctrl\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json object = Json::object();
  object.set("zulu", Json(1));
  object.set("alpha", Json(2));
  object.set("mike", Json(3));
  EXPECT_EQ(object.dump(0), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
  // Replacing a key keeps its original position.
  object.set("alpha", Json(9));
  EXPECT_EQ(object.dump(0), "{\"zulu\":1,\"alpha\":9,\"mike\":3}");
  ASSERT_NE(object.find("alpha"), nullptr);
  EXPECT_EQ(object.find("alpha")->dump(0), "9");
  EXPECT_EQ(object.find("missing"), nullptr);
  EXPECT_EQ(object.size(), 3u);
}

TEST(Json, ArraysAndNesting) {
  Json array = Json::array();
  array.push_back(Json(1));
  array.push_back(Json::object());
  EXPECT_EQ(array.dump(0), "[1,{}]");
  EXPECT_EQ(array.size(), 2u);
  EXPECT_EQ(Json::array().dump(0), "[]");
  EXPECT_EQ(Json::object().dump(0), "{}");
}

TEST(Json, PrettyPrintIndents) {
  Json object = Json::object();
  object.set("k", Json(1));
  EXPECT_EQ(object.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, TypeMisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar.push_back(Json(2)), std::logic_error);
  EXPECT_THROW(scalar.set("k", Json(2)), std::logic_error);
  EXPECT_EQ(scalar.find("k"), nullptr);
}

TEST(JsonParse, RoundTripsEveryValueKind) {
  const std::string text =
      R"({"null":null,"t":true,"f":false,"i":-42,)"
      R"("u":18446744073709551615,"d":0.25,"s":"hi",)"
      R"("a":[1,[2],{"k":3}],"o":{"nested":{"deep":true}}})";
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.dump(0), text);  // insertion order survives the trip
}

TEST(JsonParse, NumbersKeepNativeIntegerTypes) {
  EXPECT_EQ(Json::parse("-42").integer(), -42);
  EXPECT_EQ(Json::parse("18446744073709551615").unsigned_integer(),
            18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e-3").number(), 2.5e-3);
  // A full-precision double survives a serialize/parse round trip.
  const double value = 0.99892578169237822;
  EXPECT_EQ(Json::parse(Json(value).dump(0)).number(), value);
}

TEST(JsonParse, StringEscapesAndSurrogatePairs) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\n\t")").string_value(), "a\"b\\c\n\t");
  EXPECT_EQ(Json::parse(R"("Aé")").string_value(), "A\xC3\xA9");
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").string_value(),
            "\xF0\x9F\x98\x80");  // surrogate pair -> U+1F600 as UTF-8
  EXPECT_THROW((void)Json::parse(R"("\ud83d")"), std::invalid_argument);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)Json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{'single':1}"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("01"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("nul"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse(R"({"dup":1,"dup":2})"),
               std::invalid_argument);
}

TEST(JsonParse, DepthLimitGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_THROW((void)Json::parse(deep, 64), std::invalid_argument);
  EXPECT_NO_THROW((void)Json::parse(deep, 128));
}

TEST(JsonParse, AccessorsValidateTypes) {
  const Json doc = Json::parse(R"({"n":1,"s":"x","a":[true]})");
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("a")->at(0).boolean(), true);
  EXPECT_THROW((void)doc.find("s")->integer(), std::invalid_argument);
  EXPECT_THROW((void)doc.find("n")->string_value(), std::invalid_argument);
  EXPECT_THROW((void)doc.find("a")->at(7), std::out_of_range);
  EXPECT_EQ(doc.items().size(), 3u);
}

TEST(Counters, AddNoteMaxAndRealAccumulate) {
  Counters counters;
  counters.add("sim/samples", 10);
  counters.add("sim/samples", 5);
  counters.add("sim/shards");
  counters.note_max("pool/high_water", 3);
  counters.note_max("pool/high_water", 2);  // smaller: keeps 3
  counters.add_real("sim/seconds", 0.5);
  counters.add_real("sim/seconds", 0.25);
  EXPECT_EQ(counters.value("sim/samples"), 15u);
  EXPECT_EQ(counters.value("sim/shards"), 1u);
  EXPECT_EQ(counters.value("pool/high_water"), 3u);
  EXPECT_DOUBLE_EQ(counters.real_value("sim/seconds"), 0.75);
  EXPECT_EQ(counters.value("never/written"), 0u);
  counters.clear();
  EXPECT_EQ(counters.value("sim/samples"), 0u);
}

TEST(Counters, JsonNestsPathSegments) {
  Counters counters;
  counters.add("a/b/c", 7);
  counters.add_real("a/seconds", 1.5);
  const Json tree = counters.to_json();
  const Json* a = tree.find("a");
  ASSERT_NE(a, nullptr);
  const Json* b = a->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->find("c"), nullptr);
  EXPECT_EQ(b->find("c")->dump(0), "7");
  ASSERT_NE(a->find("seconds"), nullptr);
  EXPECT_EQ(a->find("seconds")->dump(0), "1.5");
}

TEST(Counters, ScopedTimerRecordsOnScopeExit) {
  Counters counters;
  {
    ScopedTimer timer(counters, "work");
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(counters.real_value("work/wall_seconds"), 0.0);
  EXPECT_GE(counters.real_value("work/cpu_seconds"), 0.0);
}

TEST(Counters, ScopedTimerStopIsIdempotent) {
  Counters counters;
  ScopedTimer timer(counters, "once");
  timer.stop();
  const double first = counters.real_value("once/wall_seconds");
  timer.stop();  // no double accounting
  EXPECT_DOUBLE_EQ(counters.real_value("once/wall_seconds"), first);
}

TEST(RunReport, DocumentCarriesSchemaAndSections) {
  RunReport report("unit-test");
  const char* argv[] = {"prog", "--samples=100", "pos"};
  const CliArgs args(3, argv);
  report.record_args(args);
  report.section("payload").set("answer", Json(42));
  report.counters().add("events", 2);
  const Json document = report.to_json();
  ASSERT_NE(document.find("schema"), nullptr);
  EXPECT_EQ(document.find("schema")->dump(0), "\"sealpaa.run-report\"");
  EXPECT_EQ(document.find("schema_version")->dump(0), "1");
  EXPECT_EQ(document.find("tool")->dump(0), "\"unit-test\"");
  ASSERT_NE(document.find("args"), nullptr);
  EXPECT_EQ(document.find("args")->find("samples")->dump(0), "\"100\"");
  ASSERT_NE(document.find("sections"), nullptr);
  EXPECT_EQ(
      document.find("sections")->find("payload")->find("answer")->dump(0),
      "42");
  EXPECT_EQ(document.find("counters")->find("events")->dump(0), "2");
}

TEST(RunReport, SectionIsReusedNotDuplicated) {
  RunReport report("unit-test");
  report.section("s").set("a", Json(1));
  report.section("s").set("b", Json(2));
  const Json document = report.to_json();
  EXPECT_EQ(document.find("sections")->size(), 1u);
  EXPECT_EQ(document.find("sections")->find("s")->size(), 2u);
}

TEST(RunReport, WriteFileRoundTrips) {
  const std::string path = "/tmp/sealpaa_obs_report_test.json";
  {
    RunReport report("roundtrip");
    report.section("data").set("value", Json(0.5));
    report.write_file(path);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"schema\": \"sealpaa.run-report\""),
            std::string::npos);
  EXPECT_NE(text.find("\"value\": 0.5"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  std::remove(path.c_str());
}

TEST(RunReport, WriteFileThrowsOnBadPath) {
  RunReport report("bad-path");
  EXPECT_THROW(report.write_file("/nonexistent_dir_xyz/report.json"),
               std::runtime_error);
}

TEST(ReportPath, ExplicitFlagWins) {
  const char* argv[] = {"prog", "--json-report=/tmp/out.json"};
  const CliArgs args(2, argv);
  const auto path = sealpaa::obs::report_path(args, "DEFAULT.json");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/tmp/out.json");
}

TEST(ReportPath, DefaultAndSuppression) {
  const char* none[] = {"prog"};
  EXPECT_FALSE(sealpaa::obs::report_path(CliArgs(1, none)).has_value());
  EXPECT_EQ(sealpaa::obs::report_path(CliArgs(1, none), "BENCH_x.json"),
            std::optional<std::string>("BENCH_x.json"));
  const char* suppressed[] = {"prog", "--no-json"};
  EXPECT_FALSE(sealpaa::obs::report_path(CliArgs(2, suppressed),
                                         "BENCH_x.json")
                   .has_value());
}

TEST(ReportPath, BareFlagIsRejected) {
  const char* argv[] = {"prog", "--json-report"};
  const CliArgs args(2, argv);
  EXPECT_THROW((void)sealpaa::obs::report_path(args),
               std::invalid_argument);
}

TEST(Serialize, EmptyIntervalIsNullPopulatedIsObject) {
  EXPECT_TRUE(
      sealpaa::obs::to_json(sealpaa::prob::Interval::empty_interval())
          .is_null());
  const Json populated =
      sealpaa::obs::to_json(sealpaa::prob::Interval{0.25, 0.75});
  ASSERT_NE(populated.find("low"), nullptr);
  EXPECT_EQ(populated.find("low")->dump(0), "0.25");
  EXPECT_EQ(populated.find("width")->dump(0), "0.5");
}

TEST(Serialize, MonteCarloReportProjectsMetricsAndCis) {
  using sealpaa::multibit::AdderChain;
  using sealpaa::multibit::InputProfile;
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain =
      AdderChain::homogeneous(sealpaa::adders::lpaa(5), 4);
  const auto report =
      sealpaa::sim::MonteCarloSimulator::run(chain, profile, 5000, 1);
  const Json json = sealpaa::obs::to_json(report);
  EXPECT_EQ(json.find("samples")->dump(0), "5000");
  ASSERT_NE(json.find("metrics"), nullptr);
  EXPECT_EQ(json.find("metrics")->find("cases")->dump(0), "5000");
  EXPECT_FALSE(json.find("stage_failure_ci")->is_null());

  // Zero samples: the CIs must serialize as null, not a fake interval.
  const auto empty_run =
      sealpaa::sim::MonteCarloSimulator::run(chain, profile, 0, 1);
  const Json empty_json = sealpaa::obs::to_json(empty_run);
  EXPECT_TRUE(empty_json.find("stage_failure_ci")->is_null());
  EXPECT_TRUE(empty_json.find("value_error_ci")->is_null());
}

TEST(Serialize, ThreadPoolStats) {
  sealpaa::util::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) pool.submit([] {});
  pool.wait();
  const Json json = sealpaa::obs::to_json(pool.stats());
  EXPECT_EQ(json.find("tasks_executed")->dump(0), "8");
  EXPECT_EQ(json.find("worker_busy_seconds")->size(), 2u);
}

}  // namespace

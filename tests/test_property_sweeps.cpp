// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// systematic cross-engine validation over the (cell x width x
// probability) grid, plus randomized-cell fuzzing — the recursion must
// agree with ground truth for ANY 8-row truth table, not just the seven
// published ones.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/analysis/joint.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/analysis/correlated.hpp"
#include "sealpaa/baseline/inclusion_exclusion.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/multibit/loa.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/exhaustive.hpp"

namespace {

using sealpaa::adders::AdderCell;
using sealpaa::adders::lpaa;
using sealpaa::analysis::JointCarryAnalyzer;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::baseline::InclusionExclusionAnalyzer;
using sealpaa::baseline::WeightedExhaustive;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

// ---------------------------------------------------------------------
// Sweep 1: every builtin cell x width x uniform probability.
// ---------------------------------------------------------------------
class CellWidthProbability
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, double>> {
};

TEST_P(CellWidthProbability, RecursiveMatchesWeightedExhaustive) {
  const auto [cell_index, width, p] = GetParam();
  const AdderChain chain = AdderChain::homogeneous(lpaa(cell_index), width);
  const InputProfile profile = InputProfile::uniform(width, p);
  const double analytical =
      RecursiveAnalyzer::analyze(chain, profile).p_success;
  const double oracle =
      WeightedExhaustive::analyze(chain, profile).p_stage_success;
  EXPECT_NEAR(analytical, oracle, 1e-12);
}

TEST_P(CellWidthProbability, JointDpAgreesOnStageSuccess) {
  const auto [cell_index, width, p] = GetParam();
  const AdderChain chain = AdderChain::homogeneous(lpaa(cell_index), width);
  const InputProfile profile = InputProfile::uniform(width, p);
  EXPECT_NEAR(JointCarryAnalyzer::analyze(chain, profile).p_stage_success,
              RecursiveAnalyzer::analyze(chain, profile).p_success, 1e-12);
}

TEST_P(CellWidthProbability, ErrorProbabilityIsMonotoneInWidth) {
  // Appending a stage can only discard more success mass.
  const auto [cell_index, width, p] = GetParam();
  const double shorter = RecursiveAnalyzer::error_probability(
      lpaa(cell_index), InputProfile::uniform(width, p));
  const double longer = RecursiveAnalyzer::error_probability(
      lpaa(cell_index), InputProfile::uniform(width + 1, p));
  EXPECT_GE(longer, shorter - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CellWidthProbability,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(std::size_t{2}, std::size_t{5},
                                         std::size_t{9}),
                       ::testing::Values(0.1, 0.5, 0.85)),
    [](const auto& param_info) {
      return "LPAA" + std::to_string(std::get<0>(param_info.param)) + "_w" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 100));
    });

// ---------------------------------------------------------------------
// Sweep 2: randomized truth tables ("fuzzing" the analysis machinery).
// ---------------------------------------------------------------------
class RandomCell : public ::testing::TestWithParam<int> {};

AdderCell make_random_cell(std::uint64_t seed) {
  sealpaa::prob::Xoshiro256StarStar rng(seed);
  AdderCell::Rows rows{};
  for (auto& row : rows) {
    row.sum = rng.bernoulli(0.5);
    row.carry = rng.bernoulli(0.5);
  }
  return AdderCell("fuzz" + std::to_string(seed), rows);
}

TEST_P(RandomCell, RecursiveMatchesGroundTruthOnRandomTable) {
  const AdderCell cell = make_random_cell(static_cast<std::uint64_t>(
      1000 + GetParam()));
  sealpaa::prob::Xoshiro256StarStar rng(static_cast<std::uint64_t>(
      2000 + GetParam()));
  const std::size_t width = 2 + static_cast<std::size_t>(GetParam()) % 6;
  const InputProfile profile = InputProfile::random(width, rng);
  const AdderChain chain = AdderChain::homogeneous(cell, width);
  const double analytical =
      RecursiveAnalyzer::analyze(chain, profile).p_success;
  const double oracle =
      WeightedExhaustive::analyze(chain, profile).p_stage_success;
  EXPECT_NEAR(analytical, oracle, 1e-12) << cell.to_string();
}

TEST_P(RandomCell, InclusionExclusionMatchesRecursionOnRandomTable) {
  const AdderCell cell = make_random_cell(static_cast<std::uint64_t>(
      3000 + GetParam()));
  const std::size_t width = 2 + static_cast<std::size_t>(GetParam()) % 5;
  const InputProfile profile = InputProfile::uniform(width, 0.35);
  const AdderChain chain = AdderChain::homogeneous(cell, width);
  EXPECT_NEAR(InclusionExclusionAnalyzer::analyze(chain, profile).p_error,
              RecursiveAnalyzer::analyze(chain, profile).p_error, 1e-10);
}

TEST_P(RandomCell, MomentsMatchGroundTruthOnRandomTable) {
  const AdderCell cell = make_random_cell(static_cast<std::uint64_t>(
      4000 + GetParam()));
  const std::size_t width = 2 + static_cast<std::size_t>(GetParam()) % 4;
  const InputProfile profile = InputProfile::uniform(width, 0.45);
  const AdderChain chain = AdderChain::homogeneous(cell, width);
  const auto moments = JointCarryAnalyzer::moments(chain, profile);
  const auto oracle = WeightedExhaustive::analyze(chain, profile);
  EXPECT_NEAR(moments.mean, oracle.mean_error, 1e-9);
  EXPECT_NEAR(moments.second_moment, oracle.mean_squared_error,
              1e-7 * (1.0 + oracle.mean_squared_error));
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomCell, ::testing::Range(0, 24));

// ---------------------------------------------------------------------
// Sweep 3: random hybrid chains.
// ---------------------------------------------------------------------
class RandomHybrid : public ::testing::TestWithParam<int> {};

TEST_P(RandomHybrid, AllEnginesAgree) {
  sealpaa::prob::Xoshiro256StarStar rng(static_cast<std::uint64_t>(
      5000 + GetParam()));
  const std::size_t width = 2 + static_cast<std::size_t>(GetParam()) % 6;
  std::vector<AdderCell> stages;
  for (std::size_t i = 0; i < width; ++i) {
    stages.push_back(lpaa(1 + static_cast<int>(rng.next() % 7)));
  }
  const AdderChain chain(stages);
  const InputProfile profile = InputProfile::random(width, rng);

  const double recursive =
      RecursiveAnalyzer::analyze(chain, profile).p_success;
  const double oracle =
      WeightedExhaustive::analyze(chain, profile).p_stage_success;
  const double ie =
      InclusionExclusionAnalyzer::analyze(chain, profile).p_success;
  const double joint =
      JointCarryAnalyzer::analyze(chain, profile).p_stage_success;
  EXPECT_NEAR(recursive, oracle, 1e-12);
  EXPECT_NEAR(ie, oracle, 1e-10);
  EXPECT_NEAR(joint, oracle, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomHybrid, ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Sweep 4: exhaustive-simulation agreement at p = 0.5 for every cell and
// several widths (the Table 6 "equally probable" scenario as a grid).
// ---------------------------------------------------------------------
class ExhaustiveAgreement
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(ExhaustiveAgreement, SimulationEqualsAnalysisExactly) {
  const auto [cell_index, width] = GetParam();
  const AdderChain chain = AdderChain::homogeneous(lpaa(cell_index), width);
  const auto sim = sealpaa::sim::ExhaustiveSimulator::run(chain);
  const double analytical = RecursiveAnalyzer::error_probability(
      lpaa(cell_index), InputProfile::uniform(width, 0.5));
  EXPECT_NEAR(sim.metrics.stage_failure_rate(), analytical, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveAgreement,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(std::size_t{3}, std::size_t{7})),
    [](const auto& param_info) {
      return "LPAA" + std::to_string(std::get<0>(param_info.param)) + "_w" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// Sweep 5: LOA (width x approximate-LSB count x probability) against a
// direct weighted enumeration.
// ---------------------------------------------------------------------
class LoaSweep : public ::testing::TestWithParam<
                     std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(LoaSweep, AnalysisMatchesEnumeration) {
  const auto [width, approx_lsbs, p] = GetParam();
  if (approx_lsbs > width) GTEST_SKIP();
  const sealpaa::multibit::LoaAdder adder(width, approx_lsbs);
  const InputProfile profile = InputProfile::uniform_with_cin(width, p, 0.0);
  double p_error = 0.0;
  const std::uint64_t limit = 1ULL << width;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      if (adder.evaluate(a, b).value(width) !=
          sealpaa::multibit::exact_add(a, b, false, width).value(width)) {
        p_error += profile.assignment_probability(a, b, false);
      }
    }
  }
  const auto analysis = sealpaa::multibit::analyze_loa(adder, profile);
  EXPECT_NEAR(analysis.p_error, p_error, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LoaSweep,
    ::testing::Combine(::testing::Values(std::size_t{4}, std::size_t{6},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{0}, std::size_t{2},
                                         std::size_t{4}, std::size_t{6},
                                         std::size_t{8}),
                       ::testing::Values(0.2, 0.5, 0.8)),
    [](const auto& param_info) {
      return "w" + std::to_string(std::get<0>(param_info.param)) + "_l" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 100));
    });

// ---------------------------------------------------------------------
// Sweep 6: correlated-operand recursion over a rho grid vs the joint
// enumeration oracle.
// ---------------------------------------------------------------------
class CorrelatedSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CorrelatedSweep, GeneralizedRecursionMatchesJointOracle) {
  const auto [cell_index, rho_percent] = GetParam();
  const double rho = rho_percent / 100.0;
  const InputProfile marginals = InputProfile::uniform(6, 0.5);
  const auto joint =
      sealpaa::multibit::JointInputProfile::correlated(marginals, rho);
  const AdderChain chain = AdderChain::homogeneous(lpaa(cell_index), 6);
  const double analytical =
      sealpaa::analysis::CorrelatedAnalyzer::analyze(chain, joint).p_success;
  const double oracle =
      WeightedExhaustive::analyze_joint(chain, joint).p_stage_success;
  EXPECT_NEAR(analytical, oracle, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CorrelatedSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(-100, -50, 0, 50, 100)),
    [](const auto& param_info) {
      const int rho = std::get<1>(param_info.param);
      return "LPAA" + std::to_string(std::get<0>(param_info.param)) +
             (rho < 0 ? "_rho_m" + std::to_string(-rho)
                      : "_rho_p" + std::to_string(rho));
    });

// ---------------------------------------------------------------------
// Sweep 7: GeAr speculative-window monotonicity.  Widening the carry
// window (larger K in ACA(N, K), larger X in ETAII(N, X)) can only see
// *more* of the true carry chain, so every error figure — MED, the
// worst-case error magnitude, and the analytic P(Error) — must be
// non-increasing along the sweep.  A violation prints both offending
// configs (GearConfig::describe()) with their metrics for repro.
// ---------------------------------------------------------------------

/// Serialized comparison context: "ACA(8,3) [GeAr(...)] MED=… vs …".
std::string gear_step_context(const std::string& label,
                              const sealpaa::gear::GearConfig& narrow,
                              const sealpaa::gear::GearConfig& wide,
                              double narrow_metric, double wide_metric) {
  std::ostringstream out;
  out << label << ": widening " << narrow.describe() << " (metric "
      << narrow_metric << ") to " << wide.describe() << " (metric "
      << wide_metric << ") increased the error";
  return out.str();
}

TEST(GearWindowMonotonicity, AcaMedAndWceNonIncreasingInWindowSize) {
  const int n = 8;
  std::optional<sealpaa::gear::GearConfig> previous;
  sealpaa::sim::ErrorMetrics previous_metrics;
  for (int k = 1; k <= n; ++k) {
    const auto config = sealpaa::gear::GearConfig::aca(n, k);
    const sealpaa::sim::ErrorMetrics metrics =
        sealpaa::gear::GearAnalyzer::exhaustive(config);
    if (previous) {
      EXPECT_LE(metrics.mean_abs_error(), previous_metrics.mean_abs_error())
          << gear_step_context("ACA MED", *previous, config,
                               previous_metrics.mean_abs_error(),
                               metrics.mean_abs_error());
      EXPECT_LE(sealpaa::sim::error_magnitude(metrics.worst_case_error()),
                sealpaa::sim::error_magnitude(
                    previous_metrics.worst_case_error()))
          << gear_step_context(
                 "ACA WCE", *previous, config,
                 static_cast<double>(previous_metrics.worst_case_error()),
                 static_cast<double>(metrics.worst_case_error()));
    }
    previous = config;
    previous_metrics = metrics;
  }
  // The full window K = N is the exact adder.
  EXPECT_EQ(previous_metrics.mean_abs_error(), 0.0);
  EXPECT_EQ(previous_metrics.worst_case_error(), 0);
}

TEST(GearWindowMonotonicity, EtaiiMedAndWceNonIncreasingInLookahead) {
  const int n = 12;
  std::optional<sealpaa::gear::GearConfig> previous;
  sealpaa::sim::ErrorMetrics previous_metrics;
  for (int x = 1; x <= n / 2; ++x) {
    if (n % x != 0) continue;  // ETAII(N, X) requires X | N
    const auto config = sealpaa::gear::GearConfig::etaii(n, x);
    const sealpaa::sim::ErrorMetrics metrics =
        sealpaa::gear::GearAnalyzer::exhaustive(config);
    if (previous) {
      EXPECT_LE(metrics.mean_abs_error(), previous_metrics.mean_abs_error())
          << gear_step_context("ETAII MED", *previous, config,
                               previous_metrics.mean_abs_error(),
                               metrics.mean_abs_error());
      EXPECT_LE(sealpaa::sim::error_magnitude(metrics.worst_case_error()),
                sealpaa::sim::error_magnitude(
                    previous_metrics.worst_case_error()))
          << gear_step_context(
                 "ETAII WCE", *previous, config,
                 static_cast<double>(previous_metrics.worst_case_error()),
                 static_cast<double>(metrics.worst_case_error()));
    }
    previous = config;
    previous_metrics = metrics;
  }
}

TEST(GearWindowMonotonicity, AnalyticErrorProbabilityNonIncreasingInWindow) {
  // The same property through the analytic DP (no enumeration), at a
  // width the exhaustive sweeps cannot reach.
  const int n = 32;
  const InputProfile profile =
      InputProfile::uniform(static_cast<std::size_t>(n), 0.5);
  std::optional<sealpaa::gear::GearConfig> previous;
  double previous_p_error = 1.0;
  for (int k = 1; k <= 16; ++k) {
    if ((n - k) % 1 != 0) continue;
    const auto config = sealpaa::gear::GearConfig::aca(n, k);
    const double p_error =
        sealpaa::gear::GearAnalyzer::analyze(config, profile).p_error_exact_dp;
    if (previous) {
      EXPECT_LE(p_error, previous_p_error + 1e-15)
          << gear_step_context("ACA P(Error)", *previous, config,
                               previous_p_error, p_error);
    }
    previous = config;
    previous_p_error = p_error;
  }
}

}  // namespace

// Tests for the batch analysis service: newline framing over
// arbitrarily fragmented byte streams, strict request validation, the
// batching dispatcher (id echo, response ordering, timeouts, stats),
// the keyed evaluator pool, and the TCP server end to end — including
// two concurrent pipelined clients and graceful drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/engine/evaluator_pool.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/obs/serialize.hpp"
#include "sealpaa/service/client.hpp"
#include "sealpaa/service/dispatcher.hpp"
#include "sealpaa/service/server.hpp"
#include "sealpaa/service/wire.hpp"

namespace {

using sealpaa::engine::EvaluatorPool;
using sealpaa::engine::EvaluatorPoolOptions;
using sealpaa::obs::Json;
using sealpaa::service::Client;
using sealpaa::service::Dispatcher;
using sealpaa::service::DispatcherOptions;
using sealpaa::service::FrameSplitter;
using sealpaa::service::OutgoingResponse;
using sealpaa::service::ParseOutcome;
using sealpaa::service::PendingRequest;
using sealpaa::service::Server;
using sealpaa::service::ServerOptions;
using sealpaa::service::WireLimits;
namespace error_code = sealpaa::service::error_code;

// ---------------------------------------------------------------------------
// FrameSplitter

[[nodiscard]] std::vector<FrameSplitter::Frame> drain(FrameSplitter& splitter) {
  std::vector<FrameSplitter::Frame> frames;
  while (auto frame = splitter.next()) frames.push_back(std::move(*frame));
  return frames;
}

TEST(FrameSplitter, SplitAcrossManyReads) {
  FrameSplitter splitter(1024);
  const std::string wire = "{\"id\":1}\n{\"id\":2}\n";
  for (const char c : wire) splitter.feed(std::string_view(&c, 1));
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].text, "{\"id\":1}");
  EXPECT_EQ(frames[1].text, "{\"id\":2}");
  EXPECT_FALSE(frames[0].oversized);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(FrameSplitter, MergedIntoOneRead) {
  FrameSplitter splitter(1024);
  splitter.feed("{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n{\"d\":");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[2].text, "{\"c\":3}");
  EXPECT_EQ(splitter.buffered(), 5u);  // the incomplete {"d": tail
}

TEST(FrameSplitter, CrlfAndEmptyLines) {
  FrameSplitter splitter(1024);
  splitter.feed("{\"a\":1}\r\n\n\r\n{\"b\":2}\n");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].text, "{\"a\":1}");
  EXPECT_EQ(frames[1].text, "{\"b\":2}");
}

TEST(FrameSplitter, OversizedFrameIsFlaggedAndStreamRecovers) {
  FrameSplitter splitter(8);
  splitter.feed("123456789abcdef\n{\"x\":1}\n");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_FALSE(frames[1].oversized);
  EXPECT_EQ(frames[1].text, "{\"x\":1}");
}

TEST(FrameSplitter, OversizedSplitAcrossReadsStillOneRejection) {
  FrameSplitter splitter(8);
  splitter.feed("aaaaaaaaaa");   // already over the limit
  splitter.feed("bbbbbbbbbb");   // same line continues
  splitter.feed("\n{\"y\":2}\n");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_EQ(frames[1].text, "{\"y\":2}");
}

TEST(FrameSplitter, PathologicalChunkingRecoversEveryFrame) {
  // Frames of wildly varying size — including empties, CRLFs and one
  // oversized line mid-stream — fed in chunks whose sizes cycle through
  // a pattern deliberately misaligned with the frame boundaries.
  std::string wire;
  std::vector<std::string> expected;
  for (int i = 0; i < 100; ++i) {
    std::string frame = "{\"id\":" + std::to_string(i) + ",\"pad\":\"" +
                        std::string(static_cast<std::size_t>(i % 13), 'x') +
                        "\"}";
    wire += frame;
    wire += i % 3 == 0 ? "\r\n" : "\n";
    if (i % 7 == 0) wire += "\n";    // empty line
    if (i % 11 == 0) wire += "\r\n";  // CR-only line
    expected.push_back(std::move(frame));
  }
  wire += std::string(600, 'z') + "\n";  // oversized, flagged not fatal

  FrameSplitter splitter(512);
  std::vector<FrameSplitter::Frame> frames;
  const std::size_t chunk_sizes[] = {1, 7, 2, 31, 3, 1, 64, 5};
  std::size_t offset = 0;
  std::size_t cycle = 0;
  while (offset < wire.size()) {
    const std::size_t n =
        std::min(chunk_sizes[cycle++ % 8], wire.size() - offset);
    splitter.feed(std::string_view(wire).substr(offset, n));
    offset += n;
    for (auto frame = splitter.next(); frame; frame = splitter.next()) {
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(frames.size(), expected.size() + 1);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(frames[i].text, expected[i]);
    EXPECT_FALSE(frames[i].oversized);
  }
  EXPECT_TRUE(frames.back().oversized);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(FrameSplitter, FinishFlushesTrailingLineWithoutNewline) {
  FrameSplitter splitter(1024);
  splitter.feed("{\"tail\":true}");
  EXPECT_TRUE(drain(splitter).empty());
  splitter.finish();
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].text, "{\"tail\":true}");
}

// ---------------------------------------------------------------------------
// parse_request

[[nodiscard]] ParseOutcome parse(const std::string& text) {
  return sealpaa::service::parse_request(FrameSplitter::Frame{text, false},
                                         WireLimits{});
}

TEST(ParseRequest, ValidEvaluateRequest) {
  const ParseOutcome outcome = parse(
      R"({"id":7,"method":"recursive","width":4,"chain":"LPAA3",)"
      R"("params":{"p":0.25,"timeout_ms":5000}})");
  ASSERT_TRUE(outcome.request.has_value()) << outcome.error->message;
  EXPECT_EQ(outcome.request->width, 4u);
  EXPECT_EQ(outcome.request->chain,
            (std::vector<std::string>{"LPAA3", "LPAA3", "LPAA3", "LPAA3"}));
  EXPECT_DOUBLE_EQ(outcome.request->p, 0.25);
  EXPECT_EQ(outcome.request->timeout_ms, 5000u);
  EXPECT_EQ(outcome.id.dump(0), "7");
}

TEST(ParseRequest, ChainArrayMustMatchWidth) {
  const ParseOutcome outcome = parse(
      R"({"method":"recursive","width":3,"chain":["LPAA1","LPAA2"]})");
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.error->code, error_code::kBadRequest);
}

TEST(ParseRequest, IdIsEchoedEvenWhenValidationFails) {
  const ParseOutcome outcome =
      parse(R"({"id":"req-9","method":"recursive","width":0,"chain":"LPAA1"})");
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.id.dump(0), "\"req-9\"");
}

TEST(ParseRequest, UnknownMethodAndUnknownKeyAreDistinctErrors) {
  EXPECT_EQ(parse(R"({"method":"nope","width":4,"chain":"LPAA1"})")
                .error->code,
            error_code::kUnknownMethod);
  EXPECT_EQ(parse(R"({"method":"recursive","width":4,"chain":"LPAA1",)"
                  R"("widht":4})")
                .error->code,
            error_code::kBadRequest);
}

TEST(ParseRequest, LimitsAreEnforced) {
  EXPECT_EQ(parse(R"({"method":"recursive","width":65,"chain":"LPAA1"})")
                .error->code,
            error_code::kWidthLimit);
  EXPECT_EQ(parse(R"({"method":"monte-carlo","width":4,"chain":"LPAA1",)"
                  R"("params":{"samples":999999999999}})")
                .error->code,
            error_code::kRequestLimit);
  EXPECT_EQ(parse(R"({"method":"recursive","width":4,"chain":"LPAA1",)"
                  R"("params":{"p":1.5}})")
                .error->code,
            error_code::kBadRequest);
}

TEST(ParseRequest, MalformedJsonAndOversizedFrames) {
  EXPECT_EQ(parse("not json at all").error->code, error_code::kInvalidJson);
  const ParseOutcome oversized = sealpaa::service::parse_request(
      FrameSplitter::Frame{std::string(), true}, WireLimits{});
  EXPECT_EQ(oversized.error->code, error_code::kFrameTooLarge);
}

TEST(ParseRequest, StatsAndPingTakeNoOtherFields) {
  EXPECT_TRUE(parse(R"({"method":"stats"})").request.has_value());
  EXPECT_TRUE(parse(R"({"id":3,"method":"ping"})").request.has_value());
  EXPECT_EQ(parse(R"({"method":"stats","width":4})").error->code,
            error_code::kBadRequest);
}

// ---------------------------------------------------------------------------
// EvaluatorPool

[[nodiscard]] std::vector<sealpaa::adders::AdderCell> palette() {
  const auto cells = sealpaa::adders::all_builtin_cells();
  return {cells.begin(), cells.end()};
}

TEST(EvaluatorPool, ReusesEvaluatorsPerProfile) {
  EvaluatorPool pool(palette());
  const auto p8 = sealpaa::multibit::InputProfile::uniform(8, 0.5);
  const auto p16 = sealpaa::multibit::InputProfile::uniform(16, 0.5);
  const auto first = pool.acquire(p8);
  EXPECT_EQ(pool.acquire(p8), first);
  EXPECT_NE(pool.acquire(p16), first);
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.pool_hits(), 1u);
}

TEST(EvaluatorPool, EvictsLeastRecentlyUsedAndKeepsSharedHandlesAlive) {
  EvaluatorPoolOptions options;
  options.max_evaluators = 2;
  EvaluatorPool pool(palette(), options);
  const auto a = pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.1));
  (void)pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.2));
  (void)pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.3));  // a out
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.evicted(), 1u);
  // The evicted evaluator is still usable through the shared handle.
  const auto result = a->evaluate(std::vector<std::size_t>{0, 0, 0, 0});
  EXPECT_GE(result.p_error, 0.0);
}

TEST(EvaluatorPool, AggregateStatsFoldInEvictedEvaluators) {
  EvaluatorPoolOptions options;
  options.max_evaluators = 1;
  EvaluatorPool pool(palette(), options);
  const auto a = pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.1));
  (void)a->evaluate(std::vector<std::size_t>{0, 0, 0, 0});
  (void)pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.2));
  EXPECT_EQ(pool.aggregate_stats().chains_evaluated, 1u);
}

// ---------------------------------------------------------------------------
// Dispatcher

[[nodiscard]] PendingRequest pending(std::uint64_t connection,
                                     std::uint64_t sequence,
                                     std::string text) {
  return PendingRequest{connection, sequence,
                        FrameSplitter::Frame{std::move(text), false},
                        std::chrono::steady_clock::now()};
}

TEST(Dispatcher, EchoesIdsAndOrdersResponsesPerConnection) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(2, 1, R"({"id":"b","method":"ping"})"));
  batch.push_back(pending(1, 0, R"({"id":"a","method":"ping"})"));
  batch.push_back(pending(2, 0, R"({"id":"c","method":"ping"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].connection, 1u);
  EXPECT_EQ(responses[1].connection, 2u);
  EXPECT_EQ(responses[1].sequence, 0u);
  EXPECT_EQ(responses[2].sequence, 1u);
  EXPECT_NE(responses[1].frame.find("\"id\":\"c\""), std::string::npos);
}

TEST(Dispatcher, RecursiveResponseMatchesEngineEvaluate) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(
      1, 0, R"({"id":1,"method":"recursive","width":8,"chain":"LPAA6"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 1u);

  const auto* cell = sealpaa::adders::find_builtin("LPAA6");
  ASSERT_NE(cell, nullptr);
  const sealpaa::multibit::AdderChain chain(
      std::vector<sealpaa::adders::AdderCell>(8, *cell));
  const auto profile = sealpaa::multibit::InputProfile::uniform(8, 0.5);
  const auto expected = sealpaa::engine::evaluate(
      chain, profile, sealpaa::engine::Method::kRecursive);

  // The evaluation projection must be byte-for-byte what the CLI writes.
  const std::string expected_fragment =
      "\"evaluation\":" + sealpaa::obs::to_json(expected).dump(0);
  EXPECT_NE(responses[0].frame.find(expected_fragment), std::string::npos)
      << responses[0].frame;
}

TEST(Dispatcher, GroupedRecursiveRequestsShareThePrefixCache) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  // Beam-search-style mix: shared prefix, varying last stage.
  const std::string prefix =
      R"(["LPAA3","LPAA3","LPAA3","LPAA3","LPAA3","LPAA3","LPAA3",)";
  for (int i = 0; i < 4; ++i) {
    const std::string cell = i % 2 == 0 ? "\"LPAA1\"" : "\"LPAA2\"";
    batch.push_back(pending(
        1, static_cast<std::uint64_t>(i),
        R"({"id":)" + std::to_string(i) +
            R"(,"method":"recursive","width":8,"chain":)" + prefix + cell +
            "]}"));
  }
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 4u);
  for (const auto& response : responses) {
    EXPECT_NE(response.frame.find("\"ok\":true"), std::string::npos)
        << response.frame;
  }
  // 4 chains x 8 stages = 32 lookups; the shared 7-stage prefix plus the
  // repeated last cells make most of them cache hits.
  const std::string stats = dispatcher.stats_json().dump(0);
  EXPECT_NE(stats.find("\"chains_evaluated\":4"), std::string::npos) << stats;
  EXPECT_EQ(dispatcher.requests_served(), 4u);
}

TEST(Dispatcher, ZeroTimeoutExpiresBeforeEvaluation) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(1, 0,
                          R"({"id":1,"method":"recursive","width":8,)"
                          R"("chain":"LPAA6","params":{"timeout_ms":0}})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].frame.find("\"code\":\"timeout\""), std::string::npos)
      << responses[0].frame;
}

TEST(Dispatcher, UnknownCellIsAStructuredError) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(
      pending(1, 0, R"({"id":1,"method":"recursive","width":4,"chain":"NO"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].frame.find("\"code\":\"unknown-cell\""),
            std::string::npos);
}

TEST(Dispatcher, StatsRequestSeesItsOwnBatch) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(
      1, 0, R"({"id":1,"method":"recursive","width":4,"chain":"LPAA1"})"));
  batch.push_back(pending(1, 1, R"({"id":2,"method":"stats"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 2u);
  const Json stats = Json::parse(responses[1].frame);
  EXPECT_EQ(stats.find("stats")
                ->find("requests")
                ->find("received")
                ->unsigned_integer(),
            2u);
  EXPECT_EQ(stats.find("stats")
                ->find("methods")
                ->find("recursive")
                ->find("count")
                ->unsigned_integer(),
            1u);
}

TEST(Dispatcher, DeterministicAcrossThreadCounts) {
  const auto run = [](unsigned threads) {
    Dispatcher dispatcher;
    std::vector<PendingRequest> batch;
    const char* cells[] = {"LPAA1", "LPAA2", "LPAA3", "LPAA4"};
    for (std::uint64_t i = 0; i < 8; ++i) {
      batch.push_back(pending(
          1, i,
          R"({"id":)" + std::to_string(i) + R"(,"method":"recursive",)" +
              R"("width":6,"chain":")" + cells[i % 4] + "\"}"));
    }
    std::vector<std::string> frames;
    for (auto& response : dispatcher.run_batch(std::move(batch), threads)) {
      frames.push_back(std::move(response.frame));
    }
    return frames;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Dispatcher, ShardOfSpreadsProfilesAndIsStable) {
  EXPECT_EQ(Dispatcher::shard_of(16, 0.5, 1), 0u);
  EXPECT_EQ(Dispatcher::shard_of(16, 0.5, 4), Dispatcher::shard_of(16, 0.5, 4));
  // The smoke suite's out-of-order phase relies on these two profiles
  // living on different workers at --dispatch-threads=4.
  EXPECT_NE(Dispatcher::shard_of(16, 0.5, 4), Dispatcher::shard_of(24, 0.5, 4));
  std::set<unsigned> seen;
  for (std::size_t width = 4; width <= 64; width += 4) {
    seen.insert(Dispatcher::shard_of(width, 0.5, 4));
  }
  EXPECT_GE(seen.size(), 3u) << "profiles collapsed onto too few shards";
}

/// Runs `frames` through a started dispatcher with `workers` dispatch
/// workers and returns the response frames in submission order.
[[nodiscard]] std::vector<std::string> run_live(
    unsigned workers, const std::vector<std::string>& frames) {
  DispatcherOptions options;
  options.dispatch_threads = workers;
  Dispatcher dispatcher(options);
  std::mutex mutex;
  std::map<std::uint64_t, std::string> by_sequence;
  dispatcher.start([&mutex, &by_sequence](OutgoingResponse response) {
    const std::lock_guard<std::mutex> lock(mutex);
    by_sequence[response.sequence] = std::move(response.frame);
  });
  for (std::size_t i = 0; i < frames.size(); ++i) {
    dispatcher.submit(pending(1, i, frames[i]));
  }
  dispatcher.drain();
  dispatcher.stop();
  std::vector<std::string> out;
  out.reserve(by_sequence.size());
  for (auto& [sequence, frame] : by_sequence) {
    out.push_back(std::move(frame));
  }
  return out;
}

TEST(Dispatcher, WorkerCountDoesNotChangeResponseBytes) {
  // Every method class across several profiles: however requests shard,
  // batch and interleave, each response must be byte-identical.
  std::vector<std::string> frames;
  const char* cells[] = {"LPAA1", "LPAA2", "LPAA3", "LPAA6"};
  for (int i = 0; i < 12; ++i) {
    const std::string width = std::to_string(6 + 2 * (i % 3));
    const std::string cell = cells[i % 4];
    frames.push_back(R"({"id":)" + std::to_string(frames.size()) +
                     R"(,"method":"recursive","width":)" + width +
                     R"(,"chain":")" + cell + "\"}");
    frames.push_back(R"({"id":)" + std::to_string(frames.size()) +
                     R"(,"method":"analytic-pmf","width":)" + width +
                     R"(,"chain":")" + cell + "\"}");
  }
  frames.push_back(R"({"id":100,"method":"monte-carlo","width":8,)"
                   R"("chain":"LPAA3","params":{"samples":65536}})");
  frames.push_back(R"({"id":101,"method":"block-analytic","width":16,)"
                   R"("blocks":"aca:4","params":{"p":0.42}})");
  frames.push_back(R"({"id":102,"method":"nope"})");  // structured error
  const std::vector<std::string> one = run_live(1, frames);
  EXPECT_EQ(one, run_live(8, frames));
  ASSERT_EQ(one.size(), frames.size());
}

TEST(Dispatcher, IdleShardCutsThroughTheWindow) {
  DispatcherOptions options;
  options.dispatch_threads = 1;
  options.batch_window = std::chrono::microseconds(2'000'000);
  Dispatcher dispatcher(options);
  std::mutex mutex;
  std::vector<std::string> responses;
  dispatcher.start([&mutex, &responses](OutgoingResponse response) {
    const std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(std::move(response.frame));
  });
  const auto begin = std::chrono::steady_clock::now();
  dispatcher.submit(pending(
      1, 0, R"({"id":1,"method":"recursive","width":8,"chain":"LPAA3"})"));
  dispatcher.drain();
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  // An idle shard must answer immediately, not after the 2 s window.
  EXPECT_LT(elapsed, std::chrono::seconds(1));
  dispatcher.stop();
  ASSERT_EQ(responses.size(), 1u);
  const Json stats = dispatcher.stats_json();
  EXPECT_EQ(stats.find("dispatch")
                ->find("cut_through_batches")
                ->unsigned_integer(),
            1u);
  EXPECT_EQ(
      stats.find("dispatch")->find("coalesced_batches")->unsigned_integer(),
      0u);
}

TEST(Dispatcher, BackloggedShardHoldsTheWindowOpen) {
  DispatcherOptions options;
  options.dispatch_threads = 1;
  options.batch_max = 8;
  options.batch_window = std::chrono::microseconds(1000);
  Dispatcher dispatcher(options);
  // Queue the whole burst before the workers spawn: the first take hits
  // batch_max and leaves a backlog, so the remainder batch must hold
  // the adaptive window open — deterministically, with no race against
  // a worker fast enough to keep the queue drained.
  for (std::uint64_t i = 0; i < 12; ++i) {
    dispatcher.submit(pending(
        1, i,
        R"({"id":)" + std::to_string(i) +
            R"(,"method":"recursive","width":8,"chain":"LPAA3"})"));
  }
  std::mutex mutex;
  std::size_t answered = 0;
  dispatcher.start([&mutex, &answered](OutgoingResponse) {
    const std::lock_guard<std::mutex> lock(mutex);
    ++answered;
  });
  dispatcher.drain();
  dispatcher.stop();
  EXPECT_EQ(answered, 12u);
  const Json stats = dispatcher.stats_json();
  const std::uint64_t batches =
      stats.find("batches")->find("count")->unsigned_integer();
  const std::uint64_t coalesced =
      stats.find("dispatch")->find("coalesced_batches")->unsigned_integer();
  EXPECT_GE(batches, 2u);
  EXPECT_EQ(stats.find("batches")->find("size")->find("max")
                ->unsigned_integer(),
            8u);
  EXPECT_GE(coalesced, 1u);
}

// ---------------------------------------------------------------------------
// Server end to end

[[nodiscard]] ServerOptions fast_server_options() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.dispatcher.dispatch_threads = 2;
  options.dispatcher.batch_window = std::chrono::microseconds(200);
  return options;
}

TEST(Server, PipelinedRequestsComeBackInOrder) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  ASSERT_GT(port, 0);
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  Client client;
  client.connect("127.0.0.1", port);
  constexpr std::uint64_t kRequests = 50;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.send_frame(R"({"id":)" + std::to_string(i) +
                      R"(,"method":"recursive","width":8,"chain":"LPAA3"})");
  }
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value()) << "EOF after " << i << " responses";
    const Json response = Json::parse(*frame);
    EXPECT_EQ(response.find("id")->unsigned_integer(), i);
    EXPECT_TRUE(response.find("ok")->boolean());
  }
  client.close();

  server.request_stop();
  io.join();
  EXPECT_EQ(server.dispatcher().requests_served(), kRequests);
}

TEST(Server, MalformedFramesDoNotKillTheConnection) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  Client client;
  client.connect("127.0.0.1", port);
  client.send_bytes("this is not json\n");
  client.send_bytes(std::string(70 * 1024, 'x') + "\n");  // oversized
  client.send_frame(R"({"id":"ok","method":"ping"})");

  const auto bad = client.read_frame();
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("invalid-json"), std::string::npos);
  const auto oversized = client.read_frame();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_NE(oversized->find("frame-too-large"), std::string::npos);
  const auto good = client.read_frame();
  ASSERT_TRUE(good.has_value());
  EXPECT_NE(good->find("\"pong\":true"), std::string::npos);

  client.close();
  server.request_stop();
  io.join();
}

TEST(Server, TwoConcurrentClientsGetTheirOwnAnswers) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  const auto worker = [port](const std::string& tag, const char* cell) {
    Client client;
    client.connect("127.0.0.1", port);
    for (int i = 0; i < 20; ++i) {
      client.send_frame(R"({"id":")" + tag + std::to_string(i) +
                        R"(","method":"recursive","width":8,"chain":")" +
                        cell + "\"}");
    }
    for (int i = 0; i < 20; ++i) {
      const auto frame = client.read_frame();
      ASSERT_TRUE(frame.has_value());
      const Json response = Json::parse(*frame);
      // Interleaved batches must never leak another client's responses.
      EXPECT_EQ(response.find("id")->string_value(), tag + std::to_string(i));
      EXPECT_TRUE(response.find("ok")->boolean());
    }
  };
  std::thread a(worker, "a", "LPAA1");
  std::thread b(worker, "b", "LPAA6");
  a.join();
  b.join();

  server.request_stop();
  io.join();
  EXPECT_EQ(server.dispatcher().requests_served(), 40u);
}

TEST(Server, ResponsesMultiplexOutOfOrderAcrossShards) {
  ServerOptions options;
  options.port = 0;
  options.dispatcher.dispatch_threads = 4;
  Server server(options);
  const std::uint16_t port = server.start();
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  // Width 16 and width 24 live on different workers at 4 shards
  // (pinned by Dispatcher.ShardOfSpreadsProfilesAndIsStable), so the
  // fast recursive answer overtakes the slow Monte Carlo one on the
  // same connection and the client must match responses by id.
  Client client;
  client.connect("127.0.0.1", port);
  client.send_frame(
      R"({"id":"slow","method":"monte-carlo","width":16,"chain":"LPAA3",)"
      R"("params":{"samples":1048576}})");
  client.send_frame(
      R"({"id":"fast","method":"recursive","width":24,"chain":"LPAA6"})");
  const auto first = client.read_frame();
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("\"id\":\"fast\""), std::string::npos) << *first;
  const auto second = client.read_frame();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("\"id\":\"slow\""), std::string::npos) << *second;
  client.close();

  server.request_stop();
  io.join();
  EXPECT_EQ(server.dispatcher().requests_served(), 2u);
}

TEST(Server, EofDrainsLikeShutdownWrite) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  Client client;
  client.connect("127.0.0.1", port);
  client.send_frame(R"({"id":1,"method":"ping"})");
  client.send_bytes(R"({"id":2,"method":"ping"})");  // no trailing newline
  client.shutdown_write();  // EOF flushes the partial frame
  EXPECT_TRUE(client.read_frame().has_value());
  const auto second = client.read_frame();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("\"id\":2"), std::string::npos);
  EXPECT_FALSE(client.read_frame().has_value());  // server closes after drain
  client.close();

  server.request_stop();
  io.join();
}

}  // namespace

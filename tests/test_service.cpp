// Tests for the batch analysis service: newline framing over
// arbitrarily fragmented byte streams, strict request validation, the
// batching dispatcher (id echo, response ordering, timeouts, stats),
// the keyed evaluator pool, and the TCP server end to end — including
// two concurrent pipelined clients and graceful drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/engine/evaluator_pool.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/obs/serialize.hpp"
#include "sealpaa/service/client.hpp"
#include "sealpaa/service/dispatcher.hpp"
#include "sealpaa/service/server.hpp"
#include "sealpaa/service/wire.hpp"

namespace {

using sealpaa::engine::EvaluatorPool;
using sealpaa::engine::EvaluatorPoolOptions;
using sealpaa::obs::Json;
using sealpaa::service::Client;
using sealpaa::service::Dispatcher;
using sealpaa::service::DispatcherOptions;
using sealpaa::service::FrameSplitter;
using sealpaa::service::OutgoingResponse;
using sealpaa::service::ParseOutcome;
using sealpaa::service::PendingRequest;
using sealpaa::service::Server;
using sealpaa::service::ServerOptions;
using sealpaa::service::WireLimits;
namespace error_code = sealpaa::service::error_code;

// ---------------------------------------------------------------------------
// FrameSplitter

[[nodiscard]] std::vector<FrameSplitter::Frame> drain(FrameSplitter& splitter) {
  std::vector<FrameSplitter::Frame> frames;
  while (auto frame = splitter.next()) frames.push_back(std::move(*frame));
  return frames;
}

TEST(FrameSplitter, SplitAcrossManyReads) {
  FrameSplitter splitter(1024);
  const std::string wire = "{\"id\":1}\n{\"id\":2}\n";
  for (const char c : wire) splitter.feed(std::string_view(&c, 1));
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].text, "{\"id\":1}");
  EXPECT_EQ(frames[1].text, "{\"id\":2}");
  EXPECT_FALSE(frames[0].oversized);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(FrameSplitter, MergedIntoOneRead) {
  FrameSplitter splitter(1024);
  splitter.feed("{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n{\"d\":");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[2].text, "{\"c\":3}");
  EXPECT_EQ(splitter.buffered(), 5u);  // the incomplete {"d": tail
}

TEST(FrameSplitter, CrlfAndEmptyLines) {
  FrameSplitter splitter(1024);
  splitter.feed("{\"a\":1}\r\n\n\r\n{\"b\":2}\n");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].text, "{\"a\":1}");
  EXPECT_EQ(frames[1].text, "{\"b\":2}");
}

TEST(FrameSplitter, OversizedFrameIsFlaggedAndStreamRecovers) {
  FrameSplitter splitter(8);
  splitter.feed("123456789abcdef\n{\"x\":1}\n");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_FALSE(frames[1].oversized);
  EXPECT_EQ(frames[1].text, "{\"x\":1}");
}

TEST(FrameSplitter, OversizedSplitAcrossReadsStillOneRejection) {
  FrameSplitter splitter(8);
  splitter.feed("aaaaaaaaaa");   // already over the limit
  splitter.feed("bbbbbbbbbb");   // same line continues
  splitter.feed("\n{\"y\":2}\n");
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_EQ(frames[1].text, "{\"y\":2}");
}

TEST(FrameSplitter, FinishFlushesTrailingLineWithoutNewline) {
  FrameSplitter splitter(1024);
  splitter.feed("{\"tail\":true}");
  EXPECT_TRUE(drain(splitter).empty());
  splitter.finish();
  const auto frames = drain(splitter);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].text, "{\"tail\":true}");
}

// ---------------------------------------------------------------------------
// parse_request

[[nodiscard]] ParseOutcome parse(const std::string& text) {
  return sealpaa::service::parse_request(FrameSplitter::Frame{text, false},
                                         WireLimits{});
}

TEST(ParseRequest, ValidEvaluateRequest) {
  const ParseOutcome outcome = parse(
      R"({"id":7,"method":"recursive","width":4,"chain":"LPAA3",)"
      R"("params":{"p":0.25,"timeout_ms":5000}})");
  ASSERT_TRUE(outcome.request.has_value()) << outcome.error->message;
  EXPECT_EQ(outcome.request->width, 4u);
  EXPECT_EQ(outcome.request->chain,
            (std::vector<std::string>{"LPAA3", "LPAA3", "LPAA3", "LPAA3"}));
  EXPECT_DOUBLE_EQ(outcome.request->p, 0.25);
  EXPECT_EQ(outcome.request->timeout_ms, 5000u);
  EXPECT_EQ(outcome.id.dump(0), "7");
}

TEST(ParseRequest, ChainArrayMustMatchWidth) {
  const ParseOutcome outcome = parse(
      R"({"method":"recursive","width":3,"chain":["LPAA1","LPAA2"]})");
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.error->code, error_code::kBadRequest);
}

TEST(ParseRequest, IdIsEchoedEvenWhenValidationFails) {
  const ParseOutcome outcome =
      parse(R"({"id":"req-9","method":"recursive","width":0,"chain":"LPAA1"})");
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.id.dump(0), "\"req-9\"");
}

TEST(ParseRequest, UnknownMethodAndUnknownKeyAreDistinctErrors) {
  EXPECT_EQ(parse(R"({"method":"nope","width":4,"chain":"LPAA1"})")
                .error->code,
            error_code::kUnknownMethod);
  EXPECT_EQ(parse(R"({"method":"recursive","width":4,"chain":"LPAA1",)"
                  R"("widht":4})")
                .error->code,
            error_code::kBadRequest);
}

TEST(ParseRequest, LimitsAreEnforced) {
  EXPECT_EQ(parse(R"({"method":"recursive","width":65,"chain":"LPAA1"})")
                .error->code,
            error_code::kWidthLimit);
  EXPECT_EQ(parse(R"({"method":"monte-carlo","width":4,"chain":"LPAA1",)"
                  R"("params":{"samples":999999999999}})")
                .error->code,
            error_code::kRequestLimit);
  EXPECT_EQ(parse(R"({"method":"recursive","width":4,"chain":"LPAA1",)"
                  R"("params":{"p":1.5}})")
                .error->code,
            error_code::kBadRequest);
}

TEST(ParseRequest, MalformedJsonAndOversizedFrames) {
  EXPECT_EQ(parse("not json at all").error->code, error_code::kInvalidJson);
  const ParseOutcome oversized = sealpaa::service::parse_request(
      FrameSplitter::Frame{std::string(), true}, WireLimits{});
  EXPECT_EQ(oversized.error->code, error_code::kFrameTooLarge);
}

TEST(ParseRequest, StatsAndPingTakeNoOtherFields) {
  EXPECT_TRUE(parse(R"({"method":"stats"})").request.has_value());
  EXPECT_TRUE(parse(R"({"id":3,"method":"ping"})").request.has_value());
  EXPECT_EQ(parse(R"({"method":"stats","width":4})").error->code,
            error_code::kBadRequest);
}

// ---------------------------------------------------------------------------
// EvaluatorPool

[[nodiscard]] std::vector<sealpaa::adders::AdderCell> palette() {
  const auto cells = sealpaa::adders::all_builtin_cells();
  return {cells.begin(), cells.end()};
}

TEST(EvaluatorPool, ReusesEvaluatorsPerProfile) {
  EvaluatorPool pool(palette());
  const auto p8 = sealpaa::multibit::InputProfile::uniform(8, 0.5);
  const auto p16 = sealpaa::multibit::InputProfile::uniform(16, 0.5);
  const auto first = pool.acquire(p8);
  EXPECT_EQ(pool.acquire(p8), first);
  EXPECT_NE(pool.acquire(p16), first);
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.pool_hits(), 1u);
}

TEST(EvaluatorPool, EvictsLeastRecentlyUsedAndKeepsSharedHandlesAlive) {
  EvaluatorPoolOptions options;
  options.max_evaluators = 2;
  EvaluatorPool pool(palette(), options);
  const auto a = pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.1));
  (void)pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.2));
  (void)pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.3));  // a out
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.evicted(), 1u);
  // The evicted evaluator is still usable through the shared handle.
  const auto result = a->evaluate(std::vector<std::size_t>{0, 0, 0, 0});
  EXPECT_GE(result.p_error, 0.0);
}

TEST(EvaluatorPool, AggregateStatsFoldInEvictedEvaluators) {
  EvaluatorPoolOptions options;
  options.max_evaluators = 1;
  EvaluatorPool pool(palette(), options);
  const auto a = pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.1));
  (void)a->evaluate(std::vector<std::size_t>{0, 0, 0, 0});
  (void)pool.acquire(sealpaa::multibit::InputProfile::uniform(4, 0.2));
  EXPECT_EQ(pool.aggregate_stats().chains_evaluated, 1u);
}

// ---------------------------------------------------------------------------
// Dispatcher

[[nodiscard]] PendingRequest pending(std::uint64_t connection,
                                     std::uint64_t sequence,
                                     std::string text) {
  return PendingRequest{connection, sequence,
                        FrameSplitter::Frame{std::move(text), false},
                        std::chrono::steady_clock::now()};
}

TEST(Dispatcher, EchoesIdsAndOrdersResponsesPerConnection) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(2, 1, R"({"id":"b","method":"ping"})"));
  batch.push_back(pending(1, 0, R"({"id":"a","method":"ping"})"));
  batch.push_back(pending(2, 0, R"({"id":"c","method":"ping"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].connection, 1u);
  EXPECT_EQ(responses[1].connection, 2u);
  EXPECT_EQ(responses[1].sequence, 0u);
  EXPECT_EQ(responses[2].sequence, 1u);
  EXPECT_NE(responses[1].frame.find("\"id\":\"c\""), std::string::npos);
}

TEST(Dispatcher, RecursiveResponseMatchesEngineEvaluate) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(
      1, 0, R"({"id":1,"method":"recursive","width":8,"chain":"LPAA6"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 1u);

  const auto* cell = sealpaa::adders::find_builtin("LPAA6");
  ASSERT_NE(cell, nullptr);
  const sealpaa::multibit::AdderChain chain(
      std::vector<sealpaa::adders::AdderCell>(8, *cell));
  const auto profile = sealpaa::multibit::InputProfile::uniform(8, 0.5);
  const auto expected = sealpaa::engine::evaluate(
      chain, profile, sealpaa::engine::Method::kRecursive);

  // The evaluation projection must be byte-for-byte what the CLI writes.
  const std::string expected_fragment =
      "\"evaluation\":" + sealpaa::obs::to_json(expected).dump(0);
  EXPECT_NE(responses[0].frame.find(expected_fragment), std::string::npos)
      << responses[0].frame;
}

TEST(Dispatcher, GroupedRecursiveRequestsShareThePrefixCache) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  // Beam-search-style mix: shared prefix, varying last stage.
  const std::string prefix =
      R"(["LPAA3","LPAA3","LPAA3","LPAA3","LPAA3","LPAA3","LPAA3",)";
  for (int i = 0; i < 4; ++i) {
    const std::string cell = i % 2 == 0 ? "\"LPAA1\"" : "\"LPAA2\"";
    batch.push_back(pending(
        1, static_cast<std::uint64_t>(i),
        R"({"id":)" + std::to_string(i) +
            R"(,"method":"recursive","width":8,"chain":)" + prefix + cell +
            "]}"));
  }
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 4u);
  for (const auto& response : responses) {
    EXPECT_NE(response.frame.find("\"ok\":true"), std::string::npos)
        << response.frame;
  }
  // 4 chains x 8 stages = 32 lookups; the shared 7-stage prefix plus the
  // repeated last cells make most of them cache hits.
  const std::string stats = dispatcher.stats_json().dump(0);
  EXPECT_NE(stats.find("\"chains_evaluated\":4"), std::string::npos) << stats;
  EXPECT_EQ(dispatcher.requests_served(), 4u);
}

TEST(Dispatcher, ZeroTimeoutExpiresBeforeEvaluation) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(1, 0,
                          R"({"id":1,"method":"recursive","width":8,)"
                          R"("chain":"LPAA6","params":{"timeout_ms":0}})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].frame.find("\"code\":\"timeout\""), std::string::npos)
      << responses[0].frame;
}

TEST(Dispatcher, UnknownCellIsAStructuredError) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(
      pending(1, 0, R"({"id":1,"method":"recursive","width":4,"chain":"NO"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].frame.find("\"code\":\"unknown-cell\""),
            std::string::npos);
}

TEST(Dispatcher, StatsRequestSeesItsOwnBatch) {
  Dispatcher dispatcher;
  std::vector<PendingRequest> batch;
  batch.push_back(pending(
      1, 0, R"({"id":1,"method":"recursive","width":4,"chain":"LPAA1"})"));
  batch.push_back(pending(1, 1, R"({"id":2,"method":"stats"})"));
  const auto responses = dispatcher.run_batch(std::move(batch), 2);
  ASSERT_EQ(responses.size(), 2u);
  const Json stats = Json::parse(responses[1].frame);
  EXPECT_EQ(stats.find("stats")
                ->find("requests")
                ->find("received")
                ->unsigned_integer(),
            2u);
  EXPECT_EQ(stats.find("stats")
                ->find("methods")
                ->find("recursive")
                ->find("count")
                ->unsigned_integer(),
            1u);
}

TEST(Dispatcher, DeterministicAcrossThreadCounts) {
  const auto run = [](unsigned threads) {
    Dispatcher dispatcher;
    std::vector<PendingRequest> batch;
    const char* cells[] = {"LPAA1", "LPAA2", "LPAA3", "LPAA4"};
    for (std::uint64_t i = 0; i < 8; ++i) {
      batch.push_back(pending(
          1, i,
          R"({"id":)" + std::to_string(i) + R"(,"method":"recursive",)" +
              R"("width":6,"chain":")" + cells[i % 4] + "\"}"));
    }
    std::vector<std::string> frames;
    for (auto& response : dispatcher.run_batch(std::move(batch), threads)) {
      frames.push_back(std::move(response.frame));
    }
    return frames;
  };
  EXPECT_EQ(run(1), run(4));
}

// ---------------------------------------------------------------------------
// Server end to end

[[nodiscard]] ServerOptions fast_server_options() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.threads = 2;
  options.batch_window = std::chrono::microseconds(200);
  return options;
}

TEST(Server, PipelinedRequestsComeBackInOrder) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  ASSERT_GT(port, 0);
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  Client client;
  client.connect("127.0.0.1", port);
  constexpr std::uint64_t kRequests = 50;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.send_frame(R"({"id":)" + std::to_string(i) +
                      R"(,"method":"recursive","width":8,"chain":"LPAA3"})");
  }
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value()) << "EOF after " << i << " responses";
    const Json response = Json::parse(*frame);
    EXPECT_EQ(response.find("id")->unsigned_integer(), i);
    EXPECT_TRUE(response.find("ok")->boolean());
  }
  client.close();

  server.request_stop();
  io.join();
  EXPECT_EQ(server.dispatcher().requests_served(), kRequests);
}

TEST(Server, MalformedFramesDoNotKillTheConnection) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  Client client;
  client.connect("127.0.0.1", port);
  client.send_bytes("this is not json\n");
  client.send_bytes(std::string(70 * 1024, 'x') + "\n");  // oversized
  client.send_frame(R"({"id":"ok","method":"ping"})");

  const auto bad = client.read_frame();
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("invalid-json"), std::string::npos);
  const auto oversized = client.read_frame();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_NE(oversized->find("frame-too-large"), std::string::npos);
  const auto good = client.read_frame();
  ASSERT_TRUE(good.has_value());
  EXPECT_NE(good->find("\"pong\":true"), std::string::npos);

  client.close();
  server.request_stop();
  io.join();
}

TEST(Server, TwoConcurrentClientsGetTheirOwnAnswers) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  const auto worker = [port](const std::string& tag, const char* cell) {
    Client client;
    client.connect("127.0.0.1", port);
    for (int i = 0; i < 20; ++i) {
      client.send_frame(R"({"id":")" + tag + std::to_string(i) +
                        R"(","method":"recursive","width":8,"chain":")" +
                        cell + "\"}");
    }
    for (int i = 0; i < 20; ++i) {
      const auto frame = client.read_frame();
      ASSERT_TRUE(frame.has_value());
      const Json response = Json::parse(*frame);
      // Interleaved batches must never leak another client's responses.
      EXPECT_EQ(response.find("id")->string_value(), tag + std::to_string(i));
      EXPECT_TRUE(response.find("ok")->boolean());
    }
  };
  std::thread a(worker, "a", "LPAA1");
  std::thread b(worker, "b", "LPAA6");
  a.join();
  b.join();

  server.request_stop();
  io.join();
  EXPECT_EQ(server.dispatcher().requests_served(), 40u);
}

TEST(Server, EofDrainsLikeShutdownWrite) {
  Server server(fast_server_options());
  const std::uint16_t port = server.start();
  std::thread io([&server] { EXPECT_EQ(server.serve(), 0); });

  Client client;
  client.connect("127.0.0.1", port);
  client.send_frame(R"({"id":1,"method":"ping"})");
  client.send_bytes(R"({"id":2,"method":"ping"})");  // no trailing newline
  client.shutdown_write();  // EOF flushes the partial frame
  EXPECT_TRUE(client.read_frame().has_value());
  const auto second = client.read_frame();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("\"id\":2"), std::string::npos);
  EXPECT_FALSE(client.read_frame().has_value());  // server closes after drain
  client.close();

  server.request_stop();
  io.join();
}

}  // namespace

// LOA (lower-part OR adder) model + exact analysis, the ACA/ETAII GeAr
// aliases, and the design-bound helpers.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/bounds.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/loa.hpp"

namespace {

using sealpaa::adders::lpaa;
using sealpaa::analysis::max_approximate_lsbs;
using sealpaa::analysis::max_cascadable_width;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::gear::GearConfig;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::analyze_loa;
using sealpaa::multibit::exact_add;
using sealpaa::multibit::InputProfile;
using sealpaa::multibit::LoaAdder;

// ---------------------------------------------------------------- LOA
TEST(Loa, FullyExactWhenNoApproxBits) {
  const LoaAdder adder(8, 0);
  for (std::uint64_t a = 0; a < 256; a += 3) {
    for (std::uint64_t b = 0; b < 256; b += 5) {
      EXPECT_EQ(adder.evaluate(a, b).value(8),
                exact_add(a, b, false, 8).value(8));
    }
  }
  const auto analysis = analyze_loa(adder, InputProfile::uniform(8, 0.5));
  EXPECT_NEAR(analysis.p_error, 0.0, 1e-12);
}

TEST(Loa, KnownApproximateBehaviour) {
  const LoaAdder adder(8, 4);
  // 0b1111 + 0b0001 in the low nibble: OR gives 0b1111 (exact: 0b0000
  // with carry), prediction a3&b3 = 0 -> upper unchanged; exact sum 16.
  const auto approx = adder.evaluate(0x0F, 0x01);
  EXPECT_EQ(approx.sum_bits, 0x0Fu);
  EXPECT_NE(approx.value(8), exact_add(0x0F, 0x01, false, 8).value(8));
  // Both MSBs of the lower part set: prediction fires.
  const auto carried = adder.evaluate(0x08, 0x08);
  EXPECT_EQ(carried.sum_bits & 0xF0u, 0x10u);  // upper got the carry
}

TEST(Loa, AnalysisMatchesExhaustiveSweep) {
  for (std::size_t approx_lsbs : {0u, 1u, 3u, 5u, 8u}) {
    const LoaAdder adder(8, approx_lsbs);
    std::uint64_t value_errors = 0;
    std::uint64_t sum_errors = 0;
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        const auto approx = adder.evaluate(a, b);
        const auto exact = exact_add(a, b, false, 8);
        if (approx.value(8) != exact.value(8)) ++value_errors;
        if (approx.sum_bits != exact.sum_bits) ++sum_errors;
      }
    }
    const auto analysis = analyze_loa(adder, InputProfile::uniform(8, 0.5));
    EXPECT_NEAR(analysis.p_error, static_cast<double>(value_errors) / 65536.0, 1e-12)
        << "l=" << approx_lsbs;
    EXPECT_NEAR(analysis.p_error_sum_only, static_cast<double>(sum_errors) / 65536.0, 1e-12)
        << "l=" << approx_lsbs;
  }
}

TEST(Loa, AnalysisMatchesExhaustiveNonUniform) {
  const LoaAdder adder(6, 3);
  const InputProfile profile({0.2, 0.7, 0.4, 0.9, 0.1, 0.6},
                             {0.8, 0.3, 0.5, 0.2, 0.9, 0.4}, 0.0);
  double p_error = 0.0;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      if (adder.evaluate(a, b).value(6) != exact_add(a, b, false, 6).value(6)) {
        p_error += profile.assignment_probability(a, b, false);
      }
    }
  }
  const auto analysis = analyze_loa(adder, profile);
  EXPECT_NEAR(analysis.p_error, p_error, 1e-12);
}

TEST(Loa, ErrorGrowsWithApproximateBits) {
  const InputProfile profile = InputProfile::uniform(12, 0.5);
  double previous = -1.0;
  for (std::size_t l : {1u, 3u, 6u, 9u, 12u}) {
    const double p_error = analyze_loa(LoaAdder(12, l), profile).p_error;
    EXPECT_GT(p_error, previous) << "l=" << l;
    previous = p_error;
  }
}

TEST(Loa, Validation) {
  EXPECT_THROW(LoaAdder(0, 0), std::invalid_argument);
  EXPECT_THROW(LoaAdder(8, 9), std::invalid_argument);
  EXPECT_THROW(
      (void)analyze_loa(LoaAdder(8, 2), InputProfile::uniform(6, 0.5)),
      std::invalid_argument);
}

// ------------------------------------------------------- GeAr aliases
TEST(GearAliases, AcaIsGearWithUnitR) {
  const GearConfig aca = GearConfig::aca(16, 4);
  EXPECT_EQ(aca.r(), 1);
  EXPECT_EQ(aca.p(), 3);
  EXPECT_EQ(aca.l(), 4);
  EXPECT_EQ(aca.blocks(), 13);
}

TEST(GearAliases, EtaiiIsGearWithEqualRp) {
  const GearConfig etaii = GearConfig::etaii(16, 4);
  EXPECT_EQ(etaii.r(), 4);
  EXPECT_EQ(etaii.p(), 4);
  EXPECT_EQ(etaii.blocks(), 3);
}

TEST(GearAliases, InvalidAliasesRejected) {
  EXPECT_THROW((void)GearConfig::aca(16, 0), std::invalid_argument);  // P = -1
  // Ragged tails like etaii(10, 4) are legal now; N < L still is not.
  EXPECT_THROW((void)GearConfig::etaii(6, 4), std::invalid_argument);
}

TEST(GearAliases, RaggedEtaiiAccepted) {
  // (N - L) % R != 0 used to be rejected; the clamped tail makes it a
  // valid two-block configuration.
  const GearConfig etaii = GearConfig::etaii(10, 4);
  EXPECT_EQ(etaii.blocks(), 2);
  EXPECT_EQ(etaii.n(), 10);
}

// ------------------------------------------------------------- bounds
TEST(Bounds, MatchesDirectScan) {
  for (int cell : {1, 6, 7}) {
    for (double epsilon : {0.05, 0.2, 0.5}) {
      const int bound = max_cascadable_width(lpaa(cell), 0.5, epsilon, 32);
      if (bound > 0) {
        EXPECT_LE(RecursiveAnalyzer::error_probability(
                      lpaa(cell), InputProfile::uniform(
                                      static_cast<std::size_t>(bound), 0.5)),
                  epsilon + 1e-12)
            << "LPAA" << cell;
      }
      if (bound < 32) {
        EXPECT_GT(RecursiveAnalyzer::error_probability(
                      lpaa(cell),
                      InputProfile::uniform(
                          static_cast<std::size_t>(bound) + 1, 0.5)),
                  epsilon)
            << "LPAA" << cell;
      }
    }
  }
}

TEST(Bounds, PaperTenBitObservation) {
  // "none of the LPAA is useful beyond 10-bits cascading" at p = 0.5:
  // with any sane tolerance the best cell's bound is small.
  int best = 0;
  for (int cell = 1; cell <= 7; ++cell) {
    best = std::max(best, max_cascadable_width(lpaa(cell), 0.5, 0.5, 63));
  }
  EXPECT_LE(best, 10);
  EXPECT_GT(best, 0);
}

TEST(Bounds, ApproximateLsbsHybrid) {
  const int k = max_approximate_lsbs(lpaa(6), 16, 0.5, 0.3);
  ASSERT_GT(k, 0);
  // Build the hybrid and verify it meets the tolerance while k+1 fails.
  const auto build = [&](int approx) {
    std::vector<sealpaa::adders::AdderCell> stages;
    for (int i = 0; i < approx; ++i) stages.push_back(lpaa(6));
    for (int i = approx; i < 16; ++i) {
      stages.push_back(sealpaa::adders::accurate());
    }
    return RecursiveAnalyzer::analyze(AdderChain(stages),
                                      InputProfile::uniform(16, 0.5))
        .p_error;
  };
  EXPECT_LE(build(k), 0.3 + 1e-12);
  EXPECT_GT(build(k + 1), 0.3);
}

TEST(Bounds, ZeroWhenEvenOneStageFails) {
  // LPAA2 at p = 0.5 errs with probability > 0.2 from the first bit.
  EXPECT_EQ(max_cascadable_width(lpaa(2), 0.5, 0.05), 0);
  EXPECT_EQ(max_approximate_lsbs(lpaa(2), 8, 0.5, 0.05), 0);
}

TEST(Bounds, Validation) {
  EXPECT_THROW((void)max_cascadable_width(lpaa(1), 1.5, 0.1),
               std::domain_error);
  EXPECT_THROW((void)max_cascadable_width(lpaa(1), 0.5, 0.1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)max_approximate_lsbs(lpaa(1), 0, 0.5, 0.1),
               std::invalid_argument);
}

}  // namespace

// Branch-and-bound DSE: optimality vs the exhaustive reference,
// determinism across thread counts, checkpoint serialization and the
// kill/resume contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/explore/branch_bound.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/obs/checkpoint.hpp"
#include "sealpaa/obs/serialize.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::builtin_lpaas;
using sealpaa::adders::lpaa;
using sealpaa::explore::BnbCheckpoint;
using sealpaa::explore::BnbOptions;
using sealpaa::explore::BnbResult;
using sealpaa::explore::BranchBoundOptimizer;
using sealpaa::explore::DesignConstraints;
using sealpaa::explore::HybridDesign;
using sealpaa::explore::HybridOptimizer;
using sealpaa::explore::Objective;
using sealpaa::explore::SearchStats;
using sealpaa::multibit::InputProfile;

InputProfile varied_profile(std::size_t width) {
  std::vector<double> p_a;
  std::vector<double> p_b;
  for (std::size_t i = 0; i < width; ++i) {
    p_a.push_back(0.15 + 0.1 * static_cast<double>(i % 8));
    p_b.push_back(0.85 - 0.09 * static_cast<double>(i % 8));
  }
  return InputProfile(p_a, p_b, 0.3);
}

BnbOptions threads_opt(unsigned threads) {
  BnbOptions options;
  options.threads = threads;
  return options;
}

std::vector<std::string> stage_names(const HybridDesign& design) {
  std::vector<std::string> names;
  for (const auto& stage : design.stages) names.emplace_back(stage.name());
  return names;
}

void expect_same_design(const HybridDesign& a, const HybridDesign& b) {
  EXPECT_EQ(stage_names(a), stage_names(b));
  EXPECT_EQ(a.p_error, b.p_error);  // bit-identical, not just close
  EXPECT_EQ(a.p_success, b.p_success);
  EXPECT_EQ(a.med, b.med);
  EXPECT_EQ(a.mse, b.mse);
}

TEST(BranchBound, MatchesExhaustiveOptimumAllObjectives) {
  const InputProfile profile = varied_profile(5);
  for (const Objective objective :
       {Objective::kErrorRate, Objective::kMed, Objective::kMse}) {
    const HybridDesign exact = HybridOptimizer::exhaustive(
        profile, builtin_lpaas(), {}, 50'000'000, 1, objective);
    const BnbResult bnb = BranchBoundOptimizer::optimize(
        profile, builtin_lpaas(), {}, objective, threads_opt(1));
    ASSERT_TRUE(bnb.complete);
    ASSERT_TRUE(bnb.has_incumbent);
    expect_same_design(bnb.design, exact);
  }
}

TEST(BranchBound, PrunesWellOverTenfoldVsExhaustive) {
  // The admissible bound must actually prune: the quality mode's whole
  // point is reaching the same optimum on far fewer nodes.  Width 8
  // gives the carry-mass bound room to bite below the fixed unit-split
  // depth (at tiny widths every node sits at the split depth and the
  // search legitimately degenerates to enumeration).
  const InputProfile profile = varied_profile(8);
  const HybridDesign exact = HybridOptimizer::exhaustive(
      profile, builtin_lpaas(), {}, 50'000'000, 1);
  const BnbResult bnb = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, threads_opt(1));
  expect_same_design(bnb.design, exact);
  EXPECT_GT(bnb.design.stats.bound_cutoffs, 0u);
  EXPECT_LE(bnb.design.stats.nodes_expanded +
                bnb.design.stats.candidates_evaluated,
            exact.stats.candidates_evaluated / 10);
}

TEST(BranchBound, HonorsPowerConstraintLikeExhaustive) {
  const InputProfile profile = varied_profile(5);
  std::vector<sealpaa::adders::AdderCell> candidates;
  for (int i = 1; i <= 5; ++i) candidates.push_back(lpaa(i));
  candidates.push_back(accurate());
  DesignConstraints constraints;
  constraints.max_power_nw = 5000.0;
  const HybridDesign exact = HybridOptimizer::exhaustive(
      profile, candidates, constraints, 50'000'000, 1);
  const BnbResult bnb = BranchBoundOptimizer::optimize(
      profile, candidates, constraints, Objective::kErrorRate,
      threads_opt(1));
  expect_same_design(bnb.design, exact);
  EXPECT_GT(bnb.design.stats.candidates_rejected, 0u);
}

TEST(BranchBound, ThrowsWhenConstraintsEliminateEverything) {
  const InputProfile profile = varied_profile(4);
  // A palette without the zero-power wire adder, under a budget below
  // any single stage: no design can satisfy it.
  const std::vector<sealpaa::adders::AdderCell> candidates = {lpaa(1),
                                                              lpaa(2)};
  DesignConstraints constraints;
  constraints.max_power_nw = 0.5;
  EXPECT_THROW(
      BranchBoundOptimizer::optimize(profile, candidates, constraints),
      std::runtime_error);
}

TEST(BranchBound, RejectsEmptyPalette) {
  const InputProfile profile = varied_profile(4);
  EXPECT_THROW(BranchBoundOptimizer::optimize(profile, {}),
               std::invalid_argument);
}

TEST(BranchBound, DesignIdenticalAcrossThreadCounts) {
  const InputProfile profile = varied_profile(6);
  for (const Objective objective : {Objective::kErrorRate, Objective::kMed}) {
    const BnbResult one = BranchBoundOptimizer::optimize(
        profile, builtin_lpaas(), {}, objective, threads_opt(1));
    const BnbResult eight = BranchBoundOptimizer::optimize(
        profile, builtin_lpaas(), {}, objective, threads_opt(8));
    expect_same_design(one.design, eight.design);
    EXPECT_EQ(one.design.stats.steal_count, 0u);
  }
}

TEST(BranchBound, UnseededSearchFindsTheSameOptimum) {
  const InputProfile profile = varied_profile(5);
  const BnbResult seeded = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, threads_opt(1));
  BnbOptions unseeded_options;
  unseeded_options.threads = 1;
  unseeded_options.seed_beam_width = 0;
  const BnbResult unseeded = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, unseeded_options);
  expect_same_design(seeded.design, unseeded.design);
  // Seeding can only help: the seeded run never expands more nodes.
  EXPECT_LE(seeded.design.stats.nodes_expanded,
            unseeded.design.stats.nodes_expanded);
}

// The headline fixture: suspend ("kill") the search mid-run, persist the
// checkpoint through the real JSON file path, resume in what models a
// fresh process, and require the final incumbent AND the search-tree
// accounting to equal the uninterrupted run exactly.  (Evaluator
// cache-warmth counters are exempt by contract — a resumed process
// starts its prefix caches cold.)
TEST(BranchBound, KillAndResumeReproducesUninterruptedRun) {
  const InputProfile profile = varied_profile(6);
  const std::string path =
      testing::TempDir() + "/sealpaa_bnb_resume_test.json";
  BnbOptions suspend_options;
  suspend_options.threads = 1;
  suspend_options.suspend_after_units = 3;
  suspend_options.checkpoint_every_units = 1;
  suspend_options.checkpoint_sink =
      [&path](const BnbCheckpoint& checkpoint) {
        sealpaa::obs::write_bnb_checkpoint(path, checkpoint);
      };
  const BnbResult suspended = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, suspend_options);
  ASSERT_FALSE(suspended.complete);
  EXPECT_EQ(suspended.checkpoint.completed_units.size(), 3u);

  const BnbCheckpoint restored = sealpaa::obs::read_bnb_checkpoint(path);
  const BnbResult resumed = BranchBoundOptimizer::resume(
      profile, builtin_lpaas(), restored, {}, Objective::kErrorRate,
      threads_opt(1));
  ASSERT_TRUE(resumed.complete);

  const BnbResult uninterrupted = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, threads_opt(1));
  expect_same_design(resumed.design, uninterrupted.design);
  EXPECT_EQ(resumed.design.stats.nodes_expanded,
            uninterrupted.design.stats.nodes_expanded);
  EXPECT_EQ(resumed.design.stats.nodes_pruned,
            uninterrupted.design.stats.nodes_pruned);
  EXPECT_EQ(resumed.design.stats.bound_cutoffs,
            uninterrupted.design.stats.bound_cutoffs);
  EXPECT_EQ(resumed.design.stats.candidates_evaluated,
            uninterrupted.design.stats.candidates_evaluated);
  EXPECT_EQ(resumed.design.stats.candidates_rejected,
            uninterrupted.design.stats.candidates_rejected);
  std::remove(path.c_str());
}

TEST(BranchBound, CheckpointJsonRoundTripsExactly) {
  const InputProfile profile = varied_profile(5);
  BnbOptions options;
  options.threads = 1;
  options.suspend_after_units = 2;
  const BnbResult suspended = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kMse, options);
  ASSERT_FALSE(suspended.complete);
  const BnbCheckpoint& original = suspended.checkpoint;
  const BnbCheckpoint reparsed = sealpaa::obs::parse_bnb_checkpoint(
      sealpaa::obs::Json::parse(sealpaa::obs::to_json(original).dump()));
  EXPECT_EQ(reparsed.objective, original.objective);
  EXPECT_EQ(reparsed.width, original.width);
  EXPECT_EQ(reparsed.palette, original.palette);
  EXPECT_EQ(reparsed.p_a, original.p_a);
  EXPECT_EQ(reparsed.p_b, original.p_b);
  EXPECT_EQ(reparsed.p_cin, original.p_cin);
  EXPECT_EQ(reparsed.max_power_nw, original.max_power_nw);
  EXPECT_EQ(reparsed.max_area_ge, original.max_area_ge);
  EXPECT_EQ(reparsed.split_depth, original.split_depth);
  EXPECT_EQ(reparsed.total_units, original.total_units);
  EXPECT_EQ(reparsed.incumbent_found, original.incumbent_found);
  EXPECT_EQ(reparsed.incumbent_choices, original.incumbent_choices);
  EXPECT_EQ(reparsed.incumbent_score, original.incumbent_score);  // bit-exact
  EXPECT_EQ(reparsed.incumbent_index, original.incumbent_index);
  EXPECT_EQ(reparsed.completed_units, original.completed_units);
  EXPECT_EQ(reparsed.stats.nodes_expanded, original.stats.nodes_expanded);
  EXPECT_EQ(reparsed.stats.candidates_evaluated,
            original.stats.candidates_evaluated);
}

TEST(BranchBound, ResumeRejectsMismatchedSearch) {
  const InputProfile profile = varied_profile(5);
  BnbOptions options;
  options.threads = 1;
  options.suspend_after_units = 1;
  const BnbResult suspended = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, options);
  ASSERT_FALSE(suspended.complete);
  // Wrong objective.
  EXPECT_THROW(BranchBoundOptimizer::resume(profile, builtin_lpaas(),
                                            suspended.checkpoint, {},
                                            Objective::kMed),
               std::invalid_argument);
  // Wrong palette.
  std::vector<sealpaa::adders::AdderCell> other(builtin_lpaas().begin(),
                                                builtin_lpaas().end());
  other[0] = accurate();
  EXPECT_THROW(BranchBoundOptimizer::resume(profile, other,
                                            suspended.checkpoint),
               std::invalid_argument);
  // Wrong profile.
  EXPECT_THROW(BranchBoundOptimizer::resume(varied_profile(4),
                                            builtin_lpaas(),
                                            suspended.checkpoint),
               std::invalid_argument);
}

// Satellite regression: the SearchStats JSON projection must emit every
// counter explicitly, including zero values, so report consumers can
// rely on a stable key set across optimizers.
TEST(BranchBound, SearchStatsJsonEmitsAllKeysIncludingZeros) {
  const SearchStats zero;
  const sealpaa::obs::Json json = sealpaa::obs::to_json(zero);
  for (const char* key :
       {"candidates_evaluated", "candidates_rejected", "cache_hits",
        "cache_misses", "stages_computed", "soa_batches", "soa_lanes",
        "soa_max_lanes", "nodes_expanded", "nodes_pruned", "bound_cutoffs",
        "steal_count"}) {
    const sealpaa::obs::Json* value = json.find(key);
    ASSERT_NE(value, nullptr) << key;
    EXPECT_EQ(value->unsigned_integer(), 0u) << key;
  }
}

TEST(BranchBound, HybridOptimizerForwarderMatchesOptimize) {
  const InputProfile profile = varied_profile(5);
  const HybridDesign via_forwarder = HybridOptimizer::branch_bound(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, 1);
  const BnbResult direct = BranchBoundOptimizer::optimize(
      profile, builtin_lpaas(), {}, Objective::kErrorRate, threads_opt(1));
  expect_same_design(via_forwarder, direct.design);
}

}  // namespace

// Simulator tests: exhaustive sweep vs analytical, Monte Carlo
// convergence, the metrics accumulator and the bit-sliced kernel's
// building blocks (LUT compilation, transpose, batched accumulation).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/cell.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/bitsliced.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/kernel.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/sim/montecarlo.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;
using sealpaa::sim::BitSlicedKernel;
using sealpaa::sim::compile_lut;
using sealpaa::sim::ErrorMetrics;
using sealpaa::sim::ExhaustiveSimulator;
using sealpaa::sim::Kernel;
using sealpaa::sim::kLaneCounterBit;
using sealpaa::sim::MonteCarloSimulator;
using sealpaa::sim::SlicedLut;
using sealpaa::sim::transpose64;
using sealpaa::sim::transpose64_accelerated;
using sealpaa::sim::transpose64_fast;

/// Exact equality across every observable of two metric accumulators —
/// the bit-identity contract, not a tolerance comparison.
void expect_metrics_identical(const ErrorMetrics& a, const ErrorMetrics& b) {
  EXPECT_EQ(a.cases(), b.cases());
  EXPECT_EQ(a.value_errors(), b.value_errors());
  EXPECT_EQ(a.stage_failures(), b.stage_failures());
  EXPECT_EQ(a.mean_error(), b.mean_error());
  EXPECT_EQ(a.mean_abs_error(), b.mean_abs_error());
  EXPECT_EQ(a.mean_squared_error(), b.mean_squared_error());
  EXPECT_EQ(a.worst_case_error(), b.worst_case_error());
}

TEST(Metrics, BasicAccumulation) {
  ErrorMetrics metrics;
  metrics.add(10, 10, true);    // exact
  metrics.add(12, 10, false);   // +2 error
  metrics.add(7, 10, false);    // -3 error
  EXPECT_EQ(metrics.cases(), 3u);
  EXPECT_EQ(metrics.value_errors(), 2u);
  EXPECT_EQ(metrics.stage_failures(), 2u);
  EXPECT_NEAR(metrics.error_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_error(), (2.0 - 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_abs_error(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_squared_error(), 13.0 / 3.0, 1e-12);
  EXPECT_EQ(metrics.worst_case_error(), -3);
}

TEST(Metrics, MergeCombinesShards) {
  ErrorMetrics a;
  a.add(5, 5, true);
  a.add(9, 5, false);
  ErrorMetrics b;
  b.add(0, 10, false);
  a.merge(b);
  EXPECT_EQ(a.cases(), 3u);
  EXPECT_EQ(a.value_errors(), 2u);
  EXPECT_EQ(a.worst_case_error(), -10);
}

TEST(Metrics, EmptyIsZero) {
  const ErrorMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.error_rate(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_squared_error(), 0.0);
}

TEST(Metrics, WorstCaseTieBreaksToNegative) {
  // +3 and -3 have equal magnitude; whichever arrives first, the
  // reported worst case must be the same (the negative one).
  ErrorMetrics plus_first;
  plus_first.add(13, 10, false);  // +3
  plus_first.add(7, 10, false);   // -3
  ErrorMetrics minus_first;
  minus_first.add(7, 10, false);
  minus_first.add(13, 10, false);
  EXPECT_EQ(plus_first.worst_case_error(), -3);
  EXPECT_EQ(minus_first.worst_case_error(), -3);
}

TEST(Metrics, WorstCaseHandlesInt64MinMagnitude) {
  // approx - exact == INT64_MIN: |e| overflows std::int64_t, and
  // std::llabs on it is UB.  The unsigned-domain comparator must still
  // rank it above everything else.
  ErrorMetrics metrics;
  metrics.add(0, static_cast<std::uint64_t>(std::numeric_limits<
                     std::int64_t>::max()) + 1,
              false);  // error INT64_MIN
  metrics.add(100, 0, false);
  EXPECT_EQ(metrics.worst_case_error(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(sealpaa::sim::error_magnitude(
                std::numeric_limits<std::int64_t>::min()),
            0x8000'0000'0000'0000ULL);
}

TEST(Metrics, MergeIdentityAndAssociativity) {
  const auto sample = [](int which) {
    ErrorMetrics metrics;
    switch (which) {
      case 0:
        metrics.add(13, 10, false);  // +3
        metrics.add(10, 10, true);
        break;
      case 1:
        metrics.add(7, 10, false);  // -3, ties +3 in magnitude
        break;
      default:
        metrics.add(2, 10, false);  // -8, strict worst
        metrics.add(11, 10, false);
        break;
    }
    return metrics;
  };
  const auto equal = [](const ErrorMetrics& a, const ErrorMetrics& b) {
    return a.cases() == b.cases() && a.value_errors() == b.value_errors() &&
           a.stage_failures() == b.stage_failures() &&
           a.mean_error() == b.mean_error() &&
           a.mean_abs_error() == b.mean_abs_error() &&
           a.mean_squared_error() == b.mean_squared_error() &&
           a.worst_case_error() == b.worst_case_error();
  };

  // Identity: merging a default-constructed accumulator changes nothing.
  ErrorMetrics with_identity = sample(0);
  with_identity.merge(ErrorMetrics{});
  EXPECT_TRUE(equal(with_identity, sample(0)));
  ErrorMetrics identity_first;
  identity_first.merge(sample(0));
  EXPECT_TRUE(equal(identity_first, sample(0)));

  // Associativity + permutation: every merge order of the three shards
  // reports the same worst case and moments.
  const int orders[][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  ErrorMetrics reference = sample(0);
  reference.merge(sample(1));
  reference.merge(sample(2));
  for (const auto& order : orders) {
    ErrorMetrics left_fold = sample(order[0]);
    left_fold.merge(sample(order[1]));
    left_fold.merge(sample(order[2]));
    EXPECT_TRUE(equal(left_fold, reference));

    ErrorMetrics right_first = sample(order[1]);
    right_first.merge(sample(order[2]));
    ErrorMetrics right_fold = sample(order[0]);
    right_fold.merge(right_first);
    EXPECT_EQ(right_fold.worst_case_error(), reference.worst_case_error());
    EXPECT_EQ(right_fold.cases(), reference.cases());
  }
}

TEST(Kernel, ParseAndNameRoundTrip) {
  EXPECT_EQ(sealpaa::sim::parse_kernel("scalar"), Kernel::kScalar);
  EXPECT_EQ(sealpaa::sim::parse_kernel("bitsliced"), Kernel::kBitSliced);
  EXPECT_EQ(sealpaa::sim::kernel_name(Kernel::kScalar), "scalar");
  EXPECT_EQ(sealpaa::sim::kernel_name(Kernel::kBitSliced), "bitsliced");
  EXPECT_THROW((void)sealpaa::sim::parse_kernel("simd"),
               std::invalid_argument);
  EXPECT_THROW((void)sealpaa::sim::parse_kernel(""), std::invalid_argument);
}

TEST(BitSliced, CompileLutMatchesEveryTruthTable) {
  // Exhaustive over all 256 3-input functions: the compiled lane-word
  // form must reproduce the truth table both on broadcast inputs (all
  // lanes the same row) and on counter-patterned inputs (lane l holds
  // row l & 7).
  for (unsigned truth = 0; truth < 256; ++truth) {
    const SlicedLut lut = compile_lut(static_cast<std::uint8_t>(truth));
    for (std::uint8_t row = 0; row < 8; ++row) {
      const std::uint64_t a = ((row >> 2) & 1) != 0 ? ~0ULL : 0ULL;
      const std::uint64_t b = ((row >> 1) & 1) != 0 ? ~0ULL : 0ULL;
      const std::uint64_t c = (row & 1) != 0 ? ~0ULL : 0ULL;
      const std::uint64_t expected = ((truth >> row) & 1U) != 0 ? ~0ULL : 0ULL;
      EXPECT_EQ(lut.eval(a, b, c), expected)
          << "truth 0x" << std::hex << truth << " row " << int(row);
    }
    // Mixed lanes: row of lane l is l & 7 (a = bit2, b = bit1, c = bit0).
    std::uint64_t expected = 0;
    for (unsigned lane = 0; lane < 64; ++lane) {
      if (((truth >> (lane & 7)) & 1U) != 0) expected |= 1ULL << lane;
    }
    EXPECT_EQ(lut.eval(kLaneCounterBit[2], kLaneCounterBit[1],
                       kLaneCounterBit[0]),
              expected)
        << "truth 0x" << std::hex << truth;
  }
}

TEST(BitSliced, TransposeIndexContractAndInvolution) {
  sealpaa::prob::SplitMix64 rng(0xb17'511ced'7e57ULL);
  std::array<std::uint64_t, 64> m;
  for (auto& row : m) row = rng.next();
  const std::array<std::uint64_t, 64> original = m;
  transpose64(m);
  for (unsigned i = 0; i < 64; ++i) {
    for (unsigned l = 0; l < 64; ++l) {
      ASSERT_EQ((m[i] >> l) & 1ULL, (original[l] >> i) & 1ULL)
          << "transposed[" << i << "] bit " << l;
    }
  }
  transpose64(m);
  EXPECT_EQ(m, original);
}

TEST(BitSliced, TransposeFastMatchesPortable) {
  // transpose64_fast dispatches to the AVX-512 + GFNI kernel when the
  // CPU has one; either way it must be the exact same bit permutation as
  // the portable reference (the production kernel runs on whichever
  // implementation this machine selects).
  sealpaa::prob::SplitMix64 rng(0x517'ced'fa57ULL);
  for (int trial = 0; trial < 64; ++trial) {
    std::array<std::uint64_t, 64> fast;
    for (auto& row : fast) row = rng.next();
    std::array<std::uint64_t, 64> portable = fast;
    transpose64(portable);
    transpose64_fast(fast);
    ASSERT_EQ(fast, portable)
        << "trial " << trial
        << " accelerated=" << transpose64_accelerated();
  }
}

TEST(BitSliced, GroupMatchesSingleBatches) {
  // run_packed_group's contract: results[j] is bit-identical to
  // run_packed on batch j alone, for arbitrary cells (including ones
  // whose tables only compile to generic SOPs) at widths from mid-range
  // to the 63-bit carry-out boundary.  On AVX-512 hardware this pins
  // the VPTERNLOGQ group kernel to the single-batch path; elsewhere it
  // pins the peeling fallback.
  sealpaa::prob::SplitMix64 rng(0x6'40'c7'2026ULL);
  constexpr std::size_t kGroup = BitSlicedKernel::kGroupBatches;
  for (const std::size_t width : {std::size_t{5}, std::size_t{9},
                                  std::size_t{16}, std::size_t{63}}) {
    std::vector<sealpaa::adders::AdderCell> cells;
    for (std::size_t s = 0; s < width; ++s) {
      if ((rng.next() & 3ULL) == 0) {
        cells.push_back(accurate());
        continue;
      }
      std::string sum_column(8, '0');
      std::string carry_column(8, '0');
      const std::uint64_t bits = rng.next();
      for (std::size_t row = 0; row < 8; ++row) {
        if (((bits >> row) & 1ULL) != 0) sum_column[row] = '1';
        if (((bits >> (8 + row)) & 1ULL) != 0) carry_column[row] = '1';
      }
      cells.push_back(sealpaa::adders::AdderCell::from_columns(
          "G" + std::to_string(s), sum_column, carry_column,
          "group-kernel test cell"));
    }
    const AdderChain chain(cells);
    const BitSlicedKernel kernel(chain);

    std::array<std::uint64_t, 64> a_words;
    std::array<std::uint64_t, 64 * kGroup> b_group;
    for (auto& w : a_words) w = rng.next();
    for (auto& w : b_group) w = rng.next();
    const std::uint64_t cin_word = rng.next();

    std::array<BitSlicedKernel::Result, kGroup> grouped;
    kernel.run_packed_group(a_words.data(), b_group.data(), cin_word,
                            grouped.data());

    std::array<std::uint64_t, 64> b_words{};
    for (std::size_t j = 0; j < kGroup; ++j) {
      for (std::size_t i = 0; i < width; ++i) {
        b_words[i] = b_group[kGroup * i + j];
      }
      const BitSlicedKernel::Result single =
          kernel.run_packed(a_words.data(), b_words.data(), cin_word, ~0ULL);
      ASSERT_EQ(grouped[j].lane_mask, single.lane_mask);
      ASSERT_EQ(grouped[j].stage_fail_mask, single.stage_fail_mask)
          << "width " << width << " batch " << j;
      ASSERT_EQ(grouped[j].value_error_mask, single.value_error_mask)
          << "width " << width << " batch " << j;
      ASSERT_EQ(grouped[j].sum_bits_error_mask, single.sum_bits_error_mask)
          << "width " << width << " batch " << j;
      ASSERT_EQ(grouped[j].error, single.error)
          << "width " << width << " batch " << j
          << " accelerated=" << transpose64_accelerated();
      ASSERT_EQ(grouped[j].first_failed, single.first_failed)
          << "width " << width << " batch " << j;
    }
  }
}

TEST(Metrics, AddBatchMatchesSixtyFourScalarAdds) {
  // The satellite-3 contract: one add_batch call must leave the
  // accumulator in exactly the state 64 scalar add() calls (ascending
  // lane order) produce — including the floating-point sums.
  sealpaa::prob::SplitMix64 rng(0xadd'b47c4'2026ULL);
  for (const std::uint64_t lane_mask :
       {~0ULL, (1ULL << 17) - 1ULL, 0x0123'4567'89ab'cdefULL}) {
    std::array<std::uint64_t, 64> approx{};
    std::array<std::uint64_t, 64> exact{};
    std::array<bool, 64> success{};
    std::uint64_t value_error_mask = 0;
    std::uint64_t stage_fail_mask = 0;
    std::array<std::int64_t, 64> error{};
    for (unsigned lane = 0; lane < 64; ++lane) {
      if (((lane_mask >> lane) & 1ULL) == 0) continue;
      exact[lane] = rng.next() & 0x1FFFF;
      // Mix exact lanes, positive and negative errors.
      const std::uint64_t roll = rng.next();
      if ((roll & 3) == 0) {
        approx[lane] = exact[lane];
        success[lane] = (roll & 4) != 0;
      } else {
        approx[lane] = rng.next() & 0x1FFFF;
        success[lane] = false;
      }
      if (approx[lane] != exact[lane]) {
        value_error_mask |= 1ULL << lane;
        error[lane] = static_cast<std::int64_t>(approx[lane]) -
                      static_cast<std::int64_t>(exact[lane]);
      }
      if (!success[lane]) stage_fail_mask |= 1ULL << lane;
    }

    ErrorMetrics batched;
    batched.add_batch(lane_mask, value_error_mask, stage_fail_mask, error);
    ErrorMetrics scalar;
    for (unsigned lane = 0; lane < 64; ++lane) {
      if (((lane_mask >> lane) & 1ULL) == 0) continue;
      scalar.add(approx[lane], exact[lane], success[lane]);
    }
    expect_metrics_identical(batched, scalar);
  }
}

TEST(Metrics, AddBatchEmptyMaskIsIdentity) {
  ErrorMetrics metrics;
  metrics.add_batch(0, 0, 0, std::array<std::int64_t, 64>{});
  EXPECT_EQ(metrics.cases(), 0u);
  EXPECT_EQ(metrics.mean_error(), 0.0);
}

TEST(ExhaustiveSim, StageFailureRateMatchesAnalyticalAtHalf) {
  // With equally probable inputs the exhaustive rate is the exact
  // probability; it must equal the recursive analyzer to double
  // precision (the paper's "100 percent match", Table 6 row 1).
  for (int cell = 1; cell <= 7; ++cell) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 6);
    const auto report = ExhaustiveSimulator::run(chain);
    const double analytical = RecursiveAnalyzer::error_probability(
        lpaa(cell), InputProfile::uniform(6, 0.5));
    EXPECT_NEAR(report.metrics.stage_failure_rate(), analytical, 1e-12)
        << "LPAA" << cell;
  }
}

TEST(ExhaustiveSim, AccurateChainHasNoErrors) {
  const auto report =
      ExhaustiveSimulator::run(AdderChain::homogeneous(accurate(), 7));
  EXPECT_EQ(report.metrics.value_errors(), 0u);
  EXPECT_EQ(report.metrics.stage_failures(), 0u);
  EXPECT_EQ(report.metrics.cases(), 1ULL << 15);
}

TEST(ExhaustiveSim, CountsCasesAndOps) {
  const auto report =
      ExhaustiveSimulator::run(AdderChain::homogeneous(lpaa(1), 4));
  EXPECT_EQ(report.metrics.cases(), 1ULL << 9);
  EXPECT_EQ(report.bit_operations, (1ULL << 9) * 4);
  EXPECT_GE(report.seconds, 0.0);
}

TEST(ExhaustiveSim, GuardRejectsHugeWidths) {
  EXPECT_THROW(
      (void)ExhaustiveSimulator::run(AdderChain::homogeneous(lpaa(1), 20)),
      std::invalid_argument);
}

TEST(MonteCarlo, ConvergesToAnalyticalWithinCi) {
  const std::size_t width = 8;
  const InputProfile profile = InputProfile::uniform(width, 0.1);
  for (int cell : {1, 5, 7}) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), width);
    const auto report = MonteCarloSimulator::run(chain, profile, 200000);
    const double analytical =
        RecursiveAnalyzer::error_probability(lpaa(cell), profile);
    EXPECT_TRUE(report.stage_failure_ci.contains(analytical) ||
                std::abs(report.metrics.stage_failure_rate() - analytical) <
                    0.005)
        << "LPAA" << cell << ": MC " << report.metrics.stage_failure_rate()
        << " vs analytical " << analytical;
  }
}

TEST(MonteCarlo, DeterministicForSeed) {
  const InputProfile profile = InputProfile::uniform(6, 0.3);
  const AdderChain chain = AdderChain::homogeneous(lpaa(4), 6);
  const auto a = MonteCarloSimulator::run(chain, profile, 10000, 77);
  const auto b = MonteCarloSimulator::run(chain, profile, 10000, 77);
  EXPECT_EQ(a.metrics.stage_failures(), b.metrics.stage_failures());
  EXPECT_EQ(a.metrics.value_errors(), b.metrics.value_errors());
}

TEST(MonteCarlo, DifferentSeedsGiveDifferentButCloseEstimates) {
  const InputProfile profile = InputProfile::uniform(6, 0.3);
  const AdderChain chain = AdderChain::homogeneous(lpaa(4), 6);
  const auto a = MonteCarloSimulator::run(chain, profile, 50000, 1);
  const auto b = MonteCarloSimulator::run(chain, profile, 50000, 2);
  EXPECT_NE(a.metrics.stage_failures(), b.metrics.stage_failures());
  EXPECT_NEAR(a.metrics.stage_failure_rate(), b.metrics.stage_failure_rate(),
              0.02);
}

TEST(MonteCarlo, CiWidthShrinksWithSamples) {
  const InputProfile profile = InputProfile::uniform(6, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 6);
  const auto small = MonteCarloSimulator::run(chain, profile, 1000);
  const auto large = MonteCarloSimulator::run(chain, profile, 100000);
  EXPECT_LT(large.stage_failure_ci.width(), small.stage_failure_ci.width());
}

TEST(MonteCarlo, WidthMismatchThrows) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 5);
  EXPECT_THROW((void)MonteCarloSimulator::run(chain, profile, 10),
               std::invalid_argument);
}

TEST(MonteCarloParallel, DeterministicForSeedAndThreadCount) {
  const InputProfile profile = InputProfile::uniform(8, 0.25);
  const AdderChain chain = AdderChain::homogeneous(lpaa(3), 8);
  const auto a = MonteCarloSimulator::run_parallel(chain, profile, 40000, 4, 9);
  const auto b = MonteCarloSimulator::run_parallel(chain, profile, 40000, 4, 9);
  EXPECT_EQ(a.metrics.stage_failures(), b.metrics.stage_failures());
  EXPECT_EQ(a.metrics.value_errors(), b.metrics.value_errors());
  EXPECT_EQ(a.metrics.cases(), 40000u);
}

TEST(MonteCarloParallel, AgreesWithSerialWithinNoise) {
  const InputProfile profile = InputProfile::uniform(8, 0.1);
  const AdderChain chain = AdderChain::homogeneous(lpaa(6), 8);
  const auto serial = MonteCarloSimulator::run(chain, profile, 100000);
  const auto parallel =
      MonteCarloSimulator::run_parallel(chain, profile, 100000, 3);
  EXPECT_NEAR(serial.metrics.stage_failure_rate(),
              parallel.metrics.stage_failure_rate(), 0.01);
}

TEST(MonteCarloParallel, SingleThreadEqualsSerial) {
  const InputProfile profile = InputProfile::uniform(6, 0.4);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 6);
  const auto serial = MonteCarloSimulator::run(chain, profile, 20000, 5);
  const auto parallel =
      MonteCarloSimulator::run_parallel(chain, profile, 20000, 1, 5);
  EXPECT_EQ(serial.metrics.stage_failures(),
            parallel.metrics.stage_failures());
}

TEST(MonteCarloParallel, OddSampleCountsFullyAccounted) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 4);
  const auto report =
      MonteCarloSimulator::run_parallel(chain, profile, 10007, 4);
  EXPECT_EQ(report.metrics.cases(), 10007u);
}

TEST(MonteCarloParallel, Validation) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 4);
  EXPECT_THROW(
      (void)MonteCarloSimulator::run_parallel(chain, profile, 100, 0),
      std::invalid_argument);
}

TEST(MonteCarlo, ValueErrorsNeverExceedStageFailures) {
  // A value error requires some stage to have deviated.
  const InputProfile profile = InputProfile::uniform(10, 0.4);
  for (int cell = 1; cell <= 7; ++cell) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 10);
    const auto report = MonteCarloSimulator::run(chain, profile, 20000);
    EXPECT_LE(report.metrics.value_errors(), report.metrics.stage_failures())
        << "LPAA" << cell;
  }
}

TEST(ExhaustiveSim, KernelsIdenticalAcrossWidths) {
  // Widths 1..6 cross the partial-batch (< 5 bits: the whole (b, cin)
  // space fits under 64 lanes and the remainder is masked) / full-batch
  // boundary of the bit-sliced sweep.
  for (std::size_t width = 1; width <= 6; ++width) {
    for (int cell : {1, 4, 7}) {
      const AdderChain chain = AdderChain::homogeneous(lpaa(cell), width);
      const auto scalar =
          ExhaustiveSimulator::run(chain, 13, 1, Kernel::kScalar);
      const auto bitsliced =
          ExhaustiveSimulator::run(chain, 13, 1, Kernel::kBitSliced);
      expect_metrics_identical(scalar.metrics, bitsliced.metrics);
      EXPECT_EQ(bitsliced.metrics.cases(), 1ULL << (2 * width + 1));
      EXPECT_EQ(scalar.kernel, Kernel::kScalar);
      EXPECT_EQ(bitsliced.kernel, Kernel::kBitSliced);
      EXPECT_EQ(scalar.lane_batches, 0u);
      EXPECT_GT(bitsliced.lane_batches, 0u);
      if (width < 5) {
        // One partial batch per `a`: 2^(width+1) live lanes out of 64.
        EXPECT_EQ(bitsliced.masked_lanes,
                  (1ULL << width) * (64 - (1ULL << (width + 1))));
      } else {
        EXPECT_EQ(bitsliced.masked_lanes, 0u);
      }
    }
  }
}

TEST(ExhaustiveSim, KernelsIdenticalAcrossThreadCounts) {
  const AdderChain chain = AdderChain::homogeneous(lpaa(3), 7);
  const auto reference = ExhaustiveSimulator::run(chain, 13, 1,
                                                  Kernel::kScalar);
  for (unsigned threads : {1u, 2u, 5u}) {
    const auto report =
        ExhaustiveSimulator::run(chain, 13, threads, Kernel::kBitSliced);
    expect_metrics_identical(reference.metrics, report.metrics);
  }
}

TEST(MonteCarlo, KernelsIdenticalWithMaskedRemainder) {
  // 10007 samples = 156 full batches + one 23-lane remainder; the
  // metrics must match the scalar walk bit-for-bit anyway.
  const InputProfile profile = InputProfile::uniform(9, 0.3);
  const AdderChain chain = AdderChain::homogeneous(lpaa(5), 9);
  const auto scalar =
      MonteCarloSimulator::run(chain, profile, 10007, 42, Kernel::kScalar);
  const auto bitsliced =
      MonteCarloSimulator::run(chain, profile, 10007, 42, Kernel::kBitSliced);
  expect_metrics_identical(scalar.metrics, bitsliced.metrics);
  EXPECT_EQ(scalar.lane_batches, 0u);
  EXPECT_EQ(bitsliced.lane_batches, (10007 + 63) / 64);
  EXPECT_EQ(bitsliced.masked_lanes, 64 * ((10007 + 63) / 64) - 10007);
}

TEST(MonteCarloParallel, KernelsIdenticalAcrossThreadCounts) {
  const InputProfile profile = InputProfile::uniform(12, 0.2);
  const AdderChain chain = AdderChain::homogeneous(lpaa(6), 12);
  const auto scalar = MonteCarloSimulator::run_parallel(
      chain, profile, 70001, 1, 7, Kernel::kScalar);
  for (unsigned threads : {1u, 4u}) {
    const auto bitsliced = MonteCarloSimulator::run_parallel(
        chain, profile, 70001, threads, 7, Kernel::kBitSliced);
    expect_metrics_identical(scalar.metrics, bitsliced.metrics);
  }
}

TEST(BitSliced, Width63BoundaryMatchesScalar) {
  // 63 bits is the widest chain AdderChain accepts; the carry-out lands
  // on bit 63 of the value, so signed errors exercise the int64
  // wraparound edge.  Both kernels must agree lane-for-lane.
  for (int cell : {1, 7}) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 63);
    const BitSlicedKernel kernel(chain);
    ASSERT_EQ(kernel.width(), 63u);

    sealpaa::prob::SplitMix64 rng(0x63'b17'ed6eULL + static_cast<std::uint64_t>(cell));
    std::array<std::uint64_t, 64> a_lanes;
    std::array<std::uint64_t, 64> b_lanes;
    std::uint64_t cin_word = 0;
    for (unsigned lane = 0; lane < 64; ++lane) {
      a_lanes[lane] = rng.next() >> 1;  // 63-bit operands
      b_lanes[lane] = rng.next() >> 1;
      if ((rng.next() & 1ULL) != 0) cin_word |= 1ULL << lane;
    }
    const BitSlicedKernel::Result result =
        kernel.run(a_lanes.data(), b_lanes.data(), cin_word, ~0ULL);

    ErrorMetrics batched;
    sealpaa::sim::accumulate(batched, result);
    ErrorMetrics scalar;
    for (unsigned lane = 0; lane < 64; ++lane) {
      const bool cin = ((cin_word >> lane) & 1ULL) != 0;
      const auto traced =
          chain.evaluate_traced(a_lanes[lane], b_lanes[lane], cin);
      const auto exact =
          sealpaa::multibit::exact_add(a_lanes[lane], b_lanes[lane], cin, 63);
      const std::uint64_t approx_value = traced.outputs.value(63);
      const std::uint64_t exact_value = exact.value(63);
      scalar.add(approx_value, exact_value, traced.all_stages_success);
      EXPECT_EQ(((result.stage_fail_mask >> lane) & 1ULL) != 0,
                !traced.all_stages_success)
          << "lane " << lane;
      EXPECT_EQ(result.first_failed[lane], traced.first_failed_stage)
          << "lane " << lane;
      EXPECT_EQ(((result.value_error_mask >> lane) & 1ULL) != 0,
                approx_value != exact_value)
          << "lane " << lane;
      EXPECT_EQ(result.error[lane],
                static_cast<std::int64_t>(approx_value) -
                    static_cast<std::int64_t>(exact_value))
          << "lane " << lane;
    }
    expect_metrics_identical(batched, scalar);
  }
}

TEST(BitSliced, Width64ThrowsForBothPaths) {
  // AdderChain itself rejects 64 bits, so neither the scalar walk nor
  // the bit-sliced kernel (which is constructed from a chain) can ever
  // see a width the carry-out bit would not fit.
  EXPECT_THROW((void)AdderChain::homogeneous(lpaa(1), 64),
               std::invalid_argument);
  EXPECT_THROW((void)AdderChain::homogeneous(accurate(), 64),
               std::invalid_argument);
}

TEST(BitSliced, AccurateChainAtFullWidthHasNoErrors) {
  const AdderChain chain = AdderChain::homogeneous(accurate(), 63);
  const BitSlicedKernel kernel(chain);
  std::array<std::uint64_t, 64> a_lanes;
  std::array<std::uint64_t, 64> b_lanes;
  sealpaa::prob::SplitMix64 rng(0xacc'0063ULL);
  for (unsigned lane = 0; lane < 64; ++lane) {
    a_lanes[lane] = rng.next() >> 1;
    b_lanes[lane] = rng.next() >> 1;
  }
  const auto result =
      kernel.run(a_lanes.data(), b_lanes.data(), kLaneCounterBit[0], ~0ULL);
  EXPECT_EQ(result.value_error_mask, 0u);
  EXPECT_EQ(result.stage_fail_mask, 0u);
  EXPECT_EQ(result.sum_bits_error_mask, 0u);
}

}  // namespace

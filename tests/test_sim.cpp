// Simulator tests: exhaustive sweep vs analytical, Monte Carlo
// convergence and the metrics accumulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/sim/montecarlo.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;
using sealpaa::sim::ErrorMetrics;
using sealpaa::sim::ExhaustiveSimulator;
using sealpaa::sim::MonteCarloSimulator;

TEST(Metrics, BasicAccumulation) {
  ErrorMetrics metrics;
  metrics.add(10, 10, true);    // exact
  metrics.add(12, 10, false);   // +2 error
  metrics.add(7, 10, false);    // -3 error
  EXPECT_EQ(metrics.cases(), 3u);
  EXPECT_EQ(metrics.value_errors(), 2u);
  EXPECT_EQ(metrics.stage_failures(), 2u);
  EXPECT_NEAR(metrics.error_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_error(), (2.0 - 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_abs_error(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_squared_error(), 13.0 / 3.0, 1e-12);
  EXPECT_EQ(metrics.worst_case_error(), -3);
}

TEST(Metrics, MergeCombinesShards) {
  ErrorMetrics a;
  a.add(5, 5, true);
  a.add(9, 5, false);
  ErrorMetrics b;
  b.add(0, 10, false);
  a.merge(b);
  EXPECT_EQ(a.cases(), 3u);
  EXPECT_EQ(a.value_errors(), 2u);
  EXPECT_EQ(a.worst_case_error(), -10);
}

TEST(Metrics, EmptyIsZero) {
  const ErrorMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.error_rate(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_squared_error(), 0.0);
}

TEST(Metrics, WorstCaseTieBreaksToNegative) {
  // +3 and -3 have equal magnitude; whichever arrives first, the
  // reported worst case must be the same (the negative one).
  ErrorMetrics plus_first;
  plus_first.add(13, 10, false);  // +3
  plus_first.add(7, 10, false);   // -3
  ErrorMetrics minus_first;
  minus_first.add(7, 10, false);
  minus_first.add(13, 10, false);
  EXPECT_EQ(plus_first.worst_case_error(), -3);
  EXPECT_EQ(minus_first.worst_case_error(), -3);
}

TEST(Metrics, WorstCaseHandlesInt64MinMagnitude) {
  // approx - exact == INT64_MIN: |e| overflows std::int64_t, and
  // std::llabs on it is UB.  The unsigned-domain comparator must still
  // rank it above everything else.
  ErrorMetrics metrics;
  metrics.add(0, static_cast<std::uint64_t>(std::numeric_limits<
                     std::int64_t>::max()) + 1,
              false);  // error INT64_MIN
  metrics.add(100, 0, false);
  EXPECT_EQ(metrics.worst_case_error(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(sealpaa::sim::error_magnitude(
                std::numeric_limits<std::int64_t>::min()),
            0x8000'0000'0000'0000ULL);
}

TEST(Metrics, MergeIdentityAndAssociativity) {
  const auto sample = [](int which) {
    ErrorMetrics metrics;
    switch (which) {
      case 0:
        metrics.add(13, 10, false);  // +3
        metrics.add(10, 10, true);
        break;
      case 1:
        metrics.add(7, 10, false);  // -3, ties +3 in magnitude
        break;
      default:
        metrics.add(2, 10, false);  // -8, strict worst
        metrics.add(11, 10, false);
        break;
    }
    return metrics;
  };
  const auto equal = [](const ErrorMetrics& a, const ErrorMetrics& b) {
    return a.cases() == b.cases() && a.value_errors() == b.value_errors() &&
           a.stage_failures() == b.stage_failures() &&
           a.mean_error() == b.mean_error() &&
           a.mean_abs_error() == b.mean_abs_error() &&
           a.mean_squared_error() == b.mean_squared_error() &&
           a.worst_case_error() == b.worst_case_error();
  };

  // Identity: merging a default-constructed accumulator changes nothing.
  ErrorMetrics with_identity = sample(0);
  with_identity.merge(ErrorMetrics{});
  EXPECT_TRUE(equal(with_identity, sample(0)));
  ErrorMetrics identity_first;
  identity_first.merge(sample(0));
  EXPECT_TRUE(equal(identity_first, sample(0)));

  // Associativity + permutation: every merge order of the three shards
  // reports the same worst case and moments.
  const int orders[][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  ErrorMetrics reference = sample(0);
  reference.merge(sample(1));
  reference.merge(sample(2));
  for (const auto& order : orders) {
    ErrorMetrics left_fold = sample(order[0]);
    left_fold.merge(sample(order[1]));
    left_fold.merge(sample(order[2]));
    EXPECT_TRUE(equal(left_fold, reference));

    ErrorMetrics right_first = sample(order[1]);
    right_first.merge(sample(order[2]));
    ErrorMetrics right_fold = sample(order[0]);
    right_fold.merge(right_first);
    EXPECT_EQ(right_fold.worst_case_error(), reference.worst_case_error());
    EXPECT_EQ(right_fold.cases(), reference.cases());
  }
}

TEST(ExhaustiveSim, StageFailureRateMatchesAnalyticalAtHalf) {
  // With equally probable inputs the exhaustive rate is the exact
  // probability; it must equal the recursive analyzer to double
  // precision (the paper's "100 percent match", Table 6 row 1).
  for (int cell = 1; cell <= 7; ++cell) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 6);
    const auto report = ExhaustiveSimulator::run(chain);
    const double analytical = RecursiveAnalyzer::error_probability(
        lpaa(cell), InputProfile::uniform(6, 0.5));
    EXPECT_NEAR(report.metrics.stage_failure_rate(), analytical, 1e-12)
        << "LPAA" << cell;
  }
}

TEST(ExhaustiveSim, AccurateChainHasNoErrors) {
  const auto report =
      ExhaustiveSimulator::run(AdderChain::homogeneous(accurate(), 7));
  EXPECT_EQ(report.metrics.value_errors(), 0u);
  EXPECT_EQ(report.metrics.stage_failures(), 0u);
  EXPECT_EQ(report.metrics.cases(), 1ULL << 15);
}

TEST(ExhaustiveSim, CountsCasesAndOps) {
  const auto report =
      ExhaustiveSimulator::run(AdderChain::homogeneous(lpaa(1), 4));
  EXPECT_EQ(report.metrics.cases(), 1ULL << 9);
  EXPECT_EQ(report.bit_operations, (1ULL << 9) * 4);
  EXPECT_GE(report.seconds, 0.0);
}

TEST(ExhaustiveSim, GuardRejectsHugeWidths) {
  EXPECT_THROW(
      (void)ExhaustiveSimulator::run(AdderChain::homogeneous(lpaa(1), 20)),
      std::invalid_argument);
}

TEST(MonteCarlo, ConvergesToAnalyticalWithinCi) {
  const std::size_t width = 8;
  const InputProfile profile = InputProfile::uniform(width, 0.1);
  for (int cell : {1, 5, 7}) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), width);
    const auto report = MonteCarloSimulator::run(chain, profile, 200000);
    const double analytical =
        RecursiveAnalyzer::error_probability(lpaa(cell), profile);
    EXPECT_TRUE(report.stage_failure_ci.contains(analytical) ||
                std::abs(report.metrics.stage_failure_rate() - analytical) <
                    0.005)
        << "LPAA" << cell << ": MC " << report.metrics.stage_failure_rate()
        << " vs analytical " << analytical;
  }
}

TEST(MonteCarlo, DeterministicForSeed) {
  const InputProfile profile = InputProfile::uniform(6, 0.3);
  const AdderChain chain = AdderChain::homogeneous(lpaa(4), 6);
  const auto a = MonteCarloSimulator::run(chain, profile, 10000, 77);
  const auto b = MonteCarloSimulator::run(chain, profile, 10000, 77);
  EXPECT_EQ(a.metrics.stage_failures(), b.metrics.stage_failures());
  EXPECT_EQ(a.metrics.value_errors(), b.metrics.value_errors());
}

TEST(MonteCarlo, DifferentSeedsGiveDifferentButCloseEstimates) {
  const InputProfile profile = InputProfile::uniform(6, 0.3);
  const AdderChain chain = AdderChain::homogeneous(lpaa(4), 6);
  const auto a = MonteCarloSimulator::run(chain, profile, 50000, 1);
  const auto b = MonteCarloSimulator::run(chain, profile, 50000, 2);
  EXPECT_NE(a.metrics.stage_failures(), b.metrics.stage_failures());
  EXPECT_NEAR(a.metrics.stage_failure_rate(), b.metrics.stage_failure_rate(),
              0.02);
}

TEST(MonteCarlo, CiWidthShrinksWithSamples) {
  const InputProfile profile = InputProfile::uniform(6, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 6);
  const auto small = MonteCarloSimulator::run(chain, profile, 1000);
  const auto large = MonteCarloSimulator::run(chain, profile, 100000);
  EXPECT_LT(large.stage_failure_ci.width(), small.stage_failure_ci.width());
}

TEST(MonteCarlo, WidthMismatchThrows) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 5);
  EXPECT_THROW((void)MonteCarloSimulator::run(chain, profile, 10),
               std::invalid_argument);
}

TEST(MonteCarloParallel, DeterministicForSeedAndThreadCount) {
  const InputProfile profile = InputProfile::uniform(8, 0.25);
  const AdderChain chain = AdderChain::homogeneous(lpaa(3), 8);
  const auto a = MonteCarloSimulator::run_parallel(chain, profile, 40000, 4, 9);
  const auto b = MonteCarloSimulator::run_parallel(chain, profile, 40000, 4, 9);
  EXPECT_EQ(a.metrics.stage_failures(), b.metrics.stage_failures());
  EXPECT_EQ(a.metrics.value_errors(), b.metrics.value_errors());
  EXPECT_EQ(a.metrics.cases(), 40000u);
}

TEST(MonteCarloParallel, AgreesWithSerialWithinNoise) {
  const InputProfile profile = InputProfile::uniform(8, 0.1);
  const AdderChain chain = AdderChain::homogeneous(lpaa(6), 8);
  const auto serial = MonteCarloSimulator::run(chain, profile, 100000);
  const auto parallel =
      MonteCarloSimulator::run_parallel(chain, profile, 100000, 3);
  EXPECT_NEAR(serial.metrics.stage_failure_rate(),
              parallel.metrics.stage_failure_rate(), 0.01);
}

TEST(MonteCarloParallel, SingleThreadEqualsSerial) {
  const InputProfile profile = InputProfile::uniform(6, 0.4);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 6);
  const auto serial = MonteCarloSimulator::run(chain, profile, 20000, 5);
  const auto parallel =
      MonteCarloSimulator::run_parallel(chain, profile, 20000, 1, 5);
  EXPECT_EQ(serial.metrics.stage_failures(),
            parallel.metrics.stage_failures());
}

TEST(MonteCarloParallel, OddSampleCountsFullyAccounted) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 4);
  const auto report =
      MonteCarloSimulator::run_parallel(chain, profile, 10007, 4);
  EXPECT_EQ(report.metrics.cases(), 10007u);
}

TEST(MonteCarloParallel, Validation) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 4);
  EXPECT_THROW(
      (void)MonteCarloSimulator::run_parallel(chain, profile, 100, 0),
      std::invalid_argument);
}

TEST(MonteCarlo, ValueErrorsNeverExceedStageFailures) {
  // A value error requires some stage to have deviated.
  const InputProfile profile = InputProfile::uniform(10, 0.4);
  for (int cell = 1; cell <= 7; ++cell) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 10);
    const auto report = MonteCarloSimulator::run(chain, profile, 20000);
    EXPECT_LE(report.metrics.value_errors(), report.metrics.stage_failures())
        << "LPAA" << cell;
  }
}

}  // namespace

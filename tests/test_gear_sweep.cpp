// Parameterized GeAr sweep: every valid (N, R, P) configuration up to
// N = 10 is checked against exhaustive simulation, for both the error
// DP and the correction-cycle distribution.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sealpaa/gear/correction.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace {

using sealpaa::gear::correction_cycle_distribution;
using sealpaa::gear::GearAnalyzer;
using sealpaa::gear::GearConfig;
using sealpaa::gear::GearCorrector;
using sealpaa::multibit::InputProfile;

std::vector<GearConfig> all_valid_configs(int max_n) {
  std::vector<GearConfig> configs;
  for (int n = 2; n <= max_n; ++n) {
    for (int r = 1; r <= n; ++r) {
      for (int p = 0; r + p <= n; ++p) {
        if ((n - (r + p)) % r != 0) continue;
        const GearConfig config(n, r, p);
        if (config.blocks() < 2) continue;  // single block = exact
        configs.push_back(config);
      }
    }
  }
  return configs;
}

class GearConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(GearConfigSweep, ErrorDpMatchesExhaustive) {
  const std::vector<GearConfig> configs = all_valid_configs(9);
  const std::size_t index = static_cast<std::size_t>(GetParam());
  if (index >= configs.size()) GTEST_SKIP();
  const GearConfig& config = configs[index];
  const auto profile = InputProfile::uniform(
      static_cast<std::size_t>(config.n()), 0.5);
  const auto analysis = GearAnalyzer::analyze(config, profile);
  const auto metrics = GearAnalyzer::exhaustive(config);
  EXPECT_NEAR(analysis.p_error_exact_dp, metrics.error_rate(), 1e-12)
      << config.describe();
}

TEST_P(GearConfigSweep, CorrectionDistributionMatchesExhaustive) {
  const std::vector<GearConfig> configs = all_valid_configs(8);
  const std::size_t index = static_cast<std::size_t>(GetParam());
  if (index >= configs.size()) GTEST_SKIP();
  const GearConfig& config = configs[index];
  const std::size_t n = static_cast<std::size_t>(config.n());
  const GearCorrector corrector(config);
  std::map<int, std::uint64_t> histogram;
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      histogram[static_cast<int>(corrector.detect(a, b).size())]++;
    }
  }
  const auto distribution =
      correction_cycle_distribution(config, InputProfile::uniform(n, 0.5));
  const double total =
      static_cast<double>(limit) * static_cast<double>(limit);
  for (std::size_t c = 0; c < distribution.size(); ++c) {
    EXPECT_NEAR(distribution[c],
                static_cast<double>(histogram[static_cast<int>(c)]) / total,
                1e-12)
        << config.describe() << " cycles=" << c;
  }
}

// 60 indices covers every (N <= 9) config; extras skip harmlessly.
INSTANTIATE_TEST_SUITE_P(AllConfigs, GearConfigSweep,
                         ::testing::Range(0, 60));

}  // namespace

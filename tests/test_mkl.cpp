// M/K/L matrix derivation vs the paper's Table 5, plus invariants.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/mkl.hpp"

namespace {

using sealpaa::adders::lpaa;
using sealpaa::analysis::MklMatrices;
using sealpaa::analysis::Vector8;

struct Table5Row {
  int lpaa;
  std::array<int, 8> m;
  std::array<int, 8> k;
  std::array<int, 8> l;
};

// Verbatim from the paper's Table 5.
const Table5Row kTable5[] = {
    {1, {0, 0, 0, 1, 0, 1, 1, 1}, {1, 1, 0, 0, 0, 0, 0, 0}, {1, 1, 0, 1, 0, 1, 1, 1}},
    {2, {0, 0, 0, 1, 0, 1, 1, 0}, {0, 1, 1, 0, 1, 0, 0, 0}, {0, 1, 1, 1, 1, 1, 1, 0}},
    {3, {0, 0, 0, 1, 0, 1, 1, 0}, {0, 1, 0, 0, 1, 0, 0, 0}, {0, 1, 0, 1, 1, 1, 1, 0}},
    {4, {0, 0, 0, 0, 0, 1, 1, 1}, {1, 1, 0, 0, 0, 0, 0, 0}, {1, 1, 0, 0, 0, 1, 1, 1}},
    {5, {0, 0, 0, 0, 0, 1, 0, 1}, {1, 0, 1, 0, 0, 0, 0, 0}, {1, 0, 1, 0, 0, 1, 0, 1}},
    {6, {0, 0, 0, 1, 0, 1, 0, 1}, {1, 0, 1, 0, 1, 0, 0, 0}, {1, 0, 1, 1, 1, 1, 0, 1}},
    {7, {0, 0, 0, 0, 0, 0, 1, 1}, {1, 1, 1, 0, 1, 0, 0, 0}, {1, 1, 1, 0, 1, 0, 1, 1}},
};

void expect_vector(const Vector8& actual, const std::array<int, 8>& expected,
                   const std::string& what) {
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(actual[i], static_cast<double>(expected[i]))
        << what << " entry " << i;
  }
}

TEST(MklTable5, AllSevenLpaasMatchThePaper) {
  for (const Table5Row& row : kTable5) {
    const MklMatrices mkl = MklMatrices::from_cell(lpaa(row.lpaa));
    expect_vector(mkl.m, row.m, "LPAA" + std::to_string(row.lpaa) + " M");
    expect_vector(mkl.k, row.k, "LPAA" + std::to_string(row.lpaa) + " K");
    expect_vector(mkl.l, row.l, "LPAA" + std::to_string(row.lpaa) + " L");
  }
}

TEST(MklInvariants, LEqualsMPlusK) {
  for (const auto& cell : sealpaa::adders::all_builtin_cells()) {
    const MklMatrices mkl = MklMatrices::from_cell(cell);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(mkl.l[i], mkl.m[i] + mkl.k[i])
          << cell.name() << " row " << i;
    }
  }
}

TEST(MklInvariants, AccurateCellHasAllOnesL) {
  const MklMatrices mkl =
      MklMatrices::from_cell(sealpaa::adders::accurate());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(mkl.l[i], 1.0);
  // M selects the majority-carry rows 3, 5, 6, 7.
  expect_vector(mkl.m, {0, 0, 0, 1, 0, 1, 1, 1}, "AccuFA M");
}

TEST(MklInvariants, OnesInLEqualEightMinusErrorCases) {
  for (const auto& cell : sealpaa::adders::all_builtin_cells()) {
    const MklMatrices mkl = MklMatrices::from_cell(cell);
    int ones = 0;
    for (double x : mkl.l) ones += x != 0.0 ? 1 : 0;
    EXPECT_EQ(ones, 8 - cell.error_case_count()) << cell.name();
  }
}

TEST(MklRender, PaperStyleString) {
  const MklMatrices mkl = MklMatrices::from_cell(lpaa(1));
  EXPECT_EQ(MklMatrices::render(mkl.m), "[0,0,0,1,0,1,1,1]");
  EXPECT_EQ(MklMatrices::render(mkl.k), "[1,1,0,0,0,0,0,0]");
  EXPECT_EQ(MklMatrices::render(mkl.l), "[1,1,0,1,0,1,1,1]");
}

TEST(Ipm, EntriesSumToSuccessMass) {
  using sealpaa::analysis::CarryState;
  using sealpaa::analysis::input_probability_matrix;
  const CarryState carry{0.3, 0.45};  // deliberately < 1 total
  const Vector8 ipm = input_probability_matrix(0.7, 0.2, carry);
  double total = 0.0;
  for (double x : ipm) total += x;
  EXPECT_NEAR(total, carry.success_mass(), 1e-15);
}

TEST(Ipm, MatchesManualExpansionForPaperExampleStage0) {
  // Stage 0 of Table 4: P(A)=0.9, P(B)=0.8, carry (0.5, 0.5).
  using sealpaa::analysis::CarryState;
  using sealpaa::analysis::dot;
  using sealpaa::analysis::input_probability_matrix;
  const Vector8 ipm = input_probability_matrix(0.9, 0.8, CarryState{0.5, 0.5});
  const MklMatrices mkl = MklMatrices::from_cell(lpaa(1));
  EXPECT_NEAR(dot(ipm, mkl.m), 0.85, 1e-12);
  EXPECT_NEAR(dot(ipm, mkl.k), 0.02, 1e-12);
}

}  // namespace

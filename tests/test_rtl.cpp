// RTL substrate: netlist construction/evaluation, synthesis equivalence
// with the behavioural models, signal probabilities and Verilog export.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/rtl/netlist.hpp"
#include "sealpaa/rtl/synth.hpp"
#include "sealpaa/rtl/verilog.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::multibit::AdderChain;
using sealpaa::rtl::GateKind;
using sealpaa::rtl::Netlist;
using sealpaa::rtl::synthesize_cell;
using sealpaa::rtl::synthesize_chain;
using sealpaa::rtl::synthesize_gear;

TEST(Netlist, BasicGatesEvaluate) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int b = netlist.add_input("b");
  const int and_net = netlist.add_binary(GateKind::And, a, b);
  const int or_net = netlist.add_binary(GateKind::Or, a, b);
  const int xor_net = netlist.add_binary(GateKind::Xor, a, b);
  const int not_net = netlist.add_unary(GateKind::Not, a);
  netlist.set_output("and", and_net);
  netlist.set_output("or", or_net);
  netlist.set_output("xor", xor_net);
  netlist.set_output("not", not_net);

  const auto out = netlist.evaluate({true, false});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_TRUE(out[2]);
  EXPECT_FALSE(out[3]);
}

TEST(Netlist, Validation) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  EXPECT_THROW((void)netlist.add_binary(GateKind::And, a, 99),
               std::out_of_range);
  EXPECT_THROW((void)netlist.add_binary(GateKind::Not, a, a),
               std::invalid_argument);
  EXPECT_THROW((void)netlist.add_unary(GateKind::And, a),
               std::invalid_argument);
  EXPECT_THROW((void)netlist.evaluate({}), std::invalid_argument);
  EXPECT_THROW((void)netlist.signal_probabilities({0.5, 0.5}),
               std::invalid_argument);
}

TEST(Netlist, DepthCountsLogicLevels) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int b = netlist.add_input("b");
  const int x1 = netlist.add_binary(GateKind::And, a, b);
  const int x2 = netlist.add_binary(GateKind::Or, x1, b);
  const int x3 = netlist.add_unary(GateKind::Not, x2);
  netlist.set_output("y", x3);
  EXPECT_EQ(netlist.depth(), 3);
  EXPECT_EQ(netlist.logic_gate_count(), 3u);
}

TEST(SynthCell, EveryBuiltinCellMatchesItsTruthTable) {
  for (const auto& cell : sealpaa::adders::all_builtin_cells()) {
    const Netlist netlist = synthesize_cell(cell);
    for (std::size_t row = 0; row < 8; ++row) {
      const bool a = (row & 4U) != 0;
      const bool b = (row & 2U) != 0;
      const bool c = (row & 1U) != 0;
      const auto out = netlist.evaluate({a, b, c});
      EXPECT_EQ(out[0], cell.rows()[row].sum)
          << cell.name() << " sum, row " << row;
      EXPECT_EQ(out[1], cell.rows()[row].carry)
          << cell.name() << " carry, row " << row;
    }
  }
}

TEST(SynthCell, AccurateCellUsesCompactStructure) {
  const Netlist netlist = synthesize_cell(accurate());
  EXPECT_EQ(netlist.logic_gate_count(), 5u);  // 2 XOR + 2 AND + 1 OR
  EXPECT_EQ(netlist.depth(), 3);
}

TEST(SynthCell, WireOnlyCellSynthesizesToZeroGates) {
  // LPAA5 (sum = B, cout = A) is pure wiring — the synthesizer's
  // single-literal detection must produce zero logic gates, matching the
  // cell's 0 nW / 0 GE entry in Table 2.
  const Netlist wire = synthesize_cell(lpaa(5));
  EXPECT_EQ(wire.logic_gate_count(), 0u);
  EXPECT_EQ(wire.depth(), 0);
}

TEST(SynthChain, MatchesBehaviouralChainOnRandomVectors) {
  sealpaa::prob::Xoshiro256StarStar rng(101);
  for (int cell = 1; cell <= 7; ++cell) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 8);
    const Netlist netlist = synthesize_chain(chain);
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint64_t a = rng.next() & 0xFF;
      const std::uint64_t b = rng.next() & 0xFF;
      const bool cin = rng.bernoulli(0.5);
      std::vector<bool> inputs;
      for (int i = 0; i < 8; ++i) inputs.push_back(((a >> i) & 1ULL) != 0);
      for (int i = 0; i < 8; ++i) inputs.push_back(((b >> i) & 1ULL) != 0);
      inputs.push_back(cin);
      const auto out = netlist.evaluate(inputs);
      const auto expected = chain.evaluate(a, b, cin);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(i)],
                  ((expected.sum_bits >> i) & 1ULL) != 0)
            << "LPAA" << cell << " bit " << i;
      }
      EXPECT_EQ(out[8], expected.carry_out) << "LPAA" << cell;
    }
  }
}

TEST(SynthChain, HybridChain) {
  const AdderChain chain({lpaa(7), accurate(), lpaa(5)});
  const Netlist netlist = synthesize_chain(chain);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      std::vector<bool> inputs;
      for (int i = 0; i < 3; ++i) inputs.push_back(((a >> i) & 1ULL) != 0);
      for (int i = 0; i < 3; ++i) inputs.push_back(((b >> i) & 1ULL) != 0);
      inputs.push_back(false);
      const auto out = netlist.evaluate(inputs);
      const auto expected = chain.evaluate(a, b, false);
      EXPECT_EQ(out[0], ((expected.sum_bits >> 0) & 1ULL) != 0);
      EXPECT_EQ(out[3], expected.carry_out);
    }
  }
}

TEST(SynthGear, MatchesBehaviouralGear) {
  const sealpaa::gear::GearConfig config(8, 2, 2);
  const sealpaa::gear::GearAdder adder{config};
  const Netlist netlist = synthesize_gear(config);
  sealpaa::prob::Xoshiro256StarStar rng(103);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next() & 0xFF;
    const std::uint64_t b = rng.next() & 0xFF;
    std::vector<bool> inputs;
    for (int i = 0; i < 8; ++i) inputs.push_back(((a >> i) & 1ULL) != 0);
    for (int i = 0; i < 8; ++i) inputs.push_back(((b >> i) & 1ULL) != 0);
    const auto out = netlist.evaluate(inputs);
    const auto expected = adder.evaluate(a, b);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)],
                ((expected.sum_bits >> i) & 1ULL) != 0)
          << "bit " << i << " a=" << a << " b=" << b;
    }
    EXPECT_EQ(out[8], expected.carry_out);
  }
}

TEST(SignalProbabilities, ExactOnTreeCircuits) {
  // For fan-out-free circuits the independence assumption is exact.
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int b = netlist.add_input("b");
  const int c = netlist.add_input("c");
  const int ab = netlist.add_binary(GateKind::And, a, b);
  const int y = netlist.add_binary(GateKind::Xor, ab, c);
  netlist.set_output("y", y);
  const auto p = netlist.signal_probabilities({0.3, 0.6, 0.2});
  EXPECT_NEAR(p[static_cast<std::size_t>(ab)], 0.18, 1e-12);
  EXPECT_NEAR(p[static_cast<std::size_t>(y)],
              0.18 + 0.2 - 2 * 0.18 * 0.2, 1e-12);
}

TEST(SwitchingActivity, ZeroForConstantInputs) {
  const Netlist netlist = synthesize_cell(accurate());
  EXPECT_NEAR(netlist.switching_activity({1.0, 1.0, 1.0}), 0.0, 1e-12);
  EXPECT_GT(netlist.switching_activity({0.5, 0.5, 0.5}), 0.0);
}

TEST(SwitchingActivity, SimplerCellsToggleLess) {
  // Gate-level switching activity should rank LPAA3 (smallest cell in
  // Table 2) below AccuFA, consistent with its lower dynamic power.
  const double accu =
      synthesize_cell(accurate()).switching_activity({0.5, 0.5, 0.5});
  const double cheap =
      synthesize_cell(lpaa(5)).switching_activity({0.5, 0.5, 0.5});
  EXPECT_LT(cheap, accu);
}

TEST(Verilog, ConstantNetsEmitLiterals) {
  Netlist netlist;
  (void)netlist.add_input("a");
  const int zero = netlist.add_const(false);
  const int one = netlist.add_const(true);
  netlist.set_output("z", zero);
  netlist.set_output("o", one);
  const std::string text = sealpaa::rtl::to_verilog(netlist, "consts");
  EXPECT_NE(text.find("= 1'b0;"), std::string::npos);
  EXPECT_NE(text.find("= 1'b1;"), std::string::npos);
  const auto out = netlist.evaluate({false});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(Verilog, BufferGatesPassThrough) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int buf = netlist.add_unary(sealpaa::rtl::GateKind::Buf, a);
  netlist.set_output("y", buf);
  const std::string text = sealpaa::rtl::to_verilog(netlist, "bufm");
  EXPECT_NE(text.find("assign n1 = a;"), std::string::npos);
  EXPECT_TRUE(netlist.evaluate({true})[0]);
  EXPECT_EQ(netlist.logic_gate_count(), 0u);  // Buf is not logic
}

TEST(Verilog, StructureOfEmittedModule) {
  const std::string text =
      sealpaa::rtl::to_verilog(synthesize_cell(lpaa(1)), "lpaa1_cell");
  EXPECT_NE(text.find("module lpaa1_cell ("), std::string::npos);
  EXPECT_NE(text.find("input  wire a"), std::string::npos);
  EXPECT_NE(text.find("input  wire cin"), std::string::npos);
  EXPECT_NE(text.find("output wire sum"), std::string::npos);
  EXPECT_NE(text.find("output wire cout"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  EXPECT_NE(text.find("assign"), std::string::npos);
}

TEST(VerilogTestbench, ExhaustiveVectorsForSmallModules) {
  const Netlist netlist = synthesize_cell(lpaa(1));
  const std::string tb =
      sealpaa::rtl::to_verilog_testbench(netlist, "lpaa1_cell");
  EXPECT_NE(tb.find("module lpaa1_cell_tb;"), std::string::npos);
  EXPECT_NE(tb.find("SEALPAA_TB_PASS"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // 3 inputs -> 8 exhaustive checks.
  std::size_t checks = 0;
  std::size_t pos = 0;
  while ((pos = tb.find("check(", pos)) != std::string::npos) {
    ++checks;
    pos += 6;
  }
  EXPECT_EQ(checks, 8u + 1u);  // 8 calls + the task declaration mention
}

TEST(VerilogTestbench, GoldenVectorsMatchTruthTable) {
  // Spot-check the encoded expected values: vector (a=1,b=1,cin=0) for
  // LPAA6 must expect sum=0, cout=0 (its error row 6).
  const Netlist netlist = synthesize_cell(lpaa(6));
  const std::string tb =
      sealpaa::rtl::to_verilog_testbench(netlist, "lpaa6_cell");
  // Input order: a=bit0, b=bit1, cin=bit2 -> vec 3'b011 means a=1,b=1.
  EXPECT_NE(tb.find("check(3'b011, 2'b00);"), std::string::npos) << tb;
  // (a=1,b=1,cin=1) -> sum=1, cout=1 -> out_vec bits (cout,sum) = 11.
  EXPECT_NE(tb.find("check(3'b111, 2'b11);"), std::string::npos);
}

TEST(VerilogTestbench, SamplesLargeModules) {
  const Netlist netlist =
      synthesize_chain(AdderChain::homogeneous(accurate(), 10));  // 21 inputs
  const std::string tb = sealpaa::rtl::to_verilog_testbench(
      netlist, "rca10", /*exhaustive_limit=*/14, /*sample_count=*/50);
  std::size_t checks = 0;
  std::size_t pos = 0;
  while ((pos = tb.find("      check(", pos)) != std::string::npos) {
    ++checks;
    pos += 10;
  }
  EXPECT_EQ(checks, 50u);
}

TEST(Verilog, EveryNetDeclaredBeforeUse) {
  const std::string text = sealpaa::rtl::to_verilog(
      synthesize_chain(AdderChain::homogeneous(lpaa(2), 4)), "chain4");
  // Each assigned net must have a wire declaration.
  std::size_t pos = 0;
  int assigns = 0;
  while ((pos = text.find("assign n", pos)) != std::string::npos) {
    const std::size_t end = text.find(' ', pos + 7);
    const std::string net = text.substr(pos + 7, end - pos - 7);
    EXPECT_NE(text.find("wire " + net + ";"), std::string::npos) << net;
    pos = end;
    ++assigns;
  }
  EXPECT_GT(assigns, 10);
}

}  // namespace

// Unit tests for the single-bit cell models: Table 1 truth tables,
// Table 2 error-case counts, structural identities of the LPAA family.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/cell.hpp"
#include "sealpaa/adders/characteristics.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::AdderCell;
using sealpaa::adders::BitPair;
using sealpaa::adders::lpaa;

TEST(AccurateCell, MatchesArithmeticOnAllRows) {
  const AdderCell& cell = accurate();
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        const BitPair out = cell.output(a != 0, b != 0, c != 0);
        const int total = a + b + c;
        EXPECT_EQ(out.sum, (total & 1) != 0) << a << b << c;
        EXPECT_EQ(out.carry, total >= 2) << a << b << c;
      }
    }
  }
}

TEST(AccurateCell, IsExactWithZeroErrorCases) {
  EXPECT_TRUE(accurate().is_exact());
  EXPECT_EQ(accurate().error_case_count(), 0);
  EXPECT_EQ(accurate().sum_error_count(), 0);
  EXPECT_EQ(accurate().carry_error_count(), 0);
}

TEST(RowIndex, MatchesPaperOrdering) {
  // Row index must be (A << 2) | (B << 1) | Cin — the Table 1 ordering.
  EXPECT_EQ(AdderCell::row_index(false, false, false), 0u);
  EXPECT_EQ(AdderCell::row_index(false, false, true), 1u);
  EXPECT_EQ(AdderCell::row_index(false, true, false), 2u);
  EXPECT_EQ(AdderCell::row_index(false, true, true), 3u);
  EXPECT_EQ(AdderCell::row_index(true, false, false), 4u);
  EXPECT_EQ(AdderCell::row_index(true, false, true), 5u);
  EXPECT_EQ(AdderCell::row_index(true, true, false), 6u);
  EXPECT_EQ(AdderCell::row_index(true, true, true), 7u);
}

// Error-case counts from Table 2 (LPAA1-5) and derived from Table 1 for
// LPAA6-7.
TEST(BuiltinCells, ErrorCaseCountsMatchTable2) {
  EXPECT_EQ(lpaa(1).error_case_count(), 2);
  EXPECT_EQ(lpaa(2).error_case_count(), 2);
  EXPECT_EQ(lpaa(3).error_case_count(), 3);
  EXPECT_EQ(lpaa(4).error_case_count(), 3);
  EXPECT_EQ(lpaa(5).error_case_count(), 4);
  EXPECT_EQ(lpaa(6).error_case_count(), 2);
  EXPECT_EQ(lpaa(7).error_case_count(), 2);
}

// Structural identities visible in Table 1.
TEST(BuiltinCells, Lpaa1MatchesTable1Columns) {
  // Transcribed row-by-row from Table 1 (Sum then Cout).
  const AdderCell reference =
      AdderCell::from_columns("ref", "01000001", "00110111");
  EXPECT_TRUE(lpaa(1) == reference);
  // Its two error rows are (0,1,0) and (1,0,0), both corrupting the sum.
  EXPECT_FALSE(lpaa(1).row_is_success(2));
  EXPECT_FALSE(lpaa(1).row_is_success(4));
  for (std::size_t row : {0u, 1u, 3u, 5u, 6u, 7u}) {
    EXPECT_TRUE(lpaa(1).row_is_success(row)) << row;
  }
}

TEST(BuiltinCells, Lpaa5IsWireOnly) {
  // Sum = B, Cout = A: the zero-transistor cell (power 0, area 0).
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        const BitPair out = lpaa(5).output(a != 0, b != 0, c != 0);
        EXPECT_EQ(out.sum, b != 0);
        EXPECT_EQ(out.carry, a != 0);
      }
    }
  }
}

TEST(BuiltinCells, Lpaa6HasExactSum) {
  EXPECT_EQ(lpaa(6).sum_error_count(), 0);
  EXPECT_EQ(lpaa(6).carry_error_count(), 2);
}

TEST(BuiltinCells, Lpaa7HasExactCarry) {
  EXPECT_EQ(lpaa(7).carry_error_count(), 0);
  EXPECT_EQ(lpaa(7).sum_error_count(), 2);
}

TEST(BuiltinCells, AllDistinctFromAccurate) {
  for (const AdderCell& cell : sealpaa::adders::builtin_lpaas()) {
    EXPECT_FALSE(cell == accurate()) << cell.name();
    EXPECT_FALSE(cell.is_exact()) << cell.name();
  }
}

TEST(BuiltinCells, NamesAndLookup) {
  EXPECT_EQ(accurate().name(), "AccuFA");
  EXPECT_EQ(lpaa(3).name(), "LPAA3");
  EXPECT_EQ(sealpaa::adders::find_builtin("LPAA7"), &lpaa(7));
  EXPECT_EQ(sealpaa::adders::find_builtin("AccuFA"), &accurate());
  EXPECT_EQ(sealpaa::adders::find_builtin("nonsense"), nullptr);
}

TEST(BuiltinCells, IndexValidation) {
  EXPECT_THROW((void)lpaa(0), std::out_of_range);
  EXPECT_THROW((void)lpaa(8), std::out_of_range);
  EXPECT_NO_THROW((void)lpaa(1));
  EXPECT_NO_THROW((void)lpaa(7));
}

TEST(FromColumns, RejectsMalformedInput) {
  EXPECT_THROW((void)AdderCell::from_columns("x", "0110100", "00010111"),
               std::invalid_argument);
  EXPECT_THROW((void)AdderCell::from_columns("x", "011010012", "00010111"),
               std::invalid_argument);
  EXPECT_THROW((void)AdderCell::from_columns("x", "0110100a", "00010111"),
               std::invalid_argument);
}

TEST(FromColumns, RoundTripsAccurate) {
  const AdderCell rebuilt =
      AdderCell::from_columns("copy", "01101001", "00010111");
  EXPECT_TRUE(rebuilt == accurate());
  EXPECT_TRUE(rebuilt.is_exact());
}

TEST(SuccessMask, MatchesErrorCount) {
  for (const AdderCell& cell : sealpaa::adders::all_builtin_cells()) {
    const auto mask = cell.success_mask();
    int successes = 0;
    for (bool ok : mask) successes += ok ? 1 : 0;
    EXPECT_EQ(successes + cell.error_case_count(), 8) << cell.name();
  }
}

TEST(Characteristics, Table2Values) {
  using sealpaa::adders::find_characteristics;
  const auto* c1 = find_characteristics(lpaa(1));
  ASSERT_NE(c1, nullptr);
  EXPECT_DOUBLE_EQ(c1->power_nw.value(), 771.0);
  EXPECT_DOUBLE_EQ(c1->area_ge.value(), 4.23);
  EXPECT_EQ(c1->error_cases, 2);

  const auto* c5 = find_characteristics(lpaa(5));
  ASSERT_NE(c5, nullptr);
  EXPECT_DOUBLE_EQ(c5->power_nw.value(), 0.0);
  EXPECT_DOUBLE_EQ(c5->area_ge.value(), 0.0);

  const auto* c6 = find_characteristics(lpaa(6));
  ASSERT_NE(c6, nullptr);
  EXPECT_FALSE(c6->power_nw.has_value());
}

TEST(Characteristics, ErrorCasesAgreeWithTruthTables) {
  for (const AdderCell& cell : sealpaa::adders::all_builtin_cells()) {
    const auto* row = sealpaa::adders::find_characteristics(cell);
    ASSERT_NE(row, nullptr) << cell.name();
    EXPECT_EQ(row->error_cases, cell.error_case_count()) << cell.name();
  }
}

TEST(Characteristics, ChainPowerScalesLinearly) {
  const auto power = sealpaa::adders::chain_power_nw(lpaa(2), 8);
  ASSERT_TRUE(power.has_value());
  EXPECT_DOUBLE_EQ(*power, 8 * 294.0);
  EXPECT_FALSE(sealpaa::adders::chain_power_nw(lpaa(6), 8).has_value());
}

TEST(ToString, MarksErrorCases) {
  const std::string text = lpaa(1).to_string();
  EXPECT_NE(text.find("[error case]"), std::string::npos);
  EXPECT_EQ(accurate().to_string().find("[error case]"), std::string::npos);
}

}  // namespace

// Golden-number validation of the recursive analyzer against the paper:
// the full Table 4 trace and all 42 analytical cells of Table 7, plus
// invariants and cross-engine checks.
#include <gtest/gtest.h>

#include <cmath>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::analysis::AnalyzeOptions;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

TEST(Table4, FourBitLpaa1TraceMatchesThePaper) {
  // Table 4: P(A) = {0.9, 0.5, 0.4, 0.8}, P(B) = {0.8, 0.7, 0.6, 0.9},
  // P(Cin) = 0.5.
  const InputProfile profile({0.9, 0.5, 0.4, 0.8}, {0.8, 0.7, 0.6, 0.9}, 0.5);
  AnalyzeOptions options;
  options.record_trace = true;
  const auto result = RecursiveAnalyzer::analyze(lpaa(1), profile, options);

  ASSERT_EQ(result.trace.size(), 4u);
  // Stage 0 carry-in (0.5, 0.5) -> carry-out (0.02, 0.85).
  EXPECT_NEAR(result.trace[0].carry_in.c0, 0.5, 1e-12);
  EXPECT_NEAR(result.trace[0].carry_in.c1, 0.5, 1e-12);
  EXPECT_NEAR(result.trace[0].carry_out.c0, 0.02, 1e-12);
  EXPECT_NEAR(result.trace[0].carry_out.c1, 0.85, 1e-12);
  // Stage 1 -> (0.1305, 0.7295).
  EXPECT_NEAR(result.trace[1].carry_out.c0, 0.1305, 1e-12);
  EXPECT_NEAR(result.trace[1].carry_out.c1, 0.7295, 1e-12);
  // Stage 2 -> (0.2064, 0.58574).
  EXPECT_NEAR(result.trace[2].carry_out.c0, 0.2064, 1e-12);
  EXPECT_NEAR(result.trace[2].carry_out.c1, 0.58574, 1e-12);
  // Final P(Succ) = 0.738476.
  EXPECT_NEAR(result.p_success, 0.738476, 1e-9);
  EXPECT_NEAR(result.p_error, 1.0 - 0.738476, 1e-9);
}

struct Table7Case {
  int lpaa;
  int bits;
  double p_error_analytical;
  int printed_digits = 5;  // Table 7 truncates to this many decimals
};

// All analytical cells of Table 7 (p = 0.1 for every input bit).
const Table7Case kTable7[] = {
    {1, 2, 0.30780},  {1, 4, 0.53090},  {1, 6, 0.68240},  {1, 8, 0.78498},
    {1, 10, 0.85443}, {1, 12, 0.90145},
    {2, 2, 0.9271, 4}, {2, 4, 0.99468},  {2, 6, 0.99961},  {2, 8, 0.99997},
    {2, 10, 0.99999}, {2, 12, 0.99999},
    {3, 2, 0.95707},  {3, 4, 0.99763},  {3, 6, 0.99986},  {3, 8, 0.99999},
    {3, 10, 0.99999}, {3, 12, 0.99999},
    {4, 2, 0.31851},  {4, 4, 0.54033},  {4, 6, 0.68999},  {4, 8, 0.79092},
    {4, 10, 0.85899}, {4, 12, 0.90490},
    {5, 2, 0.27000},  {5, 4, 0.40950},  {5, 6, 0.52170},  {5, 8, 0.61258},
    {5, 10, 0.68618}, {5, 12, 0.74581},
    {6, 2, 0.1143, 4}, {6, 4, 0.13533},  {6, 6, 0.15266},  {6, 8, 0.16953},
    {6, 10, 0.18605}, {6, 12, 0.20225},
    {7, 2, 0.01980},  {7, 4, 0.02333},  {7, 6, 0.02685},  {7, 8, 0.03035},
    {7, 10, 0.03385}, {7, 12, 0.03733},
};

TEST(Table7, AllFortyTwoAnalyticalCellsMatchThePaper) {
  for (const Table7Case& c : kTable7) {
    const InputProfile profile =
        InputProfile::uniform(static_cast<std::size_t>(c.bits), 0.1);
    const double p_error =
        RecursiveAnalyzer::error_probability(lpaa(c.lpaa), profile);
    // The paper's table prints `printed_digits` decimals, truncating some
    // entries and rounding others (it was compiled by hand), so accept
    // one unit in the last printed place.
    const double tolerance = std::pow(10.0, -c.printed_digits) + 1e-12;
    EXPECT_NEAR(p_error, c.p_error_analytical, tolerance)
        << "LPAA" << c.lpaa << " N=" << c.bits << " computed " << p_error;
  }
}

TEST(Invariants, AccurateAdderNeverErrs) {
  sealpaa::prob::Xoshiro256StarStar rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t width = 1 + static_cast<std::size_t>(trial) % 16;
    const InputProfile profile = InputProfile::random(width, rng);
    const auto result = RecursiveAnalyzer::analyze(accurate(), profile);
    EXPECT_NEAR(result.p_success, 1.0, 1e-12);
    EXPECT_NEAR(result.p_error, 0.0, 1e-12);
  }
}

TEST(Invariants, SuccessMassIsMonotoneNonIncreasing) {
  sealpaa::prob::Xoshiro256StarStar rng(11);
  for (int cell_index = 1; cell_index <= 7; ++cell_index) {
    const InputProfile profile = InputProfile::random(12, rng);
    AnalyzeOptions options;
    options.record_trace = true;
    const auto result =
        RecursiveAnalyzer::analyze(lpaa(cell_index), profile, options);
    double previous = 1.0;
    for (const auto& stage : result.trace) {
      const double mass = stage.carry_out.success_mass();
      EXPECT_LE(mass, previous + 1e-12) << "LPAA" << cell_index;
      previous = mass;
    }
    // P(Succ) uses the final IPM, bounded by the pre-final success mass.
    EXPECT_LE(result.p_success,
              result.trace[result.trace.size() - 2].carry_out.success_mass() +
                  1e-12);
  }
}

TEST(Invariants, SingleStageMatchesDirectTruthTableSum) {
  // For N=1 the success probability is just the probability of drawing a
  // success row.
  const double pa = 0.35;
  const double pb = 0.6;
  const double pc = 0.25;
  const InputProfile profile({pa}, {pb}, pc);
  for (int i = 1; i <= 7; ++i) {
    double expected = 0.0;
    for (std::size_t row = 0; row < 8; ++row) {
      if (!lpaa(i).row_is_success(row)) continue;
      const double wa = (row & 4U) != 0 ? pa : 1 - pa;
      const double wb = (row & 2U) != 0 ? pb : 1 - pb;
      const double wc = (row & 1U) != 0 ? pc : 1 - pc;
      expected += wa * wb * wc;
    }
    EXPECT_NEAR(RecursiveAnalyzer::analyze(lpaa(i), profile).p_success,
                expected, 1e-14)
        << "LPAA" << i;
  }
}

TEST(CrossValidation, MatchesWeightedExhaustiveOnRandomProfiles) {
  using sealpaa::baseline::WeightedExhaustive;
  sealpaa::prob::Xoshiro256StarStar rng(2017);
  for (int cell_index = 1; cell_index <= 7; ++cell_index) {
    for (std::size_t width : {1u, 2u, 3u, 5u, 8u}) {
      const InputProfile profile = InputProfile::random(width, rng);
      const AdderChain chain =
          AdderChain::homogeneous(lpaa(cell_index), width);
      const double analytical =
          RecursiveAnalyzer::analyze(chain, profile).p_success;
      const double exhaustive =
          WeightedExhaustive::analyze(chain, profile).p_stage_success;
      EXPECT_NEAR(analytical, exhaustive, 1e-12)
          << "LPAA" << cell_index << " width " << width;
    }
  }
}

TEST(CrossValidation, HybridChainMatchesWeightedExhaustive) {
  using sealpaa::baseline::WeightedExhaustive;
  const AdderChain chain(
      {lpaa(7), lpaa(7), lpaa(6), lpaa(1), accurate(), lpaa(3)});
  sealpaa::prob::Xoshiro256StarStar rng(99);
  const InputProfile profile = InputProfile::random(6, rng);
  const double analytical =
      RecursiveAnalyzer::analyze(chain, profile).p_success;
  const double exhaustive =
      WeightedExhaustive::analyze(chain, profile).p_stage_success;
  EXPECT_NEAR(analytical, exhaustive, 1e-12);
}

TEST(HybridConsistency, HybridOfIdenticalCellsEqualsHomogeneous) {
  const InputProfile profile = InputProfile::uniform(8, 0.3);
  const AdderChain hybrid(std::vector<sealpaa::adders::AdderCell>(8, lpaa(4)));
  const double a = RecursiveAnalyzer::analyze(hybrid, profile).p_error;
  const double b = RecursiveAnalyzer::error_probability(lpaa(4), profile);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Validation, WidthMismatchThrows) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 5);
  EXPECT_THROW((void)RecursiveAnalyzer::analyze(chain, profile),
               std::invalid_argument);
}

TEST(StageLoss, SumsToErrorProbabilityAndLocatesWeakStages) {
  const InputProfile profile({0.5, 0.5, 0.5, 0.5}, {0.5, 0.5, 0.5, 0.5}, 0.5);
  const AdderChain chain(
      {accurate(), lpaa(2), accurate(), accurate()});
  AnalyzeOptions options;
  options.record_trace = true;
  const auto result = RecursiveAnalyzer::analyze(chain, profile, options);
  const auto losses = sealpaa::analysis::stage_loss_report(result);
  ASSERT_EQ(losses.size(), 4u);
  double total = 0.0;
  for (double loss : losses) total += loss;
  EXPECT_NEAR(total, result.p_error, 1e-14);
  // Only the LPAA2 stage loses mass.
  EXPECT_NEAR(losses[0], 0.0, 1e-14);
  EXPECT_GT(losses[1], 0.1);
  EXPECT_NEAR(losses[2], 0.0, 1e-14);
  EXPECT_NEAR(losses[3], 0.0, 1e-14);
}

TEST(StageLoss, RequiresTrace) {
  const auto result = RecursiveAnalyzer::analyze(
      lpaa(1), InputProfile::uniform(4, 0.5));
  EXPECT_THROW((void)sealpaa::analysis::stage_loss_report(result),
               std::invalid_argument);
}

TEST(FinalCarry, ComposabilityAcrossSplitChains) {
  // Analyzing [0..7] must equal analyzing [0..3] then feeding its final
  // carry state into [4..7] — the recursion's defining property.
  const InputProfile full = InputProfile::uniform(8, 0.2);
  const auto whole = RecursiveAnalyzer::analyze(lpaa(6), full);

  const InputProfile low = InputProfile::uniform(4, 0.2);
  const auto head = RecursiveAnalyzer::analyze(lpaa(6), low);

  sealpaa::analysis::CarryState carry = head.final_carry;
  const auto mkl = sealpaa::analysis::MklMatrices::from_cell(lpaa(6));
  double p_success = 0.0;
  for (int i = 0; i < 4; ++i) {
    if (i == 3) {
      p_success = sealpaa::analysis::final_success(mkl, 0.2, 0.2, carry);
    }
    carry = sealpaa::analysis::advance_stage(mkl, 0.2, 0.2, carry);
  }
  EXPECT_NEAR(p_success, whole.p_success, 1e-14);
}

}  // namespace

// Workload profile estimation: marginals, joints, correlations.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/correlated.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/profile_estimation.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::multibit::estimate_joint_profile;
using sealpaa::multibit::estimate_profile;
using sealpaa::multibit::InputProfile;
using sealpaa::multibit::JointInputProfile;
using sealpaa::multibit::operand_correlation;
using sealpaa::multibit::OperandSample;

TEST(Estimation, ExactCountsOnTinyTrace) {
  // Bit 0 of A: 1,0,1,1 -> 0.75; bit 0 of B: 0,0,1,1 -> 0.5.
  const std::vector<OperandSample> trace = {
      {0b1, 0b0}, {0b0, 0b0}, {0b1, 0b1}, {0b1, 0b1}};
  const InputProfile profile = estimate_profile(trace, 1);
  EXPECT_DOUBLE_EQ(profile.p_a(0), 0.75);
  EXPECT_DOUBLE_EQ(profile.p_b(0), 0.5);

  const JointInputProfile joint = estimate_joint_profile(trace, 1);
  EXPECT_DOUBLE_EQ(joint.joint(0)[0], 0.25);  // (0,0) once
  EXPECT_DOUBLE_EQ(joint.joint(0)[2], 0.25);  // (1,0) once
  EXPECT_DOUBLE_EQ(joint.joint(0)[3], 0.5);   // (1,1) twice
  EXPECT_DOUBLE_EQ(joint.joint(0)[1], 0.0);
}

TEST(Estimation, Validation) {
  EXPECT_THROW((void)estimate_profile({}, 4), std::invalid_argument);
  EXPECT_THROW((void)estimate_profile({{1, 2}}, 0), std::invalid_argument);
  EXPECT_THROW((void)estimate_joint_profile({{1, 2}}, 4, 0.0, -1.0),
               std::invalid_argument);
}

TEST(Estimation, RecoversGeneratingDistribution) {
  // Sample from a known correlated distribution and recover it.
  sealpaa::prob::Xoshiro256StarStar rng(501);
  const auto generator = JointInputProfile::correlated(
      InputProfile::uniform(6, 0.4), 0.6);
  std::vector<OperandSample> trace;
  trace.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    const auto sample = generator.sample(rng);
    trace.push_back({sample.a, sample.b});
  }
  const auto estimated = estimate_joint_profile(trace, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t idx = 0; idx < 4; ++idx) {
      EXPECT_NEAR(estimated.joint(i)[idx], generator.joint(i)[idx], 0.01)
          << "bit " << i << " idx " << idx;
    }
  }
  const auto rho = operand_correlation(trace, 6);
  for (double r : rho) EXPECT_NEAR(r, 0.6, 0.03);
}

TEST(Estimation, CorrelationOfIndependentBitsNearZero) {
  sealpaa::prob::Xoshiro256StarStar rng(503);
  std::vector<OperandSample> trace;
  for (int i = 0; i < 100000; ++i) {
    trace.push_back({rng.next() & 0xFF, rng.next() & 0xFF});
  }
  for (double r : operand_correlation(trace, 8)) {
    EXPECT_NEAR(r, 0.0, 0.02);
  }
}

TEST(Estimation, ConstantBitYieldsZeroCorrelation) {
  const std::vector<OperandSample> trace = {{0b1, 0b1}, {0b1, 0b0}};
  const auto rho = operand_correlation(trace, 1);
  EXPECT_DOUBLE_EQ(rho[0], 0.0);  // A is constant -> undefined -> 0
}

TEST(Estimation, SmoothingAvoidsHardZeros) {
  const std::vector<OperandSample> trace = {{1, 1}, {1, 1}};
  const auto unsmoothed = estimate_joint_profile(trace, 1, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(unsmoothed.joint(0)[0], 0.0);
  const auto smoothed = estimate_joint_profile(trace, 1, 0.0, 1.0);
  EXPECT_GT(smoothed.joint(0)[0], 0.0);
  double total = 0.0;
  for (double p : smoothed.joint(0)) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Estimation, AnalyticalPredictionTracksEmpiricalRateOnIidTrace) {
  // When the trace really is i.i.d. per-bit, the independent analytical
  // prediction converges to the trace-measured failure rate.
  sealpaa::prob::Xoshiro256StarStar rng(509);
  const InputProfile generator = InputProfile::uniform(8, 0.2);
  std::vector<OperandSample> trace;
  std::uint64_t failures = 0;
  const auto chain = sealpaa::multibit::AdderChain::homogeneous(
      sealpaa::adders::lpaa(6), 8);
  for (int i = 0; i < 200000; ++i) {
    const auto sample = generator.sample(rng);
    trace.push_back({sample.a, sample.b});
    if (!chain.evaluate_traced(sample.a, sample.b, false)
             .all_stages_success) {
      ++failures;
    }
  }
  const InputProfile estimated = estimate_profile(trace, 8, 0.0);
  const double predicted =
      sealpaa::analysis::RecursiveAnalyzer::analyze(chain, estimated).p_error;
  const double measured = static_cast<double>(failures) / 200000.0;
  EXPECT_NEAR(predicted, measured, 0.005);
}

}  // namespace

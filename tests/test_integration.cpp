// Cross-module integration: a full design flow exercised end-to-end —
// profile -> DSE -> analytical verification -> Monte Carlo validation ->
// synthesis -> netlist equivalence -> Verilog emission.
#include <gtest/gtest.h>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

TEST(Integration, FullDesignFlow) {
  // 1. A DSP-ish operand profile: dense LSBs, sparse MSBs.
  const std::vector<double> p_bits = {0.9, 0.8, 0.6, 0.4, 0.2, 0.1};
  const multibit::InputProfile profile(p_bits, p_bits, 0.5);

  // 2. Design-space exploration picks a hybrid chain.
  const explore::HybridDesign design =
      explore::HybridOptimizer::exhaustive(profile, adders::builtin_lpaas());
  ASSERT_EQ(design.stages.size(), 6u);

  // 3. Its analytical error probability must beat every homogeneous
  //    design and agree with the ground-truth oracle.
  const multibit::AdderChain chain = design.chain();
  const auto oracle = baseline::WeightedExhaustive::analyze(chain, profile);
  EXPECT_NEAR(design.p_error, 1.0 - oracle.p_stage_success, 1e-12);

  // 4. Monte Carlo validation within a 95% Wilson interval (plus slack).
  const auto mc = sim::MonteCarloSimulator::run(chain, profile, 100000);
  EXPECT_LT(std::abs(mc.metrics.stage_failure_rate() - design.p_error),
            0.01);

  // 5. Synthesis: the gate-level netlist is functionally identical to
  //    the behavioural chain on every input.
  const rtl::Netlist netlist = rtl::synthesize_chain(chain);
  for (std::uint64_t a = 0; a < 64; a += 5) {
    for (std::uint64_t b = 0; b < 64; b += 7) {
      for (bool cin : {false, true}) {
        std::vector<bool> inputs;
        for (int i = 0; i < 6; ++i) inputs.push_back(((a >> i) & 1ULL) != 0);
        for (int i = 0; i < 6; ++i) inputs.push_back(((b >> i) & 1ULL) != 0);
        inputs.push_back(cin);
        const auto out = netlist.evaluate(inputs);
        const auto expected = chain.evaluate(a, b, cin);
        std::uint64_t value = 0;
        for (int i = 0; i < 6; ++i) {
          value |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(i)])
                   << i;
        }
        value |= static_cast<std::uint64_t>(out[6]) << 6;
        EXPECT_EQ(value, expected.value(6));
      }
    }
  }

  // 6. Verilog emission produces a well-formed module.
  const std::string verilog = rtl::to_verilog(netlist, "designed_adder");
  EXPECT_NE(verilog.find("module designed_adder"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST(Integration, AnalysisConsistencyMatrix) {
  // Every probability engine answers the same question identically for
  // one nontrivial configuration.
  const multibit::InputProfile profile = multibit::InputProfile::uniform(7, 0.3);
  const multibit::AdderChain chain({adders::lpaa(4), adders::lpaa(6),
                                    adders::lpaa(6), adders::lpaa(1),
                                    adders::accurate(), adders::lpaa(7),
                                    adders::lpaa(5)});
  const double recursive =
      analysis::RecursiveAnalyzer::analyze(chain, profile).p_success;
  const double via_joint =
      analysis::JointCarryAnalyzer::analyze(chain, profile).p_stage_success;
  const double via_ie =
      baseline::InclusionExclusionAnalyzer::analyze(chain, profile).p_success;
  const double via_enum =
      baseline::WeightedExhaustive::analyze(chain, profile).p_stage_success;
  const double via_correlated =
      analysis::CorrelatedAnalyzer::analyze(
          chain, multibit::JointInputProfile::independent(profile))
          .p_success;
  EXPECT_NEAR(recursive, via_enum, 1e-12);
  EXPECT_NEAR(via_joint, via_enum, 1e-12);
  EXPECT_NEAR(via_ie, via_enum, 1e-10);
  EXPECT_NEAR(via_correlated, via_enum, 1e-12);
}

TEST(Integration, ImagePipelineQualityOrdering) {
  // The analytical per-adder error probabilities must predict the PSNR
  // ordering of the image-blend application (better P(E) -> better or
  // equal PSNR), at least for the clear-cut pairs.
  prob::Xoshiro256StarStar rng(77);
  const apps::Image a = apps::Image::blobs(48, 48, 4, rng);
  const apps::Image b = apps::Image::gradient(48, 48);
  const apps::Image reference = apps::exact_blend(a, b);

  const auto psnr_of = [&](const adders::AdderCell& cell) {
    return apps::image_psnr(
        reference,
        apps::approx_blend(a, b, multibit::AdderChain::homogeneous(cell, 8)));
  };
  // LPAA7 (P(E) ~ 0.76 at p=0.5, but sum-exact carries) vs LPAA2
  // (P(E) ~ 0.90 with severe sum corruption): clear-cut.
  EXPECT_GT(psnr_of(adders::lpaa(7)), psnr_of(adders::lpaa(2)));
  // Exact beats everything.
  EXPECT_TRUE(std::isinf(psnr_of(adders::accurate())));
}

TEST(Integration, BoundsPredictApplicationQuality) {
  // max_approximate_lsbs with a tight tolerance must produce a hybrid
  // whose measured MC failure rate honours the tolerance.
  const double epsilon = 0.05;
  const int k = analysis::max_approximate_lsbs(adders::lpaa(7), 12, 0.1,
                                               epsilon);
  ASSERT_GT(k, 0);
  std::vector<adders::AdderCell> stages;
  for (int i = 0; i < k; ++i) stages.push_back(adders::lpaa(7));
  for (int i = k; i < 12; ++i) stages.push_back(adders::accurate());
  const multibit::AdderChain chain(stages);
  const auto profile = multibit::InputProfile::uniform(12, 0.1);
  const auto mc = sim::MonteCarloSimulator::run(chain, profile, 200000);
  EXPECT_LT(mc.metrics.stage_failure_rate(), epsilon + 0.005);
}

TEST(Integration, GearFlowDetectAnalyzeCorrect) {
  const gear::GearConfig config = gear::GearConfig::etaii(12, 3);
  const auto profile = multibit::InputProfile::uniform(12, 0.5);
  // Analytical P(E) agrees with exhaustive...
  const auto analysis = gear::GearAnalyzer::analyze(config, profile);
  const auto metrics = gear::GearAnalyzer::exhaustive(config);
  EXPECT_NEAR(analysis.p_error_exact_dp, metrics.error_rate(), 1e-12);
  // ...and the corrector repairs exactly the cases the model flags.
  const gear::GearCorrector corrector(config);
  const gear::GearAdder adder(config);
  std::uint64_t wrong = 0;
  std::uint64_t flagged = 0;
  for (std::uint64_t a = 0; a < 4096; a += 3) {
    for (std::uint64_t b = 0; b < 4096; b += 5) {
      const bool is_wrong = adder.evaluate(a, b).value(12) !=
                            multibit::exact_add(a, b, false, 12).value(12);
      const bool has_flags = !corrector.detect(a, b).empty();
      wrong += is_wrong ? 1 : 0;
      flagged += has_flags ? 1 : 0;
      EXPECT_EQ(is_wrong, has_flags) << a << " " << b;
    }
  }
  EXPECT_EQ(wrong, flagged);
}

}  // namespace

// The joint (approximate carry, exact carry) DP: cross-checks against
// both the recursive analyzer and full weighted enumeration, including
// the exact error moments.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/joint.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::analysis::JointCarryAnalyzer;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::baseline::WeightedExhaustive;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

TEST(JointDp, StageSuccessAgreesWithRecursiveAnalyzer) {
  sealpaa::prob::Xoshiro256StarStar rng(41);
  for (int cell = 1; cell <= 7; ++cell) {
    const InputProfile profile = InputProfile::random(10, rng);
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 10);
    const auto joint = JointCarryAnalyzer::analyze(chain, profile);
    const auto recursive = RecursiveAnalyzer::analyze(chain, profile);
    EXPECT_NEAR(joint.p_stage_success, recursive.p_success, 1e-13)
        << "LPAA" << cell;
  }
}

TEST(JointDp, ValueCorrectnessAgreesWithWeightedExhaustive) {
  sealpaa::prob::Xoshiro256StarStar rng(43);
  for (int cell = 1; cell <= 7; ++cell) {
    for (std::size_t width : {2u, 4u, 7u}) {
      const InputProfile profile = InputProfile::random(width, rng);
      const AdderChain chain = AdderChain::homogeneous(lpaa(cell), width);
      const auto joint = JointCarryAnalyzer::analyze(chain, profile);
      const auto oracle = WeightedExhaustive::analyze(chain, profile);
      EXPECT_NEAR(joint.p_value_correct, oracle.p_value_correct, 1e-12)
          << "LPAA" << cell << " width " << width;
      EXPECT_NEAR(joint.p_sum_bits_correct, oracle.p_sum_bits_correct, 1e-12)
          << "LPAA" << cell << " width " << width;
    }
  }
}

TEST(JointDp, ValueCorrectnessAtLeastStageSuccess) {
  // A fully successful run is value-correct; masking can only add mass.
  sealpaa::prob::Xoshiro256StarStar rng(47);
  for (int cell = 1; cell <= 7; ++cell) {
    const InputProfile profile = InputProfile::random(12, rng);
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 12);
    const auto joint = JointCarryAnalyzer::analyze(chain, profile);
    EXPECT_GE(joint.p_value_correct, joint.p_stage_success - 1e-13)
        << "LPAA" << cell;
    EXPECT_GE(joint.p_sum_bits_correct, joint.p_value_correct - 1e-13)
        << "LPAA" << cell;
  }
}

TEST(JointDp, ExactChainIsPerfect) {
  const InputProfile profile = InputProfile::uniform(16, 0.37);
  const AdderChain chain = AdderChain::homogeneous(accurate(), 16);
  const auto joint = JointCarryAnalyzer::analyze(chain, profile);
  EXPECT_NEAR(joint.p_value_correct, 1.0, 1e-13);
  EXPECT_NEAR(joint.p_stage_success, 1.0, 1e-13);
}

TEST(Moments, AgreeWithWeightedExhaustive) {
  sealpaa::prob::Xoshiro256StarStar rng(53);
  for (int cell = 1; cell <= 7; ++cell) {
    for (std::size_t width : {2u, 4u, 6u}) {
      const InputProfile profile = InputProfile::random(width, rng);
      const AdderChain chain = AdderChain::homogeneous(lpaa(cell), width);
      const auto moments = JointCarryAnalyzer::moments(chain, profile);
      const auto oracle = WeightedExhaustive::analyze(chain, profile);
      EXPECT_NEAR(moments.mean, oracle.mean_error, 1e-9)
          << "LPAA" << cell << " width " << width;
      EXPECT_NEAR(moments.second_moment, oracle.mean_squared_error,
                  1e-7 * (1.0 + oracle.mean_squared_error))
          << "LPAA" << cell << " width " << width;
    }
  }
}

TEST(Moments, HybridChainsSupported) {
  sealpaa::prob::Xoshiro256StarStar rng(59);
  const AdderChain chain({lpaa(5), lpaa(6), accurate(), lpaa(7), lpaa(1)});
  const InputProfile profile = InputProfile::random(5, rng);
  const auto moments = JointCarryAnalyzer::moments(chain, profile);
  const auto oracle = WeightedExhaustive::analyze(chain, profile);
  EXPECT_NEAR(moments.mean, oracle.mean_error, 1e-10);
  EXPECT_NEAR(moments.second_moment, oracle.mean_squared_error, 1e-8);
}

TEST(Moments, ExactChainHasZeroError) {
  const InputProfile profile = InputProfile::uniform(12, 0.5);
  const AdderChain chain = AdderChain::homogeneous(accurate(), 12);
  const auto moments = JointCarryAnalyzer::moments(chain, profile);
  EXPECT_NEAR(moments.mean, 0.0, 1e-12);
  EXPECT_NEAR(moments.second_moment, 0.0, 1e-12);
  EXPECT_NEAR(moments.variance(), 0.0, 1e-12);
}

TEST(Moments, VarianceAndRmsDeriveFromMoments) {
  const InputProfile profile = InputProfile::uniform(6, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(5), 6);
  const auto moments = JointCarryAnalyzer::moments(chain, profile);
  EXPECT_NEAR(moments.variance(),
              moments.second_moment - moments.mean * moments.mean, 1e-12);
  EXPECT_NEAR(moments.rms() * moments.rms(), moments.second_moment, 1e-9);
}

TEST(JointDp, HomogeneousLpaaChainsHaveZeroMaskingGap) {
  // Empirical finding (bench_x4): for every built-in cell the stage-
  // success and value-level probabilities coincide on homogeneous
  // chains — LPAA1-5/7 corrupt a sum bit in every error row, and
  // LPAA6's exact XOR sum imprints any carry divergence immediately.
  const InputProfile profile = InputProfile::uniform(8, 0.5);
  for (int cell = 1; cell <= 7; ++cell) {
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 8);
    const auto joint = JointCarryAnalyzer::analyze(chain, profile);
    EXPECT_NEAR(joint.p_value_correct, joint.p_stage_success, 1e-12)
        << "LPAA" << cell;
  }
}

TEST(JointDp, HybridChainsCanMaskErrors) {
  // An LPAA6 carry-only error entering an LPAA2 stage at (a,b) = (1,1)
  // reproduces the exact sum bit and re-converges the carry, so the
  // value-level error probability is strictly below the stage-success
  // error probability.
  const AdderChain chain({lpaa(6), lpaa(2)});
  const InputProfile profile = InputProfile::uniform(2, 0.5);
  const auto joint = JointCarryAnalyzer::analyze(chain, profile);
  EXPECT_GT(joint.p_value_correct, joint.p_stage_success + 1e-6);
  // Cross-check against the enumeration oracle.
  const auto oracle = WeightedExhaustive::analyze(chain, profile);
  EXPECT_NEAR(joint.p_value_correct, oracle.p_value_correct, 1e-12);
  EXPECT_NEAR(joint.p_stage_success, oracle.p_stage_success, 1e-12);
}

TEST(JointDp, WidthMismatchThrows) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 5);
  EXPECT_THROW((void)JointCarryAnalyzer::analyze(chain, profile),
               std::invalid_argument);
  EXPECT_THROW((void)JointCarryAnalyzer::moments(chain, profile),
               std::invalid_argument);
}

}  // namespace

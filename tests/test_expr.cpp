// Boolean-expression cell builder.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/expr.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::AdderCell;
using sealpaa::adders::cell_from_expressions;
using sealpaa::adders::evaluate_expression;
using sealpaa::adders::lpaa;

TEST(Expr, BasicOperatorsAndPrecedence) {
  // '&' binds tighter than '^' binds tighter than '|'.
  EXPECT_TRUE(evaluate_expression("a | b & c", true, false, false));
  EXPECT_FALSE(evaluate_expression("(a | b) & c", true, false, false));
  EXPECT_TRUE(evaluate_expression("a ^ b & c", true, true, false));
  EXPECT_FALSE(evaluate_expression("a ^ b", true, true, false));
  EXPECT_TRUE(evaluate_expression("~a", false, false, false));
  EXPECT_TRUE(evaluate_expression("!a", false, false, false));
  EXPECT_TRUE(evaluate_expression("1", false, false, false));
  EXPECT_FALSE(evaluate_expression("0", true, true, true));
  EXPECT_TRUE(evaluate_expression("cin", false, false, true));
  EXPECT_TRUE(evaluate_expression("C", false, false, true));
}

TEST(Expr, WhitespaceAndNesting) {
  EXPECT_TRUE(evaluate_expression("  ( a &  ( b | ~ c ) ) ", true, true,
                                  false));
  EXPECT_TRUE(evaluate_expression("~(~a)", true, false, false));
  EXPECT_TRUE(evaluate_expression("~~a", true, false, false));
}

TEST(Expr, Errors) {
  EXPECT_THROW((void)evaluate_expression("a &", true, true, true),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_expression("(a", true, true, true),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_expression("a b", true, true, true),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_expression("x", true, true, true),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_expression("", true, true, true),
               std::invalid_argument);
}

TEST(Expr, ExactFullAdderFromEquations) {
  const AdderCell cell = cell_from_expressions(
      "FA", "a ^ b ^ cin", "(a & b) | (cin & (a ^ b))");
  EXPECT_TRUE(cell == accurate());
  EXPECT_TRUE(cell.is_exact());
}

TEST(Expr, Lpaa5FromEquations) {
  // The wire-only cell: sum = b, cout = a.
  const AdderCell cell = cell_from_expressions("wire", "b", "a");
  EXPECT_TRUE(cell == lpaa(5));
}

TEST(Expr, Lpaa6FromEquations) {
  // LPAA6: exact XOR sum, approximate carry = cin.
  const AdderCell cell = cell_from_expressions("inxa", "a ^ b ^ cin", "cin");
  EXPECT_TRUE(cell == lpaa(6));
}

TEST(Expr, CustomCellFlowsThroughTheAnalysis) {
  // A majority-sum oddball: its error probability must match the direct
  // truth-table route.
  const AdderCell custom = cell_from_expressions(
      "odd", "(a & b) | (b & cin) | (a & cin)", "a & b");
  const auto profile = sealpaa::multibit::InputProfile::uniform(6, 0.3);
  const double via_expr =
      sealpaa::analysis::RecursiveAnalyzer::error_probability(custom,
                                                              profile);
  // Rebuild by columns and compare.
  std::string sum_col;
  std::string carry_col;
  for (std::size_t row = 0; row < 8; ++row) {
    sum_col += custom.rows()[row].sum ? '1' : '0';
    carry_col += custom.rows()[row].carry ? '1' : '0';
  }
  const AdderCell rebuilt =
      AdderCell::from_columns("odd2", sum_col, carry_col);
  EXPECT_DOUBLE_EQ(
      via_expr,
      sealpaa::analysis::RecursiveAnalyzer::error_probability(rebuilt,
                                                              profile));
}

}  // namespace

// Block-adder layer: BlockChainSpec validation/parsing, the scalar and
// bit-sliced functional models, the exact BlockErrorModel conditioning
// DP against the weighted-exhaustive oracle (named families plus
// random heterogeneous chains), the monotonicity property in every
// prediction window, and the block-partition DSE.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/block_error.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/explore/block_search.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/blocks.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/sim/block_sliced.hpp"

namespace {

using sealpaa::analysis::BlockAnalysis;
using sealpaa::analysis::BlockErrorModel;
using sealpaa::analysis::ErrorPmf;
using sealpaa::multibit::BlockAdder;
using sealpaa::multibit::BlockChainSpec;
using sealpaa::multibit::exact_add;
using sealpaa::multibit::InputProfile;
using sealpaa::multibit::SubBlock;

// ---------------------------------------------------------------------
// BlockChainSpec: validation and parsing.
// ---------------------------------------------------------------------

TEST(BlockChainSpec, GeometryAccessors) {
  const BlockChainSpec spec(
      {SubBlock{4, 0}, SubBlock{2, 2}, SubBlock{3, 1}, SubBlock{3, 4}});
  EXPECT_EQ(spec.n(), 12);
  EXPECT_EQ(spec.block_count(), 4);
  EXPECT_EQ(spec.result_start(2), 6);
  EXPECT_EQ(spec.result_end(2), 9);
  EXPECT_EQ(spec.window_start(2), 5);
  EXPECT_EQ(spec.sub_adder_width(2), 4);
  EXPECT_EQ(spec.critical_path_bits(), 7);  // block 3: P=4 + R=3
  EXPECT_EQ(spec.producing_block(0), 0);
  EXPECT_EQ(spec.producing_block(5), 1);
  EXPECT_EQ(spec.producing_block(11), 3);
  EXPECT_FALSE(spec.is_exact());
  EXPECT_TRUE(BlockChainSpec({SubBlock{8, 0}}).is_exact());
}

TEST(BlockChainSpec, InvalidChainsRejected) {
  EXPECT_THROW(BlockChainSpec({}), std::invalid_argument);
  EXPECT_THROW(BlockChainSpec({SubBlock{0, 0}}), std::invalid_argument);
  EXPECT_THROW(BlockChainSpec({SubBlock{4, -1}}), std::invalid_argument);
  // Block 0 has no bits below it: P_0 must be 0.
  EXPECT_THROW(BlockChainSpec({SubBlock{4, 1}, SubBlock{4, 0}}),
               std::invalid_argument);
  // P_i may not reach below bit 0.
  EXPECT_THROW(BlockChainSpec({SubBlock{2, 0}, SubBlock{2, 3}}),
               std::invalid_argument);
}

TEST(BlockChainSpec, ParseRoundTripsAndRejects) {
  for (const char* text :
       {"4:0,4:2,4:1,4:4", "8:0,4:4,4:4", "aca:4", "etaii:4", "gear:4:4",
        "hetero:4:0,4:2,4:4,4:1"}) {
    const BlockChainSpec spec = BlockChainSpec::parse(16, text);
    EXPECT_EQ(spec.n(), 16) << text;
    // Canonical form re-parses to the same chain.
    const BlockChainSpec again = BlockChainSpec::parse(16, spec.to_string());
    EXPECT_EQ(again.blocks(), spec.blocks()) << text;
  }
  EXPECT_THROW(BlockChainSpec::parse(16, ""), std::invalid_argument);
  EXPECT_THROW(BlockChainSpec::parse(16, "4:0,4:4"), std::invalid_argument);
  EXPECT_THROW(BlockChainSpec::parse(16, "nope"), std::invalid_argument);
  EXPECT_THROW(BlockChainSpec::parse(16, "aca:0"), std::invalid_argument);
  EXPECT_THROW(BlockChainSpec::parse(16, "gear:24:4"), std::invalid_argument);
  EXPECT_THROW(BlockChainSpec::parse(16, "4:0,x:2,8:4"),
               std::invalid_argument);
}

TEST(BlockChainSpec, FamiliesMatchTheirDefinitions) {
  // ACA(N, K): leading K-bit exact block, then K-1-bit windows.
  const BlockChainSpec aca = BlockChainSpec::parse(8, "aca:4");
  EXPECT_EQ(aca.to_string(), "4:0,1:3,1:3,1:3,1:3");
  // ETAII(N, X): X-bit blocks, each predicting from the X bits below.
  const BlockChainSpec etaii = BlockChainSpec::parse(8, "etaii:3");
  EXPECT_EQ(etaii.to_string(), "3:0,3:3,2:3");
  // GeAr via the family parser == the relaxed GearConfig's own mapping.
  for (const auto& [n, r, p] : std::vector<std::array<int, 3>>{
           {16, 4, 4}, {9, 2, 2}, {10, 4, 3}, {8, 8, 0}}) {
    const BlockChainSpec from_parse = BlockChainSpec::parse(
        n, "gear:" + std::to_string(r) + ":" + std::to_string(p));
    const BlockChainSpec from_config =
        sealpaa::gear::GearConfig(n, r, p).to_blocks();
    EXPECT_EQ(from_parse.to_string(), from_config.to_string())
        << "GeAr(" << n << "," << r << "," << p << ")";
  }
}

// ---------------------------------------------------------------------
// Functional models: scalar BlockAdder vs GeAr, and the 64-lane
// bit-sliced kernel vs the scalar reference.
// ---------------------------------------------------------------------

TEST(BlockAdder, MatchesGearAdderOnGearGeometry) {
  for (const auto& [n, r, p] : std::vector<std::array<int, 3>>{
           {8, 2, 2}, {9, 2, 2}, {10, 4, 3}, {10, 3, 1}}) {
    const sealpaa::gear::GearConfig config(n, r, p);
    const sealpaa::gear::GearAdder gear{config};
    const BlockAdder block{config.to_blocks()};
    const std::uint64_t limit = 1ULL << n;
    for (std::uint64_t a = 0; a < limit; ++a) {
      for (std::uint64_t b = 0; b < limit; b += 3) {
        ASSERT_EQ(block.evaluate(a, b).value(static_cast<std::size_t>(n)),
                  gear.evaluate(a, b).value(static_cast<std::size_t>(n)))
            << config.describe() << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(BlockSliced, BitIdenticalToScalarBlockAdder) {
  std::mt19937_64 rng(0x5ea1'b10cULL);
  for (const char* text :
       {"gear:4:4", "aca:4", "etaii:3", "4:0,2:2,4:3,2:1,4:4"}) {
    const BlockChainSpec spec = BlockChainSpec::parse(16, text);
    const BlockAdder scalar(spec);
    const sealpaa::sim::BlockSlicedKernel kernel(spec);
    for (int round = 0; round < 32; ++round) {
      std::array<std::uint64_t, 64> a_lanes{};
      std::array<std::uint64_t, 64> b_lanes{};
      const std::uint64_t mask16 = (1ULL << 16) - 1;
      for (std::size_t lane = 0; lane < 64; ++lane) {
        a_lanes[lane] = rng() & mask16;
        b_lanes[lane] = rng() & mask16;
      }
      const std::uint64_t cin_word = rng();
      const auto result =
          kernel.run(a_lanes.data(), b_lanes.data(), cin_word, ~0ULL);
      for (std::size_t lane = 0; lane < 64; ++lane) {
        const bool cin = ((cin_word >> lane) & 1) != 0;
        const auto approx = scalar.evaluate(a_lanes[lane], b_lanes[lane], cin);
        const auto exact = exact_add(a_lanes[lane], b_lanes[lane], cin, 16);
        const std::int64_t error =
            static_cast<std::int64_t>(approx.value(16)) -
            static_cast<std::int64_t>(exact.value(16));
        ASSERT_EQ(((result.value_error_mask >> lane) & 1) != 0, error != 0)
            << text << " lane " << lane;
        ASSERT_EQ(result.error[lane], error) << text << " lane " << lane;
      }
    }
  }
}

// ---------------------------------------------------------------------
// The exact conditioning DP against the weighted-exhaustive oracle.
// ---------------------------------------------------------------------

void expect_analysis_matches_oracle(const BlockChainSpec& spec,
                                    const InputProfile& profile,
                                    double tolerance) {
  const BlockAnalysis analytic = BlockErrorModel::analyze(spec, profile);
  const ErrorPmf oracle = BlockErrorModel::exhaustive_pmf(spec, profile);
  const std::string what = spec.describe();
  // The standalone error-rate DP and the PMF agree with each other...
  EXPECT_NEAR(analytic.p_error, analytic.pmf.error_rate(), tolerance) << what;
  // ...and both match the enumeration, moment for moment.
  EXPECT_NEAR(analytic.p_error, oracle.error_rate(), tolerance) << what;
  EXPECT_NEAR(analytic.pmf.mean_error(), oracle.mean_error(), tolerance)
      << what;
  EXPECT_NEAR(analytic.pmf.mean_error_distance(),
              oracle.mean_error_distance(),
              tolerance * std::max(1.0, oracle.mean_error_distance()))
      << what;
  EXPECT_NEAR(analytic.pmf.mean_squared_error(), oracle.mean_squared_error(),
              tolerance * std::max(1.0, oracle.mean_squared_error()))
      << what;
  EXPECT_EQ(analytic.pmf.worst_case_error(), oracle.worst_case_error())
      << what;
  EXPECT_NEAR(analytic.pmf.total_mass(), 1.0, 1e-12) << what;
}

TEST(BlockErrorModel, NamedFamiliesMatchWeightedExhaustive) {
  for (const char* text : {"gear:3:3", "gear:2:2", "aca:4", "aca:3",
                           "etaii:3", "etaii:4", "gear:4:2"}) {
    for (const double p : {0.5, 0.42, 0.3}) {
      const BlockChainSpec spec = BlockChainSpec::parse(10, text);
      expect_analysis_matches_oracle(
          spec, InputProfile::uniform(10, p), 1e-12);
    }
  }
}

TEST(BlockErrorModel, NonUniformProfilesAndCinMatchTheOracle) {
  std::mt19937_64 rng(0xb10c'0001ULL);
  std::uniform_real_distribution<double> unit(0.05, 0.95);
  const BlockChainSpec spec = BlockChainSpec::parse(9, "3:0,2:2,2:3,2:1");
  for (int round = 0; round < 4; ++round) {
    std::vector<double> pa(9), pb(9);
    for (int j = 0; j < 9; ++j) {
      pa[static_cast<std::size_t>(j)] = unit(rng);
      pb[static_cast<std::size_t>(j)] = unit(rng);
    }
    const InputProfile profile(pa, pb, unit(rng));
    expect_analysis_matches_oracle(spec, profile, 1e-12);
  }
}

/// Random partition of `n` result bits into feasible (R_i, P_i) blocks.
std::vector<SubBlock> random_chain(std::mt19937_64& rng, int n) {
  std::vector<SubBlock> blocks;
  int s = 0;
  while (s < n) {
    const int r = 1 + static_cast<int>(rng() % static_cast<std::uint64_t>(
                                           std::min(5, n - s)));
    const int p_max = std::min(s, 6);
    const int p =
        s == 0 ? 0
               : static_cast<int>(rng() %
                                  static_cast<std::uint64_t>(p_max + 1));
    blocks.push_back({r, p});
    s += r;
  }
  return blocks;
}

TEST(BlockErrorModel, RandomHeterogeneousChainsMatchTheOracle) {
  // >= 50 random heterogeneous configurations.  Enumeration is the
  // bottleneck, so widths 8-11 carry the exact-oracle comparison...
  std::mt19937_64 rng(0xd1ff'5ea1ULL);
  for (int round = 0; round < 52; ++round) {
    const int n = 8 + static_cast<int>(rng() % 4);
    const BlockChainSpec spec{random_chain(rng, n)};
    const double p = 0.25 + 0.5 * (static_cast<double>(rng() % 101) / 100.0);
    expect_analysis_matches_oracle(
        spec, InputProfile::uniform(static_cast<std::size_t>(n), p), 1e-12);
  }
}

TEST(BlockErrorModel, WideChainsMatchTheBitSlicedSweep) {
  // ...and widths 12-16 are cross-validated against the bit-sliced
  // kernel: exhaustively at 12-13, via the two independent analytic
  // paths (error-rate DP vs PMF) plus Monte Carlo above that.
  std::mt19937_64 rng(0x1a4e'5ea1ULL);
  for (const int n : {12, 13}) {
    const BlockChainSpec spec{random_chain(rng, n)};
    const InputProfile profile = InputProfile::uniform_with_cin(
        static_cast<std::size_t>(n), 0.5, 0.0);
    const BlockAnalysis analytic = BlockErrorModel::analyze(spec, profile);
    const sealpaa::sim::ErrorMetrics sweep =
        sealpaa::sim::block_exhaustive(spec);
    EXPECT_NEAR(analytic.pmf.error_rate(), sweep.error_rate(), 1e-12)
        << spec.describe();
    EXPECT_NEAR(analytic.pmf.mean_error_distance(), sweep.mean_abs_error(),
                1e-9 * std::max(1.0, sweep.mean_abs_error()))
        << spec.describe();
    EXPECT_EQ(analytic.pmf.worst_case_error(), sweep.worst_case_error())
        << spec.describe();
  }
  for (const int n : {14, 15, 16}) {
    const BlockChainSpec spec{random_chain(rng, n)};
    const InputProfile profile =
        InputProfile::uniform(static_cast<std::size_t>(n), 0.42);
    const BlockAnalysis analytic = BlockErrorModel::analyze(spec, profile);
    EXPECT_NEAR(analytic.p_error, analytic.pmf.error_rate(), 1e-12)
        << spec.describe();
    const std::uint64_t samples = 1 << 18;
    const sealpaa::sim::ErrorMetrics mc = sealpaa::sim::block_monte_carlo(
        spec, profile, samples, 0x5eed'0000ULL + static_cast<unsigned>(n));
    const double sigma = std::sqrt(
        std::max(1e-12, analytic.p_error * (1.0 - analytic.p_error) /
                            static_cast<double>(samples)));
    EXPECT_NEAR(mc.error_rate(), analytic.p_error, 5.0 * sigma)
        << spec.describe();
  }
}

TEST(BlockErrorModel, ExactChainHasZeroError) {
  const BlockChainSpec spec({SubBlock{16, 0}});
  const BlockAnalysis analytic =
      BlockErrorModel::analyze(spec, InputProfile::uniform(16, 0.5));
  EXPECT_EQ(analytic.p_error, 0.0);
  EXPECT_EQ(analytic.pmf.worst_case_error(), 0);
  EXPECT_NEAR(analytic.pmf.probability_of(0), 1.0, 1e-12);
}

TEST(BlockErrorModel, ErrorRateMonotoneNonIncreasingInEveryWindow) {
  // Widening any single prediction window P_i (all else fixed) refines
  // that block's carry prediction: its mismatch event shrinks pointwise
  // (a longer propagate chain is a sub-event), so P(Error) cannot grow.
  const InputProfile profile = InputProfile::uniform(12, 0.5);
  const std::vector<SubBlock> base = {
      SubBlock{4, 0}, SubBlock{3, 0}, SubBlock{3, 0}, SubBlock{2, 0}};
  for (std::size_t i = 1; i < base.size(); ++i) {
    double previous = 2.0;  // above any probability
    std::vector<SubBlock> blocks = base;
    int s = 0;
    for (std::size_t k = 0; k < i; ++k) s += base[k].result_width;
    for (int p = 0; p <= std::min(s, 8); ++p) {
      blocks[i].prediction_width = p;
      const BlockAnalysis analytic =
          BlockErrorModel::analyze(BlockChainSpec(blocks), profile);
      EXPECT_LE(analytic.p_error, previous + 1e-12)
          << "block " << i << " P=" << p;
      previous = analytic.p_error;
    }
  }
}

TEST(BlockErrorModel, IndependenceApproxUpperBoundsNothingButIsClose) {
  // The independence approximation is a sanity companion, not a bound;
  // it must at least stay within a few percentage points at p = 0.5.
  const BlockChainSpec spec = BlockChainSpec::parse(16, "gear:4:4");
  const BlockAnalysis analytic =
      BlockErrorModel::analyze(spec, InputProfile::uniform(16, 0.5));
  EXPECT_NEAR(analytic.p_error_independent_approx, analytic.p_error, 0.05);
  ASSERT_EQ(analytic.block_mismatch.size(), 3u);
  EXPECT_EQ(analytic.block_mismatch[0], 0.0);  // block 0 sees the real cin
}

// ---------------------------------------------------------------------
// Engine registry integration.
// ---------------------------------------------------------------------

TEST(EngineBlockAnalytic, RequiresAndValidatesTheSpec) {
  namespace engine = sealpaa::engine;
  const auto profile = InputProfile::uniform(16, 0.5);
  const auto chain = sealpaa::multibit::AdderChain::homogeneous(
      sealpaa::adders::accurate(), 16);
  EXPECT_THROW((void)engine::evaluate(chain, profile,
                                      engine::Method::kBlockAnalytic),
               std::invalid_argument);
  engine::EvaluateOptions options;
  options.blocks = BlockChainSpec::parse(8, "gear:2:2");  // width mismatch
  EXPECT_THROW((void)engine::evaluate(chain, profile,
                                      engine::Method::kBlockAnalytic,
                                      options),
               std::invalid_argument);
  options.blocks = BlockChainSpec::parse(16, "gear:4:4");
  const engine::Evaluation result = engine::evaluate(
      chain, profile, engine::Method::kBlockAnalytic, options);
  const BlockAnalysis direct =
      BlockErrorModel::analyze(*options.blocks, profile);
  EXPECT_EQ(result.p_error, direct.p_error);
  ASSERT_TRUE(result.distribution.has_value());
  EXPECT_EQ(result.distribution->mean_squared_error,
            direct.pmf.mean_squared_error());
  ASSERT_TRUE(result.pmf.has_value());
  EXPECT_EQ(result.pmf->support, direct.pmf.support_size());
  EXPECT_TRUE(engine::method_info(engine::Method::kBlockAnalytic).exact);
  EXPECT_EQ(engine::parse_method("block-analytic"),
            engine::Method::kBlockAnalytic);
}

// ---------------------------------------------------------------------
// Partition DSE: the beam against the exhaustive ground truth.
// ---------------------------------------------------------------------

TEST(BlockOptimizer, BeamWithUnboundedWidthMatchesExhaustive) {
  namespace explore = sealpaa::explore;
  for (const auto objective :
       {explore::Objective::kErrorRate, explore::Objective::kMed,
        explore::Objective::kMse}) {
    explore::BlockSearchOptions options;
    options.max_sub_adder_width = 4;
    options.objective = objective;
    options.beam_width = 1u << 20;  // effectively unbounded
    const auto profile = InputProfile::uniform(8, 0.5);
    const auto best_exhaustive =
        explore::BlockOptimizer::exhaustive(profile, options);
    const auto best_beam = explore::BlockOptimizer::beam(profile, options);
    EXPECT_EQ(best_beam.spec().to_string(),
              best_exhaustive.spec().to_string())
        << "objective " << static_cast<int>(objective);
    EXPECT_EQ(best_beam.objective_value, best_exhaustive.objective_value);
  }
}

TEST(BlockOptimizer, RespectsTheLatencyBudget) {
  namespace explore = sealpaa::explore;
  explore::BlockSearchOptions options;
  options.max_sub_adder_width = 3;
  const auto design = explore::BlockOptimizer::beam(
      InputProfile::uniform(10, 0.5), options);
  const BlockChainSpec spec = design.spec();
  for (int i = 0; i < spec.block_count(); ++i) {
    EXPECT_LE(spec.sub_adder_width(i), 3) << "block " << i;
  }
  // A narrow beam is still a valid (if weaker) optimizer.
  options.beam_width = 2;
  const auto narrow = explore::BlockOptimizer::beam(
      InputProfile::uniform(10, 0.5), options);
  EXPECT_GE(narrow.objective_value, design.objective_value - 1e-15);
}

}  // namespace

// The engine layer's core contract: IncrementalAnalyzer and
// ChainEvaluator are *bit-identical* to RecursiveAnalyzer::analyze —
// EXPECT_EQ on doubles, not EXPECT_NEAR — because they replay the exact
// advance_stage / final_success call sequence from the same base carry.
// Plus the prefix cache's pathological configurations (zero capacity,
// tiny capacity with evictions) and exact counter accounting, and the
// method registry's parse/dispatch behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/cell.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/engine/chain_evaluator.hpp"
#include "sealpaa/engine/incremental.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::AdderCell;
using sealpaa::analysis::AnalysisResult;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::engine::ChainEvaluator;
using sealpaa::engine::ChainEvaluatorOptions;
using sealpaa::engine::IncrementalAnalyzer;
using sealpaa::engine::MklCache;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

/// Random 8-row truth table; exact tables are rerolled so every case
/// exercises a genuinely approximate cell.
AdderCell random_cell(sealpaa::prob::SplitMix64& rng, int index) {
  for (;;) {
    std::string sum_column(8, '0');
    std::string carry_column(8, '0');
    const std::uint64_t bits = rng.next();
    for (int row = 0; row < 8; ++row) {
      if (((bits >> row) & 1ULL) != 0) {
        sum_column[static_cast<std::size_t>(row)] = '1';
      }
      if (((bits >> (8 + row)) & 1ULL) != 0) {
        carry_column[static_cast<std::size_t>(row)] = '1';
      }
    }
    AdderCell cell = AdderCell::from_columns(
        "RND" + std::to_string(index), sum_column, carry_column,
        "randomized engine-test cell");
    if (!cell.is_exact()) return cell;
  }
}

void expect_bit_identical(const AnalysisResult& got,
                          const AnalysisResult& want,
                          const std::string& context) {
  EXPECT_EQ(got.p_success, want.p_success) << context;
  EXPECT_EQ(got.p_error, want.p_error) << context;
  EXPECT_EQ(got.final_carry.c0, want.final_carry.c0) << context;
  EXPECT_EQ(got.final_carry.c1, want.final_carry.c1) << context;
}

// ---------------------------------------------------------------------------
// IncrementalAnalyzer

TEST(IncrementalAnalyzer, BitIdenticalToBatchAnalyzerOverRandomChains) {
  sealpaa::prob::SplitMix64 cell_rng(0xe9c1'7e57'0000'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xe9c1'7e57'0000'0002ULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 13);
    std::vector<AdderCell> stages;
    for (std::size_t s = 0; s < width; ++s) {
      stages.push_back(
          random_cell(cell_rng, trial * 100 + static_cast<int>(s)));
    }
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const AdderChain chain(stages);
    const AnalysisResult batch = RecursiveAnalyzer::analyze(
        chain, profile, {.record_trace = true});

    IncrementalAnalyzer inc(profile);
    for (const AdderCell& cell : stages) inc.push_stage(cell);
    const AnalysisResult result = inc.finish(/*record_trace=*/true);

    expect_bit_identical(result, batch,
                         "trial " + std::to_string(trial) + " width " +
                             std::to_string(width));
    ASSERT_EQ(result.trace.size(), batch.trace.size());
    for (std::size_t s = 0; s < batch.trace.size(); ++s) {
      EXPECT_EQ(result.trace[s].carry_out.c0, batch.trace[s].carry_out.c0);
      EXPECT_EQ(result.trace[s].carry_out.c1, batch.trace[s].carry_out.c1);
    }
  }
}

TEST(IncrementalAnalyzer, RewindAndRepushStaysBitIdentical) {
  // Interleave pushes with pops/rewinds (the DFS access pattern of the
  // exhaustive optimizer) and check that the final result still exactly
  // matches a from-scratch batch analysis of whatever stage sequence is
  // on the stack at the end.
  sealpaa::prob::SplitMix64 cell_rng(0xe9c1'7e57'0000'0003ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xe9c1'7e57'0000'0004ULL);
  sealpaa::prob::SplitMix64 walk_rng(0xe9c1'7e57'0000'0005ULL);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 13);
    std::vector<AdderCell> palette;
    for (int c = 0; c < 5; ++c) {
      palette.push_back(random_cell(cell_rng, trial * 10 + c));
    }
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);

    IncrementalAnalyzer inc(profile);
    std::vector<AdderCell> on_stack;
    // Random walk: push when short, rewind to a random depth sometimes.
    while (on_stack.size() < width) {
      if (!on_stack.empty() && walk_rng.next() % 4 == 0) {
        const std::size_t depth = walk_rng.next() % on_stack.size();
        inc.rewind(depth);
        on_stack.erase(on_stack.begin() + static_cast<std::ptrdiff_t>(depth),
                       on_stack.end());
      }
      const AdderCell& cell = palette[walk_rng.next() % palette.size()];
      inc.push_stage(cell);
      on_stack.push_back(cell);
    }
    const AnalysisResult batch =
        RecursiveAnalyzer::analyze(AdderChain(on_stack), profile);
    expect_bit_identical(inc.finish(), batch, "trial " + std::to_string(trial));
  }
}

TEST(IncrementalAnalyzer, ValidatesStackDiscipline) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  IncrementalAnalyzer inc(profile);
  EXPECT_THROW((void)inc.finish(), std::logic_error);   // not full
  EXPECT_THROW(inc.pop(), std::logic_error);            // empty
  EXPECT_THROW(inc.rewind(1), std::invalid_argument);   // beyond depth
  for (int i = 0; i < 4; ++i) inc.push_stage(cell);
  EXPECT_THROW(inc.push_stage(cell), std::logic_error);  // full
  EXPECT_NO_THROW((void)inc.finish());
  inc.rewind(0);
  EXPECT_EQ(inc.depth(), 0u);
}

TEST(IncrementalAnalyzer, MklCacheDerivesEachDistinctCellOnce) {
  MklCache cache;
  const auto lpaas = sealpaa::adders::builtin_lpaas();
  const InputProfile profile = InputProfile::uniform(8, 0.3);
  IncrementalAnalyzer inc(profile, &cache);
  for (int round = 0; round < 4; ++round) {
    inc.rewind(0);
    for (std::size_t s = 0; s < 8; ++s) {
      inc.push_stage(lpaas[s % lpaas.size()]);
    }
  }
  EXPECT_EQ(cache.size(), lpaas.size());
  EXPECT_EQ(cache.derivations(), lpaas.size());  // never re-derived
}

// ---------------------------------------------------------------------------
// ChainEvaluator: the >=200-chain bit-identity property

TEST(ChainEvaluator, BitIdenticalToBatchAnalyzerOver200RandomChains) {
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xc4a1'7e57'0000'0002ULL);
  sealpaa::prob::SplitMix64 choice_rng(0xc4a1'7e57'0000'0003ULL);
  int chains_checked = 0;
  for (int config = 0; config < 10; ++config) {
    const std::size_t width = 4 + static_cast<std::size_t>(config % 13);
    const std::size_t palette_size = 4 + static_cast<std::size_t>(config % 5);
    std::vector<AdderCell> palette;
    for (std::size_t c = 0; c < palette_size; ++c) {
      palette.push_back(
          random_cell(cell_rng, config * 100 + static_cast<int>(c)));
    }
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    ChainEvaluator evaluator(profile, palette);

    for (int rep = 0; rep < 25; ++rep) {
      std::vector<std::size_t> choices(width);
      for (std::size_t s = 0; s < width; ++s) {
        choices[s] = choice_rng.next() % palette_size;
      }
      std::vector<AdderCell> stages;
      for (const std::size_t c : choices) stages.push_back(palette[c]);
      const AnalysisResult batch =
          RecursiveAnalyzer::analyze(AdderChain(stages), profile);
      const std::string context = "config " + std::to_string(config) +
                                  " rep " + std::to_string(rep);
      // Cold (first visit caches the prefixes) and warm (served from the
      // cache) evaluations must both be exact.
      expect_bit_identical(evaluator.evaluate(choices), batch, context);
      expect_bit_identical(evaluator.evaluate(choices), batch,
                           context + " (warm)");
      ++chains_checked;
    }
    EXPECT_GT(evaluator.stats().hits, 0u) << "config " << config;
  }
  EXPECT_GE(chains_checked, 200);
}

TEST(ChainEvaluator, FinalSuccessMatchesIncrementalScoringPath) {
  // final_success(prefix, c) is the raw Equation 12 dot product the DSE
  // ranks by — identical to IncrementalAnalyzer::final_success_with.
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0004ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xc4a1'7e57'0000'0005ULL);
  const std::size_t width = 8;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 5; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.05, 0.95);
  ChainEvaluator evaluator(profile, palette);
  MklCache mkls;
  IncrementalAnalyzer inc(profile, &mkls);

  std::vector<std::size_t> prefix;
  for (std::size_t s = 0; s < width - 1; ++s) {
    prefix.push_back(s % palette.size());
    inc.push_stage(palette[prefix.back()]);
  }
  for (std::size_t c = 0; c < palette.size(); ++c) {
    EXPECT_EQ(evaluator.final_success(prefix, c),
              inc.final_success_with(mkls.of(palette[c])))
        << "last choice " << c;
  }
}

// ---------------------------------------------------------------------------
// Cache pathologies

TEST(ChainEvaluator, ZeroCapacityDisablesCachingButStaysExact) {
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0006ULL);
  const std::size_t width = 6;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 3; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile = InputProfile::uniform(width, 0.3);
  ChainEvaluator evaluator(profile, palette,
                           ChainEvaluatorOptions{.cache_capacity = 0});

  const std::vector<std::size_t> choices{0, 1, 2, 0, 1, 2};
  std::vector<AdderCell> stages;
  for (const std::size_t c : choices) stages.push_back(palette[c]);
  const AnalysisResult batch =
      RecursiveAnalyzer::analyze(AdderChain(stages), profile);
  for (int rep = 0; rep < 3; ++rep) {
    expect_bit_identical(evaluator.evaluate(choices), batch,
                         "rep " + std::to_string(rep));
  }
  const auto& stats = evaluator.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  // Every stage recomputed every time: width advances per evaluate().
  EXPECT_EQ(stats.stages_computed, 3u * width);
  EXPECT_EQ(stats.chains_evaluated, 3u);
  EXPECT_EQ(evaluator.cache_size(), 0u);
}

TEST(ChainEvaluator, TinyCapacityEvictsLruAndStaysExact) {
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0007ULL);
  sealpaa::prob::SplitMix64 choice_rng(0xc4a1'7e57'0000'0008ULL);
  const std::size_t width = 8;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 4; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile = InputProfile::uniform(width, 0.4);
  for (const std::size_t capacity : {1u, 2u, 3u}) {
    ChainEvaluator evaluator(
        profile, palette, ChainEvaluatorOptions{.cache_capacity = capacity});
    for (int rep = 0; rep < 40; ++rep) {
      std::vector<std::size_t> choices(width);
      for (std::size_t s = 0; s < width; ++s) {
        choices[s] = choice_rng.next() % palette.size();
      }
      std::vector<AdderCell> stages;
      for (const std::size_t c : choices) stages.push_back(palette[c]);
      expect_bit_identical(
          evaluator.evaluate(choices),
          RecursiveAnalyzer::analyze(AdderChain(stages), profile),
          "capacity " + std::to_string(capacity) + " rep " +
              std::to_string(rep));
      EXPECT_LE(evaluator.cache_size(), capacity);
    }
    EXPECT_GT(evaluator.stats().evictions, 0u)
        << "capacity " << capacity << " never evicted";
    EXPECT_EQ(evaluator.stats().insertions,
              evaluator.stats().evictions + evaluator.cache_size());
  }
}

TEST(ChainEvaluator, EvictionKeepsMostRecentlyUsedPrefix) {
  // Capacity 2, width 4: evaluating one chain inserts prefixes of depth
  // 1, 2, 3 — depth 1 (least recently used) must be the one evicted, so
  // a re-evaluation still hits the full depth-3 prefix immediately.
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  ChainEvaluator evaluator(profile, {cell},
                           ChainEvaluatorOptions{.cache_capacity = 2});
  const std::vector<std::size_t> choices{0, 0, 0, 0};
  (void)evaluator.evaluate(choices);
  EXPECT_EQ(evaluator.stats().insertions, 3u);
  EXPECT_EQ(evaluator.stats().evictions, 1u);  // depth-1 prefix dropped
  EXPECT_EQ(evaluator.cache_size(), 2u);

  (void)evaluator.evaluate(choices);
  // Depth 3 was still cached: exactly one new hit, no new misses.
  EXPECT_EQ(evaluator.stats().hits, 1u);
  EXPECT_EQ(evaluator.stats().misses, 3u);
  EXPECT_EQ(evaluator.stats().evictions, 1u);
}

TEST(ChainEvaluator, CountersMatchHandComputedScenario) {
  // Width 4, ample capacity.  First evaluate({c,c,c,c}): the probe walks
  // depths 3, 2, 1 (3 misses), computes and caches them (3 insertions,
  // 3 advances) and advances the uncached final stage: 4 stages total.
  // Second evaluate: one probe hits depth 3, only the final stage is
  // recomputed.
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  ChainEvaluator evaluator(profile, {cell});
  const std::vector<std::size_t> choices{0, 0, 0, 0};

  (void)evaluator.evaluate(choices);
  EXPECT_EQ(evaluator.stats().hits, 0u);
  EXPECT_EQ(evaluator.stats().misses, 3u);
  EXPECT_EQ(evaluator.stats().insertions, 3u);
  EXPECT_EQ(evaluator.stats().evictions, 0u);
  EXPECT_EQ(evaluator.stats().stages_computed, 4u);
  EXPECT_EQ(evaluator.stats().chains_evaluated, 1u);

  (void)evaluator.evaluate(choices);
  EXPECT_EQ(evaluator.stats().hits, 1u);
  EXPECT_EQ(evaluator.stats().misses, 3u);
  EXPECT_EQ(evaluator.stats().insertions, 3u);
  EXPECT_EQ(evaluator.stats().stages_computed, 5u);
  EXPECT_EQ(evaluator.stats().chains_evaluated, 2u);
  EXPECT_DOUBLE_EQ(evaluator.stats().hit_rate(), 0.25);

  evaluator.reset_stats();
  EXPECT_EQ(evaluator.stats().hits, 0u);
  evaluator.clear();
  EXPECT_EQ(evaluator.cache_size(), 0u);
}

TEST(ChainEvaluator, ValidatesArguments) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  EXPECT_THROW(ChainEvaluator(profile, {}), std::invalid_argument);
  ChainEvaluator evaluator(profile, {cell});
  const std::vector<std::size_t> too_long{0, 0, 0, 0, 0};
  EXPECT_THROW((void)evaluator.carry_after(too_long), std::invalid_argument);
  const std::vector<std::size_t> short_chain{0, 0, 0};
  EXPECT_THROW((void)evaluator.evaluate(short_chain), std::invalid_argument);
  EXPECT_THROW((void)evaluator.final_success(too_long, 0),
               std::invalid_argument);
  const std::vector<std::size_t> bad_choice{0, 0, 0, 1};
  EXPECT_THROW((void)evaluator.evaluate(bad_choice), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Method registry

TEST(MethodRegistry, NamesRoundTripThroughParse) {
  for (const auto& info : sealpaa::engine::all_methods()) {
    EXPECT_EQ(sealpaa::engine::parse_method(info.name), info.method);
    EXPECT_EQ(sealpaa::engine::method_name(info.method), info.name);
  }
  EXPECT_EQ(sealpaa::engine::all_methods().size(), 7u);
  EXPECT_EQ(sealpaa::engine::parse_method("analytic-pmf"),
            sealpaa::engine::Method::kAnalyticPmf);
  EXPECT_EQ(sealpaa::engine::parse_method("block-analytic"),
            sealpaa::engine::Method::kBlockAnalytic);
}

TEST(MethodRegistry, ParseRejectsUnknownNamesListingValidOnes) {
  try {
    (void)sealpaa::engine::parse_method("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("recursive"), std::string::npos);
    EXPECT_NE(message.find("monte-carlo"), std::string::npos);
  }
}

TEST(MethodRegistry, ExactEnginesAgreeThroughUniformEvaluate) {
  using sealpaa::engine::Method;
  sealpaa::prob::SplitMix64 cell_rng(0x3e7'0000'0001ULL);
  const AdderCell cell = random_cell(cell_rng, 0);
  const std::size_t width = 6;
  const InputProfile profile = InputProfile::uniform(width, 0.5);
  const AdderChain chain = AdderChain::homogeneous(cell, width);

  const auto recursive =
      sealpaa::engine::evaluate(chain, profile, Method::kRecursive);
  const auto ie =
      sealpaa::engine::evaluate(chain, profile, Method::kInclusionExclusion);
  const auto exhaustive =
      sealpaa::engine::evaluate(chain, profile, Method::kExhaustiveSim);
  const auto weighted =
      sealpaa::engine::evaluate(chain, profile, Method::kWeightedExhaustive);

  EXPECT_NEAR(ie.p_error, recursive.p_error, 1e-12);
  EXPECT_NEAR(exhaustive.p_error, recursive.p_error, 1e-12);
  EXPECT_NEAR(weighted.p_error, recursive.p_error, 1e-12);
  EXPECT_EQ(recursive.work_items, width);
  EXPECT_EQ(ie.work_items, (1ULL << width) - 1);

  sealpaa::engine::EvaluateOptions mc_options;
  mc_options.samples = 200'000;
  const auto mc = sealpaa::engine::evaluate(chain, profile,
                                            Method::kMonteCarlo, mc_options);
  EXPECT_FALSE(mc.stage_failure_ci.empty());
  EXPECT_LE(mc.stage_failure_ci.low, recursive.p_error);
  EXPECT_GE(mc.stage_failure_ci.high, recursive.p_error);
}

TEST(MethodRegistry, ExhaustiveSimRejectsNonUniformProfiles) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(6, 0.3);
  EXPECT_THROW((void)sealpaa::engine::evaluate(
                   cell, profile, sealpaa::engine::Method::kExhaustiveSim),
               std::invalid_argument);
}

TEST(MethodRegistry, EvaluateValidatesWidthMismatch) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const AdderChain chain = AdderChain::homogeneous(cell, 4);
  const InputProfile profile = InputProfile::uniform(6, 0.5);
  EXPECT_THROW((void)sealpaa::engine::evaluate(
                   chain, profile, sealpaa::engine::Method::kRecursive),
               std::invalid_argument);
}

}  // namespace

// The engine layer's core contract: IncrementalAnalyzer and
// ChainEvaluator are *bit-identical* to RecursiveAnalyzer::analyze —
// EXPECT_EQ on doubles, not EXPECT_NEAR — because they replay the exact
// advance_stage / final_success call sequence from the same base carry.
// Plus the prefix cache's pathological configurations (zero capacity,
// tiny capacity with evictions) and exact counter accounting, and the
// method registry's parse/dispatch behaviour.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/cell.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/engine/batch_evaluator.hpp"
#include "sealpaa/engine/chain_evaluator.hpp"
#include "sealpaa/engine/incremental.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/util/kernel_override.hpp"

namespace {

using sealpaa::adders::AdderCell;
using sealpaa::analysis::AnalysisResult;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::engine::BatchMode;
using sealpaa::engine::ChainBatchEvaluator;
using sealpaa::engine::ChainEvaluator;
using sealpaa::engine::ChainEvaluatorOptions;
using sealpaa::engine::IncrementalAnalyzer;
using sealpaa::engine::MklCache;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;
using sealpaa::util::KernelLevel;

/// Clears the process-wide kernel cap on scope exit so an assertion
/// failure inside a forced-level loop cannot leak the cap into later
/// tests.
struct ForcedKernelGuard {
  ~ForcedKernelGuard() { sealpaa::util::set_forced_kernel(std::nullopt); }
};

/// Random 8-row truth table; exact tables are rerolled so every case
/// exercises a genuinely approximate cell.
AdderCell random_cell(sealpaa::prob::SplitMix64& rng, int index) {
  for (;;) {
    std::string sum_column(8, '0');
    std::string carry_column(8, '0');
    const std::uint64_t bits = rng.next();
    for (int row = 0; row < 8; ++row) {
      if (((bits >> row) & 1ULL) != 0) {
        sum_column[static_cast<std::size_t>(row)] = '1';
      }
      if (((bits >> (8 + row)) & 1ULL) != 0) {
        carry_column[static_cast<std::size_t>(row)] = '1';
      }
    }
    AdderCell cell = AdderCell::from_columns(
        "RND" + std::to_string(index), sum_column, carry_column,
        "randomized engine-test cell");
    if (!cell.is_exact()) return cell;
  }
}

void expect_bit_identical(const AnalysisResult& got,
                          const AnalysisResult& want,
                          const std::string& context) {
  EXPECT_EQ(got.p_success, want.p_success) << context;
  EXPECT_EQ(got.p_error, want.p_error) << context;
  EXPECT_EQ(got.final_carry.c0, want.final_carry.c0) << context;
  EXPECT_EQ(got.final_carry.c1, want.final_carry.c1) << context;
}

// ---------------------------------------------------------------------------
// IncrementalAnalyzer

TEST(IncrementalAnalyzer, BitIdenticalToBatchAnalyzerOverRandomChains) {
  sealpaa::prob::SplitMix64 cell_rng(0xe9c1'7e57'0000'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xe9c1'7e57'0000'0002ULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 13);
    std::vector<AdderCell> stages;
    for (std::size_t s = 0; s < width; ++s) {
      stages.push_back(
          random_cell(cell_rng, trial * 100 + static_cast<int>(s)));
    }
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const AdderChain chain(stages);
    const AnalysisResult batch = RecursiveAnalyzer::analyze(
        chain, profile, {.record_trace = true});

    IncrementalAnalyzer inc(profile);
    for (const AdderCell& cell : stages) inc.push_stage(cell);
    const AnalysisResult result = inc.finish(/*record_trace=*/true);

    expect_bit_identical(result, batch,
                         "trial " + std::to_string(trial) + " width " +
                             std::to_string(width));
    ASSERT_EQ(result.trace.size(), batch.trace.size());
    for (std::size_t s = 0; s < batch.trace.size(); ++s) {
      EXPECT_EQ(result.trace[s].carry_out.c0, batch.trace[s].carry_out.c0);
      EXPECT_EQ(result.trace[s].carry_out.c1, batch.trace[s].carry_out.c1);
    }
  }
}

TEST(IncrementalAnalyzer, RewindAndRepushStaysBitIdentical) {
  // Interleave pushes with pops/rewinds (the DFS access pattern of the
  // exhaustive optimizer) and check that the final result still exactly
  // matches a from-scratch batch analysis of whatever stage sequence is
  // on the stack at the end.
  sealpaa::prob::SplitMix64 cell_rng(0xe9c1'7e57'0000'0003ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xe9c1'7e57'0000'0004ULL);
  sealpaa::prob::SplitMix64 walk_rng(0xe9c1'7e57'0000'0005ULL);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial % 13);
    std::vector<AdderCell> palette;
    for (int c = 0; c < 5; ++c) {
      palette.push_back(random_cell(cell_rng, trial * 10 + c));
    }
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);

    IncrementalAnalyzer inc(profile);
    std::vector<AdderCell> on_stack;
    // Random walk: push when short, rewind to a random depth sometimes.
    while (on_stack.size() < width) {
      if (!on_stack.empty() && walk_rng.next() % 4 == 0) {
        const std::size_t depth = walk_rng.next() % on_stack.size();
        inc.rewind(depth);
        on_stack.erase(on_stack.begin() + static_cast<std::ptrdiff_t>(depth),
                       on_stack.end());
      }
      const AdderCell& cell = palette[walk_rng.next() % palette.size()];
      inc.push_stage(cell);
      on_stack.push_back(cell);
    }
    const AnalysisResult batch =
        RecursiveAnalyzer::analyze(AdderChain(on_stack), profile);
    expect_bit_identical(inc.finish(), batch, "trial " + std::to_string(trial));
  }
}

TEST(IncrementalAnalyzer, ValidatesStackDiscipline) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  IncrementalAnalyzer inc(profile);
  EXPECT_THROW((void)inc.finish(), std::logic_error);   // not full
  EXPECT_THROW(inc.pop(), std::logic_error);            // empty
  EXPECT_THROW(inc.rewind(1), std::invalid_argument);   // beyond depth
  for (int i = 0; i < 4; ++i) inc.push_stage(cell);
  EXPECT_THROW(inc.push_stage(cell), std::logic_error);  // full
  EXPECT_NO_THROW((void)inc.finish());
  inc.rewind(0);
  EXPECT_EQ(inc.depth(), 0u);
}

TEST(IncrementalAnalyzer, MklCacheDerivesEachDistinctCellOnce) {
  MklCache cache;
  const auto lpaas = sealpaa::adders::builtin_lpaas();
  const InputProfile profile = InputProfile::uniform(8, 0.3);
  IncrementalAnalyzer inc(profile, &cache);
  for (int round = 0; round < 4; ++round) {
    inc.rewind(0);
    for (std::size_t s = 0; s < 8; ++s) {
      inc.push_stage(lpaas[s % lpaas.size()]);
    }
  }
  EXPECT_EQ(cache.size(), lpaas.size());
  EXPECT_EQ(cache.derivations(), lpaas.size());  // never re-derived
}

// ---------------------------------------------------------------------------
// ChainEvaluator: the >=200-chain bit-identity property

TEST(ChainEvaluator, BitIdenticalToBatchAnalyzerOver200RandomChains) {
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xc4a1'7e57'0000'0002ULL);
  sealpaa::prob::SplitMix64 choice_rng(0xc4a1'7e57'0000'0003ULL);
  int chains_checked = 0;
  for (int config = 0; config < 10; ++config) {
    const std::size_t width = 4 + static_cast<std::size_t>(config % 13);
    const std::size_t palette_size = 4 + static_cast<std::size_t>(config % 5);
    std::vector<AdderCell> palette;
    for (std::size_t c = 0; c < palette_size; ++c) {
      palette.push_back(
          random_cell(cell_rng, config * 100 + static_cast<int>(c)));
    }
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    ChainEvaluator evaluator(profile, palette);

    for (int rep = 0; rep < 25; ++rep) {
      std::vector<std::size_t> choices(width);
      for (std::size_t s = 0; s < width; ++s) {
        choices[s] = choice_rng.next() % palette_size;
      }
      std::vector<AdderCell> stages;
      for (const std::size_t c : choices) stages.push_back(palette[c]);
      const AnalysisResult batch =
          RecursiveAnalyzer::analyze(AdderChain(stages), profile);
      const std::string context = "config " + std::to_string(config) +
                                  " rep " + std::to_string(rep);
      // Cold (first visit caches the prefixes) and warm (served from the
      // cache) evaluations must both be exact.
      expect_bit_identical(evaluator.evaluate(choices), batch, context);
      expect_bit_identical(evaluator.evaluate(choices), batch,
                           context + " (warm)");
      ++chains_checked;
    }
    EXPECT_GT(evaluator.stats().hits, 0u) << "config " << config;
  }
  EXPECT_GE(chains_checked, 200);
}

TEST(ChainEvaluator, FinalSuccessMatchesIncrementalScoringPath) {
  // final_success(prefix, c) is the raw Equation 12 dot product the DSE
  // ranks by — identical to IncrementalAnalyzer::final_success_with.
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0004ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xc4a1'7e57'0000'0005ULL);
  const std::size_t width = 8;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 5; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.05, 0.95);
  ChainEvaluator evaluator(profile, palette);
  MklCache mkls;
  IncrementalAnalyzer inc(profile, &mkls);

  std::vector<std::size_t> prefix;
  for (std::size_t s = 0; s < width - 1; ++s) {
    prefix.push_back(s % palette.size());
    inc.push_stage(palette[prefix.back()]);
  }
  for (std::size_t c = 0; c < palette.size(); ++c) {
    EXPECT_EQ(evaluator.final_success(prefix, c),
              inc.final_success_with(mkls.of(palette[c])))
        << "last choice " << c;
  }
}

// ---------------------------------------------------------------------------
// Cache pathologies

TEST(ChainEvaluator, ZeroCapacityDisablesCachingButStaysExact) {
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0006ULL);
  const std::size_t width = 6;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 3; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile = InputProfile::uniform(width, 0.3);
  ChainEvaluator evaluator(profile, palette,
                           ChainEvaluatorOptions{.cache_capacity = 0});

  const std::vector<std::size_t> choices{0, 1, 2, 0, 1, 2};
  std::vector<AdderCell> stages;
  for (const std::size_t c : choices) stages.push_back(palette[c]);
  const AnalysisResult batch =
      RecursiveAnalyzer::analyze(AdderChain(stages), profile);
  for (int rep = 0; rep < 3; ++rep) {
    expect_bit_identical(evaluator.evaluate(choices), batch,
                         "rep " + std::to_string(rep));
  }
  const auto& stats = evaluator.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  // Every stage recomputed every time: width advances per evaluate().
  EXPECT_EQ(stats.stages_computed, 3u * width);
  EXPECT_EQ(stats.chains_evaluated, 3u);
  EXPECT_EQ(evaluator.cache_size(), 0u);
}

TEST(ChainEvaluator, TinyCapacityEvictsLruAndStaysExact) {
  sealpaa::prob::SplitMix64 cell_rng(0xc4a1'7e57'0000'0007ULL);
  sealpaa::prob::SplitMix64 choice_rng(0xc4a1'7e57'0000'0008ULL);
  const std::size_t width = 8;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 4; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile = InputProfile::uniform(width, 0.4);
  for (const std::size_t capacity : {1u, 2u, 3u}) {
    ChainEvaluator evaluator(
        profile, palette, ChainEvaluatorOptions{.cache_capacity = capacity});
    for (int rep = 0; rep < 40; ++rep) {
      std::vector<std::size_t> choices(width);
      for (std::size_t s = 0; s < width; ++s) {
        choices[s] = choice_rng.next() % palette.size();
      }
      std::vector<AdderCell> stages;
      for (const std::size_t c : choices) stages.push_back(palette[c]);
      expect_bit_identical(
          evaluator.evaluate(choices),
          RecursiveAnalyzer::analyze(AdderChain(stages), profile),
          "capacity " + std::to_string(capacity) + " rep " +
              std::to_string(rep));
      EXPECT_LE(evaluator.cache_size(), capacity);
    }
    EXPECT_GT(evaluator.stats().evictions, 0u)
        << "capacity " << capacity << " never evicted";
    EXPECT_EQ(evaluator.stats().insertions,
              evaluator.stats().evictions + evaluator.cache_size());
  }
}

TEST(ChainEvaluator, EvictionKeepsMostRecentlyUsedPrefix) {
  // Capacity 2, width 4: evaluating one chain inserts prefixes of depth
  // 1, 2, 3 — depth 1 (least recently used) must be the one evicted, so
  // a re-evaluation still hits the full depth-3 prefix immediately.
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  ChainEvaluator evaluator(profile, {cell},
                           ChainEvaluatorOptions{.cache_capacity = 2});
  const std::vector<std::size_t> choices{0, 0, 0, 0};
  (void)evaluator.evaluate(choices);
  EXPECT_EQ(evaluator.stats().insertions, 3u);
  EXPECT_EQ(evaluator.stats().evictions, 1u);  // depth-1 prefix dropped
  EXPECT_EQ(evaluator.cache_size(), 2u);

  (void)evaluator.evaluate(choices);
  // Depth 3 was still cached: exactly one new hit, no new misses.
  EXPECT_EQ(evaluator.stats().hits, 1u);
  EXPECT_EQ(evaluator.stats().misses, 3u);
  EXPECT_EQ(evaluator.stats().evictions, 1u);
}

TEST(ChainEvaluator, CountersMatchHandComputedScenario) {
  // Width 4, ample capacity.  First evaluate({c,c,c,c}): the probe walks
  // depths 3, 2, 1 (3 misses), computes and caches them (3 insertions,
  // 3 advances) and advances the uncached final stage: 4 stages total.
  // Second evaluate: one probe hits depth 3, only the final stage is
  // recomputed.
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  ChainEvaluator evaluator(profile, {cell});
  const std::vector<std::size_t> choices{0, 0, 0, 0};

  (void)evaluator.evaluate(choices);
  EXPECT_EQ(evaluator.stats().hits, 0u);
  EXPECT_EQ(evaluator.stats().misses, 3u);
  EXPECT_EQ(evaluator.stats().insertions, 3u);
  EXPECT_EQ(evaluator.stats().evictions, 0u);
  EXPECT_EQ(evaluator.stats().stages_computed, 4u);
  EXPECT_EQ(evaluator.stats().chains_evaluated, 1u);

  (void)evaluator.evaluate(choices);
  EXPECT_EQ(evaluator.stats().hits, 1u);
  EXPECT_EQ(evaluator.stats().misses, 3u);
  EXPECT_EQ(evaluator.stats().insertions, 3u);
  EXPECT_EQ(evaluator.stats().stages_computed, 5u);
  EXPECT_EQ(evaluator.stats().chains_evaluated, 2u);
  EXPECT_DOUBLE_EQ(evaluator.stats().hit_rate(), 0.25);

  evaluator.reset_stats();
  EXPECT_EQ(evaluator.stats().hits, 0u);
  evaluator.clear();
  EXPECT_EQ(evaluator.cache_size(), 0u);
}

TEST(ChainEvaluator, ValidatesArguments) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  EXPECT_THROW(ChainEvaluator(profile, {}), std::invalid_argument);
  ChainEvaluator evaluator(profile, {cell});
  const std::vector<std::size_t> too_long{0, 0, 0, 0, 0};
  EXPECT_THROW((void)evaluator.carry_after(too_long), std::invalid_argument);
  const std::vector<std::size_t> short_chain{0, 0, 0};
  EXPECT_THROW((void)evaluator.evaluate(short_chain), std::invalid_argument);
  EXPECT_THROW((void)evaluator.final_success(too_long, 0),
               std::invalid_argument);
  const std::vector<std::size_t> bad_choice{0, 0, 0, 1};
  EXPECT_THROW((void)evaluator.evaluate(bad_choice), std::out_of_range);
}

// ---------------------------------------------------------------------------
// ChainBatchEvaluator (the SoA many-chain kernel)

TEST(ChainBatchEvaluator, StrictBitIdenticalToAnalyzeOver240RandomChains) {
  // 20 configurations x 12 chains = 240 random chains; config*7 mod 29
  // walks widths 4..32 without repeats (7 generates Z/29).
  sealpaa::prob::SplitMix64 cell_rng(0xba7c'40c1'0000'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xba7c'40c1'0000'0002ULL);
  sealpaa::prob::SplitMix64 chain_rng(0xba7c'40c1'0000'0003ULL);
  int total = 0;
  for (int config = 0; config < 20; ++config) {
    const std::size_t width = 4 + static_cast<std::size_t>(config * 7 % 29);
    const std::size_t palette_size = 3 + static_cast<std::size_t>(config % 5);
    std::vector<AdderCell> palette;
    for (std::size_t c = 0; c < palette_size; ++c) {
      palette.push_back(
          random_cell(cell_rng, config * 100 + static_cast<int>(c)));
    }
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    ChainBatchEvaluator batch(profile, palette);

    std::vector<std::vector<std::size_t>> chains(12);
    std::vector<std::span<const std::size_t>> spans;
    for (std::vector<std::size_t>& chain : chains) {
      for (std::size_t s = 0; s < width; ++s) {
        chain.push_back(chain_rng.next() % palette_size);
      }
      spans.emplace_back(chain);
    }
    const std::vector<AnalysisResult> results =
        batch.evaluate(spans, BatchMode::kStrict);
    ASSERT_EQ(results.size(), chains.size());
    for (std::size_t l = 0; l < chains.size(); ++l) {
      std::vector<AdderCell> stages;
      for (const std::size_t c : chains[l]) stages.push_back(palette[c]);
      const AnalysisResult want =
          RecursiveAnalyzer::analyze(AdderChain(stages), profile);
      expect_bit_identical(results[l], want,
                           "config " + std::to_string(config) + " lane " +
                               std::to_string(l) + " width " +
                               std::to_string(width));
      ++total;
    }
  }
  EXPECT_GE(total, 200);
}

TEST(ChainBatchEvaluator, FastWithin1e12OfStrictAtEveryKernelLevel) {
  // The reassociated kFast kernels must agree with the scalar-ordered
  // strict path to ~1e-12 relative at every dispatch tier.  Forcing is a
  // cap, so walking kScalar/kAvx2/kAvx512 is safe on any CPU: a level
  // the box lacks simply runs the widest supported path below it.
  sealpaa::prob::SplitMix64 cell_rng(0xba7c'40c1'0000'0011ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xba7c'40c1'0000'0012ULL);
  sealpaa::prob::SplitMix64 chain_rng(0xba7c'40c1'0000'0013ULL);
  const std::size_t width = 32;
  const std::size_t palette_size = 6;
  std::vector<AdderCell> palette;
  for (std::size_t c = 0; c < palette_size; ++c) {
    palette.push_back(random_cell(cell_rng, static_cast<int>(c)));
  }
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.05, 0.95);
  ChainBatchEvaluator batch(profile, palette);

  std::vector<std::vector<std::size_t>> chains(16);
  std::vector<std::span<const std::size_t>> spans;
  for (std::vector<std::size_t>& chain : chains) {
    for (std::size_t s = 0; s < width; ++s) {
      chain.push_back(chain_rng.next() % palette_size);
    }
    spans.emplace_back(chain);
  }
  const std::vector<AnalysisResult> strict =
      batch.evaluate(spans, BatchMode::kStrict);

  const ForcedKernelGuard guard;
  for (const KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kAvx2, KernelLevel::kAvx512}) {
    sealpaa::util::set_forced_kernel(level);
    const std::vector<AnalysisResult> fast =
        batch.evaluate(spans, BatchMode::kFast);
    ASSERT_EQ(fast.size(), strict.size());
    for (std::size_t l = 0; l < strict.size(); ++l) {
      const double scale =
          std::abs(strict[l].p_success) > 1.0 ? std::abs(strict[l].p_success)
                                              : 1.0;
      EXPECT_LE(std::abs(fast[l].p_success - strict[l].p_success),
                1e-12 * scale)
          << "level "
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
      EXPECT_LE(std::abs(fast[l].final_carry.c0 - strict[l].final_carry.c0),
                1e-12)
          << "level "
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
      EXPECT_LE(std::abs(fast[l].final_carry.c1 - strict[l].final_carry.c1),
                1e-12)
          << "level "
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
    }
  }
}

TEST(ChainBatchEvaluator, StatsCountBatchesAndLaneStages) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(6, 0.5);
  ChainBatchEvaluator batch(profile, {cell});
  const std::vector<std::size_t> chain(6, 0);
  const std::vector<std::span<const std::size_t>> spans{chain, chain, chain};
  (void)batch.evaluate(spans, BatchMode::kStrict);
  EXPECT_EQ(batch.stats().batches, 1u);
  EXPECT_EQ(batch.stats().lanes, 3u);
  EXPECT_EQ(batch.stats().max_lanes, 3u);
  EXPECT_EQ(batch.stats().lane_stages, 3u * 6u);
  EXPECT_EQ(batch.stats().fast_lane_stages, 0u);  // strict mode only
  batch.reset_stats();
  EXPECT_EQ(batch.stats().batches, 0u);
}

TEST(ChainBatchEvaluator, ValidatesArguments) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  EXPECT_THROW(ChainBatchEvaluator(profile, {}), std::invalid_argument);
  ChainBatchEvaluator batch(profile, {cell});
  const std::vector<std::size_t> short_chain{0, 0, 0};
  const std::vector<std::span<const std::size_t>> spans{short_chain};
  EXPECT_THROW((void)batch.evaluate(spans, BatchMode::kStrict),
               std::invalid_argument);
  const std::vector<std::size_t> bad_choice{0, 0, 0, 1};
  const std::vector<std::span<const std::size_t>> bad{bad_choice};
  EXPECT_THROW((void)batch.evaluate(bad, BatchMode::kStrict),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// ChainEvaluator batch entry points (SoA path behind the prefix cache)

TEST(ChainEvaluator, EvaluateBatchBitIdenticalToPerChainEvaluate) {
  // Chains share prefixes on purpose: the batch path must dedup and
  // adopt cached states without changing a single bit of any result.
  sealpaa::prob::SplitMix64 cell_rng(0xba7c'40c1'0000'0021ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xba7c'40c1'0000'0022ULL);
  sealpaa::prob::SplitMix64 chain_rng(0xba7c'40c1'0000'0023ULL);
  const std::size_t width = 12;
  const std::size_t palette_size = 4;
  std::vector<AdderCell> palette;
  for (std::size_t c = 0; c < palette_size; ++c) {
    palette.push_back(random_cell(cell_rng, static_cast<int>(c)));
  }
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.05, 0.95);

  std::vector<std::size_t> base;
  for (std::size_t s = 0; s < width; ++s) {
    base.push_back(chain_rng.next() % palette_size);
  }
  std::vector<std::vector<std::size_t>> chains;
  std::vector<std::span<const std::size_t>> spans;
  for (int v = 0; v < 24; ++v) {
    std::vector<std::size_t> chain = base;
    // Mutate a suffix so early prefixes collide across lanes.
    const std::size_t from = chain_rng.next() % width;
    for (std::size_t s = from; s < width; ++s) {
      chain[s] = chain_rng.next() % palette_size;
    }
    chains.push_back(std::move(chain));
  }
  for (const std::vector<std::size_t>& chain : chains) {
    spans.emplace_back(chain);
  }

  ChainEvaluator batched(profile, palette);
  ChainEvaluator sequential(profile, palette);
  const std::vector<AnalysisResult> results = batched.evaluate_batch(spans);
  ASSERT_EQ(results.size(), chains.size());
  for (std::size_t l = 0; l < chains.size(); ++l) {
    expect_bit_identical(results[l], sequential.evaluate(chains[l]),
                         "lane " + std::to_string(l));
  }
  // The SoA counters are the proof the batch actually ran lane-parallel.
  EXPECT_EQ(batched.batch_stats().batches, 1u);
  EXPECT_EQ(batched.batch_stats().lanes, chains.size());
  EXPECT_EQ(batched.batch_stats().max_lanes, chains.size());
  // Shared prefixes mean the batch advanced strictly fewer lane-stages
  // than 24 cache-less evaluations (24 x width) would have, and no more
  // than the sequential evaluator with its own warm prefix cache.
  EXPECT_LT(batched.stats().stages_computed, chains.size() * width);
  EXPECT_LE(batched.stats().stages_computed,
            sequential.stats().stages_computed);
}

TEST(ChainEvaluator, ScoreExtensionsBitIdenticalToPerExtensionPath) {
  // Both the interior (carry advance, cached) and final (Equation 12,
  // uncached) depths must reproduce the historical per-extension scores
  // exactly — this is what keeps the beam DSE bit-identical to the naive
  // recursion after the SoA rewiring.
  sealpaa::prob::SplitMix64 cell_rng(0xba7c'40c1'0000'0031ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xba7c'40c1'0000'0032ULL);
  sealpaa::prob::SplitMix64 chain_rng(0xba7c'40c1'0000'0033ULL);
  const std::size_t width = 10;
  const std::size_t palette_size = 5;
  std::vector<AdderCell> palette;
  for (std::size_t c = 0; c < palette_size; ++c) {
    palette.push_back(random_cell(cell_rng, static_cast<int>(c)));
  }
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.05, 0.95);

  for (const std::size_t depth : {std::size_t{4}, width - 1}) {
    std::vector<std::vector<std::size_t>> parents(6);
    for (std::vector<std::size_t>& parent : parents) {
      for (std::size_t s = 0; s < depth; ++s) {
        parent.push_back(chain_rng.next() % palette_size);
      }
    }
    std::vector<ChainEvaluator::Extension> extensions;
    for (std::size_t p = 0; p < parents.size(); ++p) {
      for (std::size_t c = 0; c < palette_size; ++c) {
        extensions.push_back(ChainEvaluator::Extension{
            static_cast<std::uint32_t>(p), static_cast<std::uint8_t>(c)});
      }
    }

    ChainEvaluator batched(profile, palette);
    ChainEvaluator reference(profile, palette);
    const std::vector<double> scores =
        batched.score_extensions(parents, extensions);
    ASSERT_EQ(scores.size(), extensions.size());
    for (std::size_t e = 0; e < extensions.size(); ++e) {
      const std::vector<std::size_t>& parent = parents[extensions[e].parent];
      double want = 0.0;
      if (depth + 1 == width) {
        want = reference.final_success(parent, extensions[e].choice);
      } else {
        std::vector<std::size_t> extended = parent;
        extended.push_back(extensions[e].choice);
        const sealpaa::analysis::CarryState state =
            reference.carry_after(extended);
        want = state.c0 + state.c1;
      }
      EXPECT_EQ(scores[e], want)
          << "depth " << depth << " extension " << e;
    }
  }
}

TEST(ChainEvaluator, ScoreExtensionsValidatesArguments) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  ChainEvaluator evaluator(profile, {cell});
  const std::vector<std::vector<std::size_t>> full{{0, 0, 0, 0}};
  const std::vector<ChainEvaluator::Extension> one{{0, 0}};
  EXPECT_THROW((void)evaluator.score_extensions(full, one),
               std::invalid_argument);
  const std::vector<std::vector<std::size_t>> ragged{{0, 0}, {0}};
  EXPECT_THROW((void)evaluator.score_extensions(ragged, one),
               std::invalid_argument);
  const std::vector<std::vector<std::size_t>> parents{{0, 0}};
  const std::vector<ChainEvaluator::Extension> bad_parent{{7, 0}};
  EXPECT_THROW((void)evaluator.score_extensions(parents, bad_parent),
               std::out_of_range);
  const std::vector<ChainEvaluator::Extension> bad_choice{{0, 9}};
  EXPECT_THROW((void)evaluator.score_extensions(parents, bad_choice),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// Kernel override (SEALPAA_FORCE_KERNEL / set_forced_kernel)

TEST(KernelOverride, ProgrammaticCapShadowsEnvironmentAndReArms) {
  const ForcedKernelGuard guard;
  ASSERT_EQ(setenv("SEALPAA_FORCE_KERNEL", "avx2", 1), 0);
  // nullopt re-arms the (cached) environment parse.
  sealpaa::util::set_forced_kernel(std::nullopt);
  EXPECT_EQ(sealpaa::util::forced_kernel(), KernelLevel::kAvx2);
  EXPECT_TRUE(sealpaa::util::kernel_level_allowed(KernelLevel::kScalar));
  EXPECT_TRUE(sealpaa::util::kernel_level_allowed(KernelLevel::kAvx2));
  EXPECT_FALSE(sealpaa::util::kernel_level_allowed(KernelLevel::kAvx512));

  sealpaa::util::set_forced_kernel(KernelLevel::kScalar);
  EXPECT_EQ(sealpaa::util::forced_kernel(), KernelLevel::kScalar);
  EXPECT_FALSE(sealpaa::util::kernel_level_allowed(KernelLevel::kAvx2));
  EXPECT_EQ(sealpaa::engine::active_batch_kernel(), KernelLevel::kScalar);

  ASSERT_EQ(unsetenv("SEALPAA_FORCE_KERNEL"), 0);
  sealpaa::util::set_forced_kernel(std::nullopt);
  EXPECT_EQ(sealpaa::util::forced_kernel(), std::nullopt);
  EXPECT_TRUE(sealpaa::util::kernel_level_allowed(KernelLevel::kAvx512));
}

// ---------------------------------------------------------------------------
// Method registry

TEST(MethodRegistry, NamesRoundTripThroughParse) {
  for (const auto& info : sealpaa::engine::all_methods()) {
    EXPECT_EQ(sealpaa::engine::parse_method(info.name), info.method);
    EXPECT_EQ(sealpaa::engine::method_name(info.method), info.name);
  }
  EXPECT_EQ(sealpaa::engine::all_methods().size(), 7u);
  EXPECT_EQ(sealpaa::engine::parse_method("analytic-pmf"),
            sealpaa::engine::Method::kAnalyticPmf);
  EXPECT_EQ(sealpaa::engine::parse_method("block-analytic"),
            sealpaa::engine::Method::kBlockAnalytic);
}

TEST(MethodRegistry, ParseRejectsUnknownNamesListingValidOnes) {
  try {
    (void)sealpaa::engine::parse_method("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("recursive"), std::string::npos);
    EXPECT_NE(message.find("monte-carlo"), std::string::npos);
  }
}

TEST(MethodRegistry, ExactEnginesAgreeThroughUniformEvaluate) {
  using sealpaa::engine::Method;
  sealpaa::prob::SplitMix64 cell_rng(0x3e7'0000'0001ULL);
  const AdderCell cell = random_cell(cell_rng, 0);
  const std::size_t width = 6;
  const InputProfile profile = InputProfile::uniform(width, 0.5);
  const AdderChain chain = AdderChain::homogeneous(cell, width);

  const auto recursive =
      sealpaa::engine::evaluate(chain, profile, Method::kRecursive);
  const auto ie =
      sealpaa::engine::evaluate(chain, profile, Method::kInclusionExclusion);
  const auto exhaustive =
      sealpaa::engine::evaluate(chain, profile, Method::kExhaustiveSim);
  const auto weighted =
      sealpaa::engine::evaluate(chain, profile, Method::kWeightedExhaustive);

  EXPECT_NEAR(ie.p_error, recursive.p_error, 1e-12);
  EXPECT_NEAR(exhaustive.p_error, recursive.p_error, 1e-12);
  EXPECT_NEAR(weighted.p_error, recursive.p_error, 1e-12);
  EXPECT_EQ(recursive.work_items, width);
  EXPECT_EQ(ie.work_items, (1ULL << width) - 1);

  sealpaa::engine::EvaluateOptions mc_options;
  mc_options.samples = 200'000;
  const auto mc = sealpaa::engine::evaluate(chain, profile,
                                            Method::kMonteCarlo, mc_options);
  EXPECT_FALSE(mc.stage_failure_ci.empty());
  EXPECT_LE(mc.stage_failure_ci.low, recursive.p_error);
  EXPECT_GE(mc.stage_failure_ci.high, recursive.p_error);
}

TEST(MethodRegistry, ExhaustiveSimRejectsNonUniformProfiles) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const InputProfile profile = InputProfile::uniform(6, 0.3);
  EXPECT_THROW((void)sealpaa::engine::evaluate(
                   cell, profile, sealpaa::engine::Method::kExhaustiveSim),
               std::invalid_argument);
}

TEST(MethodRegistry, EvaluateValidatesWidthMismatch) {
  const AdderCell cell = sealpaa::adders::builtin_lpaas()[0];
  const AdderChain chain = AdderChain::homogeneous(cell, 4);
  const InputProfile profile = InputProfile::uniform(6, 0.5);
  EXPECT_THROW((void)sealpaa::engine::evaluate(
                   chain, profile, sealpaa::engine::Method::kRecursive),
               std::invalid_argument);
}

TEST(MethodRegistry, EvaluateBatchMatchesPerChainEvaluate) {
  using sealpaa::engine::Method;
  sealpaa::prob::SplitMix64 cell_rng(0xba7c'40c1'0000'0041ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xba7c'40c1'0000'0042ULL);
  sealpaa::prob::SplitMix64 chain_rng(0xba7c'40c1'0000'0043ULL);
  const std::size_t width = 9;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 4; ++c) palette.push_back(random_cell(cell_rng, c));
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.05, 0.95);

  std::vector<AdderChain> chains;
  for (int v = 0; v < 10; ++v) {
    std::vector<AdderCell> stages;
    for (std::size_t s = 0; s < width; ++s) {
      stages.push_back(palette[chain_rng.next() % palette.size()]);
    }
    chains.emplace_back(stages);
  }

  // The batchable configuration (kRecursive, no trace, no op counter)
  // routes through one strict ChainBatchEvaluator pass; element i must
  // still be bit-for-bit what evaluate(chains[i]) returns.
  const std::vector<sealpaa::engine::Evaluation> batch =
      sealpaa::engine::evaluate_batch(chains, profile, Method::kRecursive);
  ASSERT_EQ(batch.size(), chains.size());
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const sealpaa::engine::Evaluation want =
        sealpaa::engine::evaluate(chains[i], profile, Method::kRecursive);
    EXPECT_EQ(batch[i].p_error, want.p_error) << "chain " << i;
    EXPECT_EQ(batch[i].p_success, want.p_success) << "chain " << i;
    EXPECT_EQ(batch[i].method, want.method) << "chain " << i;
    EXPECT_EQ(batch[i].work_items, want.work_items) << "chain " << i;
  }

  // Non-batchable methods fall back to per-chain evaluation and must be
  // indistinguishable from calling evaluate in a loop.
  const std::vector<sealpaa::engine::Evaluation> ie =
      sealpaa::engine::evaluate_batch(chains, profile,
                                      Method::kInclusionExclusion);
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const sealpaa::engine::Evaluation want = sealpaa::engine::evaluate(
        chains[i], profile, Method::kInclusionExclusion);
    EXPECT_EQ(ie[i].p_error, want.p_error) << "chain " << i;
    EXPECT_EQ(ie[i].work_items, want.work_items) << "chain " << i;
  }

  // Width mismatches are rejected for the whole batch up front.
  std::vector<AdderChain> ragged = chains;
  ragged.push_back(AdderChain::homogeneous(palette[0], width - 1));
  EXPECT_THROW((void)sealpaa::engine::evaluate_batch(ragged, profile,
                                                     Method::kRecursive),
               std::invalid_argument);
}

}  // namespace

// Correlated-operand generalization: joint profiles, the generalized
// recursion and its agreement with the ground-truth oracle.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/correlated.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/metrics.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::analysis::CorrelatedAnalyzer;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::baseline::WeightedExhaustive;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;
using sealpaa::multibit::JointBitDistribution;
using sealpaa::multibit::JointInputProfile;

TEST(JointProfile, Validation) {
  EXPECT_THROW(JointInputProfile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(
      JointInputProfile({JointBitDistribution{0.5, 0.5, 0.5, 0.5}}, 0.5),
      std::domain_error);
  EXPECT_THROW(
      JointInputProfile({JointBitDistribution{-0.1, 0.5, 0.3, 0.3}}, 0.5),
      std::domain_error);
  EXPECT_NO_THROW(
      JointInputProfile({JointBitDistribution{0.25, 0.25, 0.25, 0.25}}, 0.5));
}

TEST(JointProfile, MarginalsRecovered) {
  const JointInputProfile profile(
      {JointBitDistribution{0.1, 0.2, 0.3, 0.4}}, 0.5);
  EXPECT_NEAR(profile.marginal_a(0), 0.7, 1e-12);
  EXPECT_NEAR(profile.marginal_b(0), 0.6, 1e-12);
}

TEST(JointProfile, CorrelatedFactoryRhoRange) {
  const InputProfile marginals = InputProfile::uniform(4, 0.5);
  EXPECT_NO_THROW(JointInputProfile::correlated(marginals, 0.0));
  EXPECT_NO_THROW(JointInputProfile::correlated(marginals, 1.0));
  EXPECT_NO_THROW(JointInputProfile::correlated(marginals, -1.0));
  // With asymmetric marginals, rho = 1 is infeasible.
  const InputProfile skewed({0.9}, {0.1}, 0.5);
  EXPECT_THROW(JointInputProfile::correlated(skewed, 1.0),
               std::domain_error);
}

TEST(JointProfile, FullCorrelationForcesEqualOperands) {
  const auto profile = JointInputProfile::correlated(
      InputProfile::uniform(6, 0.5), 1.0);
  sealpaa::prob::Xoshiro256StarStar rng(401);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = profile.sample(rng);
    EXPECT_EQ(sample.a, sample.b);
  }
}

TEST(JointProfile, AssignmentProbabilitiesSumToOne) {
  const auto profile = JointInputProfile::correlated(
      InputProfile::uniform(3, 0.3), 0.4);
  double total = 0.0;
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      total += profile.assignment_probability(a, b, false);
      total += profile.assignment_probability(a, b, true);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CorrelatedAnalyzer, RhoZeroReducesToTheIndependentRecursion) {
  sealpaa::prob::Xoshiro256StarStar rng(403);
  for (int cell = 1; cell <= 7; ++cell) {
    const InputProfile marginals = InputProfile::random(8, rng, 0.05, 0.95);
    const auto joint = JointInputProfile::independent(marginals);
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 8);
    EXPECT_NEAR(CorrelatedAnalyzer::analyze(chain, joint).p_error,
                RecursiveAnalyzer::analyze(chain, marginals).p_error, 1e-13)
        << "LPAA" << cell;
  }
}

TEST(CorrelatedAnalyzer, MatchesJointGroundTruth) {
  sealpaa::prob::Xoshiro256StarStar rng(409);
  for (int cell = 1; cell <= 7; ++cell) {
    for (double rho : {-0.6, -0.2, 0.3, 0.8}) {
      const InputProfile marginals = InputProfile::uniform(6, 0.4);
      const auto joint = JointInputProfile::correlated(marginals, rho);
      const AdderChain chain = AdderChain::homogeneous(lpaa(cell), 6);
      const auto oracle = WeightedExhaustive::analyze_joint(chain, joint);
      EXPECT_NEAR(CorrelatedAnalyzer::analyze(chain, joint).p_success,
                  oracle.p_stage_success, 1e-12)
          << "LPAA" << cell << " rho " << rho;
    }
  }
}

TEST(CorrelatedAnalyzer, CorrelationChangesTheAnswer) {
  const InputProfile marginals = InputProfile::uniform(8, 0.5);

  // LPAA1's error rows (0,1,0)/(1,0,0) both need A != B: with fully
  // correlated operands (A = B) it never errs.
  const AdderChain lpaa1_chain = AdderChain::homogeneous(lpaa(1), 8);
  EXPECT_NEAR(CorrelatedAnalyzer::analyze(
                  lpaa1_chain, JointInputProfile::correlated(marginals, 1.0))
                  .p_error,
              0.0, 1e-12);

  // LPAA6's error rows (0,0,1)/(1,1,0) both need A == B: with fully
  // anti-correlated operands it never errs, and positive correlation
  // makes it strictly worse than the independent model.
  const AdderChain lpaa6_chain = AdderChain::homogeneous(lpaa(6), 8);
  EXPECT_NEAR(CorrelatedAnalyzer::analyze(
                  lpaa6_chain, JointInputProfile::correlated(marginals, -1.0))
                  .p_error,
              0.0, 1e-12);
  const double independent6 = CorrelatedAnalyzer::analyze(
      lpaa6_chain, JointInputProfile::correlated(marginals, 0.0)).p_error;
  const double positive6 = CorrelatedAnalyzer::analyze(
      lpaa6_chain, JointInputProfile::correlated(marginals, 0.8)).p_error;
  EXPECT_GT(positive6, independent6 + 0.01);
}

TEST(CorrelatedAnalyzer, AccurateChainStillPerfect) {
  const auto joint = JointInputProfile::correlated(
      InputProfile::uniform(10, 0.5), -0.5);
  EXPECT_NEAR(
      CorrelatedAnalyzer::error_probability(accurate(), joint), 0.0, 1e-12);
}

TEST(CorrelatedAnalyzer, HybridChainsAndTraces) {
  const AdderChain chain({lpaa(1), lpaa(6), lpaa(7), accurate()});
  const auto joint = JointInputProfile::correlated(
      InputProfile::uniform(4, 0.5), 0.5);
  sealpaa::analysis::AnalyzeOptions options;
  options.record_trace = true;
  const auto result = CorrelatedAnalyzer::analyze(chain, joint, options);
  ASSERT_EQ(result.trace.size(), 4u);
  const auto oracle = WeightedExhaustive::analyze_joint(chain, joint);
  EXPECT_NEAR(result.p_success, oracle.p_stage_success, 1e-12);
  // Trace carries marginals for reporting.
  EXPECT_NEAR(result.trace[0].p_a, 0.5, 1e-12);
}

TEST(CorrelatedAnalyzer, WidthMismatchThrows) {
  const auto joint = JointInputProfile::correlated(
      InputProfile::uniform(4, 0.5), 0.2);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 5);
  EXPECT_THROW((void)CorrelatedAnalyzer::analyze(chain, joint),
               std::invalid_argument);
}

}  // namespace

// Differential test suite: the paper's Table 6/7 agreement as an
// executable property.  For randomized approximate cells (not just the
// seven published LPAAs) and chain widths 4–12, the analytical P(Err)
// from the M/K/L recursion must match
//   * exhaustive simulation (equally probable inputs — rates are exact
//     probabilities, so agreement is to double precision), and
//   * the inclusion–exclusion baseline under arbitrary per-bit profiles
// within 1e-12.  Any divergence between the three independent engines
// (recursion, enumeration, subset expansion) is a correctness bug.
//
// Every oracle is reached through the engine::evaluate method registry —
// the same dispatch the CLI's --method flag uses — so this suite also
// pins the registry's plumbing (method tagging, work_items accounting)
// to the underlying engines.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::AdderCell;
using sealpaa::engine::evaluate;
using sealpaa::engine::Method;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

constexpr int kCellCount = 20;
constexpr double kTolerance = 1e-12;

/// Draws a random 8-row truth table.  Exact tables (probability 2^-16)
/// are rerolled so every case exercises a genuinely approximate cell.
AdderCell random_cell(sealpaa::prob::SplitMix64& rng, int index) {
  for (;;) {
    std::string sum_column(8, '0');
    std::string carry_column(8, '0');
    const std::uint64_t bits = rng.next();
    for (int row = 0; row < 8; ++row) {
      if (((bits >> row) & 1ULL) != 0) sum_column[static_cast<std::size_t>(row)] = '1';
      if (((bits >> (8 + row)) & 1ULL) != 0) {
        carry_column[static_cast<std::size_t>(row)] = '1';
      }
    }
    AdderCell cell = AdderCell::from_columns(
        "RND" + std::to_string(index), sum_column, carry_column,
        "randomized differential-test cell");
    if (!cell.is_exact()) return cell;
  }
}

/// Chain widths cycle through 4..12 so every width in the paper's
/// validation range is covered several times across the 20 cells.
std::size_t width_for(int index) {
  return 4 + static_cast<std::size_t>(index % 9);
}

TEST(Differential, RecursionMatchesExhaustiveSimulation) {
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0001ULL);
  for (int i = 0; i < kCellCount; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    // The exhaustive sweep costs 2^(2w+1) chain evaluations; cap the
    // simulated width at 9 (2^19 cases) to keep the suite fast while the
    // recursion itself is checked up to width 12 below.
    const std::size_t width = std::min<std::size_t>(width_for(i), 9);
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile = InputProfile::uniform(width, 0.5);
    const auto sim = evaluate(chain, profile, Method::kExhaustiveSim);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    EXPECT_NEAR(sim.p_error, recursive.p_error, kTolerance)
        << cell.name() << " width " << width << "\n"
        << cell.to_string();
    EXPECT_EQ(sim.work_items, 1ULL << (2 * width + 1))
        << "exhaustive simulation must enumerate every input case";
    EXPECT_EQ(recursive.work_items, width)
        << "recursion must advance exactly one stage per bit";
  }
}

TEST(Differential, RecursionMatchesInclusionExclusion) {
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0002ULL);
  for (int i = 0; i < kCellCount; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    const std::size_t width = width_for(i);
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    const auto ie = evaluate(chain, profile, Method::kInclusionExclusion);
    EXPECT_NEAR(recursive.p_error, ie.p_error, kTolerance)
        << cell.name() << " width " << width;
    EXPECT_NEAR(recursive.p_success, ie.p_success, kTolerance)
        << cell.name() << " width " << width;
    EXPECT_EQ(ie.work_items, (1ULL << width) - 1)
        << "inclusion-exclusion must expand every non-empty subset";
  }
}

TEST(Differential, RecursionMatchesWeightedEnumeration) {
  // The strongest oracle: exact weighted enumeration of all assignments
  // under a random non-uniform profile (subset of cells to bound cost).
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0003ULL);
  for (int i = 0; i < kCellCount; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    if (i % 4 != 0) continue;
    const std::size_t width = std::min<std::size_t>(width_for(i), 8);
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const auto oracle =
        evaluate(chain, profile, Method::kWeightedExhaustive);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    EXPECT_NEAR(recursive.p_success, oracle.p_success, kTolerance)
        << cell.name() << " width " << width;
  }
}

TEST(Differential, HybridChainsOfRandomCellsAgree) {
  // Heterogeneous chains mixing random cells per stage — the shape the
  // hybrid DSE produces — validated against inclusion–exclusion.
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0004ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0005ULL);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial * 2);  // 4..12
    std::vector<AdderCell> stages;
    for (std::size_t s = 0; s < width; ++s) {
      stages.push_back(
          random_cell(seed_stream, trial * 100 + static_cast<int>(s)));
    }
    const AdderChain chain(stages);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.1, 0.9);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    const auto ie = evaluate(chain, profile, Method::kInclusionExclusion);
    EXPECT_NEAR(recursive.p_error, ie.p_error, kTolerance)
        << chain.describe() << " width " << width;
  }
}

}  // namespace

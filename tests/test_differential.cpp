// Differential test suite: the paper's Table 6/7 agreement as an
// executable property.  For randomized approximate cells (not just the
// seven published LPAAs) and chain widths 4–12, the analytical P(Err)
// from the M/K/L recursion must match
//   * exhaustive simulation (equally probable inputs — rates are exact
//     probabilities, so agreement is to double precision), and
//   * the inclusion–exclusion baseline under arbitrary per-bit profiles
// within 1e-12.  Any divergence between the three independent engines
// (recursion, enumeration, subset expansion) is a correctness bug.
//
// Every oracle is reached through the engine::evaluate method registry —
// the same dispatch the CLI's --method flag uses — so this suite also
// pins the registry's plumbing (method tagging, work_items accounting)
// to the underlying engines.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/cell.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/engine/batch_evaluator.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/multibit/joint_profile.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/bitsliced.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/kernel.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/sim/montecarlo.hpp"

namespace {

using sealpaa::adders::AdderCell;
using sealpaa::engine::evaluate;
using sealpaa::engine::Method;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;
using sealpaa::sim::BitSlicedKernel;
using sealpaa::sim::ErrorMetrics;
using sealpaa::sim::Kernel;

constexpr int kCellCount = 20;
constexpr double kTolerance = 1e-12;

/// Draws a random 8-row truth table.  Exact tables (probability 2^-16)
/// are rerolled so every case exercises a genuinely approximate cell.
AdderCell random_cell(sealpaa::prob::SplitMix64& rng, int index) {
  for (;;) {
    std::string sum_column(8, '0');
    std::string carry_column(8, '0');
    const std::uint64_t bits = rng.next();
    for (int row = 0; row < 8; ++row) {
      if (((bits >> row) & 1ULL) != 0) sum_column[static_cast<std::size_t>(row)] = '1';
      if (((bits >> (8 + row)) & 1ULL) != 0) {
        carry_column[static_cast<std::size_t>(row)] = '1';
      }
    }
    AdderCell cell = AdderCell::from_columns(
        "RND" + std::to_string(index), sum_column, carry_column,
        "randomized differential-test cell");
    if (!cell.is_exact()) return cell;
  }
}

/// Chain widths cycle through 4..12 so every width in the paper's
/// validation range is covered several times across the 20 cells.
std::size_t width_for(int index) {
  return 4 + static_cast<std::size_t>(index % 9);
}

TEST(Differential, RecursionMatchesExhaustiveSimulation) {
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0001ULL);
  for (int i = 0; i < kCellCount; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    // The exhaustive sweep costs 2^(2w+1) chain evaluations; cap the
    // simulated width at 9 (2^19 cases) to keep the suite fast while the
    // recursion itself is checked up to width 12 below.
    const std::size_t width = std::min<std::size_t>(width_for(i), 9);
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile = InputProfile::uniform(width, 0.5);
    const auto sim = evaluate(chain, profile, Method::kExhaustiveSim);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    EXPECT_NEAR(sim.p_error, recursive.p_error, kTolerance)
        << cell.name() << " width " << width << "\n"
        << cell.to_string();
    EXPECT_EQ(sim.work_items, 1ULL << (2 * width + 1))
        << "exhaustive simulation must enumerate every input case";
    EXPECT_EQ(recursive.work_items, width)
        << "recursion must advance exactly one stage per bit";
  }
}

TEST(Differential, RecursionMatchesInclusionExclusion) {
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0002ULL);
  for (int i = 0; i < kCellCount; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    const std::size_t width = width_for(i);
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    const auto ie = evaluate(chain, profile, Method::kInclusionExclusion);
    EXPECT_NEAR(recursive.p_error, ie.p_error, kTolerance)
        << cell.name() << " width " << width;
    EXPECT_NEAR(recursive.p_success, ie.p_success, kTolerance)
        << cell.name() << " width " << width;
    EXPECT_EQ(ie.work_items, (1ULL << width) - 1)
        << "inclusion-exclusion must expand every non-empty subset";
  }
}

TEST(Differential, RecursionMatchesWeightedEnumeration) {
  // The strongest oracle: exact weighted enumeration of all assignments
  // under a random non-uniform profile (subset of cells to bound cost).
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0001ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0003ULL);
  for (int i = 0; i < kCellCount; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    if (i % 4 != 0) continue;
    const std::size_t width = std::min<std::size_t>(width_for(i), 8);
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    const auto oracle =
        evaluate(chain, profile, Method::kWeightedExhaustive);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    EXPECT_NEAR(recursive.p_success, oracle.p_success, kTolerance)
        << cell.name() << " width " << width;
  }
}

TEST(Differential, BitSlicedMatchesScalarOnRandomHybridChains) {
  // The bit-identity contract of the 64-lane kernel, lane by lane: 200+
  // random hybrid chains spanning widths 1..16 (plus the 63-bit packing
  // edge, where the carry-out occupies the top bit of the lane value),
  // each evaluated on 64 random input vectors through both the kernel
  // and the scalar evaluate_traced / exact_add reference.  Error counts,
  // signed errors, first-failed-stage histograms and the accumulated
  // metrics must be exactly equal — no tolerances.
  sealpaa::prob::SplitMix64 cell_stream(0xb17'511ce'd1ffULL);
  sealpaa::prob::SplitMix64 input_stream(0xb17'511ce'1a9eULL);
  std::map<int, std::uint64_t> scalar_first_failed_histogram;
  std::map<int, std::uint64_t> sliced_first_failed_histogram;
  ErrorMetrics scalar_total;
  ErrorMetrics sliced_total;

  constexpr int kTrials = 208;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Widths cycle 1..16; every 32nd trial stresses the 63-bit edge.
    const std::size_t width =
        trial % 32 == 31 ? 63 : 1 + static_cast<std::size_t>(trial % 16);
    std::vector<AdderCell> stages;
    stages.reserve(width);
    for (std::size_t s = 0; s < width; ++s) {
      stages.push_back(
          random_cell(cell_stream, trial * 1000 + static_cast<int>(s)));
    }
    const AdderChain chain(std::move(stages));
    const BitSlicedKernel kernel(chain);
    ASSERT_EQ(kernel.width(), width);

    std::array<std::uint64_t, 64> a_lanes;
    std::array<std::uint64_t, 64> b_lanes;
    std::uint64_t cin_word = 0;
    for (unsigned lane = 0; lane < 64; ++lane) {
      a_lanes[lane] = input_stream.next();
      b_lanes[lane] = input_stream.next();
      if ((input_stream.next() & 1ULL) != 0) cin_word |= 1ULL << lane;
    }
    // Odd trials run a partial batch to cover remainder-lane masking.
    const std::uint64_t lane_mask =
        trial % 2 == 0 ? ~0ULL : (1ULL << (1 + trial % 63)) - 1ULL;
    const BitSlicedKernel::Result result =
        kernel.run(a_lanes.data(), b_lanes.data(), cin_word, lane_mask);
    sealpaa::sim::accumulate(sliced_total, result);

    for (unsigned lane = 0; lane < 64; ++lane) {
      if (((lane_mask >> lane) & 1ULL) == 0) {
        // Masked lanes must stay silent.
        ASSERT_EQ((result.value_error_mask >> lane) & 1ULL, 0u);
        ASSERT_EQ((result.stage_fail_mask >> lane) & 1ULL, 0u);
        ASSERT_EQ(result.error[lane], 0);
        ASSERT_EQ(result.first_failed[lane], -1);
        continue;
      }
      const bool cin = ((cin_word >> lane) & 1ULL) != 0;
      const auto traced =
          chain.evaluate_traced(a_lanes[lane], b_lanes[lane], cin);
      const auto exact = sealpaa::multibit::exact_add(
          a_lanes[lane], b_lanes[lane], cin, width);
      const std::uint64_t approx_value = traced.outputs.value(width);
      const std::uint64_t exact_value = exact.value(width);
      scalar_total.add(approx_value, exact_value, traced.all_stages_success);
      scalar_first_failed_histogram[traced.first_failed_stage]++;
      sliced_first_failed_histogram[result.first_failed[lane]]++;

      ASSERT_EQ(((result.stage_fail_mask >> lane) & 1ULL) != 0,
                !traced.all_stages_success)
          << chain.describe() << " lane " << lane;
      ASSERT_EQ(result.first_failed[lane], traced.first_failed_stage)
          << chain.describe() << " lane " << lane;
      ASSERT_EQ(((result.value_error_mask >> lane) & 1ULL) != 0,
                approx_value != exact_value)
          << chain.describe() << " lane " << lane;
      ASSERT_EQ(((result.sum_bits_error_mask >> lane) & 1ULL) != 0,
                traced.outputs.sum_bits != exact.sum_bits)
          << chain.describe() << " lane " << lane;
      ASSERT_EQ(result.error[lane],
                static_cast<std::int64_t>(approx_value) -
                    static_cast<std::int64_t>(exact_value))
          << chain.describe() << " lane " << lane;
    }
  }

  EXPECT_EQ(scalar_first_failed_histogram, sliced_first_failed_histogram);
  EXPECT_EQ(scalar_total.cases(), sliced_total.cases());
  EXPECT_EQ(scalar_total.value_errors(), sliced_total.value_errors());
  EXPECT_EQ(scalar_total.stage_failures(), sliced_total.stage_failures());
  EXPECT_EQ(scalar_total.mean_error(), sliced_total.mean_error());
  EXPECT_EQ(scalar_total.mean_abs_error(), sliced_total.mean_abs_error());
  EXPECT_EQ(scalar_total.mean_squared_error(),
            sliced_total.mean_squared_error());
  EXPECT_EQ(scalar_total.worst_case_error(), sliced_total.worst_case_error());
  // Sanity: the random cells actually produced failures to histogram.
  EXPECT_GT(scalar_total.stage_failures(), 0u);
}

TEST(Differential, SimulatorsIdenticalAcrossKernelsThroughRegistry) {
  // The same kernel-equality contract end to end through
  // engine::evaluate — the dispatch the CLI uses.  Exact equality, not
  // kTolerance: the two backends must count the same errors.
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0006ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0007ULL);
  for (int i = 0; i < 8; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    const std::size_t width = 2 + static_cast<std::size_t>(i);  // 2..9
    const AdderChain chain = AdderChain::homogeneous(cell, width);

    sealpaa::engine::EvaluateOptions scalar_opts;
    scalar_opts.kernel = Kernel::kScalar;
    scalar_opts.samples = 20000;
    sealpaa::engine::EvaluateOptions sliced_opts = scalar_opts;
    sliced_opts.kernel = Kernel::kBitSliced;

    const InputProfile uniform = InputProfile::uniform(width, 0.5);
    EXPECT_EQ(evaluate(chain, uniform, Method::kExhaustiveSim,
                       scalar_opts).p_error,
              evaluate(chain, uniform, Method::kExhaustiveSim,
                       sliced_opts).p_error)
        << cell.name() << " width " << width;

    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);
    EXPECT_EQ(evaluate(chain, profile, Method::kWeightedExhaustive,
                       scalar_opts).p_error,
              evaluate(chain, profile, Method::kWeightedExhaustive,
                       sliced_opts).p_error)
        << cell.name() << " width " << width;
    EXPECT_EQ(evaluate(chain, profile, Method::kMonteCarlo,
                       scalar_opts).p_error,
              evaluate(chain, profile, Method::kMonteCarlo,
                       sliced_opts).p_error)
        << cell.name() << " width " << width;
  }
}

TEST(Differential, WeightedEnumerationIdenticalAcrossKernels) {
  // Full-report equality of the weighted oracle under both kernels,
  // including the signed-error distribution — for the marginal and the
  // correlated (joint) profile variants.
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0008ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0009ULL);
  for (int i = 0; i < 6; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    const std::size_t width = 2 + static_cast<std::size_t>(i);  // 2..7
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.0, 1.0);

    using sealpaa::baseline::WeightedExhaustive;
    const auto scalar =
        WeightedExhaustive::analyze(chain, profile, 14, 1, Kernel::kScalar);
    const auto sliced =
        WeightedExhaustive::analyze(chain, profile, 14, 1,
                                    Kernel::kBitSliced);
    EXPECT_EQ(scalar.p_stage_success, sliced.p_stage_success);
    EXPECT_EQ(scalar.p_value_correct, sliced.p_value_correct);
    EXPECT_EQ(scalar.p_sum_bits_correct, sliced.p_sum_bits_correct);
    EXPECT_EQ(scalar.mean_error, sliced.mean_error);
    EXPECT_EQ(scalar.mean_abs_error, sliced.mean_abs_error);
    EXPECT_EQ(scalar.mean_squared_error, sliced.mean_squared_error);
    EXPECT_EQ(scalar.worst_case_error, sliced.worst_case_error);
    EXPECT_EQ(scalar.error_distribution, sliced.error_distribution);

    // Correlated factories need symmetric marginals for moderate rho.
    const InputProfile safe_profile =
        InputProfile::uniform(width, 0.25 + 0.08 * i);
    const auto joint =
        sealpaa::multibit::JointInputProfile::correlated(safe_profile, 0.4);
    const auto scalar_joint = WeightedExhaustive::analyze_joint(
        chain, joint, 14, 1, Kernel::kScalar);
    const auto sliced_joint = WeightedExhaustive::analyze_joint(
        chain, joint, 14, 1, Kernel::kBitSliced);
    EXPECT_EQ(scalar_joint.p_stage_success, sliced_joint.p_stage_success);
    EXPECT_EQ(scalar_joint.error_distribution,
              sliced_joint.error_distribution);
  }
}

TEST(Differential, AnalyticPmfMatchesWeightedEnumeration) {
  // The analytic-pmf engine against the strongest oracle: exact weighted
  // enumeration, arbitrary profiles, widths 4..12.  Distribution moments
  // agree to 1e-12 (relative past 1); the stage-level p_error must be
  // *bit-identical* to the recursive engine, which analytic-pmf wraps.
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'000aULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'000bULL);
  for (int i = 0; i < 9; ++i) {
    const std::size_t width = 4 + static_cast<std::size_t>(i);  // 4..12
    std::vector<AdderCell> stages;
    for (std::size_t s = 0; s < width; ++s) {
      stages.push_back(random_cell(seed_stream, i * 100 + static_cast<int>(s)));
    }
    const AdderChain chain(stages);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.05, 0.95);

    const auto analytic = evaluate(chain, profile, Method::kAnalyticPmf);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    EXPECT_EQ(analytic.p_error, recursive.p_error)
        << "analytic-pmf must replay the recursive engine bit for bit, "
        << "width " << width;
    EXPECT_EQ(analytic.p_success, recursive.p_success) << width;
    EXPECT_EQ(analytic.work_items, width) << "no simulation samples";

    const auto oracle = evaluate(chain, profile, Method::kWeightedExhaustive);
    ASSERT_TRUE(analytic.distribution.has_value());
    ASSERT_TRUE(oracle.distribution.has_value());
    const auto close = [](double got, double want) {
      return std::abs(got - want) <= kTolerance * std::max(1.0, std::abs(want));
    };
    EXPECT_TRUE(close(analytic.distribution->error_rate,
                      oracle.distribution->error_rate))
        << analytic.distribution->error_rate << " vs "
        << oracle.distribution->error_rate << " width " << width;
    EXPECT_TRUE(close(analytic.distribution->mean_error,
                      oracle.distribution->mean_error))
        << analytic.distribution->mean_error << " vs "
        << oracle.distribution->mean_error << " width " << width;
    EXPECT_TRUE(close(analytic.distribution->mean_error_distance,
                      oracle.distribution->mean_error_distance))
        << analytic.distribution->mean_error_distance << " vs "
        << oracle.distribution->mean_error_distance << " width " << width;
    EXPECT_TRUE(close(analytic.distribution->mean_squared_error,
                      oracle.distribution->mean_squared_error))
        << analytic.distribution->mean_squared_error << " vs "
        << oracle.distribution->mean_squared_error << " width " << width;
    EXPECT_EQ(analytic.distribution->worst_case_error,
              oracle.distribution->worst_case_error)
        << "width " << width;
    ASSERT_TRUE(analytic.pmf.has_value());
    EXPECT_NEAR(analytic.pmf->total_mass, 1.0, kTolerance) << width;
  }
}

TEST(Differential, AnalyticPmfMatchesBitSlicedExhaustiveSimulation) {
  // Equally probable inputs make the bit-sliced exhaustive sweep's
  // moments exact probabilities — a fully independent oracle (lane
  // kernel + integer counters vs the probabilistic DP).
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'000cULL);
  for (int i = 0; i < 6; ++i) {
    const AdderCell cell = random_cell(seed_stream, i);
    const std::size_t width = 4 + static_cast<std::size_t>(i);  // 4..9
    const AdderChain chain = AdderChain::homogeneous(cell, width);
    const InputProfile profile = InputProfile::uniform(width, 0.5);

    sealpaa::engine::EvaluateOptions sliced;
    sliced.kernel = Kernel::kBitSliced;
    const auto sim = evaluate(chain, profile, Method::kExhaustiveSim, sliced);
    const auto analytic = evaluate(chain, profile, Method::kAnalyticPmf);
    ASSERT_TRUE(sim.distribution.has_value());
    ASSERT_TRUE(analytic.distribution.has_value());
    const auto close = [](double got, double want) {
      return std::abs(got - want) <= kTolerance * std::max(1.0, std::abs(want));
    };
    EXPECT_TRUE(close(analytic.distribution->mean_error_distance,
                      sim.distribution->mean_error_distance))
        << analytic.distribution->mean_error_distance << " vs "
        << sim.distribution->mean_error_distance << " width " << width;
    EXPECT_TRUE(close(analytic.distribution->mean_squared_error,
                      sim.distribution->mean_squared_error))
        << analytic.distribution->mean_squared_error << " vs "
        << sim.distribution->mean_squared_error << " width " << width;
    EXPECT_TRUE(close(analytic.distribution->error_rate,
                      sim.distribution->error_rate))
        << width;
    EXPECT_EQ(analytic.distribution->worst_case_error,
              sim.distribution->worst_case_error)
        << width;
  }
}

TEST(Differential, AnalyticPmfWidth32InsideMonteCarloConfidenceInterval) {
  // Width 32 is far beyond any enumeration oracle; the check is
  // statistical: the analytic MED must land inside the Monte Carlo 99%
  // CI for E[|err|], with var(|err|) estimated as MSE - MED^2.  The
  // chain is the realistic hybrid shape — approximate low bits, exact
  // high bits — whose PMF support stays small at any width.
  const std::size_t width = 32;
  std::vector<AdderCell> stages;
  for (std::size_t s = 0; s < width; ++s) {
    stages.push_back(s < 8 ? sealpaa::adders::lpaa(1 + static_cast<int>(s % 7))
                           : sealpaa::adders::accurate());
  }
  const AdderChain chain(stages);
  const InputProfile profile = InputProfile::uniform(width, 0.42);

  const auto analytic = evaluate(chain, profile, Method::kAnalyticPmf);
  ASSERT_TRUE(analytic.distribution.has_value());
  EXPECT_EQ(analytic.work_items, width) << "zero simulation samples";

  sealpaa::engine::EvaluateOptions mc_opts;
  mc_opts.samples = 400'000;
  mc_opts.seed = 0xd1ff'e2e4'7e57'000dULL;
  const auto mc = evaluate(chain, profile, Method::kMonteCarlo, mc_opts);
  ASSERT_TRUE(mc.distribution.has_value());

  const double med_hat = mc.distribution->mean_error_distance;
  const double mse_hat = mc.distribution->mean_squared_error;
  const double variance = std::max(0.0, mse_hat - med_hat * med_hat);
  const double half_width =
      2.5758 * std::sqrt(variance / static_cast<double>(mc_opts.samples));
  const double med = analytic.distribution->mean_error_distance;
  EXPECT_GE(med, med_hat - half_width)
      << "analytic MED " << med << " below MC 99% CI [" << med_hat - half_width
      << ", " << med_hat + half_width << "]";
  EXPECT_LE(med, med_hat + half_width)
      << "analytic MED " << med << " above MC 99% CI [" << med_hat - half_width
      << ", " << med_hat + half_width << "]";
}

TEST(Differential, HybridChainsOfRandomCellsAgree) {
  // Heterogeneous chains mixing random cells per stage — the shape the
  // hybrid DSE produces — validated against inclusion–exclusion.
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0004ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0005ULL);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t width = 4 + static_cast<std::size_t>(trial * 2);  // 4..12
    std::vector<AdderCell> stages;
    for (std::size_t s = 0; s < width; ++s) {
      stages.push_back(
          random_cell(seed_stream, trial * 100 + static_cast<int>(s)));
    }
    const AdderChain chain(stages);
    const InputProfile profile =
        InputProfile::random(width, profile_rng, 0.1, 0.9);
    const auto recursive = evaluate(chain, profile, Method::kRecursive);
    const auto ie = evaluate(chain, profile, Method::kInclusionExclusion);
    EXPECT_NEAR(recursive.p_error, ie.p_error, kTolerance)
        << chain.describe() << " width " << width;
  }
}

TEST(Differential, BatchEvaluatorAgreesWithRecursionAtEveryKernelLevel) {
  // The SoA many-chain kernel against the scalar recursion, at every
  // forced dispatch tier: strict mode must be bit-identical regardless
  // of the cap (it never touches the SIMD kernels), and the
  // reassociated fast mode must stay within 1e-12 relative at each
  // level.  Forcing is a cap, so walking avx2/avx512 is safe on any box.
  sealpaa::prob::SplitMix64 seed_stream(0xd1ff'e2e4'7e57'0006ULL);
  sealpaa::prob::Xoshiro256StarStar profile_rng(0xd1ff'e2e4'7e57'0007ULL);
  sealpaa::prob::SplitMix64 chain_rng(0xd1ff'e2e4'7e57'0008ULL);
  const std::size_t width = 12;
  std::vector<AdderCell> palette;
  for (int c = 0; c < 5; ++c) palette.push_back(random_cell(seed_stream, c));
  const InputProfile profile =
      InputProfile::random(width, profile_rng, 0.1, 0.9);
  sealpaa::engine::ChainBatchEvaluator batch(profile, palette);

  std::vector<std::vector<std::size_t>> chains(16);
  std::vector<std::span<const std::size_t>> spans;
  std::vector<sealpaa::analysis::AnalysisResult> oracle;
  for (std::vector<std::size_t>& choice : chains) {
    std::vector<AdderCell> stages;
    for (std::size_t s = 0; s < width; ++s) {
      choice.push_back(chain_rng.next() % palette.size());
      stages.push_back(palette[choice.back()]);
    }
    spans.emplace_back(choice);
    oracle.push_back(sealpaa::analysis::RecursiveAnalyzer::analyze(
        AdderChain(stages), profile));
  }

  struct Guard {
    ~Guard() { sealpaa::util::set_forced_kernel(std::nullopt); }
  } guard;
  for (const sealpaa::util::KernelLevel level :
       {sealpaa::util::KernelLevel::kScalar,
        sealpaa::util::KernelLevel::kAvx2,
        sealpaa::util::KernelLevel::kAvx512}) {
    sealpaa::util::set_forced_kernel(level);
    const auto strict =
        batch.evaluate(spans, sealpaa::engine::BatchMode::kStrict);
    const auto fast =
        batch.evaluate(spans, sealpaa::engine::BatchMode::kFast);
    ASSERT_EQ(strict.size(), oracle.size());
    for (std::size_t l = 0; l < oracle.size(); ++l) {
      EXPECT_EQ(strict[l].p_error, oracle[l].p_error)
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
      EXPECT_EQ(strict[l].p_success, oracle[l].p_success)
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
      EXPECT_EQ(strict[l].final_carry.c0, oracle[l].final_carry.c0)
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
      EXPECT_EQ(strict[l].final_carry.c1, oracle[l].final_carry.c1)
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
      EXPECT_NEAR(fast[l].p_success, oracle[l].p_success, kTolerance)
          << sealpaa::util::kernel_level_name(level) << " lane " << l;
    }
  }
}

}  // namespace

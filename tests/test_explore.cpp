// Design-space exploration: hybrid optimizers, Pareto filtering and the
// four-season robustness ranking.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/explore/pareto.hpp"
#include "sealpaa/explore/robustness.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::builtin_lpaas;
using sealpaa::adders::lpaa;
using sealpaa::analysis::RecursiveAnalyzer;
using sealpaa::explore::DesignConstraints;
using sealpaa::explore::DesignPoint;
using sealpaa::explore::HybridOptimizer;
using sealpaa::explore::pareto_front;
using sealpaa::multibit::InputProfile;

TEST(HybridExhaustive, BeatsOrTiesEveryHomogeneousDesign) {
  const InputProfile profile({0.1, 0.2, 0.8, 0.9}, {0.2, 0.1, 0.9, 0.8}, 0.1);
  const auto best = HybridOptimizer::exhaustive(profile, builtin_lpaas());
  for (const auto& cell : builtin_lpaas()) {
    const double homogeneous =
        RecursiveAnalyzer::error_probability(cell, profile);
    EXPECT_LE(best.p_error, homogeneous + 1e-12) << cell.name();
  }
}

TEST(HybridExhaustive, MixedProfilePrefersDifferentCellsPerStage) {
  // Low-probability bits at the bottom, high at the top: per the paper,
  // LPAA7-like cells should win low-p stages and LPAA1-like high-p ones,
  // so the optimum should genuinely be hybrid.
  const InputProfile profile({0.05, 0.05, 0.95, 0.95},
                             {0.05, 0.05, 0.95, 0.95}, 0.05);
  const auto best = HybridOptimizer::exhaustive(profile, builtin_lpaas());
  bool all_same = true;
  for (const auto& stage : best.stages) {
    all_same = all_same && stage.name() == best.stages.front().name();
  }
  EXPECT_FALSE(all_same) << "expected a truly hybrid optimum";
}

TEST(HybridExhaustive, AccurateCandidateYieldsZeroError) {
  std::vector<sealpaa::adders::AdderCell> candidates(builtin_lpaas().begin(),
                                                     builtin_lpaas().end());
  candidates.push_back(accurate());
  const InputProfile profile = InputProfile::uniform(3, 0.5);
  const auto best = HybridOptimizer::exhaustive(profile, candidates);
  EXPECT_NEAR(best.p_error, 0.0, 1e-12);
}

TEST(HybridBeam, WideBeamRecoversExhaustiveOptimum) {
  const InputProfile profile({0.1, 0.4, 0.6, 0.9}, {0.2, 0.5, 0.5, 0.8}, 0.3);
  const auto exact = HybridOptimizer::exhaustive(profile, builtin_lpaas());
  const auto beam =
      HybridOptimizer::beam(profile, builtin_lpaas(), {}, 4096);
  EXPECT_NEAR(beam.p_error, exact.p_error, 1e-9);
  // The beam runs on the engine's prefix cache: sibling expansions share
  // their parent's prefix, so the cache must have answered probes and
  // must have saved stage recomputation versus per-chain re-analysis.
  EXPECT_GT(beam.stats.cache_hits, 0u);
  EXPECT_LT(beam.stats.stages_computed,
            beam.stats.candidates_evaluated * profile.width());
}

TEST(HybridBeam, GreedyIsNoBetterThanBeam) {
  const InputProfile profile({0.1, 0.4, 0.6, 0.9, 0.5, 0.2},
                             {0.2, 0.5, 0.5, 0.8, 0.4, 0.3}, 0.3);
  const auto greedy = HybridOptimizer::greedy(profile, builtin_lpaas());
  const auto beam = HybridOptimizer::beam(profile, builtin_lpaas(), {}, 256);
  EXPECT_LE(beam.p_error, greedy.p_error + 1e-12);
}

TEST(HybridBeam, PowerBudgetIsRespected) {
  // Only LPAA1-5 carry power data; a tight budget must force cheap cells.
  std::vector<sealpaa::adders::AdderCell> candidates;
  for (int i = 1; i <= 5; ++i) candidates.push_back(lpaa(i));
  const InputProfile profile = InputProfile::uniform(6, 0.2);
  DesignConstraints constraints;
  constraints.max_power_nw = 6 * 300.0;  // below 6 x LPAA1 (771 nW)
  const auto design =
      HybridOptimizer::beam(profile, candidates, constraints, 512);
  ASSERT_TRUE(design.power_nw.has_value());
  EXPECT_LE(*design.power_nw, *constraints.max_power_nw + 1e-9);
  // The budget is below 6 x LPAA1, so at least one stage must be a
  // cheaper cell.
  bool has_cheap_stage = false;
  for (const auto& stage : design.stages) {
    has_cheap_stage = has_cheap_stage || stage.name() != "LPAA1";
  }
  EXPECT_TRUE(has_cheap_stage);
}

TEST(HybridBeam, ConstraintsWithMissingDataRejectCells) {
  // LPAA6/7 lack power data, so under a power budget they cannot appear.
  DesignConstraints constraints;
  constraints.max_power_nw = 1e9;
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const auto design =
      HybridOptimizer::beam(profile, builtin_lpaas(), constraints, 64);
  for (const auto& stage : design.stages) {
    EXPECT_NE(stage.name(), "LPAA6");
    EXPECT_NE(stage.name(), "LPAA7");
  }
}

TEST(HybridValidation, EmptyCandidatesAndHugeSpacesRejected) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  EXPECT_THROW(
      (void)HybridOptimizer::exhaustive(profile, {}),
      std::invalid_argument);
  const InputProfile wide = InputProfile::uniform(40, 0.5);
  EXPECT_THROW(
      (void)HybridOptimizer::exhaustive(wide, builtin_lpaas()),
      std::invalid_argument);
  EXPECT_THROW(
      (void)HybridOptimizer::beam(profile, builtin_lpaas(), {}, 0),
      std::invalid_argument);
}

TEST(Pareto, FiltersDominatedPoints) {
  std::vector<DesignPoint> points = {
      {"good", 0.1, 100.0, 1.0, true},
      {"dominated", 0.2, 150.0, 2.0, true},
      {"cheap", 0.5, 10.0, 0.1, true},
      {"nocost", 0.01, 0.0, 0.0, false},
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].name, "good");
  EXPECT_EQ(front[1].name, "cheap");
}

TEST(Pareto, IdenticalPointsBothSurvive) {
  std::vector<DesignPoint> points = {
      {"a", 0.1, 100.0, 1.0, true},
      {"b", 0.1, 100.0, 1.0, true},
  };
  EXPECT_EQ(pareto_front(points).size(), 2u);
}

TEST(Pareto, HomogeneousSweepCoversAllCells) {
  const auto points = sealpaa::explore::homogeneous_sweep(
      InputProfile::uniform(8, 0.5));
  EXPECT_EQ(points.size(), 8u);  // AccuFA + 7 LPAAs
  for (const auto& point : points) {
    if (point.name == "AccuFA") {
      EXPECT_NEAR(point.p_error, 0.0, 1e-12);
      EXPECT_TRUE(point.has_cost);
    }
    if (point.name == "LPAA6" || point.name == "LPAA7") {
      EXPECT_FALSE(point.has_cost);
    }
  }
}

TEST(Pareto, HomogeneousSweepMatchesPerCellEvaluate) {
  // The sweep routes through one engine::evaluate_batch SoA pass; the
  // batch contract is element-wise bit-identity with per-cell evaluate.
  const InputProfile profile({0.1, 0.35, 0.6, 0.85, 0.4, 0.7},
                             {0.9, 0.25, 0.55, 0.15, 0.8, 0.45}, 0.2);
  const auto points = sealpaa::explore::homogeneous_sweep(profile);
  const auto cells = sealpaa::adders::all_builtin_cells();
  ASSERT_EQ(points.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(points[i].name, cells[i].name());
    EXPECT_EQ(points[i].p_error,
              sealpaa::engine::evaluate(cells[i], profile,
                                        sealpaa::engine::Method::kRecursive)
                  .p_error)
        << cells[i].name();
  }
}

TEST(Robustness, Lpaa6IsTheFourSeasonAdder) {
  // Paper §5: "LPAA 6 works optimally better for low, high and equally
  // probable inputs" — it must rank first on worst-case error.
  const auto ranking = sealpaa::explore::four_season_ranking(8);
  ASSERT_EQ(ranking.size(), 7u);
  EXPECT_EQ(ranking.front().cell_name, "LPAA6");
  for (const auto& score : ranking) {
    EXPECT_LE(score.best_error, score.mean_error + 1e-12);
    EXPECT_LE(score.mean_error, score.worst_error + 1e-12);
  }
}

TEST(Robustness, RankingSortedByWorstError) {
  const auto ranking = sealpaa::explore::four_season_ranking(6, 0.1);
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_LE(ranking[i - 1].worst_error, ranking[i].worst_error + 1e-12);
  }
}

}  // namespace

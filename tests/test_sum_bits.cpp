// Sum-bit probability analysis vs direct enumeration.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/sum_bits.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::analysis::SumBitAnalyzer;
using sealpaa::analysis::SumVectors;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

// Enumerates all weighted assignments and accumulates per-bit events.
struct Enumerated {
  std::vector<double> p_sum_one;
  std::vector<double> p_sum_one_and_success;
  std::vector<double> p_carry_one;
};

Enumerated enumerate(const AdderChain& chain, const InputProfile& profile) {
  const std::size_t n = chain.width();
  Enumerated out;
  out.p_sum_one.assign(n, 0.0);
  out.p_sum_one_and_success.assign(n, 0.0);
  out.p_carry_one.assign(n, 0.0);
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        const double weight = profile.assignment_probability(a, b, cin != 0);
        if (weight == 0.0) continue;
        bool carry = cin != 0;
        bool success = true;
        for (std::size_t i = 0; i < n; ++i) {
          const bool ab = ((a >> i) & 1ULL) != 0;
          const bool bb = ((b >> i) & 1ULL) != 0;
          const std::size_t row =
              sealpaa::adders::AdderCell::row_index(ab, bb, carry);
          const auto bits = chain.stage(i).rows()[row];
          success = success && chain.stage(i).row_is_success(row);
          if (bits.sum) out.p_sum_one[i] += weight;
          if (bits.sum && success) out.p_sum_one_and_success[i] += weight;
          carry = bits.carry;
          if (carry) out.p_carry_one[i] += weight;
        }
      }
    }
  }
  return out;
}

TEST(SumVectors, DerivedFromTruthTable) {
  const SumVectors v = SumVectors::from_cell(lpaa(7));
  // LPAA7 sum column: 0,1,1,1,1,1,0,1.
  const double expected_sum[8] = {0, 1, 1, 1, 1, 1, 0, 1};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(v.sum_one[i], expected_sum[i]) << i;
  }
  // Success rows of LPAA7 are all but 3 and 5 (sum errors).
  EXPECT_DOUBLE_EQ(v.sum_one_and_success[3], 0.0);
  EXPECT_DOUBLE_EQ(v.sum_one_and_success[5], 0.0);
  EXPECT_DOUBLE_EQ(v.sum_one_and_success[1], 1.0);
}

TEST(SumBits, MatchEnumerationOnRandomProfiles) {
  sealpaa::prob::Xoshiro256StarStar rng(71);
  for (int cell : {1, 3, 5, 6, 7}) {
    const std::size_t width = 6;
    const InputProfile profile = InputProfile::random(width, rng);
    const AdderChain chain = AdderChain::homogeneous(lpaa(cell), width);
    const auto report = SumBitAnalyzer::analyze(chain, profile);
    const Enumerated expected = enumerate(chain, profile);
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_NEAR(report.p_sum_one[i], expected.p_sum_one[i], 1e-12)
          << "LPAA" << cell << " bit " << i;
      EXPECT_NEAR(report.p_sum_one_and_success[i],
                  expected.p_sum_one_and_success[i], 1e-12)
          << "LPAA" << cell << " bit " << i;
      EXPECT_NEAR(report.p_carry_one[i], expected.p_carry_one[i], 1e-12)
          << "LPAA" << cell << " bit " << i;
    }
  }
}

TEST(SumBits, PrefixSuccessIsMonotone) {
  const InputProfile profile = InputProfile::uniform(12, 0.35);
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 12);
  const auto report = SumBitAnalyzer::analyze(chain, profile);
  double previous = 1.0;
  for (double mass : report.p_prefix_success) {
    EXPECT_LE(mass, previous + 1e-12);
    previous = mass;
  }
}

TEST(SumBits, ExactReferenceMatchesAccurateChainSignals) {
  // For an exact chain the approximate signal probabilities must equal
  // the exact-adder reference column.
  const InputProfile profile = InputProfile::uniform(8, 0.7);
  const AdderChain chain = AdderChain::homogeneous(accurate(), 8);
  const auto report = SumBitAnalyzer::analyze(chain, profile);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(report.p_sum_one[i], report.p_sum_one_exact[i], 1e-12) << i;
  }
}

TEST(SumBits, UniformHalfInputsGiveHalfSignals) {
  // With p = 0.5 everywhere the exact adder's sum bits are unbiased.
  const InputProfile profile = InputProfile::uniform(10, 0.5);
  const AdderChain chain = AdderChain::homogeneous(accurate(), 10);
  const auto report = SumBitAnalyzer::analyze(chain, profile);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(report.p_sum_one[i], 0.5, 1e-12) << i;
    EXPECT_NEAR(report.p_carry_one[i], 0.5, 1e-12) << i;
  }
}

TEST(SumBits, WidthMismatchThrows) {
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 5);
  EXPECT_THROW((void)SumBitAnalyzer::analyze(chain, profile),
               std::invalid_argument);
}

}  // namespace

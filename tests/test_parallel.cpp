// Thread-pool unit tests plus the determinism invariant of the parallel
// execution core: every sharded engine must produce *bit-identical*
// results for threads=1 and threads=8 and across repeated runs, because
// chunk layout and reduction order are functions of the problem size
// only — never of the worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/explore/pareto.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/montecarlo.hpp"
#include "sealpaa/util/parallel.hpp"

namespace {

using sealpaa::adders::builtin_lpaas;
using sealpaa::adders::lpaa;
using sealpaa::baseline::WeightedExhaustive;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;
using sealpaa::sim::ExhaustiveSimulator;
using sealpaa::sim::MonteCarloSimulator;
using sealpaa::util::ShardTimings;
using sealpaa::util::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ZeroRequestsDefaultThreads) {
  sealpaa::util::set_default_threads(3);
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 3u);
  sealpaa::util::set_default_threads(0);
  EXPECT_EQ(sealpaa::util::default_threads(),
            sealpaa::util::hardware_threads());
}

TEST(ThreadPool, WorkerDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> seen_inside{false};
  pool.submit([&] { seen_inside = pool.on_worker_thread(); });
  pool.wait();
  EXPECT_TRUE(seen_inside.load());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> marks(1000);
  sealpaa::util::parallel_for(pool, 0, 1000, 7,
                              [&](std::uint64_t lo, std::uint64_t hi) {
                                for (std::uint64_t i = lo; i < hi; ++i) {
                                  marks[static_cast<std::size_t>(i)]
                                      .fetch_add(1);
                                }
                              });
  for (const auto& mark : marks) EXPECT_EQ(mark.load(), 1);
}

TEST(ParallelFor, EmptyRangeAndGrainValidation) {
  ThreadPool pool(2);
  bool called = false;
  sealpaa::util::parallel_for(pool, 5, 5, 1,
                              [&](std::uint64_t, std::uint64_t) {
                                called = true;
                              });
  EXPECT_FALSE(called);
  EXPECT_THROW(sealpaa::util::parallel_for(
                   pool, 0, 10, 0, [](std::uint64_t, std::uint64_t) {}),
               std::invalid_argument);
}

TEST(ParallelMapReduce, OrderedReduceIsBitStableAcrossThreadCounts) {
  // Doubles with wildly mixed magnitudes: any reordering of the fold
  // changes the rounding, so bit-equality proves the reduction order is
  // fixed.
  sealpaa::prob::Xoshiro256StarStar rng(42);
  std::vector<double> values(10000);
  for (double& v : values) {
    v = (rng.uniform01() - 0.5) * std::pow(10.0, 12.0 * rng.uniform01());
  }
  const auto sum_with = [&](unsigned threads) {
    ThreadPool pool(threads);
    return sealpaa::util::parallel_map_reduce(
        pool, 0, values.size(), 13, 0.0,
        [&](std::uint64_t lo, std::uint64_t hi) {
          double partial = 0.0;
          for (std::uint64_t i = lo; i < hi; ++i) {
            partial += values[static_cast<std::size_t>(i)];
          }
          return partial;
        },
        [](double& acc, double&& partial) { acc += partial; });
  };
  const double one = sum_with(1);
  const double four = sum_with(4);
  const double eight = sum_with(8);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(ParallelMapReduce, RecordsShardTimings) {
  ThreadPool pool(2);
  ShardTimings timings;
  const double total = sealpaa::util::parallel_map_reduce(
      pool, 0, 100, 10, 0.0,
      [](std::uint64_t lo, std::uint64_t hi) {
        return static_cast<double>(hi - lo);
      },
      [](double& acc, double&& part) { acc += part; }, &timings);
  EXPECT_EQ(total, 100.0);
  EXPECT_EQ(timings.threads, 2u);
  ASSERT_EQ(timings.shards.size(), 10u);
  std::uint64_t items = 0;
  for (const auto& shard : timings.shards) items += shard.items;
  EXPECT_EQ(items, 100u);
  EXPECT_GE(timings.wall_seconds, 0.0);
  EXPECT_GE(timings.cpu_seconds(), 0.0);
}

TEST(ParallelMapReduce, NestedCallsRunInline) {
  ThreadPool pool(2);
  // A map function that itself forks on the same pool must not deadlock.
  const double total = sealpaa::util::parallel_map_reduce(
      pool, 0, 4, 1, 0.0,
      [&](std::uint64_t lo, std::uint64_t) {
        return sealpaa::util::parallel_map_reduce(
            pool, 0, 10, 2, 0.0,
            [lo](std::uint64_t a, std::uint64_t b) {
              return static_cast<double>((b - a) * (lo + 1));
            },
            [](double& acc, double&& part) { acc += part; });
      },
      [](double& acc, double&& part) { acc += part; });
  EXPECT_EQ(total, 10.0 * (1 + 2 + 3 + 4));
}

// ---------------------------------------------------------------------
// Engine-level determinism invariants: threads=1 vs threads=8 and
// repeated runs must agree to the last bit.

TEST(ParallelDeterminism, ExhaustiveSimBitIdenticalAcrossThreadCounts) {
  const AdderChain chain = AdderChain::homogeneous(lpaa(3), 8);
  const auto one = ExhaustiveSimulator::run(chain, 13, 1);
  const auto eight = ExhaustiveSimulator::run(chain, 13, 8);
  const auto again = ExhaustiveSimulator::run(chain, 13, 8);
  EXPECT_EQ(one.metrics.cases(), eight.metrics.cases());
  EXPECT_EQ(one.metrics.stage_failures(), eight.metrics.stage_failures());
  EXPECT_EQ(one.metrics.value_errors(), eight.metrics.value_errors());
  EXPECT_EQ(one.metrics.worst_case_error(), eight.metrics.worst_case_error());
  // Floating-point accumulators: bit equality, not closeness.
  EXPECT_EQ(one.metrics.mean_error(), eight.metrics.mean_error());
  EXPECT_EQ(one.metrics.mean_abs_error(), eight.metrics.mean_abs_error());
  EXPECT_EQ(one.metrics.mean_squared_error(),
            eight.metrics.mean_squared_error());
  EXPECT_EQ(eight.metrics.mean_squared_error(),
            again.metrics.mean_squared_error());
  EXPECT_EQ(one.bit_operations, eight.bit_operations);
}

TEST(ParallelDeterminism, WeightedExhaustiveBitIdenticalAcrossThreadCounts) {
  sealpaa::prob::Xoshiro256StarStar rng(7);
  const InputProfile profile = InputProfile::random(8, rng, 0.05, 0.95);
  const AdderChain chain = AdderChain::homogeneous(lpaa(6), 8);
  const auto one = WeightedExhaustive::analyze(chain, profile, 14, 1);
  const auto eight = WeightedExhaustive::analyze(chain, profile, 14, 8);
  EXPECT_EQ(one.p_stage_success, eight.p_stage_success);
  EXPECT_EQ(one.p_value_correct, eight.p_value_correct);
  EXPECT_EQ(one.p_sum_bits_correct, eight.p_sum_bits_correct);
  EXPECT_EQ(one.mean_error, eight.mean_error);
  EXPECT_EQ(one.mean_abs_error, eight.mean_abs_error);
  EXPECT_EQ(one.mean_squared_error, eight.mean_squared_error);
  EXPECT_EQ(one.worst_case_error, eight.worst_case_error);
  ASSERT_EQ(one.error_distribution.size(), eight.error_distribution.size());
  auto it_one = one.error_distribution.begin();
  auto it_eight = eight.error_distribution.begin();
  for (; it_one != one.error_distribution.end(); ++it_one, ++it_eight) {
    EXPECT_EQ(it_one->first, it_eight->first);
    EXPECT_EQ(it_one->second, it_eight->second);
  }
}

TEST(ParallelDeterminism, MonteCarloBitIdenticalAcrossThreadCounts) {
  const InputProfile profile = InputProfile::uniform(10, 0.3);
  const AdderChain chain = AdderChain::homogeneous(lpaa(5), 10);
  // 300k samples → 5 fixed-size shards; the shard layout depends only on
  // the sample count, so any thread count replays the same streams.
  const auto one =
      MonteCarloSimulator::run_parallel(chain, profile, 300'000, 1, 123);
  const auto eight =
      MonteCarloSimulator::run_parallel(chain, profile, 300'000, 8, 123);
  const auto again =
      MonteCarloSimulator::run_parallel(chain, profile, 300'000, 8, 123);
  EXPECT_EQ(one.metrics.cases(), 300'000u);
  EXPECT_EQ(one.metrics.stage_failures(), eight.metrics.stage_failures());
  EXPECT_EQ(one.metrics.value_errors(), eight.metrics.value_errors());
  EXPECT_EQ(one.metrics.mean_error(), eight.metrics.mean_error());
  EXPECT_EQ(one.metrics.mean_squared_error(),
            eight.metrics.mean_squared_error());
  EXPECT_EQ(eight.metrics.stage_failures(), again.metrics.stage_failures());
  EXPECT_EQ(eight.metrics.mean_error(), again.metrics.mean_error());
  // The worst case is tracked with a total-order comparator (magnitude,
  // ties to the negative error), so it too is shard-order independent.
  EXPECT_EQ(one.metrics.worst_case_error(), eight.metrics.worst_case_error());
  EXPECT_EQ(eight.metrics.worst_case_error(),
            again.metrics.worst_case_error());
}

TEST(ParallelDeterminism, MonteCarloZeroSamplesReportsEmptyCis) {
  // A zero-sample run is a no-op, not a NaN factory: metrics stay at the
  // identity and both confidence intervals are explicitly empty.
  const InputProfile profile = InputProfile::uniform(4, 0.5);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 4);
  for (const auto& report :
       {MonteCarloSimulator::run(chain, profile, 0),
        MonteCarloSimulator::run_parallel(chain, profile, 0, 4)}) {
    EXPECT_EQ(report.samples, 0u);
    EXPECT_EQ(report.metrics.cases(), 0u);
    EXPECT_TRUE(report.stage_failure_ci.empty());
    EXPECT_TRUE(report.value_error_ci.empty());
    EXPECT_FALSE(std::isnan(report.metrics.error_rate()));
    EXPECT_FALSE(std::isnan(report.metrics.mean_error()));
  }
}

TEST(ThreadPool, StatsTrackExecutionAndQueueDepth) {
  ThreadPool pool(2);
  ASSERT_EQ(pool.stats().tasks_executed, 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] {
      counter.fetch_add(1);
      volatile double sink = 0.0;
      for (int j = 0; j < 1000; ++j) sink = sink + 1.0;
    });
  }
  pool.wait();
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(stats.tasks_executed, 50u);
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_LE(stats.queue_high_water, 50u);
  ASSERT_EQ(stats.worker_busy_seconds.size(), 2u);
  EXPECT_GE(stats.total_busy_seconds(), 0.0);
}

TEST(ParallelDeterminism, HybridExhaustiveSameWinnerAcrossThreadCounts) {
  const InputProfile profile = InputProfile::uniform(5, 0.35);
  const auto one = sealpaa::explore::HybridOptimizer::exhaustive(
      profile, builtin_lpaas(), {}, 50'000'000, 1);
  const auto eight = sealpaa::explore::HybridOptimizer::exhaustive(
      profile, builtin_lpaas(), {}, 50'000'000, 8);
  ASSERT_EQ(one.stages.size(), eight.stages.size());
  for (std::size_t i = 0; i < one.stages.size(); ++i) {
    EXPECT_EQ(one.stages[i].name(), eight.stages[i].name()) << "stage " << i;
  }
  EXPECT_EQ(one.p_error, eight.p_error);
  EXPECT_EQ(one.p_success, eight.p_success);
}

TEST(ParallelDeterminism, HomogeneousSweepSameAcrossThreadCounts) {
  const InputProfile profile = InputProfile::uniform(8, 0.2);
  const auto one = sealpaa::explore::homogeneous_sweep(profile, 1);
  const auto eight = sealpaa::explore::homogeneous_sweep(profile, 8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].name, eight[i].name);
    EXPECT_EQ(one[i].p_error, eight[i].p_error);
    EXPECT_EQ(one[i].power_nw, eight[i].power_nw);
  }
}

TEST(ParallelDeterminism, MonteCarloSingleShardMatchesSerialRun) {
  // Fewer samples than one shard (2^16): run_parallel uses the unjumped
  // base stream, so it must reproduce run() exactly.
  const InputProfile profile = InputProfile::uniform(6, 0.4);
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 6);
  const auto serial = MonteCarloSimulator::run(chain, profile, 20'000, 5);
  const auto parallel =
      MonteCarloSimulator::run_parallel(chain, profile, 20'000, 4, 5);
  EXPECT_EQ(serial.metrics.stage_failures(), parallel.metrics.stage_failures());
  EXPECT_EQ(serial.metrics.value_errors(), parallel.metrics.value_errors());
  EXPECT_EQ(serial.metrics.mean_error(), parallel.metrics.mean_error());
}

TEST(ParallelDeterminism, ExhaustiveReportsShardTimings) {
  const AdderChain chain = AdderChain::homogeneous(lpaa(2), 6);
  const auto report = ExhaustiveSimulator::run(chain, 13, 2);
  EXPECT_EQ(report.shard_timings.threads, 2u);
  EXPECT_FALSE(report.shard_timings.shards.empty());
  std::uint64_t covered = 0;
  for (const auto& shard : report.shard_timings.shards) covered += shard.items;
  EXPECT_EQ(covered, 1ULL << 6);  // the sharded `a` dimension
  EXPECT_FALSE(report.shard_timings.summary().empty());
}

}  // namespace

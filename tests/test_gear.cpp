// GeAr model and analysis: configuration validation, functional
// equivalence checks, exact DP vs exhaustive simulation, and the
// independence approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace {

using sealpaa::gear::GearAdder;
using sealpaa::gear::GearAnalyzer;
using sealpaa::gear::GearConfig;
using sealpaa::multibit::exact_add;
using sealpaa::multibit::InputProfile;

TEST(GearConfig, ValidConfigurations) {
  const GearConfig g(8, 2, 2);
  EXPECT_EQ(g.l(), 4);
  EXPECT_EQ(g.blocks(), 3);
  EXPECT_EQ(g.window_start(1), 2);
  EXPECT_EQ(g.result_start(0), 0);
  EXPECT_EQ(g.result_start(1), 4);
  EXPECT_EQ(g.critical_path_bits(), 4);
  EXPECT_NE(g.describe().find("GeAr(N=8,R=2,P=2)"), std::string::npos);
}

TEST(GearConfig, KFormulaMatchesThePaper) {
  // k = ((N - L) / R) + 1 (paper §2.2).
  EXPECT_EQ(GearConfig(16, 4, 4).blocks(), (16 - 8) / 4 + 1);
  EXPECT_EQ(GearConfig(8, 2, 0).blocks(), 4);
  EXPECT_EQ(GearConfig(12, 3, 3).blocks(), 3);
}

TEST(GearConfig, InvalidConfigurationsRejected) {
  EXPECT_THROW(GearConfig(8, 0, 2), std::invalid_argument);   // R < 1
  EXPECT_THROW(GearConfig(8, 2, -1), std::invalid_argument);  // P < 0
  EXPECT_THROW(GearConfig(4, 3, 3), std::invalid_argument);   // L > N
  EXPECT_THROW(GearConfig(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(GearConfig(64, 2, 2), std::invalid_argument);
}

TEST(GearConfig, RaggedTailAccepted) {
  // (N - L) % R != 0 used to be rejected outright; the geometry now
  // clamps the last block at bit N and widens its overlap instead.
  const GearConfig g(9, 2, 2);
  EXPECT_EQ(g.blocks(), 4);         // ceil((9 - 4) / 2) + 1
  EXPECT_EQ(g.window_start(3), 5);  // min(3 * 2, 9 - 4)
  EXPECT_EQ(g.result_start(3), 8);
  EXPECT_EQ(g.overlap(3), 3);       // P + (R - clamped width)
  EXPECT_EQ(g.to_blocks().to_string(), "4:0,2:2,2:2,1:3");
}

TEST(GearConfig, ClampedBlockBoundaries) {
  // GeAr(10, 4, 3): the second block would cover [7, 11) — it clamps to
  // [7, 10) and its window grows to keep the L-bit sub-adder.
  const GearConfig g(10, 4, 3);
  EXPECT_EQ(g.blocks(), 2);
  EXPECT_EQ(g.window_start(1), 3);  // min(4, 10 - 7)
  EXPECT_EQ(g.result_start(1), 7);
  EXPECT_EQ(g.overlap(1), 4);
  EXPECT_EQ(g.overlap(0), 0);
  // Every block's L-bit sub-adder window stays inside [0, N), and the
  // window starts strictly increase (the DP retire order relies on it).
  for (int i = 0; i < g.blocks(); ++i) {
    EXPECT_LE(g.window_start(i) + g.l(), g.n()) << "block " << i;
    if (i > 0) {
      EXPECT_GT(g.window_start(i), g.window_start(i - 1));
    }
  }
}

TEST(GearConfig, DegenerateSingleBlockWhenLEqualsN) {
  // N == L: one full-width block, regardless of P — an exact adder.
  EXPECT_EQ(GearConfig(8, 4, 4).blocks(), 1);
  EXPECT_EQ(GearConfig(8, 4, 4).window_start(0), 0);
  const auto analysis = GearAnalyzer::analyze(
      GearConfig(8, 4, 4), InputProfile::uniform(8, 0.5));
  EXPECT_NEAR(analysis.p_error_exact_dp, 0.0, 1e-12);
}

/// Independent functional model of a GeAr adder: each block ripples its
/// L-bit sub-adder window [window_start, result_end) from cin 0 (block 0
/// from the real cin) and contributes only its result bits; the last
/// block's carry is the carry-out.  Written directly from the paper's
/// figure, sharing no code with GearAdder.
std::uint64_t reference_gear_value(const GearConfig& config, std::uint64_t a,
                                   std::uint64_t b) {
  const int n = config.n();
  std::uint64_t sum = 0;
  bool carry_out = false;
  for (int block = 0; block < config.blocks(); ++block) {
    const int lo = config.window_start(block);
    const int hi = block + 1 < config.blocks() ? config.result_start(block + 1)
                                               : n;
    bool carry = false;  // all tests below drive cin = 0
    for (int j = lo; j < hi; ++j) {
      const bool abit = ((a >> j) & 1) != 0;
      const bool bbit = ((b >> j) & 1) != 0;
      const bool sbit = abit ^ bbit ^ carry;
      carry = (abit && bbit) || (carry && (abit != bbit));
      if (j >= config.result_start(block)) {
        sum |= static_cast<std::uint64_t>(sbit) << j;
      }
    }
    if (block == config.blocks() - 1) carry_out = carry;
  }
  return sum | (static_cast<std::uint64_t>(carry_out) << n);
}

TEST(GearAdder, RaggedGeometriesMatchFunctionalModel) {
  // Exhaustive up to width 12 against the independent reference,
  // covering clamped tails, a block-1 tail ((N - L) < R) and the old
  // rigid tilings as controls.
  for (const GearConfig& config :
       {GearConfig(9, 2, 2), GearConfig(10, 4, 3), GearConfig(11, 3, 2),
        GearConfig(7, 3, 2), GearConfig(12, 5, 4), GearConfig(8, 2, 2),
        GearConfig(6, 5, 1)}) {
    const GearAdder adder(config);
    const int n = config.n();
    const std::uint64_t limit = 1ULL << n;
    // Full sweep through 10 bits; strided beyond (primes keep the
    // residues varied) so the whole list stays under a second.
    const std::uint64_t step_a = n <= 10 ? 1 : 5;
    const std::uint64_t step_b = n <= 10 ? 1 : 7;
    for (std::uint64_t a = 0; a < limit; a += step_a) {
      for (std::uint64_t b = 0; b < limit; b += step_b) {
        const std::uint64_t got = adder.evaluate(a, b).value(
            static_cast<std::size_t>(n));
        const std::uint64_t want = reference_gear_value(config, a, b);
        if (got != want) {
          FAIL() << config.describe() << " a=" << a << " b=" << b << " got "
                 << got << " want " << want;
        }
      }
    }
  }
}

TEST(GearAdder, SingleBlockIsExact) {
  // R = N, P = 0: one full-width block — an exact adder.
  const GearAdder adder{GearConfig(8, 8, 0)};
  for (std::uint64_t a = 0; a < 256; a += 13) {
    for (std::uint64_t b = 0; b < 256; b += 7) {
      EXPECT_EQ(adder.evaluate(a, b).value(8),
                exact_add(a, b, false, 8).value(8));
    }
  }
}

TEST(GearAdder, KnownErrorCase) {
  // GeAr(8,2,2): block 1 covers bits [2..5] with cin 0.  A carry
  // generated below bit 2 that must propagate through bits 2..3 is lost.
  const GearAdder adder{GearConfig(8, 2, 2)};
  // a = 0b00001111, b = 0b00000001: exact sum 0b00010000.  The carry out
  // of bit 1 is 1 and bits 2,3 both propagate -> block 1 gets it wrong.
  const auto approx = adder.evaluate(0b00001111, 0b00000001);
  const auto exact = exact_add(0b00001111, 0b00000001, false, 8);
  EXPECT_NE(approx.value(8), exact.value(8));
}

TEST(GearAdder, NoCarryCasesAreCorrect) {
  // Operand pairs with no carries at all are always exact.
  const GearAdder adder{GearConfig(12, 3, 3)};
  EXPECT_EQ(adder.evaluate(0b101010101010, 0b010101010101).value(12),
            exact_add(0b101010101010, 0b010101010101, false, 12).value(12));
  EXPECT_EQ(adder.evaluate(0, 0).value(12), 0u);
}

TEST(GearAnalyzer, DpMatchesExhaustiveUniform) {
  for (const GearConfig& config :
       {GearConfig(8, 2, 2), GearConfig(8, 2, 0), GearConfig(8, 4, 4),
        GearConfig(10, 3, 1), GearConfig(9, 3, 3), GearConfig(6, 1, 1),
        // Ragged tails: the DP must track the clamped geometry too.
        GearConfig(9, 2, 2), GearConfig(10, 4, 3), GearConfig(11, 3, 2)}) {
    const auto metrics = GearAnalyzer::exhaustive(config);
    const auto analysis = GearAnalyzer::analyze(
        config,
        InputProfile::uniform(static_cast<std::size_t>(config.n()), 0.5));
    EXPECT_NEAR(analysis.p_error_exact_dp, metrics.error_rate(), 1e-12)
        << config.describe();
  }
}

TEST(GearAnalyzer, DpMatchesExhaustiveWeighted) {
  // Non-uniform inputs: weight the exhaustive sweep by hand.
  const GearConfig config(8, 2, 2);
  const InputProfile profile = InputProfile::uniform_with_cin(8, 0.3, 0.0);
  const GearAdder adder{config};
  double p_error = 0.0;
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const double weight = profile.assignment_probability(a, b, false) /
                            (1.0 - 0.0);  // cin fixed 0
      if (adder.evaluate(a, b).value(8) !=
          exact_add(a, b, false, 8).value(8)) {
        p_error += weight;
      }
    }
  }
  const auto analysis = GearAnalyzer::analyze(config, profile);
  EXPECT_NEAR(analysis.p_error_exact_dp, p_error, 1e-12);
}

TEST(GearAnalyzer, SingleBlockHasZeroError) {
  const auto analysis = GearAnalyzer::analyze(
      GearConfig(8, 8, 0), InputProfile::uniform(8, 0.5));
  EXPECT_NEAR(analysis.p_error_exact_dp, 0.0, 1e-12);
  EXPECT_TRUE(analysis.block_failure.empty());
}

TEST(GearAnalyzer, BlockFailureClosedFormUniformHalf) {
  // Uniform p = 0.5: P(B_i) = P(carry=1 at window start) * 2^-P, and the
  // exact carry signal probability converges to 1/2 from below.
  const GearConfig config(8, 2, 2);
  const auto analysis =
      GearAnalyzer::analyze(config, InputProfile::uniform(8, 0.5));
  ASSERT_EQ(analysis.block_failure.size(), 2u);
  // P(carry at bit 2) = 1/4 + 1/2 * P(carry at bit 1) = 3/8... compute:
  // q0 = 0 (cin), q1 = 1/4, q2 = 1/4 + q1/2 = 3/8, q4 = ...
  const double q2 = 0.375;
  EXPECT_NEAR(analysis.block_failure[0], q2 * 0.25, 1e-12);
}

TEST(GearAnalyzer, IndependenceApproxCloseButNotExact) {
  const GearConfig config(12, 2, 2);
  const auto analysis =
      GearAnalyzer::analyze(config, InputProfile::uniform(12, 0.5));
  // The block-failure events are positively correlated, so the
  // independence model overestimates the union — by ~3.7 pp here.
  EXPECT_GT(analysis.p_error_independent_approx,
            analysis.p_error_sum_only - 1e-12);
  EXPECT_NEAR(analysis.p_error_independent_approx, analysis.p_error_sum_only,
              0.05);
  // ...and sum-only error is bounded by carry-inclusive error.
  EXPECT_LE(analysis.p_error_sum_only, analysis.p_error_exact_dp + 1e-12);
}

TEST(GearAnalyzer, MoreOverlapReducesError) {
  // Increasing P (longer overlap) strictly reduces the error probability.
  const double e0 =
      GearAnalyzer::analyze(GearConfig(8, 2, 0), InputProfile::uniform(8, 0.5))
          .p_error_exact_dp;
  const double e2 =
      GearAnalyzer::analyze(GearConfig(8, 2, 2), InputProfile::uniform(8, 0.5))
          .p_error_exact_dp;
  const double e4 =
      GearAnalyzer::analyze(GearConfig(8, 2, 4), InputProfile::uniform(8, 0.5))
          .p_error_exact_dp;
  EXPECT_GT(e0, e2);
  EXPECT_GT(e2, e4);
}

TEST(GearWithCell, AccurateCellMatchesPlainGear) {
  const GearConfig config(8, 2, 2);
  const GearAdder plain(config);
  const GearAdder with_cell(config, sealpaa::adders::accurate());
  for (std::uint64_t a = 0; a < 256; a += 3) {
    for (std::uint64_t b = 0; b < 256; b += 7) {
      EXPECT_EQ(plain.evaluate(a, b).value(8),
                with_cell.evaluate(a, b).value(8));
    }
  }
  const auto profile = InputProfile::uniform(8, 0.5);
  const auto plain_analysis = GearAnalyzer::analyze(config, profile);
  const auto cell_analysis = GearAnalyzer::analyze_with_cell(
      config, sealpaa::adders::accurate(), profile);
  EXPECT_NEAR(plain_analysis.p_error_exact_dp,
              cell_analysis.p_error_exact_dp, 1e-12);
  EXPECT_NEAR(plain_analysis.p_error_sum_only,
              cell_analysis.p_error_sum_only, 1e-12);
}

TEST(GearWithCell, ApproximateCellDpMatchesExhaustive) {
  for (int cell_index : {1, 5, 6, 7}) {
    for (const GearConfig& config :
         {GearConfig(8, 2, 2), GearConfig(8, 4, 4), GearConfig(9, 3, 3),
          GearConfig(9, 2, 2)}) {
      const auto& cell = sealpaa::adders::lpaa(cell_index);
      const auto profile = InputProfile::uniform(
          static_cast<std::size_t>(config.n()), 0.5);
      const auto analysis =
          GearAnalyzer::analyze_with_cell(config, cell, profile);
      const auto metrics =
          GearAnalyzer::exhaustive_with_cell(config, cell);
      EXPECT_NEAR(analysis.p_error_exact_dp, metrics.error_rate(), 1e-12)
          << "LPAA" << cell_index << " " << config.describe();
    }
  }
}

TEST(GearWithCell, DoubleApproximationIsWorseThanEither) {
  // GeAr with LPAA6 sub-adders errs at least as often as the same GeAr
  // with exact sub-adders (it has strictly more failure modes).
  const GearConfig config(10, 2, 2);
  const auto profile = InputProfile::uniform(10, 0.5);
  const double gear_exact_cells =
      GearAnalyzer::analyze(config, profile).p_error_exact_dp;
  const double gear_lpaa6 =
      GearAnalyzer::analyze_with_cell(config, sealpaa::adders::lpaa(6),
                                      profile)
          .p_error_exact_dp;
  EXPECT_GT(gear_lpaa6, gear_exact_cells);
}

TEST(GearWithCell, NonUniformProfileMatchesWeightedSweep) {
  const GearConfig config(6, 2, 2);
  const auto& cell = sealpaa::adders::lpaa(7);
  const InputProfile profile({0.2, 0.8, 0.4, 0.6, 0.1, 0.9},
                             {0.7, 0.3, 0.5, 0.2, 0.9, 0.4}, 0.0);
  const GearAdder adder(config, cell);
  double p_error = 0.0;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      if (adder.evaluate(a, b).value(6) !=
          exact_add(a, b, false, 6).value(6)) {
        p_error += profile.assignment_probability(a, b, false);
      }
    }
  }
  const auto analysis =
      GearAnalyzer::analyze_with_cell(config, cell, profile);
  EXPECT_NEAR(analysis.p_error_exact_dp, p_error, 1e-12);
}

TEST(GearAnalyzer, WidthMismatchThrows) {
  EXPECT_THROW((void)GearAnalyzer::analyze(GearConfig(8, 2, 2),
                                           InputProfile::uniform(6, 0.5)),
               std::invalid_argument);
}

}  // namespace

// GeAr model and analysis: configuration validation, functional
// equivalence checks, exact DP vs exhaustive simulation, and the
// independence approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace {

using sealpaa::gear::GearAdder;
using sealpaa::gear::GearAnalyzer;
using sealpaa::gear::GearConfig;
using sealpaa::multibit::exact_add;
using sealpaa::multibit::InputProfile;

TEST(GearConfig, ValidConfigurations) {
  const GearConfig g(8, 2, 2);
  EXPECT_EQ(g.l(), 4);
  EXPECT_EQ(g.blocks(), 3);
  EXPECT_EQ(g.window_start(1), 2);
  EXPECT_EQ(g.result_start(0), 0);
  EXPECT_EQ(g.result_start(1), 4);
  EXPECT_EQ(g.critical_path_bits(), 4);
  EXPECT_NE(g.describe().find("GeAr(N=8,R=2,P=2)"), std::string::npos);
}

TEST(GearConfig, KFormulaMatchesThePaper) {
  // k = ((N - L) / R) + 1 (paper §2.2).
  EXPECT_EQ(GearConfig(16, 4, 4).blocks(), (16 - 8) / 4 + 1);
  EXPECT_EQ(GearConfig(8, 2, 0).blocks(), 4);
  EXPECT_EQ(GearConfig(12, 3, 3).blocks(), 3);
}

TEST(GearConfig, InvalidConfigurationsRejected) {
  EXPECT_THROW(GearConfig(8, 0, 2), std::invalid_argument);   // R < 1
  EXPECT_THROW(GearConfig(8, 2, -1), std::invalid_argument);  // P < 0
  EXPECT_THROW(GearConfig(4, 3, 3), std::invalid_argument);   // L > N
  EXPECT_THROW(GearConfig(9, 2, 2), std::invalid_argument);   // (N-L) % R
  EXPECT_THROW(GearConfig(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(GearConfig(64, 2, 2), std::invalid_argument);
}

TEST(GearAdder, SingleBlockIsExact) {
  // R = N, P = 0: one full-width block — an exact adder.
  const GearAdder adder{GearConfig(8, 8, 0)};
  for (std::uint64_t a = 0; a < 256; a += 13) {
    for (std::uint64_t b = 0; b < 256; b += 7) {
      EXPECT_EQ(adder.evaluate(a, b).value(8),
                exact_add(a, b, false, 8).value(8));
    }
  }
}

TEST(GearAdder, KnownErrorCase) {
  // GeAr(8,2,2): block 1 covers bits [2..5] with cin 0.  A carry
  // generated below bit 2 that must propagate through bits 2..3 is lost.
  const GearAdder adder{GearConfig(8, 2, 2)};
  // a = 0b00001111, b = 0b00000001: exact sum 0b00010000.  The carry out
  // of bit 1 is 1 and bits 2,3 both propagate -> block 1 gets it wrong.
  const auto approx = adder.evaluate(0b00001111, 0b00000001);
  const auto exact = exact_add(0b00001111, 0b00000001, false, 8);
  EXPECT_NE(approx.value(8), exact.value(8));
}

TEST(GearAdder, NoCarryCasesAreCorrect) {
  // Operand pairs with no carries at all are always exact.
  const GearAdder adder{GearConfig(12, 3, 3)};
  EXPECT_EQ(adder.evaluate(0b101010101010, 0b010101010101).value(12),
            exact_add(0b101010101010, 0b010101010101, false, 12).value(12));
  EXPECT_EQ(adder.evaluate(0, 0).value(12), 0u);
}

TEST(GearAnalyzer, DpMatchesExhaustiveUniform) {
  for (const GearConfig& config :
       {GearConfig(8, 2, 2), GearConfig(8, 2, 0), GearConfig(8, 4, 4),
        GearConfig(10, 3, 1), GearConfig(9, 3, 3), GearConfig(6, 1, 1)}) {
    const auto metrics = GearAnalyzer::exhaustive(config);
    const auto analysis = GearAnalyzer::analyze(
        config,
        InputProfile::uniform(static_cast<std::size_t>(config.n()), 0.5));
    EXPECT_NEAR(analysis.p_error_exact_dp, metrics.error_rate(), 1e-12)
        << config.describe();
  }
}

TEST(GearAnalyzer, DpMatchesExhaustiveWeighted) {
  // Non-uniform inputs: weight the exhaustive sweep by hand.
  const GearConfig config(8, 2, 2);
  const InputProfile profile = InputProfile::uniform_with_cin(8, 0.3, 0.0);
  const GearAdder adder{config};
  double p_error = 0.0;
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const double weight = profile.assignment_probability(a, b, false) /
                            (1.0 - 0.0);  // cin fixed 0
      if (adder.evaluate(a, b).value(8) !=
          exact_add(a, b, false, 8).value(8)) {
        p_error += weight;
      }
    }
  }
  const auto analysis = GearAnalyzer::analyze(config, profile);
  EXPECT_NEAR(analysis.p_error_exact_dp, p_error, 1e-12);
}

TEST(GearAnalyzer, SingleBlockHasZeroError) {
  const auto analysis = GearAnalyzer::analyze(
      GearConfig(8, 8, 0), InputProfile::uniform(8, 0.5));
  EXPECT_NEAR(analysis.p_error_exact_dp, 0.0, 1e-12);
  EXPECT_TRUE(analysis.block_failure.empty());
}

TEST(GearAnalyzer, BlockFailureClosedFormUniformHalf) {
  // Uniform p = 0.5: P(B_i) = P(carry=1 at window start) * 2^-P, and the
  // exact carry signal probability converges to 1/2 from below.
  const GearConfig config(8, 2, 2);
  const auto analysis =
      GearAnalyzer::analyze(config, InputProfile::uniform(8, 0.5));
  ASSERT_EQ(analysis.block_failure.size(), 2u);
  // P(carry at bit 2) = 1/4 + 1/2 * P(carry at bit 1) = 3/8... compute:
  // q0 = 0 (cin), q1 = 1/4, q2 = 1/4 + q1/2 = 3/8, q4 = ...
  const double q2 = 0.375;
  EXPECT_NEAR(analysis.block_failure[0], q2 * 0.25, 1e-12);
}

TEST(GearAnalyzer, IndependenceApproxCloseButNotExact) {
  const GearConfig config(12, 2, 2);
  const auto analysis =
      GearAnalyzer::analyze(config, InputProfile::uniform(12, 0.5));
  // The block-failure events are positively correlated, so the
  // independence model overestimates the union — by ~3.7 pp here.
  EXPECT_GT(analysis.p_error_independent_approx,
            analysis.p_error_sum_only - 1e-12);
  EXPECT_NEAR(analysis.p_error_independent_approx, analysis.p_error_sum_only,
              0.05);
  // ...and sum-only error is bounded by carry-inclusive error.
  EXPECT_LE(analysis.p_error_sum_only, analysis.p_error_exact_dp + 1e-12);
}

TEST(GearAnalyzer, MoreOverlapReducesError) {
  // Increasing P (longer overlap) strictly reduces the error probability.
  const double e0 =
      GearAnalyzer::analyze(GearConfig(8, 2, 0), InputProfile::uniform(8, 0.5))
          .p_error_exact_dp;
  const double e2 =
      GearAnalyzer::analyze(GearConfig(8, 2, 2), InputProfile::uniform(8, 0.5))
          .p_error_exact_dp;
  const double e4 =
      GearAnalyzer::analyze(GearConfig(8, 2, 4), InputProfile::uniform(8, 0.5))
          .p_error_exact_dp;
  EXPECT_GT(e0, e2);
  EXPECT_GT(e2, e4);
}

TEST(GearWithCell, AccurateCellMatchesPlainGear) {
  const GearConfig config(8, 2, 2);
  const GearAdder plain(config);
  const GearAdder with_cell(config, sealpaa::adders::accurate());
  for (std::uint64_t a = 0; a < 256; a += 3) {
    for (std::uint64_t b = 0; b < 256; b += 7) {
      EXPECT_EQ(plain.evaluate(a, b).value(8),
                with_cell.evaluate(a, b).value(8));
    }
  }
  const auto profile = InputProfile::uniform(8, 0.5);
  const auto plain_analysis = GearAnalyzer::analyze(config, profile);
  const auto cell_analysis = GearAnalyzer::analyze_with_cell(
      config, sealpaa::adders::accurate(), profile);
  EXPECT_NEAR(plain_analysis.p_error_exact_dp,
              cell_analysis.p_error_exact_dp, 1e-12);
  EXPECT_NEAR(plain_analysis.p_error_sum_only,
              cell_analysis.p_error_sum_only, 1e-12);
}

TEST(GearWithCell, ApproximateCellDpMatchesExhaustive) {
  for (int cell_index : {1, 5, 6, 7}) {
    for (const GearConfig& config :
         {GearConfig(8, 2, 2), GearConfig(8, 4, 4), GearConfig(9, 3, 3)}) {
      const auto& cell = sealpaa::adders::lpaa(cell_index);
      const auto profile = InputProfile::uniform(
          static_cast<std::size_t>(config.n()), 0.5);
      const auto analysis =
          GearAnalyzer::analyze_with_cell(config, cell, profile);
      const auto metrics =
          GearAnalyzer::exhaustive_with_cell(config, cell);
      EXPECT_NEAR(analysis.p_error_exact_dp, metrics.error_rate(), 1e-12)
          << "LPAA" << cell_index << " " << config.describe();
    }
  }
}

TEST(GearWithCell, DoubleApproximationIsWorseThanEither) {
  // GeAr with LPAA6 sub-adders errs at least as often as the same GeAr
  // with exact sub-adders (it has strictly more failure modes).
  const GearConfig config(10, 2, 2);
  const auto profile = InputProfile::uniform(10, 0.5);
  const double gear_exact_cells =
      GearAnalyzer::analyze(config, profile).p_error_exact_dp;
  const double gear_lpaa6 =
      GearAnalyzer::analyze_with_cell(config, sealpaa::adders::lpaa(6),
                                      profile)
          .p_error_exact_dp;
  EXPECT_GT(gear_lpaa6, gear_exact_cells);
}

TEST(GearWithCell, NonUniformProfileMatchesWeightedSweep) {
  const GearConfig config(6, 2, 2);
  const auto& cell = sealpaa::adders::lpaa(7);
  const InputProfile profile({0.2, 0.8, 0.4, 0.6, 0.1, 0.9},
                             {0.7, 0.3, 0.5, 0.2, 0.9, 0.4}, 0.0);
  const GearAdder adder(config, cell);
  double p_error = 0.0;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      if (adder.evaluate(a, b).value(6) !=
          exact_add(a, b, false, 6).value(6)) {
        p_error += profile.assignment_probability(a, b, false);
      }
    }
  }
  const auto analysis =
      GearAnalyzer::analyze_with_cell(config, cell, profile);
  EXPECT_NEAR(analysis.p_error_exact_dp, p_error, 1e-12);
}

TEST(GearAnalyzer, WidthMismatchThrows) {
  EXPECT_THROW((void)GearAnalyzer::analyze(GearConfig(8, 2, 2),
                                           InputProfile::uniform(6, 0.5)),
               std::invalid_argument);
}

}  // namespace

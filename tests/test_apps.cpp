// Application substrates: synthetic images + PSNR and the fixed-point
// FIR datapath.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/apps/fir.hpp"
#include "sealpaa/apps/image.hpp"
#include "sealpaa/apps/sobel.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::apps::exact_blend;
using sealpaa::apps::FirFilter;
using sealpaa::apps::Image;
using sealpaa::apps::image_mse;
using sealpaa::apps::image_psnr;
using sealpaa::apps::make_sine_signal;
using sealpaa::apps::snr_db;
using sealpaa::multibit::AdderChain;

TEST(Image, GeneratorsProduceExpectedPatterns) {
  const Image gradient = Image::gradient(32, 8);
  EXPECT_EQ(gradient.at(0, 0), 0);
  EXPECT_EQ(gradient.at(31, 7), 255);

  const Image checker = Image::checkerboard(16, 16, 4);
  EXPECT_EQ(checker.at(0, 0), 220);
  EXPECT_EQ(checker.at(4, 0), 35);
  EXPECT_EQ(checker.at(4, 4), 220);

  sealpaa::prob::Xoshiro256StarStar rng(5);
  const Image blobs = Image::blobs(24, 24, 3, rng);
  EXPECT_EQ(blobs.width(), 24u);
}

TEST(Image, PsnrIdentityIsInfinite) {
  const Image image = Image::gradient(16, 16);
  EXPECT_TRUE(std::isinf(image_psnr(image, image)));
  EXPECT_DOUBLE_EQ(image_mse(image, image), 0.0);
}

TEST(Image, ExactChainBlendMatchesReferenceBlend) {
  const Image a = Image::gradient(32, 32);
  const Image b = Image::checkerboard(32, 32, 8);
  const Image reference = exact_blend(a, b);
  const Image approx =
      sealpaa::apps::approx_blend(a, b, AdderChain::homogeneous(accurate(), 8));
  EXPECT_DOUBLE_EQ(image_mse(reference, approx), 0.0);
}

TEST(Image, ApproximateBlendDegradesButStaysRecognizable) {
  const Image a = Image::gradient(32, 32);
  const Image b = Image::checkerboard(32, 32, 8);
  const Image reference = exact_blend(a, b);
  const Image approx =
      sealpaa::apps::approx_blend(a, b, AdderChain::homogeneous(lpaa(6), 8));
  const double psnr = image_psnr(reference, approx);
  EXPECT_GT(psnr, 5.0);
  EXPECT_LT(psnr, 100.0);  // it is not exact either
}

TEST(Image, HybridMsbExactBlendBeatsAllApproximate) {
  // Approximating only the 4 LSBs must hurt much less than all 8 bits.
  const Image a = Image::gradient(48, 48);
  const Image b = Image::checkerboard(48, 48, 6);
  std::vector<sealpaa::adders::AdderCell> lsb_approx;
  for (int i = 0; i < 4; ++i) lsb_approx.push_back(lpaa(5));
  for (int i = 0; i < 4; ++i) lsb_approx.push_back(accurate());
  const double psnr_hybrid = image_psnr(
      exact_blend(a, b),
      sealpaa::apps::approx_blend(a, b, AdderChain(lsb_approx)));
  const double psnr_full = image_psnr(
      exact_blend(a, b),
      sealpaa::apps::approx_blend(a, b, AdderChain::homogeneous(lpaa(5), 8)));
  EXPECT_GT(psnr_hybrid, psnr_full + 6.0);
}

TEST(Image, PgmRoundTripHeader) {
  const std::string path = "/tmp/sealpaa_test_image.pgm";
  Image::gradient(8, 4).write_pgm(path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  in >> width >> height >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(width, 8);
  EXPECT_EQ(height, 4);
  EXPECT_EQ(maxval, 255);
  std::remove(path.c_str());
}

TEST(Image, Validation) {
  EXPECT_THROW(Image(0, 4), std::invalid_argument);
  const Image a = Image::gradient(8, 8);
  const Image b = Image::gradient(4, 4);
  EXPECT_THROW((void)image_mse(a, b), std::invalid_argument);
  EXPECT_THROW(
      (void)sealpaa::apps::approx_blend(
          a, a, AdderChain::homogeneous(accurate(), 4)),
      std::invalid_argument);
}

TEST(Sobel, ExactChainMatchesExactOperator) {
  sealpaa::prob::Xoshiro256StarStar rng(23);
  const Image scene = Image::blobs(40, 40, 4, rng);
  const Image reference = sealpaa::apps::sobel_magnitude_exact(scene);
  const Image via_chain = sealpaa::apps::sobel_magnitude(
      scene, AdderChain::homogeneous(accurate(), 12));
  EXPECT_DOUBLE_EQ(image_mse(reference, via_chain), 0.0);
}

TEST(Sobel, BorderIsZero) {
  const Image scene = Image::checkerboard(16, 16, 4);
  const Image edges = sealpaa::apps::sobel_magnitude_exact(scene);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(edges.at(i, 0), 0);
    EXPECT_EQ(edges.at(0, i), 0);
    EXPECT_EQ(edges.at(i, 15), 0);
    EXPECT_EQ(edges.at(15, i), 0);
  }
}

TEST(Sobel, HybridBeatsFullyApproximate) {
  sealpaa::prob::Xoshiro256StarStar rng(29);
  const Image scene = Image::blobs(40, 40, 5, rng);
  const Image reference = sealpaa::apps::sobel_magnitude_exact(scene);
  std::vector<sealpaa::adders::AdderCell> hybrid;
  for (int i = 0; i < 4; ++i) hybrid.push_back(lpaa(6));
  for (int i = 4; i < 12; ++i) hybrid.push_back(accurate());
  const double psnr_hybrid = image_psnr(
      reference, sealpaa::apps::sobel_magnitude(scene, AdderChain(hybrid)));
  const double psnr_full = image_psnr(
      reference, sealpaa::apps::sobel_magnitude(
                     scene, AdderChain::homogeneous(lpaa(6), 12)));
  EXPECT_GT(psnr_hybrid, psnr_full);
}

TEST(Sobel, RejectsWrongChainWidth) {
  const Image scene = Image::gradient(8, 8);
  EXPECT_THROW((void)sealpaa::apps::sobel_magnitude(
                   scene, AdderChain::homogeneous(accurate(), 8)),
               std::invalid_argument);
}

TEST(Fir, ExactChainMatchesExactAccumulation) {
  FirFilter filter({1, 2, 3, 2, 1}, 16);
  sealpaa::prob::Xoshiro256StarStar rng(17);
  const auto signal = make_sine_signal(128, 1000.0, 0.02, 20.0, rng);
  const auto exact = filter.run_exact(signal);
  const auto approx =
      filter.run_approx(signal, AdderChain::homogeneous(accurate(), 16));
  EXPECT_EQ(exact, approx);
}

TEST(Fir, ApproximateAccumulationLosesSnrMonotonically) {
  FirFilter filter({1, 2, 3, 2, 1}, 16);
  sealpaa::prob::Xoshiro256StarStar rng(19);
  const auto signal = make_sine_signal(256, 1000.0, 0.02, 0.0, rng);
  const auto exact = filter.run_exact(signal);

  // LSB-only approximation must beat full approximation in SNR.
  std::vector<sealpaa::adders::AdderCell> lsb;
  for (int i = 0; i < 6; ++i) lsb.push_back(lpaa(6));
  for (int i = 0; i < 10; ++i) lsb.push_back(accurate());
  const double snr_lsb =
      snr_db(exact, filter.run_approx(signal, AdderChain(lsb)));
  const double snr_full = snr_db(
      exact, filter.run_approx(signal, AdderChain::homogeneous(lpaa(6), 16)));
  EXPECT_GT(snr_lsb, snr_full);
}

TEST(Fir, Validation) {
  EXPECT_THROW(FirFilter({}, 16), std::invalid_argument);
  EXPECT_THROW(FirFilter({1}, 1), std::invalid_argument);
  EXPECT_THROW(FirFilter({1}, 63), std::invalid_argument);
  FirFilter filter({1, 1}, 12);
  EXPECT_THROW(
      (void)filter.run_approx({1, 2, 3},
                              AdderChain::homogeneous(accurate(), 8)),
      std::invalid_argument);
}

TEST(Fir, SnrEdgeCases) {
  EXPECT_TRUE(std::isinf(snr_db({1, 2, 3}, {1, 2, 3})));
  EXPECT_THROW((void)snr_db({1, 2}, {1}), std::invalid_argument);
}

TEST(Fir, NegativeSamplesHandledInTwosComplement) {
  FirFilter filter({1, -1}, 16);
  const std::vector<std::int64_t> signal = {100, -50, 25, -300};
  const auto exact = filter.run_exact(signal);
  EXPECT_EQ(exact[0], 100);
  EXPECT_EQ(exact[1], -150);  // -50 - 100
  EXPECT_EQ(exact[2], 75);    // 25 + 50
  const auto approx =
      filter.run_approx(signal, AdderChain::homogeneous(accurate(), 16));
  EXPECT_EQ(exact, approx);
}

}  // namespace

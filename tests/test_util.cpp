// Unit tests for the utility layer (table renderer, formatting, CSV,
// CLI parsing, op counters).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/op_counter.hpp"
#include "sealpaa/util/csv.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"
#include "sealpaa/util/timer.hpp"

namespace {

using sealpaa::util::Align;
using sealpaa::util::CliArgs;
using sealpaa::util::OpCounter;
using sealpaa::util::OpCounts;
using sealpaa::util::TextTable;

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"bb", "22"});
  const std::string out = table.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| bb"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RightAlignmentPadsLeft) {
  TextTable table({"n"});
  table.set_align(0, Align::Right);
  table.add_row({"7"});
  table.add_row({"100"});
  const std::string out = table.str();
  EXPECT_NE(out.find("|   7 |"), std::string::npos);
  EXPECT_NE(out.find("| 100 |"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_NO_THROW((void)table.str());
}

TEST(TextTable, SeparatorEmitsRule) {
  TextTable table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.str();
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0;
  std::istringstream stream(out);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Format, Fixed) {
  EXPECT_EQ(sealpaa::util::fixed(0.123456, 3), "0.123");
  EXPECT_EQ(sealpaa::util::fixed(1.0, 2), "1.00");
}

TEST(Format, EngineeringStyle) {
  EXPECT_EQ(sealpaa::util::engineering(255.0), "255");
  EXPECT_EQ(sealpaa::util::engineering(1.04e9), "1.04x10^9");
  EXPECT_EQ(sealpaa::util::engineering(6.87e10), "68.7x10^9");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(sealpaa::util::with_commas(0), "0");
  EXPECT_EQ(sealpaa::util::with_commas(999), "999");
  EXPECT_EQ(sealpaa::util::with_commas(1000), "1,000");
  EXPECT_EQ(sealpaa::util::with_commas(1234567), "1,234,567");
}

TEST(Format, Duration) {
  EXPECT_EQ(sealpaa::util::duration(2.5e-9), "2.5 ns");
  EXPECT_EQ(sealpaa::util::duration(3.2e-6), "3.2 us");
  EXPECT_EQ(sealpaa::util::duration(0.004), "4.00 ms");
  EXPECT_EQ(sealpaa::util::duration(1.5), "1.500 s");
}

TEST(Csv, EscapesSpecialCharacters) {
  const std::string path = "/tmp/sealpaa_csv_test.csv";
  {
    sealpaa::util::CsvWriter writer(path);
    writer.write_row({"plain", "with,comma", "with\"quote"});
    writer.close();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(sealpaa::util::CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=4",
                        "--verbose", "pos1", "pos2"};
  const CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.0);
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, StrictIntegerParsingRejectsGarbage) {
  const char* argv[] = {"prog", "--samples=1e6", "--grain=12cores",
                        "--seed=0x10", "--width= 8"};
  const CliArgs args(5, argv);
  // "1e6" used to silently parse as 1 via strtoll — the motivating bug.
  EXPECT_THROW((void)args.get_int("samples", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_uint("samples", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("grain", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("seed", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("width", 0), std::invalid_argument);
}

TEST(Cli, StrictIntegerParsingRejectsOutOfRange) {
  const char* argv[] = {"prog", "--big=99999999999999999999",
                        "--neg=-1"};
  const CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_int("big", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_uint("big", 0), std::invalid_argument);
  EXPECT_EQ(args.get_int("neg", 0), -1);
  // get_uint refuses negatives rather than wrapping.
  EXPECT_THROW((void)args.get_uint("neg", 0), std::invalid_argument);
}

TEST(Cli, StrictDoubleParsingRejectsGarbage) {
  const char* argv[] = {"prog", "--p=0.5x", "--q=", "--r=nan",
                        "--s=1e999", "--ok=2.5e-1"};
  const CliArgs args(6, argv);
  EXPECT_THROW((void)args.get_double("p", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("q", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("r", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("s", 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(args.get_double("ok", 0.0), 0.25);
}

TEST(Cli, FallbacksStillApplyWhenFlagAbsent) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get_uint("missing", 9u), 9u);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 0.25), 0.25);
}

TEST(Cli, ExpectFlagsRejectsUnknownFlag) {
  // "--thread=8" (singular) used to be silently ignored; the run would
  // proceed single-threaded with no hint anything was wrong.
  const char* argv[] = {"prog", "--thread=8", "pos"};
  const CliArgs args(3, argv);
  EXPECT_THROW(args.expect_flags({"threads", "samples"}),
               std::invalid_argument);
  try {
    args.expect_flags({"threads", "samples"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--thread"), std::string::npos);
  }
}

TEST(Cli, ExpectFlagsAcceptsKnownFlags) {
  const char* argv[] = {"prog", "--threads=8", "--verbose"};
  const CliArgs args(3, argv);
  EXPECT_NO_THROW(args.expect_flags({"threads", "verbose", "unused"}));
  EXPECT_EQ(args.flags().size(), 2u);
}

TEST(Counters, AccumulateAndMerge) {
  OpCounter counter;
  counter.count_mul(3);
  counter.count_add(2);
  counter.count_cmp();
  counter.note_live(5);
  counter.note_live(2);  // smaller: keeps peak 5
  const OpCounts& counts = counter.counts();
  EXPECT_EQ(counts.multiplications, 3u);
  EXPECT_EQ(counts.additions, 2u);
  EXPECT_EQ(counts.comparisons, 1u);
  EXPECT_EQ(counts.memory_units, 5u);
  EXPECT_EQ(counts.total_arithmetic(), 6u);

  OpCounts other;
  other.multiplications = 10;
  other.memory_units = 3;
  const OpCounts merged = counts + other;
  EXPECT_EQ(merged.multiplications, 13u);
  EXPECT_EQ(merged.memory_units, 5u);  // max, not sum

  counter.reset();
  EXPECT_EQ(counter.counts().total_arithmetic(), 0u);
}

TEST(Counters, SummaryIsHumanReadable) {
  OpCounter counter;
  counter.count_mul(1500);
  EXPECT_NE(counter.counts().summary().find("mul=1,500"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  sealpaa::util::WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(timer.elapsed_seconds(), 0.0);
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 1.0);
}

}  // namespace

// GeAr error detection/correction: functional corrector and the exact
// recovery-cycle distribution DP, validated against exhaustive sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "sealpaa/gear/correction.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace {

using sealpaa::gear::correction_cycle_distribution;
using sealpaa::gear::expected_recovery_cycles;
using sealpaa::gear::GearAdder;
using sealpaa::gear::GearAnalyzer;
using sealpaa::gear::GearConfig;
using sealpaa::gear::GearCorrector;
using sealpaa::multibit::exact_add;
using sealpaa::multibit::InputProfile;

TEST(Detection, FlagsExactlyTheMispredictedBlocks) {
  const GearConfig config(8, 2, 2);
  const GearCorrector corrector(config);
  const GearAdder adder(config);
  // Exhaustive: detection must fire iff the GeAr sum bits in that
  // block's result region differ from the exact sum.
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const auto failing = corrector.detect(a, b);
      const auto approx = adder.evaluate(a, b);
      const auto exact = exact_add(a, b, false, 8);
      for (int block = 1; block < config.blocks(); ++block) {
        const int start = config.result_start(block);
        const int count = block == config.blocks() - 1
                              ? config.n() - start
                              : config.r();
        std::uint64_t mask = ((1ULL << count) - 1ULL)
                             << static_cast<unsigned>(start);
        const bool wrong =
            (approx.sum_bits & mask) != (exact.sum_bits & mask);
        const bool flagged =
            std::find(failing.begin(), failing.end(), block) != failing.end();
        EXPECT_EQ(flagged, wrong)
            << "a=" << a << " b=" << b << " block=" << block;
      }
    }
  }
}

TEST(Correction, AlwaysYieldsTheExactSum) {
  const GearCorrector corrector(GearConfig(10, 3, 1));
  for (std::uint64_t a = 0; a < 1024; a += 7) {
    for (std::uint64_t b = 0; b < 1024; b += 11) {
      const auto result = corrector.evaluate(a, b);
      const auto exact = exact_add(a, b, false, 10);
      EXPECT_EQ(result.outputs.value(10), exact.value(10));
      EXPECT_EQ(result.total_cycles, 1 + result.failing_blocks);
    }
  }
}

TEST(Detection, FlagsClampedTailBlocksCorrectly) {
  // Ragged geometry: the last block's result region is narrower than R
  // and its overlap wider than P.  detect() must compare exactly the
  // clamped region — the historical bug compared P prediction bits for
  // every block and mis-flagged clamped tails.
  for (const GearConfig& config :
       {GearConfig(9, 2, 2), GearConfig(10, 4, 3), GearConfig(7, 3, 2)}) {
    const GearCorrector corrector(config);
    const GearAdder adder(config);
    const std::size_t n = static_cast<std::size_t>(config.n());
    const std::uint64_t limit = 1ULL << n;
    for (std::uint64_t a = 0; a < limit; ++a) {
      for (std::uint64_t b = 0; b < limit; ++b) {
        const auto failing = corrector.detect(a, b);
        const auto approx = adder.evaluate(a, b);
        const auto exact = exact_add(a, b, false, n);
        for (int block = 1; block < config.blocks(); ++block) {
          const int start = config.result_start(block);
          const int count = block == config.blocks() - 1
                                ? config.n() - start
                                : config.r();
          const std::uint64_t mask = ((1ULL << count) - 1ULL)
                                     << static_cast<unsigned>(start);
          const bool wrong =
              (approx.sum_bits & mask) != (exact.sum_bits & mask);
          const bool flagged = std::find(failing.begin(), failing.end(),
                                         block) != failing.end();
          ASSERT_EQ(flagged, wrong) << config.describe() << " a=" << a
                                    << " b=" << b << " block=" << block;
        }
      }
    }
  }
}

TEST(Correction, ClampedTailStillYieldsTheExactSum) {
  const GearCorrector corrector(GearConfig(10, 4, 3));
  for (std::uint64_t a = 0; a < 1024; ++a) {
    for (std::uint64_t b = 0; b < 1024; b += 3) {
      const auto result = corrector.evaluate(a, b);
      const auto exact = exact_add(a, b, false, 10);
      ASSERT_EQ(result.outputs.value(10), exact.value(10))
          << "a=" << a << " b=" << b;
      ASSERT_EQ(result.total_cycles, 1 + result.failing_blocks);
    }
  }
}

TEST(CycleDistribution, MatchesExhaustiveCounting) {
  for (const GearConfig& config :
       {GearConfig(8, 2, 2), GearConfig(8, 2, 0), GearConfig(9, 3, 3),
        GearConfig(10, 2, 2),
        // Ragged tails exercise the per-block overlap in the DP.
        GearConfig(9, 2, 2), GearConfig(10, 4, 3)}) {
    const GearCorrector corrector(config);
    const std::size_t n = static_cast<std::size_t>(config.n());
    std::map<int, std::uint64_t> histogram;
    const std::uint64_t limit = 1ULL << n;
    for (std::uint64_t a = 0; a < limit; ++a) {
      for (std::uint64_t b = 0; b < limit; ++b) {
        histogram[static_cast<int>(corrector.detect(a, b).size())]++;
      }
    }
    const auto distribution = correction_cycle_distribution(
        config, InputProfile::uniform(n, 0.5));
    const double total = static_cast<double>(limit) * static_cast<double>(limit);
    for (std::size_t c = 0; c < distribution.size(); ++c) {
      const double expected =
          static_cast<double>(histogram[static_cast<int>(c)]) / total;
      EXPECT_NEAR(distribution[c], expected, 1e-12)
          << config.describe() << " cycles=" << c;
    }
  }
}

TEST(CycleDistribution, SumsToOne) {
  const auto distribution = correction_cycle_distribution(
      GearConfig(16, 4, 4), InputProfile::uniform(16, 0.3));
  double total = 0.0;
  for (double p : distribution) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CycleDistribution, ZeroFailuresMatchesGearSuccessProbability) {
  // P(0 failing blocks) must equal GearAnalyzer's sum-only success.
  for (const GearConfig& config :
       {GearConfig(8, 2, 2), GearConfig(12, 3, 3), GearConfig(16, 4, 4)}) {
    const auto profile = InputProfile::uniform(
        static_cast<std::size_t>(config.n()), 0.5);
    const auto distribution =
        correction_cycle_distribution(config, profile);
    const auto analysis = GearAnalyzer::analyze(config, profile);
    EXPECT_NEAR(distribution[0], 1.0 - analysis.p_error_sum_only, 1e-12)
        << config.describe();
  }
}

TEST(ExpectedCycles, MatchesSumOfBlockFailureProbabilities) {
  // Linearity of expectation: E[#failures] = sum_i P(B_i), regardless of
  // the correlations between blocks.
  const GearConfig config(12, 2, 2);
  const auto profile = InputProfile::uniform(12, 0.5);
  const auto analysis = GearAnalyzer::analyze(config, profile);
  double expected = 0.0;
  for (double f : analysis.block_failure) expected += f;
  EXPECT_NEAR(expected_recovery_cycles(config, profile), expected, 1e-12);
}

TEST(ExpectedCycles, DecreasesWithOverlap) {
  const auto profile = InputProfile::uniform(8, 0.5);
  const double p0 = expected_recovery_cycles(GearConfig(8, 2, 0), profile);
  const double p2 = expected_recovery_cycles(GearConfig(8, 2, 2), profile);
  EXPECT_GT(p0, p2);
}

TEST(CycleDistribution, SingleBlockNeverFails) {
  const auto distribution = correction_cycle_distribution(
      GearConfig(8, 8, 0), InputProfile::uniform(8, 0.5));
  ASSERT_EQ(distribution.size(), 1u);
  EXPECT_NEAR(distribution[0], 1.0, 1e-12);
}

TEST(CycleDistribution, WidthMismatchThrows) {
  EXPECT_THROW((void)correction_cycle_distribution(
                   GearConfig(8, 2, 2), InputProfile::uniform(6, 0.5)),
               std::invalid_argument);
}

}  // namespace

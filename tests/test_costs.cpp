// Resource accounting (Table 8) and the instrumented implementation
// model.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/costs.hpp"
#include "sealpaa/baseline/inclusion_exclusion.hpp"

namespace {

using sealpaa::adders::lpaa;
using sealpaa::analysis::implementation_model;
using sealpaa::analysis::measure_recursive;
using sealpaa::analysis::paper_model_equal_probabilities;
using sealpaa::analysis::paper_model_varying_probabilities;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

TEST(Table8, PaperModels) {
  const auto equal = paper_model_equal_probabilities();
  EXPECT_EQ(equal.multipliers, 32u);
  EXPECT_EQ(equal.adders, 21u);
  EXPECT_EQ(equal.memory_units, 3u);

  const auto varying = paper_model_varying_probabilities(16);
  EXPECT_EQ(varying.multipliers, 48u);
  EXPECT_EQ(varying.adders, 21u);
  EXPECT_EQ(varying.memory_units, 17u);
}

TEST(ImplementationModel, PredictsMeasuredCountsExactly) {
  for (int cell : {1, 2, 5, 6, 7}) {
    for (std::size_t width : {1u, 2u, 8u, 16u, 32u}) {
      const auto predicted = implementation_model(lpaa(cell), width);
      const auto measured = measure_recursive(
          AdderChain::homogeneous(lpaa(cell), width),
          InputProfile::uniform(width, 0.3));
      EXPECT_EQ(predicted.multiplications, measured.multiplications)
          << "LPAA" << cell << " width " << width;
      EXPECT_EQ(predicted.additions, measured.additions)
          << "LPAA" << cell << " width " << width;
      EXPECT_EQ(predicted.memory_units, measured.memory_units)
          << "LPAA" << cell << " width " << width;
    }
  }
}

TEST(ImplementationModel, LinearInWidth) {
  const auto n8 = implementation_model(lpaa(1), 8);
  const auto n16 = implementation_model(lpaa(1), 16);
  const auto n32 = implementation_model(lpaa(1), 32);
  // Doubling the width roughly doubles the arithmetic...
  EXPECT_NEAR(static_cast<double>(n16.multiplications),
              2.0 * static_cast<double>(n8.multiplications), 13.0);
  EXPECT_NEAR(static_cast<double>(n32.additions),
              2.0 * static_cast<double>(n16.additions), 13.0);
  // ...while the live state stays constant (the paper's key point).
  EXPECT_EQ(n8.memory_units, 3u);
  EXPECT_EQ(n32.memory_units, 3u);
}

TEST(ScalingContrast, RecursiveIsExponentiallyCheaperThanIe) {
  // At 16 stages the IE baseline needs ~5 x 10^5 multiplications; the
  // recursive method needs a couple of hundred.
  const auto ie = sealpaa::baseline::inclusion_exclusion_cost(16);
  const auto ours = implementation_model(lpaa(1), 16);
  EXPECT_GT(ie.multiplications /
                static_cast<double>(ours.multiplications),
            1000.0);
}

TEST(ImplementationModel, SingleStage) {
  // One stage: just the final IPM + L dot.
  const auto counts = implementation_model(lpaa(1), 1);
  EXPECT_EQ(counts.multiplications, 12u);
  // L for LPAA1 has six ones -> 5 additions, plus 2 complements.
  EXPECT_EQ(counts.additions, 7u);
}

}  // namespace

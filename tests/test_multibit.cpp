// Unit tests for the multi-bit substrate: profiles, chains, traced
// evaluation, exact reference and carry-save composition.
#include <gtest/gtest.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/csa.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"

namespace {

using sealpaa::adders::accurate;
using sealpaa::adders::lpaa;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::AddResult;
using sealpaa::multibit::CarrySaveAdder;
using sealpaa::multibit::exact_add;
using sealpaa::multibit::InputProfile;

TEST(InputProfile, Validation) {
  EXPECT_THROW(InputProfile({}, {}, 0.5), std::invalid_argument);
  EXPECT_THROW(InputProfile({0.5}, {0.5, 0.5}, 0.5), std::invalid_argument);
  EXPECT_THROW(InputProfile({1.5}, {0.5}, 0.5), std::domain_error);
  EXPECT_THROW(InputProfile({0.5}, {0.5}, -0.5), std::domain_error);
  EXPECT_THROW(InputProfile(std::vector<double>(64, 0.5),
                            std::vector<double>(64, 0.5), 0.5),
               std::invalid_argument);
}

TEST(InputProfile, UniformAndAccessors) {
  const InputProfile profile = InputProfile::uniform(4, 0.3);
  EXPECT_EQ(profile.width(), 4u);
  EXPECT_TRUE(profile.is_uniform(0.3));
  EXPECT_FALSE(profile.is_uniform(0.5));
  EXPECT_DOUBLE_EQ(profile.p_a(2), 0.3);
  EXPECT_DOUBLE_EQ(profile.p_cin(), 0.3);

  const InputProfile mixed = InputProfile::uniform_with_cin(4, 0.3, 0.0);
  EXPECT_FALSE(mixed.is_uniform(0.3));
  EXPECT_DOUBLE_EQ(mixed.p_cin(), 0.0);
}

TEST(InputProfile, AssignmentProbabilitiesSumToOne) {
  const InputProfile profile({0.2, 0.8}, {0.5, 0.9}, 0.4);
  double total = 0.0;
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      total += profile.assignment_probability(a, b, false);
      total += profile.assignment_probability(a, b, true);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-14);
}

TEST(InputProfile, SampleFrequenciesMatchProbabilities) {
  const InputProfile profile({0.2, 0.9}, {0.5, 0.1}, 0.7);
  sealpaa::prob::Xoshiro256StarStar rng(31);
  const int trials = 200000;
  int a0 = 0;
  int b1 = 0;
  int cin = 0;
  for (int i = 0; i < trials; ++i) {
    const auto sample = profile.sample(rng);
    a0 += (sample.a & 1ULL) != 0 ? 1 : 0;
    b1 += (sample.b & 2ULL) != 0 ? 1 : 0;
    cin += sample.cin ? 1 : 0;
  }
  EXPECT_NEAR(a0 / static_cast<double>(trials), 0.2, 0.01);
  EXPECT_NEAR(b1 / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(cin / static_cast<double>(trials), 0.7, 0.01);
}

TEST(AdderChain, AccurateChainAddsExactly) {
  const AdderChain chain = AdderChain::homogeneous(accurate(), 8);
  for (std::uint64_t a : {0ULL, 1ULL, 37ULL, 200ULL, 255ULL}) {
    for (std::uint64_t b : {0ULL, 5ULL, 128ULL, 255ULL}) {
      for (bool cin : {false, true}) {
        const AddResult result = chain.evaluate(a, b, cin);
        const AddResult reference = exact_add(a, b, cin, 8);
        EXPECT_EQ(result.value(8), reference.value(8))
            << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(AdderChain, ExactAddIncludesCarryOut) {
  const AddResult result = exact_add(255, 1, false, 8);
  EXPECT_EQ(result.sum_bits, 0u);
  EXPECT_TRUE(result.carry_out);
  EXPECT_EQ(result.value(8), 256u);
}

TEST(AdderChain, TracedDetectsFirstFailingStage) {
  // LPAA1 errs on rows (0,1,0) and (1,0,0).  a=0b010, b=0b000, cin=0:
  // stage 0 row (0,0,0) fine, stage 1 row (1,0,0)... build explicitly:
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 3);
  // Pick stage 1 inputs a=0,b=1,carry(from stage0)=0 -> row 2 (error).
  const auto traced = chain.evaluate_traced(0b000, 0b010, false);
  EXPECT_FALSE(traced.all_stages_success);
  EXPECT_EQ(traced.first_failed_stage, 1);
}

TEST(AdderChain, TracedSuccessOnExactChain) {
  const AdderChain chain = AdderChain::homogeneous(accurate(), 6);
  for (std::uint64_t a = 0; a < 64; a += 7) {
    const auto traced = chain.evaluate_traced(a, 63 - a, true);
    EXPECT_TRUE(traced.all_stages_success);
    EXPECT_EQ(traced.first_failed_stage, -1);
  }
}

TEST(AdderChain, DescribeFormats) {
  EXPECT_EQ(AdderChain::homogeneous(lpaa(2), 4).describe(), "4 x LPAA2");
  const AdderChain hybrid({lpaa(1), lpaa(6), accurate()});
  EXPECT_EQ(hybrid.describe(), "LPAA1|LPAA6|AccuFA");
  EXPECT_FALSE(hybrid.is_homogeneous());
  EXPECT_FALSE(hybrid.is_exact());
  EXPECT_TRUE(AdderChain::homogeneous(accurate(), 3).is_exact());
}

TEST(AdderChain, Validation) {
  EXPECT_THROW(AdderChain({}), std::invalid_argument);
  EXPECT_THROW(AdderChain::homogeneous(accurate(), 64),
               std::invalid_argument);
}

TEST(AdderChain, UpperBitsIgnored) {
  const AdderChain chain = AdderChain::homogeneous(accurate(), 4);
  EXPECT_EQ(chain.evaluate(0xF3, 0x01, false).value(4),
            chain.evaluate(0x03, 0x01, false).value(4));
}

TEST(Csa, ExactCompressorsSumExactly) {
  const CarrySaveAdder csa = CarrySaveAdder::with_exact_compressors(
      AdderChain::homogeneous(accurate(), 10));
  const std::vector<std::uint64_t> operands = {13, 250, 7, 400, 999, 1};
  std::uint64_t expected = 0;
  for (std::uint64_t x : operands) expected = (expected + x) & 0x3FF;
  EXPECT_EQ(csa.accumulate(operands), expected);
}

TEST(Csa, DegenerateOperandCounts) {
  const CarrySaveAdder csa = CarrySaveAdder::with_exact_compressors(
      AdderChain::homogeneous(accurate(), 8));
  EXPECT_EQ(csa.accumulate({}), 0u);
  EXPECT_EQ(csa.accumulate({300}), 300u & 0xFF);
  EXPECT_EQ(csa.accumulate({100, 200}), (100u + 200u) & 0xFF);
}

TEST(Csa, ApproximateCompressorDegradesGracefully) {
  // With LPAA5 compressors the result is wrong for most inputs but the
  // accumulation must still terminate and stay in range.
  const CarrySaveAdder csa{lpaa(5),
                           AdderChain::homogeneous(accurate(), 8)};
  const std::uint64_t result = csa.accumulate({10, 20, 30, 40});
  EXPECT_LT(result, 256u);
}

TEST(Csa, SingleLayerMatchesManualCompression) {
  using sealpaa::multibit::compress_3_2;
  const auto pair = compress_3_2(0b1011, 0b0110, 0b0001, accurate(), 4);
  // Bitwise: sum = x^y^z, carry = majority << 1 (within 4 bits).
  EXPECT_EQ(pair.sum, (0b1011ULL ^ 0b0110ULL ^ 0b0001ULL) & 0xFULL);
  std::uint64_t carry = 0;
  for (int i = 0; i + 1 < 4; ++i) {
    const int x = (0b1011 >> i) & 1;
    const int y = (0b0110 >> i) & 1;
    const int z = (0b0001 >> i) & 1;
    if (x + y + z >= 2) carry |= 1ULL << (i + 1);
  }
  EXPECT_EQ(pair.carry, carry);
}

}  // namespace

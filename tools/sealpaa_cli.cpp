// sealpaa — the consolidated command-line front end of the library,
// the "rapid adoption" deliverable the paper's §1.2 motivates.
//
//   sealpaa_cli cells
//   sealpaa_cli analyze --cell=LPAA6 --bits=8 --p=0.5 [--method=NAME]
//                       [--trace] [--rho=0.3]
//   sealpaa_cli sweep   --cell=LPAA1 --p=0.1 --max-bits=16
//   sealpaa_cli bounds  --cell=LPAA6 --p=0.5 --epsilon=0.1 [--bits=16]
//   sealpaa_cli hybrid  --bits=8 [--profile=0.9,...] [--budget-nw=2500]
//   sealpaa_cli gear    --n=16 --r=4 --p=4 [--p-input=0.5]
//   sealpaa_cli blocks  --bits=16 --blocks=4:0,4:4,4:4,4:4 [--p=0.5]
//                       [--search --max-l=8 [--beam=64] [--exhaustive]]
//   sealpaa_cli sim     --cell=LPAA1 --bits=8 --p=0.5 [--samples=1000000]
//   sealpaa_cli synth   --kind=cell|chain|gear --cell=... --bits=... [--out=f.v]
//
// Global flags (every subcommand):
//   --threads=N          worker pool width for the parallel engines
//   --json-report=FILE   write a versioned machine-readable run report
//
// Flags are validated strictly: unknown flags and malformed numeric
// values ("--samples=1e6") abort with a diagnostic instead of being
// silently ignored or truncated.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

int usage() {
  std::cout <<
      "sealpaa - statistical error analysis for low power approximate "
      "adders (DAC'17)\n\n"
      "commands:\n"
      "  cells                       list built-in cells + characteristics\n"
      "  analyze  --cell --bits --p  error probability of a homogeneous chain\n"
      "           [--method] [--trace] (--rho adds operand correlation;\n"
      "           [--rho] [--kernel]   --method picks the engine: recursive,\n"
      "           [--blocks]           inclusion-exclusion, exhaustive,\n"
      "                              weighted-exhaustive, monte-carlo,\n"
      "                              analytic-pmf, block-analytic — the\n"
      "                              last two report MED/MSE/WCE/PSNR with\n"
      "                              no simulation; block-analytic takes\n"
      "                              its topology from --blocks=SPEC)\n"
      "  sweep    --cell --p         P(E) vs width table\n"
      "           [--max-bits]\n"
      "  bounds   --cell --p         max cascadable width / approximable LSBs\n"
      "           --epsilon [--bits]\n"
      "  hybrid   --bits [--profile] best per-stage cell mix\n"
      "           [--budget-nw]        (--objective=err|med|mse ranks designs\n"
      "           [--objective]        by P(Error) or by the analytic PMF;\n"
      "           [--search]           --search=bnb|beam|greedy|exhaustive:\n"
      "           [--checkpoint]       bnb is the provably-optimal quality\n"
      "           [--checkpoint-every] mode, beam/greedy fast previews;\n"
      "           [--suspend-after-units] --checkpoint=FILE persists bnb\n"
      "           [--resume]           state, --resume continues from it)\n"
      "  gear     --n --r --p        GeAr exact error + correction stats\n"
      "           [--p-input]\n"
      "  blocks   --bits --blocks    exact block-adder error statistics\n"
      "           [--p]                (--blocks=R:P,R:P,... or a family:\n"
      "           [--search]           aca:K, etaii:X, gear:R:P); --search\n"
      "           [--max-l] [--beam]   runs the (R_i,P_i) partition DSE\n"
      "           [--objective]        under the --max-l latency budget\n"
      "           [--exhaustive]       (--exhaustive: exact enumeration)\n"
      "  sim      --cell --bits --p  Monte Carlo + exhaustive simulation\n"
      "           [--samples] [--seed] [--no-exhaustive] [--timings]\n"
      "           [--kernel]          (--kernel=scalar|bitsliced picks the\n"
      "                              evaluation backend; bitsliced runs 64\n"
      "                              input vectors per pass, same metrics)\n"
      "  synth    --kind --cell      emit Verilog (cell|chain|gear)\n"
      "           [--bits|--n --r --p] [--out] [--tb]\n\n"
      "global flags:\n"
      "  --threads=N                 worker pool width for the parallel\n"
      "                              engines (default: hardware threads)\n"
      "  --json-report=FILE          also write a machine-readable report\n"
      "                              (schema sealpaa.run-report v1)\n";
  return 2;
}

// Flags every subcommand accepts on top of its own vocabulary.
constexpr std::string_view kGlobalFlags[] = {"threads", "json-report",
                                             "no-json"};

void check_flags(const util::CliArgs& args,
                 std::initializer_list<std::string_view> specific) {
  std::vector<std::string_view> allowed(specific);
  allowed.insert(allowed.end(), std::begin(kGlobalFlags),
                 std::end(kGlobalFlags));
  args.expect_flags(allowed);
}

const adders::AdderCell& cell_arg(const util::CliArgs& args) {
  const std::string name = args.get("cell", "LPAA1");
  const adders::AdderCell* cell = adders::find_builtin(name);
  if (cell == nullptr) {
    throw std::invalid_argument("unknown cell '" + name +
                                "' (try: sealpaa_cli cells)");
  }
  return *cell;
}

std::string ci_text(const prob::Interval& ci) {
  if (ci.empty()) return "n/a (no samples)";
  return "[" + util::prob6(ci.low) + ", " + util::prob6(ci.high) + "]";
}

int cmd_cells(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args, {});
  util::TextTable table({"Cell", "Error cases", "Power (nW)", "Area (GE)",
                         "Description"});
  obs::Json rows = obs::Json::array();
  for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
    const auto* row = adders::find_characteristics(cell);
    table.add_row({cell.name(), std::to_string(cell.error_case_count()),
                   row != nullptr && row->power_nw
                       ? util::fixed(*row->power_nw, 0)
                       : "n/a",
                   row != nullptr && row->area_ge
                       ? util::fixed(*row->area_ge, 2)
                       : "n/a",
                   cell.description()});
    obs::Json entry = obs::Json::object();
    entry.set("name", obs::Json(cell.name()));
    entry.set("error_cases", obs::Json(cell.error_case_count()));
    entry.set("power_nw", row != nullptr && row->power_nw
                              ? obs::Json(*row->power_nw)
                              : obs::Json());
    entry.set("area_ge", row != nullptr && row->area_ge
                             ? obs::Json(*row->area_ge)
                             : obs::Json());
    rows.push_back(std::move(entry));
  }
  std::cout << table;
  report.section("cells").set("rows", std::move(rows));
  return 0;
}

void print_trace(const std::vector<analysis::StageTrace>& trace) {
  if (trace.empty()) return;
  util::TextTable table({"stage", "P(!C & Succ)", "P(C & Succ)"});
  table.set_align(1, util::Align::Right);
  table.set_align(2, util::Align::Right);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    table.add_row({std::to_string(i), util::prob6(trace[i].carry_out.c0),
                   util::prob6(trace[i].carry_out.c1)});
  }
  std::cout << table;
}

int cmd_analyze(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args,
              {"cell", "bits", "p", "trace", "rho", "method", "samples",
               "seed", "kernel", "blocks"});
  const adders::AdderCell& cell = cell_arg(args);
  const auto bits = static_cast<std::size_t>(args.get_uint("bits", 8));
  const double p = args.get_double("p", 0.5);
  const multibit::InputProfile marginals =
      multibit::InputProfile::uniform(bits, p);
  const auto chain = multibit::AdderChain::homogeneous(cell, bits);

  obs::Json& section = report.section("analyze");
  section.set("cell", obs::Json(cell.name()));
  section.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
  section.set("p", obs::Json(p));

  if (args.has("rho")) {
    // Operand correlation is a recursive-analyzer extension; the other
    // registry methods only model independent inputs.
    if (args.has("method") && args.get("method", "") != "recursive") {
      throw std::invalid_argument(
          "--rho requires --method=recursive (correlated analysis)");
    }
    const double rho = args.get_double("rho", 0.0);
    const auto joint = multibit::JointInputProfile::correlated(marginals, rho);
    analysis::AnalyzeOptions options;
    options.record_trace = args.get_bool("trace", false);
    obs::ScopedTimer timer(report.counters(), "analyze");
    const analysis::AnalysisResult result =
        analysis::CorrelatedAnalyzer::analyze(chain, joint, options);
    timer.stop();
    std::cout << chain.describe() << "  p=" << util::fixed(p, 3)
              << "  rho=" << util::fixed(rho, 2) << "\n";
    std::cout << "P(Success) = " << util::prob6(result.p_success)
              << "\nP(Error)   = " << util::prob6(result.p_error) << "\n";
    print_trace(result.trace);
    section.set("rho", obs::Json(rho));
    section.set("p_success", obs::Json(result.p_success));
    section.set("p_error", obs::Json(result.p_error));
    return 0;
  }

  // --blocks implies block-analytic; typing the method stays optional.
  const engine::Method method = engine::parse_method(args.get(
      "method", args.has("blocks") ? "block-analytic" : "recursive"));
  engine::EvaluateOptions options;
  options.record_trace = args.get_bool("trace", false);
  options.samples = args.get_uint("samples", 1'000'000);
  options.seed = args.get_uint("seed", 0x5ea1'c0de'2017'dacULL);
  options.threads = args.threads();
  options.kernel = sim::parse_kernel(args.get("kernel", "bitsliced"));
  if (method == engine::Method::kBlockAnalytic) {
    if (!args.has("blocks")) {
      throw std::invalid_argument(
          "--method=block-analytic requires --blocks=R:P,R:P,... "
          "(or aca:K / etaii:X / gear:R:P)");
    }
    options.blocks = multibit::BlockChainSpec::parse(static_cast<int>(bits),
                                                     args.get("blocks", ""));
    section.set("blocks", obs::Json(options.blocks->to_string()));
  } else if (args.has("blocks")) {
    throw std::invalid_argument("--blocks requires --method=block-analytic");
  }
  obs::ScopedTimer timer(report.counters(), "analyze");
  const engine::Evaluation result =
      engine::evaluate(chain, marginals, method, options);
  timer.stop();
  report.counters().add("analyze/work_items", result.work_items);
  if (options.blocks) {
    std::cout << options.blocks->describe() << "  p=" << util::fixed(p, 3)
              << "  method=" << engine::method_name(method) << "\n";
  } else {
    std::cout << chain.describe() << "  p=" << util::fixed(p, 3)
              << "  method=" << engine::method_name(method) << "\n";
  }
  std::cout << "P(Success) = " << util::prob6(result.p_success)
            << "\nP(Error)   = " << util::prob6(result.p_error) << "\n";
  if (method == engine::Method::kMonteCarlo) {
    std::cout << "95% CI     = " << ci_text(result.stage_failure_ci) << "\n";
  }
  if (result.distribution) {
    const engine::DistributionStats& d = *result.distribution;
    std::cout << "value-level error distribution:\n"
              << "  P(err != 0) = " << util::prob6(d.error_rate) << "\n"
              << "  MED  E[|err|]  = " << util::fixed(d.mean_error_distance, 6)
              << "\n"
              << "  MSE  E[err^2]  = " << util::fixed(d.mean_squared_error, 6)
              << "\n"
              << "  WCE  max|err|  = " << d.worst_case_error << "\n";
    if (std::isfinite(d.psnr_db)) {
      std::cout << "  PSNR = " << util::fixed(d.psnr_db, 2) << " dB\n";
    } else {
      std::cout << "  PSNR = inf (exact)\n";
    }
  }
  if (result.pmf) {
    const engine::PmfSummary& pmf = *result.pmf;
    std::cout << "error PMF: support=" << pmf.support
              << "  mass=" << util::fixed(pmf.total_mass, 12)
              << "  entropy=" << util::fixed(pmf.entropy_bits, 4) << " bits\n";
    for (const analysis::ErrorPmf::Entry& entry : pmf.top) {
      std::cout << "  err=" << entry.value << "  p="
                << util::prob6(entry.probability) << "\n";
    }
  }
  print_trace(result.trace);
  section.set("method", obs::Json(std::string(engine::method_name(method))));
  section.set("kernel",
              obs::Json(std::string(sim::kernel_name(options.kernel))));
  section.set("evaluation", obs::to_json(result));
  section.set("p_success", obs::Json(result.p_success));
  section.set("p_error", obs::Json(result.p_error));
  return 0;
}

int cmd_sweep(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args, {"cell", "p", "max-bits"});
  const adders::AdderCell& cell = cell_arg(args);
  const double p = args.get_double("p", 0.5);
  const auto max_bits = static_cast<std::size_t>(args.get_uint("max-bits", 16));
  util::TextTable table({"bits", "P(Error)"});
  table.set_align(0, util::Align::Right);
  table.set_align(1, util::Align::Right);
  obs::Json rows = obs::Json::array();
  obs::ScopedTimer timer(report.counters(), "sweep");
  for (std::size_t bits = 1; bits <= max_bits; ++bits) {
    const double p_error = analysis::RecursiveAnalyzer::error_probability(
        cell, multibit::InputProfile::uniform(bits, p));
    table.add_row({std::to_string(bits), util::prob6(p_error)});
    obs::Json entry = obs::Json::object();
    entry.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
    entry.set("p_error", obs::Json(p_error));
    rows.push_back(std::move(entry));
    report.counters().add("sweep/widths_analyzed");
  }
  timer.stop();
  std::cout << table;
  obs::Json& section = report.section("sweep");
  section.set("cell", obs::Json(cell.name()));
  section.set("p", obs::Json(p));
  section.set("rows", std::move(rows));
  return 0;
}

int cmd_bounds(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args, {"cell", "p", "epsilon", "bits"});
  const adders::AdderCell& cell = cell_arg(args);
  const double p = args.get_double("p", 0.5);
  const double epsilon = args.get_double("epsilon", 0.1);
  const auto bits = static_cast<std::size_t>(args.get_uint("bits", 16));
  const std::size_t width = analysis::max_cascadable_width(cell, p, epsilon);
  const std::size_t lsbs =
      analysis::max_approximate_lsbs(cell, bits, p, epsilon);
  std::cout << "tolerance epsilon = " << util::fixed(epsilon, 4) << ", p = "
            << util::fixed(p, 3) << "\n";
  std::cout << "max cascadable width of " << cell.name() << ": " << width
            << " bits\n";
  std::cout << "max approximate LSBs in a " << bits << "-bit hybrid: " << lsbs
            << "\n";
  obs::Json& section = report.section("bounds");
  section.set("cell", obs::Json(cell.name()));
  section.set("p", obs::Json(p));
  section.set("epsilon", obs::Json(epsilon));
  section.set("max_cascadable_width",
              obs::Json(static_cast<std::uint64_t>(width)));
  section.set("max_approximate_lsbs",
              obs::Json(static_cast<std::uint64_t>(lsbs)));
  return 0;
}

int cmd_hybrid(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args, {"bits", "profile", "budget-nw", "objective", "search",
                     "checkpoint", "checkpoint-every", "suspend-after-units",
                     "resume"});
  const auto bits = static_cast<std::size_t>(args.get_uint("bits", 8));
  std::vector<double> p_bits;
  const std::string profile_csv = args.get("profile", "");
  if (profile_csv.empty()) {
    p_bits.assign(bits, 0.5);
  } else {
    std::stringstream stream(profile_csv);
    std::string token;
    while (std::getline(stream, token, ',')) p_bits.push_back(std::stod(token));
    if (p_bits.size() != bits) {
      throw std::invalid_argument("--profile must list exactly " +
                                  std::to_string(bits) + " values");
    }
  }
  const multibit::InputProfile profile(p_bits, p_bits, p_bits.front());
  explore::DesignConstraints constraints;
  std::vector<adders::AdderCell> candidates(adders::builtin_lpaas().begin(),
                                            adders::builtin_lpaas().end());
  if (args.has("budget-nw")) {
    constraints.max_power_nw = args.get_double("budget-nw", 3000.0);
    candidates.clear();
    for (int i = 1; i <= 5; ++i) candidates.push_back(adders::lpaa(i));
    candidates.push_back(adders::accurate());
  }
  const explore::Objective objective =
      explore::parse_objective(args.get("objective", "err"));
  // --search=bnb is the quality mode (provably optimal, branch-and-bound
  // with checkpoint/resume); beam (default) and greedy are fast previews;
  // exhaustive is the reference enumeration for small widths.
  const std::string search = args.get("search", "beam");
  const std::string checkpoint_path = args.get("checkpoint", "");
  if (search != "bnb") {
    for (const char* flag :
         {"checkpoint", "checkpoint-every", "suspend-after-units", "resume"}) {
      if (args.has(flag)) {
        throw std::invalid_argument(std::string("--") + flag +
                                    " requires --search=bnb");
      }
    }
  }
  explore::HybridDesign design;
  bool complete = true;
  bool has_design = true;
  obs::ScopedTimer search_timer(report.counters(), "hybrid/search");
  if (search == "bnb") {
    explore::BnbOptions options;
    options.threads = args.threads();
    options.checkpoint_every_units = args.get_uint("checkpoint-every", 0);
    options.suspend_after_units = args.get_uint("suspend-after-units", 0);
    if (!checkpoint_path.empty()) {
      options.checkpoint_sink = [&checkpoint_path](
                                    const explore::BnbCheckpoint& ckpt) {
        obs::write_bnb_checkpoint(checkpoint_path, ckpt);
      };
    }
    explore::BnbResult result;
    if (args.get_bool("resume", false)) {
      if (checkpoint_path.empty()) {
        throw std::invalid_argument("--resume requires --checkpoint=FILE");
      }
      const explore::BnbCheckpoint ckpt =
          obs::read_bnb_checkpoint(checkpoint_path);
      result = explore::BranchBoundOptimizer::resume(
          profile, candidates, ckpt, constraints, objective, options);
    } else {
      result = explore::BranchBoundOptimizer::optimize(
          profile, candidates, constraints, objective, options);
    }
    complete = result.complete;
    has_design = result.has_incumbent;
    design = std::move(result.design);
  } else if (search == "beam") {
    design = explore::HybridOptimizer::beam(profile, candidates, constraints,
                                            512, objective);
  } else if (search == "greedy") {
    design = explore::HybridOptimizer::greedy(profile, candidates,
                                              constraints, objective);
  } else if (search == "exhaustive") {
    design = explore::HybridOptimizer::exhaustive(profile, candidates,
                                                  constraints, 50'000'000,
                                                  args.threads(), objective);
  } else {
    throw std::invalid_argument(
        "--search must be bnb, beam, greedy or exhaustive");
  }
  search_timer.stop();
  if (!complete) {
    std::cout << "search suspended after "
              << design.stats.nodes_expanded << " expanded nodes";
    if (!checkpoint_path.empty()) {
      std::cout << "; checkpoint written to " << checkpoint_path
                << " (resume with --resume)";
    }
    std::cout << "\n";
  }
  if (has_design) {
    std::cout << "best hybrid (objective="
              << explore::objective_name(objective)
              << ", search=" << search << "): "
              << design.chain().describe() << "\n"
              << "P(Error) = " << util::prob6(design.p_error) << "\n";
    if (design.med) {
      std::cout << "MED = " << util::fixed(*design.med, 6) << "\n";
    }
    if (design.mse) {
      std::cout << "MSE = " << util::fixed(*design.mse, 6) << "\n";
    }
    if (design.wce) {
      std::cout << "WCE = " << *design.wce << "\n";
    }
    if (design.power_nw) {
      std::cout << "power = " << util::fixed(*design.power_nw, 0) << " nW\n";
    }
  }
  obs::Json& section = report.section("hybrid");
  section.set("search_mode", obs::Json(search));
  section.set("complete", obs::Json(complete));
  section.set("design", has_design ? obs::to_json(design) : obs::Json());
  // Every SearchStats counter is reported explicitly — including the
  // zero-valued ones — so report consumers see the same key set no
  // matter which optimizer ran.
  report.counters().add("hybrid/candidates_evaluated",
                        design.stats.candidates_evaluated);
  report.counters().add("hybrid/candidates_rejected",
                        design.stats.candidates_rejected);
  report.counters().add("hybrid/cache_hits", design.stats.cache_hits);
  report.counters().add("hybrid/cache_misses", design.stats.cache_misses);
  report.counters().add("hybrid/stages_computed",
                        design.stats.stages_computed);
  report.counters().add("hybrid/soa_batches", design.stats.soa_batches);
  report.counters().add("hybrid/soa_lanes", design.stats.soa_lanes);
  report.counters().add("hybrid/soa_max_lanes", design.stats.soa_max_lanes);
  report.counters().add("hybrid/nodes_expanded", design.stats.nodes_expanded);
  report.counters().add("hybrid/nodes_pruned", design.stats.nodes_pruned);
  report.counters().add("hybrid/bound_cutoffs", design.stats.bound_cutoffs);
  report.counters().add("hybrid/steal_count", design.stats.steal_count);
  return 0;
}

int cmd_gear(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args, {"n", "r", "p", "p-input"});
  const gear::GearConfig config(static_cast<int>(args.get_int("n", 16)),
                                static_cast<int>(args.get_int("r", 4)),
                                static_cast<int>(args.get_int("p", 4)));
  const double p_input = args.get_double("p-input", 0.5);
  const auto profile = multibit::InputProfile::uniform(
      static_cast<std::size_t>(config.n()), p_input);
  obs::ScopedTimer timer(report.counters(), "gear");
  const auto analysis = gear::GearAnalyzer::analyze(config, profile);
  const double recovery = gear::expected_recovery_cycles(config, profile);
  timer.stop();
  std::cout << config.describe() << "  p = " << util::fixed(p_input, 3)
            << "\n";
  std::cout << "P(Error) exact        = "
            << util::prob6(analysis.p_error_exact_dp) << "\n";
  std::cout << "P(Error) indep approx = "
            << util::prob6(analysis.p_error_independent_approx) << "\n";
  std::cout << "E[recovery cycles]    = " << util::fixed(recovery, 4) << "\n";
  obs::Json& section = report.section("gear");
  section.set("config", obs::Json(config.describe()));
  section.set("p_input", obs::Json(p_input));
  section.set("p_error_exact", obs::Json(analysis.p_error_exact_dp));
  section.set("p_error_independent_approx",
              obs::Json(analysis.p_error_independent_approx));
  section.set("expected_recovery_cycles", obs::Json(recovery));
  return 0;
}

int cmd_blocks(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args, {"bits", "p", "blocks", "search", "max-l", "beam",
                     "objective", "exhaustive"});
  const auto bits = static_cast<std::size_t>(args.get_uint("bits", 16));
  const double p = args.get_double("p", 0.5);
  const auto profile = multibit::InputProfile::uniform(bits, p);
  obs::Json& section = report.section("blocks");
  section.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
  section.set("p", obs::Json(p));

  if (args.get_bool("search", false)) {
    explore::BlockSearchOptions options;
    options.max_sub_adder_width =
        static_cast<int>(args.get_int("max-l", 8));
    options.beam_width = args.get_uint("beam", 64);
    options.objective = explore::parse_objective(args.get("objective", "err"));
    const bool exhaustive = args.get_bool("exhaustive", false);
    obs::ScopedTimer timer(report.counters(), "blocks/search");
    const explore::BlockDesign design =
        exhaustive ? explore::BlockOptimizer::exhaustive(profile, options)
                   : explore::BlockOptimizer::beam(profile, options);
    timer.stop();
    const multibit::BlockChainSpec spec = design.spec();
    std::cout << "best partition (objective="
              << explore::objective_name(options.objective)
              << ", max sub-adder " << options.max_sub_adder_width
              << " bits, " << (exhaustive ? "exhaustive" : "beam")
              << "): " << spec.describe() << "\n"
              << "P(Error) = " << util::prob6(design.p_error) << "\n"
              << "MED = " << util::fixed(design.med, 6) << "\n"
              << "MSE = " << util::fixed(design.mse, 6) << "\n";
    section.set("search", obs::Json(exhaustive ? "exhaustive" : "beam"));
    section.set("objective",
                obs::Json(std::string(
                    explore::objective_name(options.objective))));
    section.set("max_sub_adder_width",
                obs::Json(static_cast<std::uint64_t>(
                    options.max_sub_adder_width)));
    section.set("best_blocks", obs::Json(spec.to_string()));
    section.set("objective_value", obs::Json(design.objective_value));
    section.set("p_error", obs::Json(design.p_error));
    section.set("med", obs::Json(design.med));
    section.set("mse", obs::Json(design.mse));
    report.counters().add("blocks/candidates_evaluated",
                          design.stats.candidates_evaluated);
    report.counters().add("blocks/candidates_rejected",
                          design.stats.candidates_rejected);
    return 0;
  }

  const multibit::BlockChainSpec spec = multibit::BlockChainSpec::parse(
      static_cast<int>(bits), args.get("blocks", "gear:4:4"));
  engine::EvaluateOptions options;
  options.blocks = spec;
  const auto chain =
      multibit::AdderChain::homogeneous(adders::accurate(), bits);
  obs::ScopedTimer timer(report.counters(), "blocks/analyze");
  const engine::Evaluation result = engine::evaluate(
      chain, profile, engine::Method::kBlockAnalytic, options);
  // The per-block mismatch marginals are a blocks-command extra the
  // engine projection doesn't carry; recompute without the PMF (cheap).
  analysis::BlockAnalysisOptions marginal_opts;
  marginal_opts.compute_pmf = false;
  const analysis::BlockAnalysis marginals =
      analysis::BlockErrorModel::analyze(spec, profile, marginal_opts);
  timer.stop();
  report.counters().add("blocks/work_items", result.work_items);

  std::cout << spec.describe() << "  p=" << util::fixed(p, 3) << "\n";
  std::cout << "P(Error) exact        = " << util::prob6(result.p_error)
            << "\n";
  std::cout << "P(Error) indep approx = "
            << util::prob6(marginals.p_error_independent_approx) << "\n";
  obs::Json mismatch = obs::Json::array();
  for (std::size_t i = 0; i < marginals.block_mismatch.size(); ++i) {
    std::cout << "  block " << i << " mismatch = "
              << util::prob6(marginals.block_mismatch[i]) << "\n";
    mismatch.push_back(obs::Json(marginals.block_mismatch[i]));
  }
  if (result.distribution) {
    const engine::DistributionStats& d = *result.distribution;
    std::cout << "MED  E[|err|] = " << util::fixed(d.mean_error_distance, 6)
              << "\nMSE  E[err^2] = " << util::fixed(d.mean_squared_error, 6)
              << "\nWCE  max|err| = " << d.worst_case_error << "\n";
    if (std::isfinite(d.psnr_db)) {
      std::cout << "PSNR = " << util::fixed(d.psnr_db, 2) << " dB\n";
    } else {
      std::cout << "PSNR = inf (exact)\n";
    }
  }
  section.set("spec", obs::Json(spec.to_string()));
  section.set("block_mismatch", std::move(mismatch));
  section.set("p_error_independent_approx",
              obs::Json(marginals.p_error_independent_approx));
  section.set("evaluation", obs::to_json(result));
  section.set("p_success", obs::Json(result.p_success));
  section.set("p_error", obs::Json(result.p_error));
  return 0;
}

int cmd_sim(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args,
              {"cell", "bits", "p", "samples", "seed", "no-exhaustive",
               "timings", "kernel"});
  const adders::AdderCell& cell = cell_arg(args);
  const auto bits = static_cast<std::size_t>(args.get_uint("bits", 8));
  const double p = args.get_double("p", 0.5);
  const std::uint64_t samples = args.get_uint("samples", 1'000'000);
  const std::uint64_t seed = args.get_uint("seed", 0x5ea1'c0de'2017'dacULL);
  const unsigned threads = args.threads();
  const sim::Kernel kernel = sim::parse_kernel(args.get("kernel", "bitsliced"));

  const auto chain = multibit::AdderChain::homogeneous(cell, bits);
  const auto profile = multibit::InputProfile::uniform(bits, p);
  const double analytical =
      analysis::RecursiveAnalyzer::error_probability(cell, profile);

  std::cout << chain.describe() << "  p=" << util::fixed(p, 3)
            << "  threads=" << threads << "\n";
  std::cout << "P(Error) analytical   = " << util::prob6(analytical) << "\n";

  obs::Json& section = report.section("sim");
  section.set("cell", obs::Json(cell.name()));
  section.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
  section.set("p", obs::Json(p));
  section.set("threads", obs::Json(threads));
  section.set("kernel", obs::Json(std::string(sim::kernel_name(kernel))));
  section.set("analytical_p_error", obs::Json(analytical));

  obs::ScopedTimer mc_timer(report.counters(), "sim/montecarlo");
  const auto mc =
      sim::MonteCarloSimulator::run_parallel(chain, profile, samples, threads,
                                             seed, kernel);
  mc_timer.stop();
  report.counters().add("sim/montecarlo/samples", mc.samples);
  report.counters().add("sim/montecarlo/lane_batches", mc.lane_batches);
  report.counters().add("sim/montecarlo/masked_lanes", mc.masked_lanes);
  std::cout << "P(Error) Monte Carlo  = "
            << util::prob6(mc.metrics.stage_failure_rate()) << "  ("
            << util::with_commas(samples) << " samples, 95% CI "
            << ci_text(mc.stage_failure_ci) << ", "
            << util::fixed(mc.seconds, 3) << "s)\n";
  if (args.get_bool("timings", false)) {
    std::cout << "  " << mc.shard_timings.summary() << "\n";
  }
  section.set("montecarlo", obs::to_json(mc));

  if (!args.get_bool("no-exhaustive", false) && bits <= 13) {
    obs::ScopedTimer ex_timer(report.counters(), "sim/exhaustive");
    const auto exhaustive =
        sim::ExhaustiveSimulator::run(chain, 13, threads, kernel);
    ex_timer.stop();
    report.counters().add("sim/exhaustive/cases",
                          exhaustive.metrics.cases());
    report.counters().add("sim/exhaustive/lane_batches",
                          exhaustive.lane_batches);
    report.counters().add("sim/exhaustive/masked_lanes",
                          exhaustive.masked_lanes);
    std::cout << "P(Error) exhaustive   = "
              << util::prob6(exhaustive.metrics.stage_failure_rate())
              << "  (" << util::with_commas(exhaustive.metrics.cases())
              << " cases, " << util::fixed(exhaustive.seconds, 3) << "s)";
    if (!profile.is_uniform(0.5)) {
      std::cout << "  [exhaustive assumes p=0.5]";
    }
    std::cout << "\n";
    if (args.get_bool("timings", false)) {
      std::cout << "  " << exhaustive.shard_timings.summary() << "\n";
    }
    section.set("exhaustive", obs::to_json(exhaustive));
  }
  return 0;
}

int cmd_synth(const util::CliArgs& args, obs::RunReport& report) {
  check_flags(args, {"kind", "cell", "bits", "n", "r", "p", "out", "tb"});
  const std::string kind = args.get("kind", "cell");
  rtl::Netlist netlist;
  std::string module_name;
  if (kind == "cell") {
    const adders::AdderCell& cell = cell_arg(args);
    netlist = rtl::synthesize_cell(cell);
    module_name = cell.name() + "_cell";
  } else if (kind == "chain") {
    const adders::AdderCell& cell = cell_arg(args);
    const auto bits = static_cast<std::size_t>(args.get_uint("bits", 8));
    netlist =
        rtl::synthesize_chain(multibit::AdderChain::homogeneous(cell, bits));
    module_name = cell.name() + "_rca" + std::to_string(bits);
  } else if (kind == "gear") {
    const gear::GearConfig config(static_cast<int>(args.get_int("n", 8)),
                                  static_cast<int>(args.get_int("r", 2)),
                                  static_cast<int>(args.get_int("p", 2)));
    netlist = rtl::synthesize_gear(config);
    module_name = "gear_n" + std::to_string(config.n());
  } else {
    throw std::invalid_argument("unknown --kind=" + kind +
                                " (cell|chain|gear)");
  }
  netlist = rtl::optimize(netlist);
  std::string verilog = rtl::to_verilog(netlist, module_name);
  if (args.get_bool("tb", false)) {
    verilog += "\n" + rtl::to_verilog_testbench(netlist, module_name);
  }
  // --out was documented but silently ignored; honour it.
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    std::cout << verilog;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      throw std::runtime_error("cannot open '" + out_path + "' for writing");
    }
    out << verilog;
    if (!out) {
      throw std::runtime_error("write to '" + out_path + "' failed");
    }
    std::cout << "wrote " << module_name << " to " << out_path << "\n";
  }
  obs::Json& section = report.section("synth");
  section.set("kind", obs::Json(kind));
  section.set("module", obs::Json(module_name));
  section.set("verilog_bytes",
              obs::Json(static_cast<std::uint64_t>(verilog.size())));
  if (!out_path.empty()) section.set("out", obs::Json(out_path));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string command = args.positional().front();
  try {
    // Size the shared pool before any engine touches it; every parallel
    // path (simulators, oracles, DSE) then inherits --threads.
    util::set_default_threads(args.threads());
    // Resolve the report destination first so a malformed --json-report
    // aborts before any work runs.
    const auto report_path = obs::report_path(args);
    obs::RunReport report("sealpaa_cli " + command);
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");

    int status = 2;
    if (command == "cells") {
      status = cmd_cells(args, report);
    } else if (command == "analyze") {
      status = cmd_analyze(args, report);
    } else if (command == "sweep") {
      status = cmd_sweep(args, report);
    } else if (command == "bounds") {
      status = cmd_bounds(args, report);
    } else if (command == "hybrid") {
      status = cmd_hybrid(args, report);
    } else if (command == "gear") {
      status = cmd_gear(args, report);
    } else if (command == "blocks") {
      status = cmd_blocks(args, report);
    } else if (command == "sim") {
      status = cmd_sim(args, report);
    } else if (command == "synth") {
      status = cmd_synth(args, report);
    } else {
      return usage();
    }
    total.stop();

    if (status == 0 && report_path) {
      report.write_file(*report_path);
      std::cerr << "json report written to " << *report_path << "\n";
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// sealpaa — the consolidated command-line front end of the library,
// the "rapid adoption" deliverable the paper's §1.2 motivates.
//
//   sealpaa_cli cells
//   sealpaa_cli analyze --cell=LPAA6 --bits=8 --p=0.5 [--trace] [--rho=0.3]
//   sealpaa_cli sweep   --cell=LPAA1 --p=0.1 --max-bits=16
//   sealpaa_cli bounds  --cell=LPAA6 --p=0.5 --epsilon=0.1 [--bits=16]
//   sealpaa_cli hybrid  --bits=8 [--profile=0.9,...] [--budget-nw=2500]
//   sealpaa_cli gear    --n=16 --r=4 --p=4 [--p-input=0.5]
//   sealpaa_cli sim     --cell=LPAA1 --bits=8 --p=0.5 [--samples=1000000]
//   sealpaa_cli synth   --kind=cell|chain|gear --cell=... --bits=... [--out=f.v]
//
// The global --threads=N flag sizes the shared worker pool every parallel
// engine runs on; it defaults to the hardware concurrency.
#include <iostream>
#include <sstream>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

int usage() {
  std::cout <<
      "sealpaa - statistical error analysis for low power approximate "
      "adders (DAC'17)\n\n"
      "commands:\n"
      "  cells                       list built-in cells + characteristics\n"
      "  analyze  --cell --bits --p  error probability of a homogeneous chain\n"
      "           [--trace] [--rho]  (--rho adds operand correlation)\n"
      "  sweep    --cell --p         P(E) vs width table\n"
      "           [--max-bits]\n"
      "  bounds   --cell --p         max cascadable width / approximable LSBs\n"
      "           --epsilon [--bits]\n"
      "  hybrid   --bits [--profile] best per-stage cell mix (beam search)\n"
      "           [--budget-nw]\n"
      "  gear     --n --r --p        GeAr exact error + correction stats\n"
      "           [--p-input]\n"
      "  sim      --cell --bits --p  Monte Carlo + exhaustive simulation\n"
      "           [--samples] [--seed] [--no-exhaustive] [--timings]\n"
      "  synth    --kind --cell      emit Verilog (cell|chain|gear)\n"
      "           [--bits|--n --r --p] [--out]\n\n"
      "global flags:\n"
      "  --threads=N                 worker pool width for the parallel\n"
      "                              engines (default: hardware threads)\n";
  return 2;
}

const adders::AdderCell& cell_arg(const util::CliArgs& args) {
  const std::string name = args.get("cell", "LPAA1");
  const adders::AdderCell* cell = adders::find_builtin(name);
  if (cell == nullptr) {
    std::cerr << "unknown cell '" << name << "' (try: sealpaa_cli cells)\n";
    std::exit(2);
  }
  return *cell;
}

int cmd_cells() {
  util::TextTable table({"Cell", "Error cases", "Power (nW)", "Area (GE)",
                         "Description"});
  for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
    const auto* row = adders::find_characteristics(cell);
    table.add_row({cell.name(), std::to_string(cell.error_case_count()),
                   row != nullptr && row->power_nw
                       ? util::fixed(*row->power_nw, 0)
                       : "n/a",
                   row != nullptr && row->area_ge
                       ? util::fixed(*row->area_ge, 2)
                       : "n/a",
                   cell.description()});
  }
  std::cout << table;
  return 0;
}

int cmd_analyze(const util::CliArgs& args) {
  const adders::AdderCell& cell = cell_arg(args);
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
  const double p = args.get_double("p", 0.5);
  const multibit::InputProfile marginals =
      multibit::InputProfile::uniform(bits, p);
  const auto chain = multibit::AdderChain::homogeneous(cell, bits);

  analysis::AnalysisResult result;
  if (args.has("rho")) {
    const double rho = args.get_double("rho", 0.0);
    const auto joint = multibit::JointInputProfile::correlated(marginals, rho);
    analysis::AnalyzeOptions options;
    options.record_trace = args.get_bool("trace", false);
    result = analysis::CorrelatedAnalyzer::analyze(chain, joint, options);
    std::cout << chain.describe() << "  p=" << util::fixed(p, 3)
              << "  rho=" << util::fixed(rho, 2) << "\n";
  } else {
    analysis::AnalyzeOptions options;
    options.record_trace = args.get_bool("trace", false);
    result = analysis::RecursiveAnalyzer::analyze(chain, marginals, options);
    std::cout << chain.describe() << "  p=" << util::fixed(p, 3) << "\n";
  }
  std::cout << "P(Success) = " << util::prob6(result.p_success)
            << "\nP(Error)   = " << util::prob6(result.p_error) << "\n";
  if (!result.trace.empty()) {
    util::TextTable table({"stage", "P(!C & Succ)", "P(C & Succ)"});
    table.set_align(1, util::Align::Right);
    table.set_align(2, util::Align::Right);
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      table.add_row({std::to_string(i),
                     util::prob6(result.trace[i].carry_out.c0),
                     util::prob6(result.trace[i].carry_out.c1)});
    }
    std::cout << table;
  }
  return 0;
}

int cmd_sweep(const util::CliArgs& args) {
  const adders::AdderCell& cell = cell_arg(args);
  const double p = args.get_double("p", 0.5);
  const std::size_t max_bits =
      static_cast<std::size_t>(args.get_int("max-bits", 16));
  util::TextTable table({"bits", "P(Error)"});
  table.set_align(0, util::Align::Right);
  table.set_align(1, util::Align::Right);
  for (std::size_t bits = 1; bits <= max_bits; ++bits) {
    table.add_row({std::to_string(bits),
                   util::prob6(analysis::RecursiveAnalyzer::error_probability(
                       cell, multibit::InputProfile::uniform(bits, p)))});
  }
  std::cout << table;
  return 0;
}

int cmd_bounds(const util::CliArgs& args) {
  const adders::AdderCell& cell = cell_arg(args);
  const double p = args.get_double("p", 0.5);
  const double epsilon = args.get_double("epsilon", 0.1);
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 16));
  std::cout << "tolerance epsilon = " << util::fixed(epsilon, 4) << ", p = "
            << util::fixed(p, 3) << "\n";
  std::cout << "max cascadable width of " << cell.name() << ": "
            << analysis::max_cascadable_width(cell, p, epsilon) << " bits\n";
  std::cout << "max approximate LSBs in a " << bits << "-bit hybrid: "
            << analysis::max_approximate_lsbs(cell, bits, p, epsilon)
            << "\n";
  return 0;
}

int cmd_hybrid(const util::CliArgs& args) {
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
  std::vector<double> p_bits;
  const std::string profile_csv = args.get("profile", "");
  if (profile_csv.empty()) {
    p_bits.assign(bits, 0.5);
  } else {
    std::stringstream stream(profile_csv);
    std::string token;
    while (std::getline(stream, token, ',')) p_bits.push_back(std::stod(token));
    if (p_bits.size() != bits) {
      std::cerr << "profile must list exactly " << bits << " values\n";
      return 2;
    }
  }
  const multibit::InputProfile profile(p_bits, p_bits, p_bits.front());
  explore::DesignConstraints constraints;
  std::vector<adders::AdderCell> candidates(adders::builtin_lpaas().begin(),
                                            adders::builtin_lpaas().end());
  if (args.has("budget-nw")) {
    constraints.max_power_nw = args.get_double("budget-nw", 3000.0);
    candidates.clear();
    for (int i = 1; i <= 5; ++i) candidates.push_back(adders::lpaa(i));
    candidates.push_back(adders::accurate());
  }
  const auto design =
      explore::HybridOptimizer::beam(profile, candidates, constraints, 512);
  std::cout << "best hybrid: " << design.chain().describe() << "\n"
            << "P(Error) = " << util::prob6(design.p_error) << "\n";
  if (design.power_nw) {
    std::cout << "power = " << util::fixed(*design.power_nw, 0) << " nW\n";
  }
  return 0;
}

int cmd_gear(const util::CliArgs& args) {
  const gear::GearConfig config(static_cast<int>(args.get_int("n", 16)),
                                static_cast<int>(args.get_int("r", 4)),
                                static_cast<int>(args.get_int("p", 4)));
  const double p_input = args.get_double("p-input", 0.5);
  const auto profile = multibit::InputProfile::uniform(
      static_cast<std::size_t>(config.n()), p_input);
  const auto analysis = gear::GearAnalyzer::analyze(config, profile);
  std::cout << config.describe() << "  p = " << util::fixed(p_input, 3)
            << "\n";
  std::cout << "P(Error) exact        = "
            << util::prob6(analysis.p_error_exact_dp) << "\n";
  std::cout << "P(Error) indep approx = "
            << util::prob6(analysis.p_error_independent_approx) << "\n";
  std::cout << "E[recovery cycles]    = "
            << util::fixed(gear::expected_recovery_cycles(config, profile), 4)
            << "\n";
  return 0;
}

int cmd_sim(const util::CliArgs& args) {
  const adders::AdderCell& cell = cell_arg(args);
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
  const double p = args.get_double("p", 0.5);
  const auto samples =
      static_cast<std::uint64_t>(args.get_int("samples", 1'000'000));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 0x5ea1'c0de'2017'dacLL));
  const unsigned threads = args.threads();

  const auto chain = multibit::AdderChain::homogeneous(cell, bits);
  const auto profile = multibit::InputProfile::uniform(bits, p);
  const double analytical =
      analysis::RecursiveAnalyzer::error_probability(cell, profile);

  std::cout << chain.describe() << "  p=" << util::fixed(p, 3)
            << "  threads=" << threads << "\n";
  std::cout << "P(Error) analytical   = " << util::prob6(analytical) << "\n";

  const auto mc =
      sim::MonteCarloSimulator::run_parallel(chain, profile, samples, threads,
                                             seed);
  std::cout << "P(Error) Monte Carlo  = "
            << util::prob6(mc.metrics.stage_failure_rate()) << "  ("
            << util::with_commas(samples) << " samples, 95% CI ["
            << util::prob6(mc.stage_failure_ci.low) << ", "
            << util::prob6(mc.stage_failure_ci.high) << "], "
            << util::fixed(mc.seconds, 3) << "s)\n";
  if (args.get_bool("timings", false)) {
    std::cout << "  " << mc.shard_timings.summary() << "\n";
  }

  if (!args.get_bool("no-exhaustive", false) && bits <= 13) {
    const auto exhaustive = sim::ExhaustiveSimulator::run(chain, 13, threads);
    std::cout << "P(Error) exhaustive   = "
              << util::prob6(exhaustive.metrics.stage_failure_rate())
              << "  (" << util::with_commas(exhaustive.metrics.cases())
              << " cases, " << util::fixed(exhaustive.seconds, 3) << "s)";
    if (!profile.is_uniform(0.5)) {
      std::cout << "  [exhaustive assumes p=0.5]";
    }
    std::cout << "\n";
    if (args.get_bool("timings", false)) {
      std::cout << "  " << exhaustive.shard_timings.summary() << "\n";
    }
  }
  return 0;
}

int cmd_synth(const util::CliArgs& args) {
  const std::string kind = args.get("kind", "cell");
  rtl::Netlist netlist;
  std::string module_name;
  if (kind == "cell") {
    const adders::AdderCell& cell = cell_arg(args);
    netlist = rtl::synthesize_cell(cell);
    module_name = cell.name() + "_cell";
  } else if (kind == "chain") {
    const adders::AdderCell& cell = cell_arg(args);
    const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
    netlist =
        rtl::synthesize_chain(multibit::AdderChain::homogeneous(cell, bits));
    module_name = cell.name() + "_rca" + std::to_string(bits);
  } else if (kind == "gear") {
    const gear::GearConfig config(static_cast<int>(args.get_int("n", 8)),
                                  static_cast<int>(args.get_int("r", 2)),
                                  static_cast<int>(args.get_int("p", 2)));
    netlist = rtl::synthesize_gear(config);
    module_name = "gear_n" + std::to_string(config.n());
  } else {
    std::cerr << "unknown --kind=" << kind << "\n";
    return 2;
  }
  netlist = rtl::optimize(netlist);
  std::cout << rtl::to_verilog(netlist, module_name);
  if (args.get_bool("tb", false)) {
    std::cout << "\n" << rtl::to_verilog_testbench(netlist, module_name);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) return usage();
  // Size the shared pool before any engine touches it; every parallel
  // path (simulators, oracles, DSE) then inherits --threads.
  util::set_default_threads(args.threads());
  const std::string command = args.positional().front();
  try {
    if (command == "cells") return cmd_cells();
    if (command == "analyze") return cmd_analyze(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "bounds") return cmd_bounds(args);
    if (command == "hybrid") return cmd_hybrid(args);
    if (command == "gear") return cmd_gear(args);
    if (command == "sim") return cmd_sim(args);
    if (command == "synth") return cmd_synth(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

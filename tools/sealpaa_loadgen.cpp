// sealpaa_loadgen — deterministic load generator for the sealpaad
// service, and the CI gate for its fleet-shaped dispatch path.
//
// Simulates a production request mix against an in-process server: a
// seeded arrival process sweeps a grid of 48 (width, p) input profiles
// — the access pattern of a design-space-exploration fleet scoring
// candidate chains per operating point — with analytic-pmf requests
// dominating, plus beam-shaped recursive groups, Monte Carlo probes and
// block-analytic specs mixed in.  Every response is compared
// byte-for-byte against a frame built locally from engine::evaluate;
// any divergence exits non-zero.
//
// The run executes twice, with 1 and with 4 dispatch workers, and
// reports the throughput ratio.  The profile grid is sized to overflow
// a single worker's EvaluatorPool (48 keys against the 32-evaluator
// default, swept cyclically — the LRU-pessimal order), while the
// sharded fleet keeps every profile's evaluator and PMF prefix cache
// resident on its home worker.  The ratio therefore measures what the
// sharding actually buys — aggregate evaluator-cache capacity — and
// holds on a single-core CI box, where a thread-parallelism speedup
// could not.
//
// Results land in BENCH_service_load.json (sealpaa.run-report schema)
// next to the binary; scripts/check_bench_regression.py gates the
// committed reference's booleans (verified, batched, scaling_at_least_4x)
// and its per-method latency percentiles (p99 regression > 2x fails).
//
// Flags: --requests=N (fleet phase)  --baseline-requests=N  --quick
//        --connections=C  --seed=S  --json-report=FILE  --no-json
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

/// splitmix64 — the seeded arrival process and chain choices run on
/// this so the whole workload is a pure function of --seed.
class SplitMix {
 public:
  explicit SplitMix(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

/// One distinct request configuration: the precomputed request line,
/// the byte-exact expected response frame, and the method label it
/// tallies under.  Requests reuse their config index as the wire id,
/// so a response is verified by lookup, never by arrival order.
struct Config {
  std::string request_line;    // no trailing newline
  std::string expected_frame;  // serialize_frame output, with newline
  std::string method;
};

struct Workload {
  std::vector<Config> configs;
  std::vector<std::uint32_t> schedule;  // config index per request
};

[[nodiscard]] std::string chain_json(
    const std::vector<adders::AdderCell>& stages) {
  std::string out = "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += stages[i].name();
    out += '"';
  }
  out += ']';
  return out;
}

[[nodiscard]] std::string format_p(double p) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", p);
  return buffer;
}

/// The double the server will evaluate with is the parse of the wire
/// text, which can differ by an ulp from the grid arithmetic (0.3 +
/// 0.05 != parse("0.350")) — so expectations are computed from the
/// round-tripped value, never the raw grid value.
[[nodiscard]] double wire_p(const std::string& p_text) {
  return std::strtod(p_text.c_str(), nullptr);
}

/// The 48-key profile grid: widths {24, 28, 32} x 16 probabilities.
constexpr std::size_t kWidths[] = {24, 28, 32};
constexpr std::size_t kPs = 16;
[[nodiscard]] double grid_p(std::size_t j) {
  return 0.300 + 0.025 * static_cast<double>(j);
}

Workload build_workload(std::size_t total_requests, std::uint64_t seed) {
  const std::span<const adders::AdderCell> lpaas = adders::builtin_lpaas();
  Workload workload;

  struct Key {
    std::size_t width;
    double p;
    std::vector<std::uint32_t> analytic;  // config indices, 16 chains
    std::vector<std::uint32_t> recursive;  // beam family, 8 chains
  };
  std::vector<Key> keys;

  const auto add_config = [&workload](std::string line, std::string method,
                                      const engine::Evaluation& evaluation) {
    const std::uint64_t id = workload.configs.size();
    workload.configs.push_back(Config{
        std::move(line),
        service::serialize_frame(
            service::make_evaluation_response(obs::Json(id), evaluation)),
        std::move(method)});
    return static_cast<std::uint32_t>(id);
  };

  SplitMix chain_rng(seed * 0x2545f4914f6cdd1dull + 1);
  for (const std::size_t width : kWidths) {
    for (std::size_t j = 0; j < kPs; ++j) {
      const std::string p_text = format_p(grid_p(j));
      Key key{width, wire_p(p_text), {}, {}};
      const auto profile = multibit::InputProfile::uniform(width, key.p);

      // 16 analytic-pmf chains per profile, distinct from the first
      // stage on: cold visits pay full per-chain PMF propagation, hot
      // visits finish from the evaluator's PMF prefix cache.  The low
      // 12 stages are approximate with an accurate tail — the shape
      // such chains deploy as, and it keeps the error-PMF support well
      // under PmfOptions::max_support at width 32.
      for (std::size_t member = 0; member < 16; ++member) {
        std::vector<adders::AdderCell> stages;
        stages.reserve(width);
        for (std::size_t i = 0; i < width; ++i) {
          stages.push_back(i < 12 ? lpaas[chain_rng.below(lpaas.size())]
                                  : adders::accurate());
        }
        const engine::Evaluation evaluation = engine::evaluate(
            multibit::AdderChain(stages), profile,
            engine::Method::kAnalyticPmf);
        key.analytic.push_back(add_config(
            "{\"id\":" + std::to_string(workload.configs.size()) +
                ",\"method\":\"analytic-pmf\",\"width\":" +
                std::to_string(width) + ",\"chain\":" + chain_json(stages) +
                ",\"params\":{\"p\":" + p_text + ",\"timeout_ms\":300000}}",
            "analytic-pmf", evaluation));
      }

      // A beam-shaped recursive family: shared prefix, last two stages
      // enumerated — these group into strict SoA lanes per batch.
      for (std::size_t member = 0; member < 8; ++member) {
        std::vector<adders::AdderCell> stages;
        stages.reserve(width);
        for (std::size_t i = 0; i + 2 < width; ++i) {
          stages.push_back(lpaas[(j * 7 + i * 3) % lpaas.size()]);
        }
        stages.push_back(lpaas[member % lpaas.size()]);
        stages.push_back(lpaas[(member / lpaas.size()) % lpaas.size()]);
        const engine::Evaluation evaluation =
            engine::evaluate(multibit::AdderChain(stages), profile,
                             engine::Method::kRecursive);
        key.recursive.push_back(add_config(
            "{\"id\":" + std::to_string(workload.configs.size()) +
                ",\"method\":\"recursive\",\"width\":" +
                std::to_string(width) + ",\"chain\":" + chain_json(stages) +
                ",\"params\":{\"p\":" + p_text + ",\"timeout_ms\":300000}}",
            "recursive", evaluation));
      }
      keys.push_back(std::move(key));
    }
  }

  // A few Monte Carlo probes and block-adder specs season the mix.
  std::vector<std::uint32_t> monte_carlo;
  for (std::size_t k = 0; k < 4; ++k) {
    const std::size_t width = 16;
    const std::uint64_t samples = 65536;
    std::vector<adders::AdderCell> stages;
    for (std::size_t i = 0; i < width; ++i) {
      stages.push_back(lpaas[(k + i) % lpaas.size()]);
    }
    const auto profile = multibit::InputProfile::uniform(width, 0.5);
    engine::EvaluateOptions options;
    options.samples = samples;
    const engine::Evaluation evaluation =
        engine::evaluate(multibit::AdderChain(stages), profile,
                         engine::Method::kMonteCarlo, options);
    monte_carlo.push_back(add_config(
        "{\"id\":" + std::to_string(workload.configs.size()) +
            ",\"method\":\"monte-carlo\",\"width\":" + std::to_string(width) +
            ",\"chain\":" + chain_json(stages) +
            ",\"params\":{\"samples\":" + std::to_string(samples) +
            ",\"timeout_ms\":300000}}",
        "monte-carlo", evaluation));
  }
  std::vector<std::uint32_t> block;
  for (std::size_t k = 0; k < 4; ++k) {
    const std::size_t width = kWidths[k % 3];
    const std::string p_text = format_p(grid_p((k * 5) % kPs));
    const auto profile =
        multibit::InputProfile::uniform(width, wire_p(p_text));
    engine::EvaluateOptions options;
    options.blocks =
        multibit::BlockChainSpec::parse(static_cast<int>(width), "aca:4");
    const engine::Evaluation evaluation = engine::evaluate(
        multibit::AdderChain(
            std::vector<adders::AdderCell>(width, lpaas[0])),
        profile, engine::Method::kBlockAnalytic, options);
    block.push_back(add_config(
        "{\"id\":" + std::to_string(workload.configs.size()) +
            ",\"method\":\"block-analytic\",\"width\":" +
            std::to_string(width) + ",\"blocks\":\"aca:4\"" +
            ",\"params\":{\"p\":" + p_text + ",\"timeout_ms\":300000}}",
        "block-analytic", evaluation));
  }

  // The arrival process: a cyclic sweep over the profile grid (the
  // LRU-pessimal order for an undersized pool) with a seeded burst of
  // 1-3 analytic-pmf requests per visit, recursive beam bursts and the
  // occasional simulation probe.
  SplitMix arrivals(seed);
  std::vector<std::size_t> cursor(keys.size(), 0);
  std::size_t sweep_position = 0;
  while (workload.schedule.size() < total_requests) {
    const std::size_t key_index = sweep_position;
    Key& key = keys[key_index];
    sweep_position = (sweep_position + 1) % keys.size();
    const std::size_t burst = 1 + arrivals.below(3);
    for (std::size_t b = 0; b < burst; ++b) {
      workload.schedule.push_back(
          key.analytic[cursor[key_index]++ % key.analytic.size()]);
    }
    const std::uint64_t roll = arrivals.below(100);
    if (roll < 6) {
      // A beam expansion: several siblings at once, SoA-groupable.
      const std::size_t lanes = 2 + arrivals.below(3);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        workload.schedule.push_back(
            key.recursive[arrivals.below(key.recursive.size())]);
      }
    } else if (roll < 8) {
      workload.schedule.push_back(
          monte_carlo[arrivals.below(monte_carlo.size())]);
    } else if (roll < 10) {
      workload.schedule.push_back(block[arrivals.below(block.size())]);
    }
  }
  workload.schedule.resize(total_requests);
  return workload;
}

struct PhaseResult {
  double seconds = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
  int serve_rc = -1;
  obs::Json server_stats;
};

/// Parses the `"id":N` a response frame echoes, or -1.
[[nodiscard]] std::int64_t response_id(const std::string& frame) {
  const std::size_t at = frame.find("\"id\":");
  if (at == std::string::npos) return -1;
  std::size_t i = at + 5;
  std::int64_t value = 0;
  bool digits = false;
  while (i < frame.size() && frame[i] >= '0' && frame[i] <= '9') {
    value = value * 10 + (frame[i] - '0');
    ++i;
    digits = true;
  }
  return digits ? value : -1;
}

/// Runs the whole schedule against a fresh server with `workers`
/// dispatch workers: `connections` clients each pump their slice of the
/// schedule from a sender thread while a reader thread verifies every
/// response by id — responses may complete out of order.
PhaseResult run_phase(unsigned workers, unsigned connections,
                      const Workload& workload) {
  service::ServerOptions options;
  options.port = 0;  // ephemeral: parallel CI jobs must not collide
  options.dispatcher.dispatch_threads = workers;
  service::Server server(options);
  const std::uint16_t port = server.start();
  PhaseResult result;
  std::thread io([&] { result.serve_rc = server.serve(); });

  // Slice the schedule round-robin and precompute each connection's
  // request byte stream.
  std::vector<std::string> streams(connections);
  std::vector<std::vector<std::uint64_t>> expected_counts(
      connections, std::vector<std::uint64_t>(workload.configs.size(), 0));
  std::vector<std::uint64_t> totals(connections, 0);
  for (std::size_t i = 0; i < workload.schedule.size(); ++i) {
    const std::uint32_t config = workload.schedule[i];
    const std::size_t connection = i % connections;
    streams[connection] += workload.configs[config].request_line;
    streams[connection] += '\n';
    expected_counts[connection][config] += 1;
    totals[connection] += 1;
  }

  std::vector<std::uint64_t> mismatches(connections, 0);
  const util::WallTimer timer;
  std::vector<std::thread> pumps;
  pumps.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) {
    pumps.emplace_back([&, c] {
      try {
        service::Client client;
        client.connect("127.0.0.1", port);
        // The sender thread pushes the whole stream (the server's
        // per-connection inflight cap applies backpressure) while this
        // thread verifies responses as they complete.
        std::thread sender(
            [&client, &streams, c] { client.send_bytes(streams[c]); });
        for (std::uint64_t n = 0; n < totals[c]; ++n) {
          const auto frame = client.read_frame();
          if (!frame) {
            mismatches[c] += totals[c] - n;
            break;
          }
          const std::int64_t id = response_id(*frame);
          if (id < 0 ||
              static_cast<std::size_t>(id) >= workload.configs.size() ||
              expected_counts[c][static_cast<std::size_t>(id)] == 0) {
            mismatches[c] += 1;
            continue;
          }
          const std::string& expected =
              workload.configs[static_cast<std::size_t>(id)].expected_frame;
          if (frame->size() + 1 != expected.size() ||
              expected.compare(0, frame->size(), *frame) != 0) {
            mismatches[c] += 1;
          }
          expected_counts[c][static_cast<std::size_t>(id)] -= 1;
        }
        sender.join();
        client.close();
      } catch (const std::exception& e) {
        std::cerr << "connection " << c << " failed: " << e.what() << "\n";
        mismatches[c] += 1;
      }
    });
  }
  for (std::thread& pump : pumps) pump.join();
  result.seconds = timer.elapsed_seconds();
  result.requests = workload.schedule.size();
  for (const std::uint64_t m : mismatches) result.mismatches += m;

  {
    service::Client client;
    client.connect("127.0.0.1", port);
    client.send_frame(R"({"id":"stats","method":"stats"})");
    const auto response = client.read_frame();
    const obs::Json parsed =
        response ? obs::Json::parse(*response) : obs::Json();
    if (const obs::Json* stats = parsed.find("stats")) {
      result.server_stats = *stats;
    } else {
      result.mismatches += 1;
    }
    client.close();
  }
  server.request_stop();
  io.join();
  return result;
}

[[nodiscard]] std::uint64_t stat_at(const obs::Json& stats,
                                    std::initializer_list<const char*> path) {
  const obs::Json* node = &stats;
  for (const char* key : path) {
    if (node == nullptr) return 0;
    node = node->find(key);
  }
  return node == nullptr ? 0 : node->unsigned_integer();
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"requests", "baseline-requests", "connections", "seed",
                       "quick", "json-report", "no-json"});
    const bool quick = args.get_bool("quick", false);
    const std::size_t fleet_requests = static_cast<std::size_t>(
        args.get_uint("requests", quick ? 2000 : 60000));
    const std::size_t baseline_requests = static_cast<std::size_t>(
        args.get_uint("baseline-requests", quick ? 1000 : 6000));
    const unsigned connections =
        static_cast<unsigned>(args.get_uint("connections", 4));
    const std::uint64_t seed = args.get_uint("seed", 0x10adc0de);

    std::cout << util::banner(
        "service load: sharded fleet (4 workers) vs single dispatch worker");
    std::cout << "profile grid: " << (std::size(kWidths) * kPs)
              << " (width, p) keys  fleet requests: "
              << util::with_commas(fleet_requests)
              << "  baseline requests: "
              << util::with_commas(baseline_requests) << "  connections: "
              << connections << "\n";

    obs::RunReport report("sealpaa_loadgen");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");

    std::cout << "building workload + expected responses ..." << std::flush;
    const Workload fleet_load = build_workload(fleet_requests, seed);
    Workload baseline_load = fleet_load;
    baseline_load.schedule.resize(
        std::min(baseline_requests, baseline_load.schedule.size()));
    std::cout << " " << fleet_load.configs.size() << " configs\n";

    PhaseResult baseline = run_phase(1, connections, baseline_load);
    const double baseline_rps =
        baseline.seconds > 0.0
            ? static_cast<double>(baseline.requests) / baseline.seconds
            : 0.0;
    std::cout << "  1 worker : " << util::with_commas(baseline.requests)
              << " requests in " << util::duration(baseline.seconds) << "  ("
              << util::with_commas(static_cast<std::uint64_t>(baseline_rps))
              << " req/s)\n";

    PhaseResult fleet = run_phase(4, connections, fleet_load);
    const double fleet_rps =
        fleet.seconds > 0.0
            ? static_cast<double>(fleet.requests) / fleet.seconds
            : 0.0;
    std::cout << "  4 workers: " << util::with_commas(fleet.requests)
              << " requests in " << util::duration(fleet.seconds) << "  ("
              << util::with_commas(static_cast<std::uint64_t>(fleet_rps))
              << " req/s)\n";

    const double speedup = baseline_rps > 0.0 ? fleet_rps / baseline_rps : 0.0;
    const std::uint64_t batch_size_p50 =
        stat_at(fleet.server_stats, {"batches", "size", "p50"});
    const std::uint64_t batch_size_p99 =
        stat_at(fleet.server_stats, {"batches", "size", "p99"});
    const std::uint64_t mismatches = baseline.mismatches + fleet.mismatches;
    const bool verified =
        mismatches == 0 && baseline.serve_rc == 0 && fleet.serve_rc == 0;
    const bool batched = batch_size_p50 > 1;
    const bool scaling_at_least_4x = speedup >= 4.0;

    std::cout << "worker scaling = " << util::fixed(speedup, 2)
              << "x  batch size p50/p99 = " << batch_size_p50 << "/"
              << batch_size_p99 << "  verified vs engine::evaluate: "
              << (verified ? "yes" : "NO") << "\n";
    if (mismatches != 0) {
      std::cerr << "FAIL: " << util::with_commas(mismatches)
                << " responses diverged from engine::evaluate\n";
    }
    if (baseline.serve_rc != 0 || fleet.serve_rc != 0) {
      std::cerr << "FAIL: server drain returned " << baseline.serve_rc << "/"
                << fleet.serve_rc << "\n";
    }
    if (!batched) {
      std::cerr << "FAIL: batch size p50 " << batch_size_p50
                << " — adaptive batching never engaged under load\n";
    }
    if (!scaling_at_least_4x && !quick) {
      std::cerr << "FAIL: 4-worker scaling " << util::fixed(speedup, 2)
                << "x < 4x — sharded pools no longer pay for themselves\n";
    }

    total.stop();
    obs::Json& section = report.section("service_load");
    section.set("keys", obs::Json(static_cast<std::uint64_t>(
                            std::size(kWidths) * kPs)));
    section.set("configs", obs::Json(static_cast<std::uint64_t>(
                               fleet_load.configs.size())));
    section.set("fleet_requests", obs::Json(fleet.requests));
    section.set("baseline_requests", obs::Json(baseline.requests));
    section.set("connections",
                obs::Json(static_cast<std::uint64_t>(connections)));
    section.set("baseline_rps", obs::Json(baseline_rps));
    section.set("fleet_rps", obs::Json(fleet_rps));
    section.set("worker_scaling_speedup", obs::Json(speedup));
    section.set("scaling_at_least_4x", obs::Json(scaling_at_least_4x));
    section.set("batch_size_p50", obs::Json(batch_size_p50));
    section.set("batch_size_p99", obs::Json(batch_size_p99));
    section.set("batched", obs::Json(batched));
    section.set("mismatches", obs::Json(mismatches));
    section.set("verified", obs::Json(verified));
    section.set("cut_through_batches",
                obs::Json(stat_at(fleet.server_stats,
                                  {"dispatch", "cut_through_batches"})));
    section.set("coalesced_batches",
                obs::Json(stat_at(fleet.server_stats,
                                  {"dispatch", "coalesced_batches"})));
    // Per-method evaluation latency percentiles from the fleet phase —
    // the keys the p99-regression gate in check_bench_regression.py
    // watches (lower is better, >2x the reference fails).
    const std::pair<const char*, const char*> methods[] = {
        {"analytic-pmf", "analytic_pmf"},
        {"recursive", "recursive"},
        {"monte-carlo", "monte_carlo"},
        {"block-analytic", "block_analytic"},
    };
    for (const auto& [wire_name, key] : methods) {
      section.set(std::string(key) + "_p50_us",
                  obs::Json(stat_at(fleet.server_stats,
                                    {"methods", wire_name, "latency_us",
                                     "p50"})));
      section.set(std::string(key) + "_p99_us",
                  obs::Json(stat_at(fleet.server_stats,
                                    {"methods", wire_name, "latency_us",
                                     "p99"})));
    }
    section.set("server_stats_fleet", std::move(fleet.server_stats));
    section.set("server_stats_baseline", std::move(baseline.server_stats));

    if (const auto path = obs::report_path(args, "BENCH_service_load.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    // --quick runs are far too small to expose the single-pool thrash
    // the scaling gate measures; they gate correctness + batching only.
    return verified && batched && (scaling_at_least_4x || quick) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

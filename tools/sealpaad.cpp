// sealpaad — the batch analysis daemon.
//
// Serves newline-delimited JSON requests (schema sealpaa.service v1,
// see docs/API.md) over a TCP listener or, with --pipe, over
// stdin/stdout.  Evaluations run on N dispatch workers
// (--dispatch-threads), each owning the shard of (width, p) profiles
// that hashes to it, with adaptive cross-request batching so a
// design-sweep client's chains share one hot prefix cache.  Responses
// complete out of order per connection across shards -- clients match
// them by request id.
//
//   sealpaad --port=0                 # ephemeral port, printed on stdout
//   sealpaad --port=7413 --dispatch-threads=4 --window-us=500
//   echo '{"method":"ping"}' | sealpaad --pipe
//
// SIGTERM and SIGINT drain gracefully: the daemon stops accepting,
// answers everything already received, flushes and exits 0.

#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "sealpaa/service/server.hpp"
#include "sealpaa/util/cli.hpp"

namespace {

sealpaa::service::Server* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int usage(const char* program) {
  std::fprintf(
      stderr,
      "usage: %s [--port=N] [--bind=ADDR] [--pipe]\n"
      "          [--dispatch-threads=N] [--window-us=N] [--batch-max=N]\n"
      "          [--max-connections=N] [--max-frame-bytes=N]\n"
      "          [--max-width=N] [--timeout-ms=N]\n"
      "\n"
      "Batch analysis daemon: newline-delimited JSON requests, schema\n"
      "sealpaa.service v1 (docs/API.md).  --port=0 binds an ephemeral\n"
      "port; --pipe serves one session over stdin/stdout instead.\n",
      program);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const sealpaa::util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"port", "bind", "pipe", "dispatch-threads",
                       "window-us", "batch-max", "max-connections",
                       "max-frame-bytes", "max-width", "timeout-ms", "help"});
    if (args.has("help")) return usage(args.program().c_str());

    sealpaa::service::ServerOptions options;
    options.pipe_mode = args.get_bool("pipe", false);
    options.port = static_cast<std::uint16_t>(
        args.get_uint("port", options.port));
    options.bind_address = args.get("bind", options.bind_address);
    options.dispatcher.dispatch_threads = static_cast<unsigned>(
        args.get_uint("dispatch-threads", 1));
    options.dispatcher.batch_window =
        std::chrono::microseconds(args.get_uint("window-us", 500));
    options.dispatcher.batch_max = static_cast<std::size_t>(
        args.get_uint("batch-max", options.dispatcher.batch_max));
    options.max_connections = static_cast<std::size_t>(
        args.get_uint("max-connections", options.max_connections));
    auto& limits = options.dispatcher.limits;
    limits.max_frame_bytes = static_cast<std::size_t>(
        args.get_uint("max-frame-bytes", limits.max_frame_bytes));
    limits.max_width = static_cast<std::size_t>(
        args.get_uint("max-width", limits.max_width));
    limits.default_timeout_ms =
        args.get_uint("timeout-ms", limits.default_timeout_ms);

    // Broken pipes surface as send() errors; structured teardown beats
    // a silent SIGPIPE death.
    std::signal(SIGPIPE, SIG_IGN);

    sealpaa::service::Server server(options);
    g_server = &server;
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);

    if (options.pipe_mode) {
      std::fprintf(stderr, "sealpaad serving on stdin/stdout\n");
    } else {
      const std::uint16_t port = server.start();
      // The parseable readiness line smoke clients wait for.
      std::printf("sealpaad listening on %s:%u\n",
                  options.bind_address.c_str(), static_cast<unsigned>(port));
      std::fflush(stdout);
    }
    const int code = server.serve();
    g_server = nullptr;
    std::fprintf(stderr, "sealpaad drained after %llu requests\n",
                 static_cast<unsigned long long>(
                     server.dispatcher().requests_served()));
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py.

Run directly (``python3 scripts/test_check_bench_regression.py``) or via
ctest, which registers this file when a python3 interpreter is found.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as gate  # noqa: E402


def make_report(sections):
    return {"schema": gate.SCHEMA, "schema_version": 1, "tool": "bench_test",
            "sections": sections}


REFERENCE = make_report({
    "bench": {
        "all_identical": True,
        "skipped_flag": False,
        "analytic_vs_enumeration_speedup": 10.0,
        "max_relative_gap": 1e-12,
        "configs_checked": 42,
        "label": "width sweep",
        "rows": [{"bits": 8}],
        "analytic_pmf_p99_us": 16383,
        "recursive_p50_us": 7,
        "batch_size_p50": 31,
    },
    "meta": {"reps": 3},
})


class CheckPairTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def _write(self, name, report):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle)
        return path

    def _check(self, current, threshold=0.5):
        ref_path = self._write("ref.json", REFERENCE)
        cur_path = self._write("cur.json", current)
        return gate.check_pair(ref_path, cur_path, threshold)

    def test_identical_reports_pass(self):
        self.assertEqual(self._check(copy.deepcopy(REFERENCE)), [])

    def test_flag_flipping_false_fails(self):
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["all_identical"] = False
        failures = self._check(current)
        self.assertTrue(any("all_identical" in f for f in failures))

    def test_false_reference_flag_is_not_value_gated(self):
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["skipped_flag"] = True
        self.assertEqual(self._check(current), [])

    def test_speedup_below_threshold_fails(self):
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["analytic_vs_enumeration_speedup"] = 4.0
        failures = self._check(current)
        self.assertTrue(any("speedup" in f for f in failures))

    def test_speedup_above_threshold_passes(self):
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["analytic_vs_enumeration_speedup"] = 6.0
        self.assertEqual(self._check(current), [])

    def test_missing_speedup_metric_fails(self):
        current = copy.deepcopy(REFERENCE)
        del current["sections"]["bench"]["analytic_vs_enumeration_speedup"]
        failures = self._check(current)
        self.assertTrue(any("speedup" in f and "missing" in f
                            for f in failures))

    def test_missing_ungated_metric_fails(self):
        # The historical hole: keys that are neither flags nor "speedup"
        # metrics were never looked up in the current report at all.
        for key in ("max_relative_gap", "configs_checked", "label",
                    "skipped_flag", "rows"):
            current = copy.deepcopy(REFERENCE)
            del current["sections"]["bench"][key]
            failures = self._check(current)
            self.assertTrue(
                any(f"bench.{key} missing" in f for f in failures),
                f"dropping {key!r} must fail the gate: {failures}")

    def test_latency_percentile_regression_fails(self):
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["analytic_pmf_p99_us"] = 65535
        failures = self._check(current)
        self.assertTrue(any("analytic_pmf_p99_us rose" in f
                            for f in failures), failures)

    def test_latency_percentile_one_bucket_step_passes(self):
        # Power-of-two histogram buckets: a reference sitting on the
        # 2^k - 1 upper bound may step exactly one bucket at factor 2.
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["analytic_pmf_p99_us"] = 32767
        self.assertEqual(self._check(current), [])

    def test_latency_percentile_improvement_passes(self):
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["analytic_pmf_p99_us"] = 511
        self.assertEqual(self._check(current), [])

    def test_latency_below_floor_is_not_ratio_gated(self):
        # 7us -> 500us is far beyond 2x but under the 1000us noise
        # floor: microsecond percentiles are scheduler jitter.
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["recursive_p50_us"] = 500
        self.assertEqual(self._check(current), [])

    def test_missing_latency_metric_fails(self):
        for key in ("analytic_pmf_p99_us", "recursive_p50_us"):
            current = copy.deepcopy(REFERENCE)
            del current["sections"]["bench"][key]
            failures = self._check(current)
            self.assertTrue(any(f"bench.{key} missing" in f
                                for f in failures), failures)

    def test_unsuffixed_percentile_key_is_presence_only(self):
        # batch_size_p50 carries no _us suffix: it is a batch-size
        # count, not a latency, and must never be ratio-gated.
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["batch_size_p50"] = 10_000
        self.assertEqual(self._check(current), [])
        del current["sections"]["bench"]["batch_size_p50"]
        failures = self._check(current)
        self.assertTrue(any("batch_size_p50 missing" in f
                            for f in failures), failures)

    def test_missing_section_fails(self):
        current = copy.deepcopy(REFERENCE)
        del current["sections"]["meta"]
        failures = self._check(current)
        self.assertTrue(any("'meta' missing" in f for f in failures))

    def test_extra_current_metrics_are_fine(self):
        current = copy.deepcopy(REFERENCE)
        current["sections"]["bench"]["new_metric"] = 7.0
        current["sections"]["extra"] = {"anything": True}
        self.assertEqual(self._check(current), [])

    def test_wrong_schema_rejected(self):
        bad = copy.deepcopy(REFERENCE)
        bad["schema"] = "not-a-run-report"
        path = self._write("bad.json", bad)
        with self.assertRaises(ValueError):
            gate.load_report(path)

    def test_main_exit_codes(self):
        ref_path = self._write("ref.json", REFERENCE)
        ok_path = self._write("ok.json", copy.deepcopy(REFERENCE))
        broken = copy.deepcopy(REFERENCE)
        del broken["sections"]["bench"]["max_relative_gap"]
        bad_path = self._write("bad.json", broken)
        self.assertEqual(gate.main([ref_path, ok_path]), 0)
        self.assertEqual(gate.main([ref_path, bad_path]), 1)


if __name__ == "__main__":
    unittest.main()

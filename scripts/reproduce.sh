#!/usr/bin/env bash
# Reproduces every paper table/figure and all extension experiments.
# Usage: scripts/reproduce.sh [output-dir]   (default: ./out)
#
# pipefail matters: every bench/example is piped through tee, and a
# plain `set -e` would otherwise keep going on a failing binary as long
# as tee succeeded.
set -euo pipefail

OUT_DIR="${1:-out}"
mkdir -p "$OUT_DIR"
OUT_DIR=$(cd "$OUT_DIR" && pwd)
REPO_DIR=$(pwd)

cmake -B build -G Ninja
cmake --build build

# The CI perf gate depends on these three binaries; fail here with a
# clear message rather than letting the bench glob silently skip a
# renamed target.
for gate in bench_dse_prefix_cache bench_bitsliced_sim \
            bench_service_throughput; do
  if [ ! -x "build/bench/$gate" ]; then
    echo "error: perf-gate bench build/bench/$gate is missing" >&2
    exit 1
  fi
done

echo "== tests =="
ctest --test-dir build --output-on-failure 2>&1 | tee "$OUT_DIR/tests.txt"

echo "== benches =="
# Run from OUT_DIR so the default BENCH_*.json reports land there and
# never clobber the committed references the regression gate reads.
for bench in build/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "-- $name"
  (cd "$OUT_DIR" && "$REPO_DIR/$bench" | tee "$name.txt")
done

echo "== bench regression gate =="
python3 scripts/check_bench_regression.py \
  BENCH_dse_prefix_cache.json "$OUT_DIR/BENCH_dse_prefix_cache.json" \
  BENCH_bitsliced_sim.json "$OUT_DIR/BENCH_bitsliced_sim.json" \
  BENCH_service.json "$OUT_DIR/BENCH_service.json" |
  tee "$OUT_DIR/bench_regression.txt"

echo "== service smoke =="
python3 scripts/service_smoke.py --daemon build/tools/sealpaad \
  --cli build/tools/sealpaa_cli 2>&1 | tee "$OUT_DIR/service_smoke.txt"

echo "== figure CSV series =="
build/bench/bench_figure5_sweeps --csv="$OUT_DIR" > /dev/null

echo "== examples =="
for example in build/examples/example_*; do
  [ -x "$example" ] || continue
  name=$(basename "$example")
  echo "-- $name"
  "$example" --out-dir="$OUT_DIR" | tee "$OUT_DIR/$name.txt"
done

echo "All outputs written to $OUT_DIR"

#!/usr/bin/env sh
# Reproduces every paper table/figure and all extension experiments.
# Usage: scripts/reproduce.sh [output-dir]   (default: ./out)
set -eu

OUT_DIR="${1:-out}"
mkdir -p "$OUT_DIR"

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure 2>&1 | tee "$OUT_DIR/tests.txt"

echo "== benches =="
for bench in build/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "-- $name"
  "$bench" | tee "$OUT_DIR/$name.txt"
done

echo "== figure CSV series =="
build/bench/bench_figure5_sweeps --csv="$OUT_DIR" > /dev/null

echo "== examples =="
for example in build/examples/example_*; do
  [ -x "$example" ] || continue
  name=$(basename "$example")
  echo "-- $name"
  "$example" --out-dir="$OUT_DIR" | tee "$OUT_DIR/$name.txt"
done

echo "All outputs written to $OUT_DIR"

#!/usr/bin/env python3
"""End-to-end smoke test for the sealpaad batch analysis service.

Drives a real daemon over TCP — in CI, one built with AddressSanitizer —
through every behavior the wire protocol promises (stdlib only, no pip):

1. readiness: the daemon prints its bound port on stdout;
2. pipelining: many requests down one connection each come back exactly
   once, matched by id (responses to one connection may complete out of
   order across dispatch shards; within one (width, p) profile order
   stays FIFO, which is asserted too);
3. robustness: malformed JSON, oversized frames, unknown methods/cells,
   width-limit violations and an expired deadline each produce the
   documented structured error, and the connection keeps serving;
4. concurrency: parallel connections each get exactly their own answers;
5. CLI parity: evaluation payloads are byte-for-byte identical (after
   canonical JSON re-serialization) to what `sealpaa_cli analyze`
   writes into its run report for the same configuration;
6. analytic-pmf: the simulation-free method returns a distribution
   whose MED/MSE fields equal the CLI's run-report values and a PMF
   whose mass sums to 1;
7. block-analytic: block-adder requests (a "blocks" spec instead of a
   cell chain) return evaluations byte-identical to the CLI's, and a
   spec on any other method is rejected;
8. out-of-order completion (multi-worker runs): a fast request sent
   after a slow one on the same connection overtakes it when the two
   land on different dispatch shards — responses matched by id, never
   by arrival order;
9. graceful drain: SIGTERM answers everything already received, then
   the process exits 0.

Usage:
    service_smoke.py --daemon build/tools/sealpaad \\
                     --cli build/tools/sealpaa_cli [--requests 1000] \\
                     [--dispatch-threads 4]
"""

import argparse
import json
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

SCHEMA = "sealpaa.service"
SCHEMA_VERSION = 1
IO_TIMEOUT_S = 60.0

FAILURES = []


def check(condition, message):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        FAILURES.append(message)
    return condition


class Connection:
    """Newline-delimited JSON over one TCP connection."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=IO_TIMEOUT_S)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def send_frames(self, payload):
        """payload: str of raw bytes to send verbatim."""
        self.sock.sendall(payload.encode("utf-8"))

    def send_request(self, request):
        self.send_frames(json.dumps(request) + "\n")

    def read_line(self):
        """One response line, or None on EOF."""
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode("utf-8")

    def read_response(self):
        line = self.read_line()
        return None if line is None else json.loads(line)

    def close(self):
        self.sock.close()


def expect_envelope(response, request_id):
    ok = (response is not None
          and response.get("schema") == SCHEMA
          and response.get("schema_version") == SCHEMA_VERSION
          and response.get("id") == request_id)
    if not ok:
        FAILURES.append(f"bad envelope for id {request_id!r}: {response}")
    return ok


def expect_error(response, request_id, code):
    expect_envelope(response, request_id)
    actual = (response or {}).get("error", {}).get("code")
    check(response is not None and response.get("ok") is False
          and actual == code,
          f"id {request_id!r} fails with error.code={code!r} (got {actual!r})")


def evaluate_request(request_id, cell, width, p=0.5, method="recursive",
                     **params):
    request = {"id": request_id, "method": method, "width": width,
               "chain": cell}
    merged = dict(params)
    if p != 0.5:
        merged["p"] = p
    if merged:
        request["params"] = merged
    return request


def phase_pipelining(port, count):
    print(f"-- pipelining: {count} requests, one connection, "
          "responses matched by id")
    conn = Connection(port)
    cells = ["LPAA1", "LPAA3", "LPAA6", "LPAA7"]
    requests = []
    for i in range(count):
        if i % 10 == 9:
            requests.append({"id": i, "method": "ping"})
        else:
            requests.append(evaluate_request(i, cells[i % len(cells)],
                                             width=8 + 8 * (i % 2)))
    conn.send_frames("".join(json.dumps(r) + "\n" for r in requests))

    # The wire contract promises exactly one response per request, NOT
    # send order: pings are answered inline ahead of queued evaluations,
    # and evaluations complete out of order across dispatch shards.
    # Only same-profile requests — here, same width — stay FIFO.
    seen = {}
    all_ok = True
    envelopes_ok = True
    by_width = {8: [], 16: []}
    for _ in range(count):
        response = conn.read_response()
        if response is None or response.get("schema") != SCHEMA \
                or response.get("schema_version") != SCHEMA_VERSION:
            envelopes_ok = False
            break
        i = response.get("id")
        seen[i] = seen.get(i, 0) + 1
        if response.get("ok") is not True:
            all_ok = False
        elif i % 10 == 9:
            all_ok = all_ok and response.get("pong") is True
        else:
            all_ok = all_ok and "evaluation" in response
            by_width[8 + 8 * (i % 2)].append(i)
    check(envelopes_ok, "every response carries a well-formed envelope")
    check(seen == {i: 1 for i in range(count)},
          "every id answered exactly once")
    check(all_ok, "every response ok with the expected payload")
    check(all(ids == sorted(ids) for ids in by_width.values()),
          "same-profile responses stay FIFO per width")
    conn.close()


def phase_robustness(port, max_frame_bytes=64 * 1024):
    print("-- robustness: structured errors, connection survives")
    conn = Connection(port)

    conn.send_frames("this is not json\n")
    response = conn.read_response()
    check(response is not None and response.get("ok") is False
          and response.get("error", {}).get("code") == "invalid-json",
          "garbage line answered with invalid-json")

    oversized = '{"id": "big", "junk": "' + "x" * (max_frame_bytes + 1024)
    conn.send_frames(oversized + '"}\n')
    response = conn.read_response()
    check(response is not None and response.get("ok") is False
          and response.get("error", {}).get("code") == "frame-too-large",
          "oversized frame answered with frame-too-large")

    conn.send_request({"id": "m", "method": "nope", "width": 4,
                       "chain": "LPAA1"})
    expect_error(conn.read_response(), "m", "unknown-method")

    conn.send_request(evaluate_request("c", "LPAA9", width=4))
    expect_error(conn.read_response(), "c", "unknown-cell")

    conn.send_request(evaluate_request("w", "LPAA1", width=9999))
    expect_error(conn.read_response(), "w", "width-limit")

    conn.send_request(evaluate_request("b", "LPAA1", width=4, typo=1))
    expect_error(conn.read_response(), "b", "bad-request")

    conn.send_request(evaluate_request("t", "LPAA1", width=8, timeout_ms=0))
    expect_error(conn.read_response(), "t", "timeout")

    conn.send_request({"id": "alive", "method": "ping"})
    response = conn.read_response()
    check(response is not None and response.get("pong") is True,
          "connection still serves after every error")
    conn.close()


def phase_concurrency(port, connections, per_connection):
    print(f"-- concurrency: {connections} connections x "
          f"{per_connection} requests")
    results = [None] * connections

    def worker(index):
        try:
            conn = Connection(port)
            ids = [f"conn{index}-{i}" for i in range(per_connection)]
            conn.send_frames("".join(
                json.dumps(evaluate_request(request_id, "LPAA6", width=8))
                + "\n" for request_id in ids))
            echoed = []
            for _ in ids:
                response = conn.read_response()
                if response is None or response.get("ok") is not True:
                    results[index] = "bad response"
                    return
                echoed.append(response.get("id"))
            conn.close()
            results[index] = "ok" if echoed == ids else "wrong ids"
        except (OSError, ValueError) as error:
            results[index] = f"exception: {error}"

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(connections)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(IO_TIMEOUT_S)
    check(all(r == "ok" for r in results),
          f"each connection got exactly its own answers ({results})")


def phase_cli_parity(port, cli):
    print("-- CLI parity: service evaluation == sealpaa_cli run report")
    combos = [
        ("LPAA6", 8, 0.5, "recursive", {}),
        ("LPAA3", 16, 0.5, "recursive", {}),
        ("LPAA1", 8, 0.3, "recursive", {}),
        ("LPAA6", 8, 0.5, "inclusion-exclusion", {}),
        ("LPAA2", 6, 0.3, "weighted-exhaustive", {}),
        ("LPAA5", 8, 0.3, "monte-carlo", {"samples": 50000}),
        ("LPAA4", 8, 0.5, "analytic-pmf", {}),
    ]
    conn = Connection(port)
    for index, (cell, bits, p, method, params) in enumerate(combos):
        with tempfile.NamedTemporaryFile(suffix=".json") as report_file:
            command = [cli, "analyze", f"--cell={cell}", f"--bits={bits}",
                       f"--p={p}", f"--method={method}",
                       f"--json-report={report_file.name}"]
            command += [f"--{key}={value}" for key, value in params.items()]
            subprocess.run(command, check=True, capture_output=True)
            with open(report_file.name, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        expected = report["sections"]["analyze"]["evaluation"]

        request_id = f"parity{index}"
        conn.send_request(evaluate_request(request_id, cell, width=bits,
                                           p=p, method=method, **params))
        response = conn.read_response()
        expect_envelope(response, request_id)
        actual = (response or {}).get("evaluation")
        check(json.dumps(actual, sort_keys=True)
              == json.dumps(expected, sort_keys=True),
              f"{method} {cell} width {bits} p {p} matches the CLI")
    conn.close()


def phase_analytic_pmf(port, cli):
    print("-- analytic-pmf: simulation-free MED/MSE match the CLI")
    combos = [("LPAA1", 8, 0.3), ("LPAA6", 12, 0.5), ("LPAA3", 16, 0.42)]
    conn = Connection(port)
    for index, (cell, bits, p) in enumerate(combos):
        with tempfile.NamedTemporaryFile(suffix=".json") as report_file:
            subprocess.run(
                [cli, "analyze", f"--cell={cell}", f"--bits={bits}",
                 f"--p={p}", "--method=analytic-pmf",
                 f"--json-report={report_file.name}"],
                check=True, capture_output=True)
            with open(report_file.name, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        expected = report["sections"]["analyze"]["evaluation"]["distribution"]

        request_id = f"pmf{index}"
        conn.send_request(evaluate_request(request_id, cell, width=bits,
                                           p=p, method="analytic-pmf"))
        response = conn.read_response()
        expect_envelope(response, request_id)
        evaluation = (response or {}).get("evaluation", {})
        actual = evaluation.get("distribution")
        check(isinstance(actual, dict),
              f"analytic-pmf {cell} width {bits} carries a distribution")
        if not isinstance(actual, dict):
            continue
        for field in ("mean_error_distance", "mean_squared_error"):
            check(actual.get(field) == expected.get(field),
                  f"analytic-pmf {cell} width {bits} {field} == CLI "
                  f"({actual.get(field)!r})")
        pmf = evaluation.get("pmf", {})
        mass = pmf.get("total_mass")
        check(isinstance(mass, (int, float)) and abs(mass - 1.0) <= 1e-9,
              f"analytic-pmf {cell} width {bits} pmf mass ~ 1 ({mass!r})")
    conn.close()


def phase_block_analytic(port, cli):
    print("-- block-analytic: block specs served byte-identical to the CLI")
    combos = [
        (16, "gear:4:4", 0.5),
        (16, "aca:4", 0.42),
        (12, "etaii:3", 0.5),
        (16, "4:0,2:2,4:3,2:1,4:4", 0.3),
    ]
    conn = Connection(port)
    for index, (bits, blocks, p) in enumerate(combos):
        with tempfile.NamedTemporaryFile(suffix=".json") as report_file:
            subprocess.run(
                [cli, "analyze", f"--bits={bits}", f"--blocks={blocks}",
                 f"--p={p}", "--method=block-analytic",
                 f"--json-report={report_file.name}"],
                check=True, capture_output=True)
            with open(report_file.name, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        expected = report["sections"]["analyze"]["evaluation"]

        request_id = f"block{index}"
        request = {"id": request_id, "method": "block-analytic",
                   "width": bits, "blocks": blocks}
        if p != 0.5:
            request["params"] = {"p": p}
        conn.send_request(request)
        response = conn.read_response()
        expect_envelope(response, request_id)
        actual = (response or {}).get("evaluation")
        check(json.dumps(actual, sort_keys=True)
              == json.dumps(expected, sort_keys=True),
              f"block-analytic {blocks} width {bits} p {p} matches the CLI")

    # A spec that does not tile the width, a missing spec, and a spec on
    # a non-block method are each structured rejections.
    conn.send_request({"id": "bw", "method": "block-analytic", "width": 16,
                       "blocks": "gear:24:4"})
    expect_error(conn.read_response(), "bw", "bad-request")
    conn.send_request({"id": "bm", "method": "block-analytic", "width": 16})
    expect_error(conn.read_response(), "bm", "bad-request")
    conn.send_request({"id": "bx", "method": "recursive", "width": 8,
                       "chain": "LPAA1", "blocks": "gear:2:2"})
    expect_error(conn.read_response(), "bx", "bad-request")
    conn.close()


def phase_out_of_order(port, dispatch_threads):
    if dispatch_threads < 2:
        print("-- out-of-order completion: skipped "
              f"(needs >= 2 dispatch workers, have {dispatch_threads})")
        return
    print("-- out-of-order completion: fast request overtakes a slow one")
    # Widths 16 and 24 land on different dispatch shards at 4 workers
    # (Dispatcher::shard_of — asserted by tests/test_service.cpp), so a
    # cheap recursive evaluation sent AFTER a multi-million-sample Monte
    # Carlo run on the same connection must complete first.  Responses
    # interleave across shards and are matched by id, never by arrival.
    conn = Connection(port)
    conn.send_frames(
        json.dumps(evaluate_request("slow", "LPAA3", width=16,
                                    method="monte-carlo",
                                    samples=2097152)) + "\n"
        + json.dumps(evaluate_request("fast", "LPAA6", width=24)) + "\n")
    first = conn.read_response()
    second = conn.read_response()
    check(first is not None and first.get("id") == "fast"
          and first.get("ok") is True,
          "fast recursive response arrived first")
    check(second is not None and second.get("id") == "slow"
          and second.get("ok") is True
          and "evaluation" in second,
          "slow monte-carlo response completed afterwards, intact")
    conn.close()


def phase_sigterm_drain(daemon, port):
    print("-- SIGTERM: drain answers in-flight work, exit 0")
    conn = Connection(port)
    count = 50
    conn.send_frames("".join(
        json.dumps(evaluate_request(i, "LPAA3", width=16)) + "\n"
        for i in range(count)))
    # A drain stops reading, so only wave goodbye once the server has
    # demonstrably received the burst (it answers in arrival order).
    first = conn.read_response()
    check(first is not None and first.get("ok") is True
          and first.get("id") == 0, "burst reached the server before SIGTERM")
    daemon.send_signal(signal.SIGTERM)
    answered = 1
    while True:
        response = conn.read_response()
        if response is None:
            break
        if response.get("ok") is True and response.get("id") == answered:
            answered += 1
    conn.close()
    check(answered == count,
          f"all {count} in-flight requests answered before close "
          f"({answered} seen)")
    returncode = daemon.wait(timeout=IO_TIMEOUT_S)
    check(returncode == 0, f"daemon exited {returncode} after drain")
    stderr = daemon.stderr.read()
    check("drained" in stderr, "daemon logged its drain summary")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--daemon", required=True,
                        help="path to the sealpaad binary")
    parser.add_argument("--cli", required=True,
                        help="path to the sealpaa_cli binary")
    parser.add_argument("--requests", type=int, default=1000,
                        help="pipelined request count (default: %(default)s)")
    parser.add_argument("--connections", type=int, default=4,
                        help="concurrent connections (default: %(default)s)")
    parser.add_argument("--dispatch-threads", type=int, default=4,
                        help="daemon dispatch workers (default: %(default)s)")
    args = parser.parse_args(argv)

    daemon = subprocess.Popen(
        [args.daemon, "--port=0",
         f"--dispatch-threads={args.dispatch_threads}"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ready = daemon.stdout.readline()
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", ready)
        if not check(match is not None,
                     f"readiness line announces the port ({ready.strip()!r})"):
            return 1
        port = int(match.group(1))

        phase_pipelining(port, args.requests)
        phase_robustness(port)
        phase_concurrency(port, args.connections,
                          max(10, args.requests // 10))
        phase_cli_parity(port, args.cli)
        phase_analytic_pmf(port, args.cli)
        phase_block_analytic(port, args.cli)
        phase_out_of_order(port, args.dispatch_threads)
        phase_sigterm_drain(daemon, port)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    if FAILURES:
        print(f"\nservice smoke FAILED ({len(FAILURES)} checks):")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    print("\nservice smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

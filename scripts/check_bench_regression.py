#!/usr/bin/env python3
"""Gate a fresh bench run against the committed reference report.

Every perf bench writes a versioned ``sealpaa.run-report`` JSON whose
sections carry machine-independent correctness flags (``identical``,
``verified``, ``all_identical``, ``all_deterministic``) next to
machine-dependent speedup ratios.  This gate is deliberately loose on
the ratios — CI machines are noisy and slower than the reference box —
and strict on the flags:

* every boolean flag that is true in the reference must still be true
  in the current run (a diverging rewrite is a hard failure);
* every metric whose key contains ``speedup`` must stay at or above
  ``threshold`` (default 50%) of the reference value.  Speedups are
  ratios of two timings taken on the same machine in the same process,
  so they transfer across machines far better than raw seconds do;
  losing half of one is an architectural regression, not noise;
* every latency-percentile metric (keys like ``analytic_pmf_p99_us`` —
  ``_p<N>_us`` suffixed) is lower-is-better and must stay at or below
  ``latency-factor`` (default 2x) of the reference, plus one microsecond
  of grace so a value sitting exactly on a power-of-two histogram bucket
  boundary may step one bucket without tripping the gate.  References
  below ``latency-floor-us`` (default 1000) are not ratio-gated —
  microsecond-scale percentiles are scheduler noise, not regressions —
  but must still be present;
* every other key the reference report carries must still be present in
  the current report.  Values outside the two gated classes are not
  compared (counts and raw timings are machine-dependent), but a bench
  that silently stops emitting a metric — or an entire section — is a
  hard failure, not a silent pass.

Usage:
    check_bench_regression.py [--threshold 0.5] REFERENCE CURRENT \\
                              [REFERENCE CURRENT ...]

Exits non-zero when any pair regresses, any expected metric vanished,
or any report fails to parse.
"""

import argparse
import json
import re
import sys

SCHEMA = "sealpaa.run-report"

LATENCY_KEY = re.compile(r"_p\d+_us$")


def load_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema is {report.get('schema')!r}, "
                         f"expected {SCHEMA!r}")
    return report


def iter_metrics(sections):
    """Yields (section, key, value) for every gated metric."""
    for name, section in sorted(sections.items()):
        if not isinstance(section, dict):
            continue
        for key, value in section.items():
            is_flag = isinstance(value, bool)
            is_number = not is_flag and isinstance(value, (int, float))
            is_latency = is_number and LATENCY_KEY.search(key) is not None
            is_speedup = is_number and not is_latency and "speedup" in key
            if is_flag or is_speedup or is_latency:
                yield name, key, value


def check_pair(reference_path, current_path, threshold,
               latency_factor=2.0, latency_floor_us=1000.0):
    reference = load_report(reference_path)
    current = load_report(current_path)
    current_sections = current.get("sections", {})

    failures = []
    rows = []
    for name, key, ref_value in iter_metrics(reference.get("sections", {})):
        cur_section = current_sections.get(name)
        cur_value = cur_section.get(key) if isinstance(cur_section, dict) \
            else None
        metric = f"{name}.{key}"
        if isinstance(ref_value, bool):
            if cur_value is None:
                rows.append((metric, str(ref_value).lower(), "missing",
                             "FAIL"))
                failures.append(f"{metric} missing from current run")
                continue
            if not ref_value:
                continue  # only gate flag values the reference run passed
            ok = cur_value is True
            rows.append((metric, "true", str(cur_value).lower(),
                         "ok" if ok else "FAIL"))
            if not ok:
                failures.append(f"{metric} is no longer true")
        elif LATENCY_KEY.search(key):
            if not isinstance(cur_value, (int, float)) \
                    or isinstance(cur_value, bool):
                rows.append((metric, f"{ref_value:.0f}us", "missing", "FAIL"))
                failures.append(f"{metric} missing from current run")
                continue
            if ref_value < latency_floor_us:
                rows.append((metric, f"{ref_value:.0f}us",
                             f"{cur_value:.0f}us", "ok (below floor)"))
                continue
            # +1us of grace: percentiles come from power-of-two histogram
            # buckets, so a reference on a bucket's 2^k - 1 upper bound
            # may legitimately step to the next bucket's 2^(k+1) - 1.
            ceiling = latency_factor * ref_value + 1
            ok = cur_value <= ceiling
            rows.append((metric, f"{ref_value:.0f}us", f"{cur_value:.0f}us",
                         "ok" if ok else f"FAIL (> {ceiling:.0f}us)"))
            if not ok:
                failures.append(
                    f"{metric} rose to {cur_value:.0f}us, above "
                    f"{latency_factor:.1f}x the reference "
                    f"{ref_value:.0f}us")
        else:
            if not isinstance(cur_value, (int, float)) \
                    or isinstance(cur_value, bool):
                rows.append((metric, f"{ref_value:.2f}", "missing", "FAIL"))
                failures.append(f"{metric} missing from current run")
                continue
            floor = threshold * ref_value
            ok = ref_value <= 0 or cur_value >= floor
            rows.append((metric, f"{ref_value:.2f}x", f"{cur_value:.2f}x",
                         "ok" if ok else f"FAIL (< {floor:.2f}x)"))
            if not ok:
                failures.append(
                    f"{metric} fell to {cur_value:.2f}x, below "
                    f"{threshold:.0%} of the reference {ref_value:.2f}x")

    # Presence gate: every reference key must still be reported.  The
    # value gates above only see boolean flags and "speedup" metrics; a
    # bench that silently drops any other metric (or a whole section)
    # must fail loudly instead of sailing through unexamined.
    gated = {(name, key)
             for name, key, _ in iter_metrics(reference.get("sections", {}))}
    for name, section in sorted(reference.get("sections", {}).items()):
        if not isinstance(section, dict):
            continue
        cur_section = current_sections.get(name)
        if not isinstance(cur_section, dict):
            rows.append((name, "present", "missing", "FAIL"))
            failures.append(f"section {name!r} missing from current run")
            continue
        for key in section:
            if (name, key) in gated or key in cur_section:
                continue  # gated keys already failed above when missing
            metric = f"{name}.{key}"
            rows.append((metric, "present", "missing", "FAIL"))
            failures.append(f"{metric} missing from current run")

    if not rows:
        failures.append(f"{reference_path}: no gated metrics found")

    tool = reference.get("tool", "?")
    print(f"== {tool}: {current_path} vs {reference_path} ==")
    width = max((len(row[0]) for row in rows), default=0)
    for metric, ref_text, cur_text, status in rows:
        print(f"  {metric:<{width}}  reference {ref_text:>10}  "
              f"current {cur_text:>10}  {status}")
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        usage="%(prog)s [--threshold T] REFERENCE CURRENT "
              "[REFERENCE CURRENT ...]")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="minimum current/reference speedup ratio "
                             "(default: %(default)s)")
    parser.add_argument("--latency-factor", type=float, default=2.0,
                        help="maximum current/reference ratio for "
                             "_p<N>_us latency percentiles "
                             "(default: %(default)s)")
    parser.add_argument("--latency-floor-us", type=float, default=1000.0,
                        help="reference latencies below this many "
                             "microseconds are presence-checked but not "
                             "ratio-gated (default: %(default)s)")
    parser.add_argument("reports", nargs="+",
                        help="alternating reference/current report paths")
    args = parser.parse_args(argv)

    if len(args.reports) % 2 != 0:
        parser.error("reports must come in REFERENCE CURRENT pairs")
    if not 0.0 < args.threshold <= 1.0:
        parser.error("--threshold must be in (0, 1]")
    if args.latency_factor < 1.0:
        parser.error("--latency-factor must be at least 1")

    failures = []
    for i in range(0, len(args.reports), 2):
        try:
            failures += check_pair(args.reports[i], args.reports[i + 1],
                                   args.threshold, args.latency_factor,
                                   args.latency_floor_us)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            failures.append(str(error))
            print(f"error: {error}", file=sys.stderr)

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

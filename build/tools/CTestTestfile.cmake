# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/sealpaa_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_cells "/root/repo/build/tools/sealpaa_cli" "cells")
set_tests_properties(cli_cells PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/sealpaa_cli" "analyze" "--cell=LPAA6" "--bits=8" "--p=0.5" "--trace")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze_rho "/root/repo/build/tools/sealpaa_cli" "analyze" "--cell=LPAA1" "--bits=8" "--p=0.5" "--rho=0.5")
set_tests_properties(cli_analyze_rho PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/sealpaa_cli" "sweep" "--cell=LPAA7" "--p=0.1" "--max-bits=12")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bounds "/root/repo/build/tools/sealpaa_cli" "bounds" "--cell=LPAA7" "--p=0.1" "--epsilon=0.05")
set_tests_properties(cli_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hybrid "/root/repo/build/tools/sealpaa_cli" "hybrid" "--bits=6")
set_tests_properties(cli_hybrid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hybrid_budget "/root/repo/build/tools/sealpaa_cli" "hybrid" "--bits=6" "--budget-nw=4000")
set_tests_properties(cli_hybrid_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gear "/root/repo/build/tools/sealpaa_cli" "gear" "--n=16" "--r=4" "--p=4")
set_tests_properties(cli_gear PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth "/root/repo/build/tools/sealpaa_cli" "synth" "--kind=chain" "--cell=LPAA2" "--bits=4")
set_tests_properties(cli_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_cell "/root/repo/build/tools/sealpaa_cli" "analyze" "--cell=NOPE")
set_tests_properties(cli_bad_cell PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_gear "/root/repo/build/tools/sealpaa_cli" "gear" "--n=9" "--r=2" "--p=2")
set_tests_properties(cli_bad_gear PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze_value "/root/repo/build/tools/sealpaa_cli" "analyze" "--cell=LPAA6" "--bits=8" "--p=0.5")
set_tests_properties(cli_analyze_value PROPERTIES  PASS_REGULAR_EXPRESSION "P\\(Error\\)   = 0\\.899887" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth_module "/root/repo/build/tools/sealpaa_cli" "synth" "--kind=cell" "--cell=LPAA5")
set_tests_properties(cli_synth_module PROPERTIES  PASS_REGULAR_EXPRESSION "module LPAA5_cell" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_cli.dir/sealpaa_cli.cpp.o"
  "CMakeFiles/sealpaa_cli.dir/sealpaa_cli.cpp.o.d"
  "sealpaa_cli"
  "sealpaa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sealpaa_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_edge_detect.
# This may be replaced when dependencies are built.

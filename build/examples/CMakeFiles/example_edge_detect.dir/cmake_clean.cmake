file(REMOVE_RECURSE
  "CMakeFiles/example_edge_detect.dir/edge_detect.cpp.o"
  "CMakeFiles/example_edge_detect.dir/edge_detect.cpp.o.d"
  "example_edge_detect"
  "example_edge_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_edge_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

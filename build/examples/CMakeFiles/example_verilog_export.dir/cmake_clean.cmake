file(REMOVE_RECURSE
  "CMakeFiles/example_verilog_export.dir/verilog_export.cpp.o"
  "CMakeFiles/example_verilog_export.dir/verilog_export.cpp.o.d"
  "example_verilog_export"
  "example_verilog_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_verilog_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

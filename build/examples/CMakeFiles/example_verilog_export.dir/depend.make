# Empty dependencies file for example_verilog_export.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nn_inference.cpp" "examples/CMakeFiles/example_nn_inference.dir/nn_inference.cpp.o" "gcc" "examples/CMakeFiles/example_nn_inference.dir/nn_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sealpaa_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_gear.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_multiplier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_multibit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/example_nn_inference.dir/nn_inference.cpp.o"
  "CMakeFiles/example_nn_inference.dir/nn_inference.cpp.o.d"
  "example_nn_inference"
  "example_nn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_nn_inference.
# This may be replaced when dependencies are built.

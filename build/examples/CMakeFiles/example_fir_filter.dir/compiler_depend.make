# Empty compiler generated dependencies file for example_fir_filter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_fir_filter.dir/fir_filter.cpp.o"
  "CMakeFiles/example_fir_filter.dir/fir_filter.cpp.o.d"
  "example_fir_filter"
  "example_fir_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fir_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_image_blend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_image_blend.dir/image_blend.cpp.o"
  "CMakeFiles/example_image_blend.dir/image_blend.cpp.o.d"
  "example_image_blend"
  "example_image_blend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_image_blend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_hybrid_designer.dir/hybrid_designer.cpp.o"
  "CMakeFiles/example_hybrid_designer.dir/hybrid_designer.cpp.o.d"
  "example_hybrid_designer"
  "example_hybrid_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hybrid_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_hybrid_designer.
# This may be replaced when dependencies are built.

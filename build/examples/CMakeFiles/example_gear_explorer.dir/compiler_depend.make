# Empty compiler generated dependencies file for example_gear_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_gear_explorer.dir/gear_explorer.cpp.o"
  "CMakeFiles/example_gear_explorer.dir/gear_explorer.cpp.o.d"
  "example_gear_explorer"
  "example_gear_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gear_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

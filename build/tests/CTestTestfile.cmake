# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_adders[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_correction[1]_include.cmake")
include("/root/repo/build/tests/test_correlated[1]_include.cmake")
include("/root/repo/build/tests/test_costs[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_expr[1]_include.cmake")
include("/root/repo/build/tests/test_gear[1]_include.cmake")
include("/root/repo/build/tests/test_gear_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_joint[1]_include.cmake")
include("/root/repo/build/tests/test_loa_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_mkl[1]_include.cmake")
include("/root/repo/build/tests/test_multibit[1]_include.cmake")
include("/root/repo/build/tests/test_multiplier[1]_include.cmake")
include("/root/repo/build/tests/test_prob[1]_include.cmake")
include("/root/repo/build/tests/test_profile_estimation[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_recursive[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_rtl_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sum_bits[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/test_correlated.dir/test_correlated.cpp.o"
  "CMakeFiles/test_correlated.dir/test_correlated.cpp.o.d"
  "test_correlated"
  "test_correlated.pdb"
  "test_correlated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correlated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_sum_bits.dir/test_sum_bits.cpp.o"
  "CMakeFiles/test_sum_bits.dir/test_sum_bits.cpp.o.d"
  "test_sum_bits"
  "test_sum_bits.pdb"
  "test_sum_bits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sum_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

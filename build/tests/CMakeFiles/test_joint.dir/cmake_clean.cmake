file(REMOVE_RECURSE
  "CMakeFiles/test_joint.dir/test_joint.cpp.o"
  "CMakeFiles/test_joint.dir/test_joint.cpp.o.d"
  "test_joint"
  "test_joint.pdb"
  "test_joint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_loa_bounds.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_loa_bounds.dir/test_loa_bounds.cpp.o"
  "CMakeFiles/test_loa_bounds.dir/test_loa_bounds.cpp.o.d"
  "test_loa_bounds"
  "test_loa_bounds.pdb"
  "test_loa_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loa_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

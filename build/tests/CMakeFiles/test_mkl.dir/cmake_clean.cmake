file(REMOVE_RECURSE
  "CMakeFiles/test_mkl.dir/test_mkl.cpp.o"
  "CMakeFiles/test_mkl.dir/test_mkl.cpp.o.d"
  "test_mkl"
  "test_mkl.pdb"
  "test_mkl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mkl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_mkl.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_correction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_correction.dir/test_correction.cpp.o"
  "CMakeFiles/test_correction.dir/test_correction.cpp.o.d"
  "test_correction"
  "test_correction.pdb"
  "test_correction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

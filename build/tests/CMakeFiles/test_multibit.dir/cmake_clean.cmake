file(REMOVE_RECURSE
  "CMakeFiles/test_multibit.dir/test_multibit.cpp.o"
  "CMakeFiles/test_multibit.dir/test_multibit.cpp.o.d"
  "test_multibit"
  "test_multibit.pdb"
  "test_multibit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

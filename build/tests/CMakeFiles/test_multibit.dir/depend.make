# Empty dependencies file for test_multibit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_gear.dir/test_gear.cpp.o"
  "CMakeFiles/test_gear.dir/test_gear.cpp.o.d"
  "test_gear"
  "test_gear.pdb"
  "test_gear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_gear.
# This may be replaced when dependencies are built.

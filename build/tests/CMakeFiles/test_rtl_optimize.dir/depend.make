# Empty dependencies file for test_rtl_optimize.
# This may be replaced when dependencies are built.

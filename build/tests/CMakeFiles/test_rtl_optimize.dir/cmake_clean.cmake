file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_optimize.dir/test_rtl_optimize.cpp.o"
  "CMakeFiles/test_rtl_optimize.dir/test_rtl_optimize.cpp.o.d"
  "test_rtl_optimize"
  "test_rtl_optimize.pdb"
  "test_rtl_optimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_gear_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_gear_sweep.dir/test_gear_sweep.cpp.o"
  "CMakeFiles/test_gear_sweep.dir/test_gear_sweep.cpp.o.d"
  "test_gear_sweep"
  "test_gear_sweep.pdb"
  "test_gear_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gear_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

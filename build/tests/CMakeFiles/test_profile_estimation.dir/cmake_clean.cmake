file(REMOVE_RECURSE
  "CMakeFiles/test_profile_estimation.dir/test_profile_estimation.cpp.o"
  "CMakeFiles/test_profile_estimation.dir/test_profile_estimation.cpp.o.d"
  "test_profile_estimation"
  "test_profile_estimation.pdb"
  "test_profile_estimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

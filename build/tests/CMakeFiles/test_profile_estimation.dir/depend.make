# Empty dependencies file for test_profile_estimation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sealpaa_explore.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_explore.dir/sealpaa/explore/hybrid.cpp.o"
  "CMakeFiles/sealpaa_explore.dir/sealpaa/explore/hybrid.cpp.o.d"
  "CMakeFiles/sealpaa_explore.dir/sealpaa/explore/pareto.cpp.o"
  "CMakeFiles/sealpaa_explore.dir/sealpaa/explore/pareto.cpp.o.d"
  "CMakeFiles/sealpaa_explore.dir/sealpaa/explore/robustness.cpp.o"
  "CMakeFiles/sealpaa_explore.dir/sealpaa/explore/robustness.cpp.o.d"
  "libsealpaa_explore.a"
  "libsealpaa_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

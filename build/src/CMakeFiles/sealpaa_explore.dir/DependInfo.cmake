
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sealpaa/explore/hybrid.cpp" "src/CMakeFiles/sealpaa_explore.dir/sealpaa/explore/hybrid.cpp.o" "gcc" "src/CMakeFiles/sealpaa_explore.dir/sealpaa/explore/hybrid.cpp.o.d"
  "/root/repo/src/sealpaa/explore/pareto.cpp" "src/CMakeFiles/sealpaa_explore.dir/sealpaa/explore/pareto.cpp.o" "gcc" "src/CMakeFiles/sealpaa_explore.dir/sealpaa/explore/pareto.cpp.o.d"
  "/root/repo/src/sealpaa/explore/robustness.cpp" "src/CMakeFiles/sealpaa_explore.dir/sealpaa/explore/robustness.cpp.o" "gcc" "src/CMakeFiles/sealpaa_explore.dir/sealpaa/explore/robustness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sealpaa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_multibit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsealpaa_explore.a"
)

# Empty dependencies file for sealpaa_analysis.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sealpaa/analysis/bounds.cpp" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/bounds.cpp.o" "gcc" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/bounds.cpp.o.d"
  "/root/repo/src/sealpaa/analysis/correlated.cpp" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/correlated.cpp.o" "gcc" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/correlated.cpp.o.d"
  "/root/repo/src/sealpaa/analysis/costs.cpp" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/costs.cpp.o" "gcc" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/costs.cpp.o.d"
  "/root/repo/src/sealpaa/analysis/joint.cpp" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/joint.cpp.o" "gcc" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/joint.cpp.o.d"
  "/root/repo/src/sealpaa/analysis/mkl.cpp" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/mkl.cpp.o" "gcc" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/mkl.cpp.o.d"
  "/root/repo/src/sealpaa/analysis/recursive.cpp" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/recursive.cpp.o" "gcc" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/recursive.cpp.o.d"
  "/root/repo/src/sealpaa/analysis/sum_bits.cpp" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/sum_bits.cpp.o" "gcc" "src/CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/sum_bits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sealpaa_multibit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsealpaa_analysis.a"
)

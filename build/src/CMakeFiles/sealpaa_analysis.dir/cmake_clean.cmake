file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/bounds.cpp.o"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/bounds.cpp.o.d"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/correlated.cpp.o"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/correlated.cpp.o.d"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/costs.cpp.o"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/costs.cpp.o.d"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/joint.cpp.o"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/joint.cpp.o.d"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/mkl.cpp.o"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/mkl.cpp.o.d"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/recursive.cpp.o"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/recursive.cpp.o.d"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/sum_bits.cpp.o"
  "CMakeFiles/sealpaa_analysis.dir/sealpaa/analysis/sum_bits.cpp.o.d"
  "libsealpaa_analysis.a"
  "libsealpaa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_sim.dir/sealpaa/sim/exhaustive.cpp.o"
  "CMakeFiles/sealpaa_sim.dir/sealpaa/sim/exhaustive.cpp.o.d"
  "CMakeFiles/sealpaa_sim.dir/sealpaa/sim/metrics.cpp.o"
  "CMakeFiles/sealpaa_sim.dir/sealpaa/sim/metrics.cpp.o.d"
  "CMakeFiles/sealpaa_sim.dir/sealpaa/sim/montecarlo.cpp.o"
  "CMakeFiles/sealpaa_sim.dir/sealpaa/sim/montecarlo.cpp.o.d"
  "libsealpaa_sim.a"
  "libsealpaa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

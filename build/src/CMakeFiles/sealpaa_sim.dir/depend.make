# Empty dependencies file for sealpaa_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsealpaa_sim.a"
)

# Empty compiler generated dependencies file for sealpaa_rtl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/netlist.cpp.o"
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/netlist.cpp.o.d"
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/optimize.cpp.o"
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/optimize.cpp.o.d"
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/synth.cpp.o"
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/synth.cpp.o.d"
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/verilog.cpp.o"
  "CMakeFiles/sealpaa_rtl.dir/sealpaa/rtl/verilog.cpp.o.d"
  "libsealpaa_rtl.a"
  "libsealpaa_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

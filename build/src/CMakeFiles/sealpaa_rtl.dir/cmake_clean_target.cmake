file(REMOVE_RECURSE
  "libsealpaa_rtl.a"
)

file(REMOVE_RECURSE
  "libsealpaa_gear.a"
)

# Empty dependencies file for sealpaa_gear.
# This may be replaced when dependencies are built.

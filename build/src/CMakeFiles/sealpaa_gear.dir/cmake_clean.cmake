file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_gear.dir/sealpaa/gear/correction.cpp.o"
  "CMakeFiles/sealpaa_gear.dir/sealpaa/gear/correction.cpp.o.d"
  "CMakeFiles/sealpaa_gear.dir/sealpaa/gear/gear.cpp.o"
  "CMakeFiles/sealpaa_gear.dir/sealpaa/gear/gear.cpp.o.d"
  "libsealpaa_gear.a"
  "libsealpaa_gear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_gear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sealpaa_multiplier.
# This may be replaced when dependencies are built.

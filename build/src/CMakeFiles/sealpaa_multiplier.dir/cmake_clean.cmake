file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_multiplier.dir/sealpaa/multiplier/array_multiplier.cpp.o"
  "CMakeFiles/sealpaa_multiplier.dir/sealpaa/multiplier/array_multiplier.cpp.o.d"
  "libsealpaa_multiplier.a"
  "libsealpaa_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsealpaa_multiplier.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_apps.dir/sealpaa/apps/fir.cpp.o"
  "CMakeFiles/sealpaa_apps.dir/sealpaa/apps/fir.cpp.o.d"
  "CMakeFiles/sealpaa_apps.dir/sealpaa/apps/image.cpp.o"
  "CMakeFiles/sealpaa_apps.dir/sealpaa/apps/image.cpp.o.d"
  "CMakeFiles/sealpaa_apps.dir/sealpaa/apps/sobel.cpp.o"
  "CMakeFiles/sealpaa_apps.dir/sealpaa/apps/sobel.cpp.o.d"
  "libsealpaa_apps.a"
  "libsealpaa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sealpaa_apps.
# This may be replaced when dependencies are built.

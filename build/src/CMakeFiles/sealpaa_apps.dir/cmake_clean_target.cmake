file(REMOVE_RECURSE
  "libsealpaa_apps.a"
)

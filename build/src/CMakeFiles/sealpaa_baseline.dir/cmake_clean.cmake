file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_baseline.dir/sealpaa/baseline/inclusion_exclusion.cpp.o"
  "CMakeFiles/sealpaa_baseline.dir/sealpaa/baseline/inclusion_exclusion.cpp.o.d"
  "CMakeFiles/sealpaa_baseline.dir/sealpaa/baseline/weighted_exhaustive.cpp.o"
  "CMakeFiles/sealpaa_baseline.dir/sealpaa/baseline/weighted_exhaustive.cpp.o.d"
  "libsealpaa_baseline.a"
  "libsealpaa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsealpaa_baseline.a"
)

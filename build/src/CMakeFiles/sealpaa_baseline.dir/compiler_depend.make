# Empty compiler generated dependencies file for sealpaa_baseline.
# This may be replaced when dependencies are built.

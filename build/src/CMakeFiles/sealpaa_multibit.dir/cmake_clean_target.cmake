file(REMOVE_RECURSE
  "libsealpaa_multibit.a"
)

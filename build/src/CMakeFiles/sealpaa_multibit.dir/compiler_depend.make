# Empty compiler generated dependencies file for sealpaa_multibit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/chain.cpp.o"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/chain.cpp.o.d"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/csa.cpp.o"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/csa.cpp.o.d"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/input_profile.cpp.o"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/input_profile.cpp.o.d"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/joint_profile.cpp.o"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/joint_profile.cpp.o.d"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/loa.cpp.o"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/loa.cpp.o.d"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/profile_estimation.cpp.o"
  "CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/profile_estimation.cpp.o.d"
  "libsealpaa_multibit.a"
  "libsealpaa_multibit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sealpaa/multibit/chain.cpp" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/chain.cpp.o" "gcc" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/chain.cpp.o.d"
  "/root/repo/src/sealpaa/multibit/csa.cpp" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/csa.cpp.o" "gcc" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/csa.cpp.o.d"
  "/root/repo/src/sealpaa/multibit/input_profile.cpp" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/input_profile.cpp.o" "gcc" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/input_profile.cpp.o.d"
  "/root/repo/src/sealpaa/multibit/joint_profile.cpp" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/joint_profile.cpp.o" "gcc" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/joint_profile.cpp.o.d"
  "/root/repo/src/sealpaa/multibit/loa.cpp" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/loa.cpp.o" "gcc" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/loa.cpp.o.d"
  "/root/repo/src/sealpaa/multibit/profile_estimation.cpp" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/profile_estimation.cpp.o" "gcc" "src/CMakeFiles/sealpaa_multibit.dir/sealpaa/multibit/profile_estimation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sealpaa_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sealpaa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sealpaa/prob/probability.cpp" "src/CMakeFiles/sealpaa_prob.dir/sealpaa/prob/probability.cpp.o" "gcc" "src/CMakeFiles/sealpaa_prob.dir/sealpaa/prob/probability.cpp.o.d"
  "/root/repo/src/sealpaa/prob/rng.cpp" "src/CMakeFiles/sealpaa_prob.dir/sealpaa/prob/rng.cpp.o" "gcc" "src/CMakeFiles/sealpaa_prob.dir/sealpaa/prob/rng.cpp.o.d"
  "/root/repo/src/sealpaa/prob/stats.cpp" "src/CMakeFiles/sealpaa_prob.dir/sealpaa/prob/stats.cpp.o" "gcc" "src/CMakeFiles/sealpaa_prob.dir/sealpaa/prob/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sealpaa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

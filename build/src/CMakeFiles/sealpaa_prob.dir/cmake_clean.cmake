file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_prob.dir/sealpaa/prob/probability.cpp.o"
  "CMakeFiles/sealpaa_prob.dir/sealpaa/prob/probability.cpp.o.d"
  "CMakeFiles/sealpaa_prob.dir/sealpaa/prob/rng.cpp.o"
  "CMakeFiles/sealpaa_prob.dir/sealpaa/prob/rng.cpp.o.d"
  "CMakeFiles/sealpaa_prob.dir/sealpaa/prob/stats.cpp.o"
  "CMakeFiles/sealpaa_prob.dir/sealpaa/prob/stats.cpp.o.d"
  "libsealpaa_prob.a"
  "libsealpaa_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsealpaa_prob.a"
)

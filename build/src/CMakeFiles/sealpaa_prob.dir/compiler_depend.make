# Empty compiler generated dependencies file for sealpaa_prob.
# This may be replaced when dependencies are built.

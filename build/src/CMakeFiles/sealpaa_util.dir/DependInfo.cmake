
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sealpaa/util/cli.cpp" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/cli.cpp.o" "gcc" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/cli.cpp.o.d"
  "/root/repo/src/sealpaa/util/counters.cpp" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/counters.cpp.o" "gcc" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/counters.cpp.o.d"
  "/root/repo/src/sealpaa/util/csv.cpp" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/csv.cpp.o" "gcc" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/csv.cpp.o.d"
  "/root/repo/src/sealpaa/util/format.cpp" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/format.cpp.o" "gcc" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/format.cpp.o.d"
  "/root/repo/src/sealpaa/util/table.cpp" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/table.cpp.o" "gcc" "src/CMakeFiles/sealpaa_util.dir/sealpaa/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/cli.cpp.o"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/cli.cpp.o.d"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/counters.cpp.o"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/counters.cpp.o.d"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/csv.cpp.o"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/csv.cpp.o.d"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/format.cpp.o"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/format.cpp.o.d"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/table.cpp.o"
  "CMakeFiles/sealpaa_util.dir/sealpaa/util/table.cpp.o.d"
  "libsealpaa_util.a"
  "libsealpaa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

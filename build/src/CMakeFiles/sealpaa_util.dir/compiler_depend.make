# Empty compiler generated dependencies file for sealpaa_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsealpaa_util.a"
)

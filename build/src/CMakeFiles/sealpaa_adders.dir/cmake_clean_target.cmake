file(REMOVE_RECURSE
  "libsealpaa_adders.a"
)

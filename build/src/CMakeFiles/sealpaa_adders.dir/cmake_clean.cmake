file(REMOVE_RECURSE
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/builtin.cpp.o"
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/builtin.cpp.o.d"
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/cell.cpp.o"
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/cell.cpp.o.d"
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/characteristics.cpp.o"
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/characteristics.cpp.o.d"
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/expr.cpp.o"
  "CMakeFiles/sealpaa_adders.dir/sealpaa/adders/expr.cpp.o.d"
  "libsealpaa_adders.a"
  "libsealpaa_adders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealpaa_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sealpaa_adders.
# This may be replaced when dependencies are built.

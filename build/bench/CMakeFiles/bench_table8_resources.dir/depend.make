# Empty dependencies file for bench_table8_resources.
# This may be replaced when dependencies are built.

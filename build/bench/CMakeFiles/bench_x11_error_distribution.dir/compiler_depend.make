# Empty compiler generated dependencies file for bench_x11_error_distribution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_x7_gear_correction.dir/bench_x7_gear_correction.cpp.o"
  "CMakeFiles/bench_x7_gear_correction.dir/bench_x7_gear_correction.cpp.o.d"
  "bench_x7_gear_correction"
  "bench_x7_gear_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x7_gear_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

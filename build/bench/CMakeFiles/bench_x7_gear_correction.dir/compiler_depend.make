# Empty compiler generated dependencies file for bench_x7_gear_correction.
# This may be replaced when dependencies are built.

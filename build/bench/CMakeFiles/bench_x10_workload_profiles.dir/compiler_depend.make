# Empty compiler generated dependencies file for bench_x10_workload_profiles.
# This may be replaced when dependencies are built.

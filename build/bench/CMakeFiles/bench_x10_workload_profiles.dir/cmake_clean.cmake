file(REMOVE_RECURSE
  "CMakeFiles/bench_x10_workload_profiles.dir/bench_x10_workload_profiles.cpp.o"
  "CMakeFiles/bench_x10_workload_profiles.dir/bench_x10_workload_profiles.cpp.o.d"
  "bench_x10_workload_profiles"
  "bench_x10_workload_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x10_workload_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_gear_analysis.dir/bench_x3_gear_analysis.cpp.o"
  "CMakeFiles/bench_x3_gear_analysis.dir/bench_x3_gear_analysis.cpp.o.d"
  "bench_x3_gear_analysis"
  "bench_x3_gear_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_gear_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

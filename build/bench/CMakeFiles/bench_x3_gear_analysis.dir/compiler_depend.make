# Empty compiler generated dependencies file for bench_x3_gear_analysis.
# This may be replaced when dependencies are built.

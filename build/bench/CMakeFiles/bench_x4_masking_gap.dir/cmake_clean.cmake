file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_masking_gap.dir/bench_x4_masking_gap.cpp.o"
  "CMakeFiles/bench_x4_masking_gap.dir/bench_x4_masking_gap.cpp.o.d"
  "bench_x4_masking_gap"
  "bench_x4_masking_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_masking_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

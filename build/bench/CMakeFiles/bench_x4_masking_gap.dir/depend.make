# Empty dependencies file for bench_x4_masking_gap.
# This may be replaced when dependencies are built.

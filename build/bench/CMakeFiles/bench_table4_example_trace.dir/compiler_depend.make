# Empty compiler generated dependencies file for bench_table4_example_trace.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_perf_analyzer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_analyzer.dir/bench_perf_analyzer.cpp.o"
  "CMakeFiles/bench_perf_analyzer.dir/bench_perf_analyzer.cpp.o.d"
  "bench_perf_analyzer"
  "bench_perf_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

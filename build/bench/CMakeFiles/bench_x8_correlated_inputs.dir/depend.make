# Empty dependencies file for bench_x8_correlated_inputs.
# This may be replaced when dependencies are built.

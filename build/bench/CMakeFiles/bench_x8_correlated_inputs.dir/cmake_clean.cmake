file(REMOVE_RECURSE
  "CMakeFiles/bench_x8_correlated_inputs.dir/bench_x8_correlated_inputs.cpp.o"
  "CMakeFiles/bench_x8_correlated_inputs.dir/bench_x8_correlated_inputs.cpp.o.d"
  "bench_x8_correlated_inputs"
  "bench_x8_correlated_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x8_correlated_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

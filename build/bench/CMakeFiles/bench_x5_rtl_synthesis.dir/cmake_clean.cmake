file(REMOVE_RECURSE
  "CMakeFiles/bench_x5_rtl_synthesis.dir/bench_x5_rtl_synthesis.cpp.o"
  "CMakeFiles/bench_x5_rtl_synthesis.dir/bench_x5_rtl_synthesis.cpp.o.d"
  "bench_x5_rtl_synthesis"
  "bench_x5_rtl_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x5_rtl_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

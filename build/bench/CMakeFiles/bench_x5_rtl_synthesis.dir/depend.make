# Empty dependencies file for bench_x5_rtl_synthesis.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_figure1_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_scaling.dir/bench_figure1_scaling.cpp.o"
  "CMakeFiles/bench_figure1_scaling.dir/bench_figure1_scaling.cpp.o.d"
  "bench_figure1_scaling"
  "bench_figure1_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table6_accuracy_match.
# This may be replaced when dependencies are built.

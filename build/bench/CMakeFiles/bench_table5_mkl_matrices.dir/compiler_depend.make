# Empty compiler generated dependencies file for bench_table5_mkl_matrices.
# This may be replaced when dependencies are built.

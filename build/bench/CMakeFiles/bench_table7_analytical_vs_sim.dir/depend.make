# Empty dependencies file for bench_table7_analytical_vs_sim.
# This may be replaced when dependencies are built.

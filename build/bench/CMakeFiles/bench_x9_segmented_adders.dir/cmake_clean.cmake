file(REMOVE_RECURSE
  "CMakeFiles/bench_x9_segmented_adders.dir/bench_x9_segmented_adders.cpp.o"
  "CMakeFiles/bench_x9_segmented_adders.dir/bench_x9_segmented_adders.cpp.o.d"
  "bench_x9_segmented_adders"
  "bench_x9_segmented_adders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x9_segmented_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

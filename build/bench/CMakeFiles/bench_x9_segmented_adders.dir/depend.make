# Empty dependencies file for bench_x9_segmented_adders.
# This may be replaced when dependencies are built.

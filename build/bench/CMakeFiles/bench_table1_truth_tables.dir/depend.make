# Empty dependencies file for bench_table1_truth_tables.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_truth_tables.dir/bench_table1_truth_tables.cpp.o"
  "CMakeFiles/bench_table1_truth_tables.dir/bench_table1_truth_tables.cpp.o.d"
  "bench_table1_truth_tables"
  "bench_table1_truth_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_truth_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

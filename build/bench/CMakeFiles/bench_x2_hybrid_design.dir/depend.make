# Empty dependencies file for bench_x2_hybrid_design.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_hybrid_design.dir/bench_x2_hybrid_design.cpp.o"
  "CMakeFiles/bench_x2_hybrid_design.dir/bench_x2_hybrid_design.cpp.o.d"
  "bench_x2_hybrid_design"
  "bench_x2_hybrid_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_hybrid_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_sum_bits.dir/bench_x1_sum_bits.cpp.o"
  "CMakeFiles/bench_x1_sum_bits.dir/bench_x1_sum_bits.cpp.o.d"
  "bench_x1_sum_bits"
  "bench_x1_sum_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_sum_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_x1_sum_bits.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_figure5_sweeps.
# This may be replaced when dependencies are built.

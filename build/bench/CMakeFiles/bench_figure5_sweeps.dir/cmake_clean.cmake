file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_sweeps.dir/bench_figure5_sweeps.cpp.o"
  "CMakeFiles/bench_figure5_sweeps.dir/bench_figure5_sweeps.cpp.o.d"
  "bench_figure5_sweeps"
  "bench_figure5_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

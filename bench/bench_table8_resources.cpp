// Reproduces Table 8: resource utilisation of the proposed method, and
// contrasts the paper's per-iteration accounting with this
// implementation's measured (instrumented) counts.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/costs.hpp"
#include "sealpaa/baseline/inclusion_exclusion.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  std::cout << util::banner("Table 8: Resource utilisation of the proposed method");
  {
    const auto equal = analysis::paper_model_equal_probabilities();
    const auto varying = analysis::paper_model_varying_probabilities(32);
    util::TextTable table({"", "Equal operand probabilities",
                           "Per-bit probabilities (N = 32)"});
    table.add_row({"Multipliers", std::to_string(equal.multipliers),
                   std::to_string(varying.multipliers)});
    table.add_row({"Adders", std::to_string(equal.adders),
                   std::to_string(varying.adders)});
    table.add_row({"Memory Units", std::to_string(equal.memory_units),
                   std::to_string(varying.memory_units)});
    std::cout << table;
    std::cout << "(Paper accounting: per-iteration costs; iterations = number "
                 "of bits.)\n";
  }

  std::cout << "\nMeasured instrumented counts of this implementation "
               "(homogeneous LPAA1 chains):\n";
  util::TextTable measured({"Bits", "Multiplications", "Additions",
                            "Peak live scalars", "IE multiplications "
                            "(Table 3 closed form)"});
  for (std::size_t c = 1; c <= 4; ++c) measured.set_align(c, util::Align::Right);
  for (std::size_t bits : {4u, 8u, 16u, 32u}) {
    const auto counts = analysis::measure_recursive(
        multibit::AdderChain::homogeneous(adders::lpaa(1), bits),
        multibit::InputProfile::uniform(bits, 0.3));
    const auto ie =
        baseline::inclusion_exclusion_cost(static_cast<int>(bits));
    measured.add_row({std::to_string(bits),
                      util::with_commas(counts.multiplications),
                      util::with_commas(counts.additions),
                      util::with_commas(counts.memory_units),
                      util::engineering(ie.multiplications)});
  }
  std::cout << measured;
  std::cout << "\nThe proposed method is linear in N with O(1) live state; "
               "the traditional method grows as k*2^(k-1).\n";
  return 0;
}

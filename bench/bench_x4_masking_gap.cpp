// Extension X4 (DESIGN.md decision 2): stage-wise success (the paper's
// error event) vs value-level correctness (numeric output equals the
// exact sum).  A carry-only cell error can be masked downstream, so
//   P(value correct) >= P(all stages successful).
// This bench quantifies the gap for every LPAA with the exact joint DP
// and reports the exact error moments (mean / RMS error distance).
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/joint.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
  const double p = args.get_double("p", 0.5);

  std::cout << util::banner(
      "X4: stage-success vs value-level error, " + std::to_string(bits) +
      "-bit chains, p = " + util::fixed(p, 1));

  util::TextTable table({"Cell", "P(E) stage (paper)", "P(E) value-level",
                         "masking gap", "mean error", "RMS error"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::Right);

  const auto profile = multibit::InputProfile::uniform(bits, p);
  for (const adders::AdderCell& cell : adders::builtin_lpaas()) {
    const auto chain = multibit::AdderChain::homogeneous(cell, bits);
    const auto joint = analysis::JointCarryAnalyzer::analyze(chain, profile);
    const auto moments = analysis::JointCarryAnalyzer::moments(chain, profile);
    const double p_stage = 1.0 - joint.p_stage_success;
    const double p_value = 1.0 - joint.p_value_correct;
    table.add_row({cell.name(), util::prob6(p_stage), util::prob6(p_value),
                   util::prob6(p_stage - p_value),
                   util::fixed(moments.mean, 3),
                   util::fixed(moments.rms(), 3)});
  }
  std::cout << table;
  std::cout
      << "\nAll homogeneous chains show a zero gap: LPAA1-5/7 because every "
         "error row corrupts the sum bit, LPAA6 because its exact-XOR sum "
         "imprints any carry divergence on the very next bit.  This "
         "justifies the paper's use of the stage-success event for "
         "homogeneous LPAA chains.\n";

  // Hybrid chains CAN mask: an LPAA6 carry-only error entering an LPAA2
  // stage at (a,b) = (1,1) reproduces the exact sum bit and re-converges
  // the carry.
  std::cout << "\nHybrid counter-example (alternating LPAA6|LPAA2):\n";
  util::TextTable hybrid_table({"Chain", "P(E) stage", "P(E) value-level",
                                "masking gap"});
  for (std::size_t c = 1; c <= 3; ++c) {
    hybrid_table.set_align(c, util::Align::Right);
  }
  std::vector<adders::AdderCell> stages;
  for (std::size_t i = 0; i < bits; ++i) {
    stages.push_back(i % 2 == 0 ? adders::lpaa(6) : adders::lpaa(2));
  }
  const multibit::AdderChain hybrid(stages);
  const auto joint = analysis::JointCarryAnalyzer::analyze(hybrid, profile);
  hybrid_table.add_row({hybrid.describe(),
                        util::prob6(1.0 - joint.p_stage_success),
                        util::prob6(1.0 - joint.p_value_correct),
                        util::prob6(joint.p_value_correct -
                                    joint.p_stage_success)});
  std::cout << hybrid_table;
  std::cout << "For hybrid designs the paper's stage-success P(E) is a "
               "(slightly) conservative upper bound on the true value-level "
               "error probability; the joint DP computes both exactly.\n";
  return 0;
}

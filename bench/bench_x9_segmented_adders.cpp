// Extension X9: head-to-head of the three approximate-adder *families*
// the paper touches — cell-level LPAA chains (§2.1), block-level LLAA
// (GeAr, §2.2) and the segmented LOA — at comparable approximation
// degrees, all analyzed exactly (no simulation anywhere in this table).
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/joint.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/loa.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;
  const std::size_t bits = 16;
  const auto profile = multibit::InputProfile::uniform_with_cin(bits, 0.5, 0.0);

  std::cout << util::banner(
      "X9: LPAA chains vs GeAr vs LOA at 16 bits, p = 0.5 (all exact "
      "analysis)");

  util::TextTable table({"Design", "Family", "P(E) value-level",
                         "Critical path (bits/levels)"});
  table.set_align(2, util::Align::Right);
  table.set_align(3, util::Align::Right);

  // Cell-level: LPAA6 on the k LSBs, exact above (k = 4, 8).
  for (int k : {4, 8}) {
    std::vector<adders::AdderCell> stages;
    for (int i = 0; i < k; ++i) stages.push_back(adders::lpaa(6));
    for (int i = k; i < static_cast<int>(bits); ++i) {
      stages.push_back(adders::accurate());
    }
    const multibit::AdderChain chain(stages);
    const auto joint = analysis::JointCarryAnalyzer::analyze(chain, profile);
    table.add_row({"LPAA6 x" + std::to_string(k) + " | AccuFA above",
                   "cell-level LPAA",
                   util::prob6(1.0 - joint.p_value_correct),
                   std::to_string(bits) + " (full ripple)"});
  }

  // Block-level: GeAr configurations with matching carry chains.
  for (const gear::GearConfig& config :
       {gear::GearConfig(16, 2, 2), gear::GearConfig(16, 4, 4),
        gear::GearConfig::aca(16, 6), gear::GearConfig::etaii(16, 8)}) {
    const auto analysis = gear::GearAnalyzer::analyze(config, profile);
    table.add_row({config.describe(), "block-level LLAA",
                   util::prob6(analysis.p_error_exact_dp),
                   std::to_string(config.critical_path_bits())});
  }

  // Segmented: LOA with l approximate low bits.
  for (std::size_t l : {4u, 8u, 12u}) {
    const auto analysis =
        multibit::analyze_loa(multibit::LoaAdder(bits, l), profile);
    table.add_row({"LOA(16, l=" + std::to_string(l) + ")", "segmented",
                   util::prob6(analysis.p_error),
                   std::to_string(bits - l) + " + OR"});
  }

  std::cout << table;
  std::cout << "\nAll three families reduce to exact O(N) dynamic programs "
               "in this library: M/K/L recursion for cell-level, the "
               "joint-carry window DP for GeAr/ACA/ETAII, and the "
               "segmented DP for LOA.  GeAr buys far lower P(E) per unit "
               "of critical-path reduction; LOA buys area/power instead "
               "(its OR part has no carry logic at all).\n";
  return 0;
}

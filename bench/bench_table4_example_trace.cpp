// Reproduces Table 4: the worked example — a 4-bit multistage LPAA 1
// with per-stage input probabilities, showing the recursive carry-state
// evolution and the final probability of success.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  const multibit::InputProfile profile({0.9, 0.5, 0.4, 0.8},
                                       {0.8, 0.7, 0.6, 0.9}, 0.5);
  analysis::AnalyzeOptions options;
  options.record_trace = true;
  const auto result =
      analysis::RecursiveAnalyzer::analyze(adders::lpaa(1), profile, options);

  std::cout << util::banner(
      "Table 4: Error analysis of a 4-bit multistage LPAA 1");
  util::TextTable table({"Stage (i)", "0", "1", "2", "3"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, util::Align::Right);

  const auto row = [&](const std::string& label, auto getter,
                       bool last_is_nr) {
    std::vector<std::string> cells = {label};
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      if (last_is_nr && i + 1 == result.trace.size()) {
        cells.push_back("NR");
      } else {
        cells.push_back(util::sig(getter(result.trace[i]), 6));
      }
    }
    table.add_row(std::move(cells));
  };

  row("P(A_i)", [](const analysis::StageTrace& t) { return t.p_a; }, false);
  row("P(B_i)", [](const analysis::StageTrace& t) { return t.p_b; }, false);
  row("P(!C_curr & Succ)",
      [](const analysis::StageTrace& t) { return t.carry_in.c0; }, false);
  row("P(C_curr & Succ)",
      [](const analysis::StageTrace& t) { return t.carry_in.c1; }, false);
  row("P(!C_next & Succ)",
      [](const analysis::StageTrace& t) { return t.carry_out.c0; }, true);
  row("P(C_next & Succ)",
      [](const analysis::StageTrace& t) { return t.carry_out.c1; }, true);
  table.add_row({"P(Succ)", "NR", "NR", "NR", util::sig(result.p_success, 6)});
  std::cout << table;

  std::cout << "\nPaper reference: P(Succ) = 0.738476   computed = "
            << util::sig(result.p_success, 9)
            << "   P(Error) = " << util::sig(result.p_error, 9) << "\n";
  return 0;
}

// Block-adder analytics vs enumeration: the tentpole claim of the
// block layer is that error rate and MED/MSE/WCE of *any* block-based
// adder — homogeneous ACA/ETAII/GeAr tilings and arbitrary
// heterogeneous (R_i, P_i) chains alike — come out of the
// O(N * states * support) conditioning DP exactly, with zero
// simulation.  This bench checks that claim and measures what it buys:
//
//   * width 10 — analytic ER/MED/MSE/WCE against the weighted
//     per-assignment enumeration (2^21 assignments per config), gated
//     at 1e-9 relative divergence across four topologies (GeAr, ACA,
//     ETAII and a heterogeneous chain); the run exits non-zero past
//     the gate;
//   * width 12, p = 0.5 — analytic error metrics against the 64-lane
//     bit-sliced block kernel's exhaustive sweep (2^24 pairs), the
//     oracle that scales past enumeration widths;
//   * width 32 — far beyond any enumeration: analytic metrics with
//     work_items == 32 and zero samples.
//
// The reported speedup is the analytic DP vs the weighted enumeration
// at width 10 (wall-clock only; the correctness gates are exact).
//
// Hand-rolled driver (not google-benchmark) so the run can emit the
// versioned sealpaa.run-report JSON: results land in
// BENCH_block_adders.json next to the binary (--no-json suppresses,
// --json-report=FILE redirects).
//
// Flags: --reps=5  --p=0.42  --quick
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

double relative_gap(double got, double want) {
  return std::abs(got - want) / std::max(1.0, std::abs(want));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"reps", "p", "quick", "threads", "json-report",
                       "no-json"});
    const bool quick = args.get_bool("quick", false);
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 2 : 5));
    const double p = args.get_double("p", 0.42);

    std::cout << util::banner(
        "block-adder analytics vs enumeration (widths 10/12/32)");
    std::cout << "p: " << util::fixed(p, 2) << "  reps: " << reps << "\n";

    obs::RunReport report("bench_block_adders");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");
    obs::Json& section = report.section("block_adders");
    section.set("p", obs::Json(p));
    section.set("reps",
                obs::Json(static_cast<std::uint64_t>(
                    static_cast<std::size_t>(reps))));

    bool ok = true;

    // ---------------------------------------------------------------
    // Width 10: exact gate against the weighted enumeration, across
    // the three named families plus a heterogeneous chain.
    // ---------------------------------------------------------------
    const int w10 = 10;
    const auto profile10 =
        multibit::InputProfile::uniform(static_cast<std::size_t>(w10), p);
    const std::vector<std::string> specs = {
        "gear:3:3", "aca:4", "etaii:3", "3:0,2:2,2:3,2:1,1:4"};

    bool exactness_ok = true;
    double analytic_seconds = 0.0;
    double enumeration_seconds = 0.0;
    obs::Json configs = obs::Json::array();
    for (const std::string& text : specs) {
      const auto spec = multibit::BlockChainSpec::parse(w10, text);

      analysis::BlockAnalysis analytic;
      double best_analytic = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        util::WallTimer timer;
        analytic = analysis::BlockErrorModel::analyze(spec, profile10);
        const double seconds = timer.elapsed_seconds();
        if (rep == 0 || seconds < best_analytic) best_analytic = seconds;
      }
      util::WallTimer oracle_timer;
      const analysis::ErrorPmf oracle =
          analysis::BlockErrorModel::exhaustive_pmf(spec, profile10);
      const double oracle_seconds = oracle_timer.elapsed_seconds();
      analytic_seconds += best_analytic;
      enumeration_seconds += oracle_seconds;

      const double er_gap =
          relative_gap(analytic.pmf.error_rate(), oracle.error_rate());
      const double med_gap = relative_gap(analytic.pmf.mean_error_distance(),
                                          oracle.mean_error_distance());
      const double mse_gap = relative_gap(analytic.pmf.mean_squared_error(),
                                          oracle.mean_squared_error());
      const bool exact =
          er_gap <= 1e-9 && med_gap <= 1e-9 && mse_gap <= 1e-9 &&
          analytic.pmf.worst_case_error() == oracle.worst_case_error();
      exactness_ok = exactness_ok && exact;

      std::cout << "  " << spec.describe() << "\n    analytic "
                << util::duration(best_analytic) << "  enumeration "
                << util::duration(oracle_seconds) << "  ER gap " << er_gap
                << "  MED gap " << med_gap << "  MSE gap " << mse_gap
                << (exact ? "  ok" : "  FAIL") << "\n";

      obs::Json entry = obs::Json::object();
      entry.set("spec", obs::Json(spec.to_string()));
      entry.set("analytic_seconds", obs::Json(best_analytic));
      entry.set("enumeration_seconds", obs::Json(oracle_seconds));
      entry.set("p_error", obs::Json(analytic.p_error));
      entry.set("med", obs::Json(analytic.pmf.mean_error_distance()));
      entry.set("mse", obs::Json(analytic.pmf.mean_squared_error()));
      entry.set("wce", obs::Json(analytic.pmf.worst_case_error()));
      entry.set("er_relative_gap", obs::Json(er_gap));
      entry.set("med_relative_gap", obs::Json(med_gap));
      entry.set("mse_relative_gap", obs::Json(mse_gap));
      entry.set("exact_within_1e9", obs::Json(exact));
      configs.push_back(std::move(entry));
    }
    section.set("width10_configs", std::move(configs));
    ok = ok && exactness_ok;
    const double speedup = analytic_seconds > 0.0
                               ? enumeration_seconds / analytic_seconds
                               : 0.0;

    // ---------------------------------------------------------------
    // Width 12, p = 0.5: analytic metrics vs the bit-sliced block
    // kernel's exhaustive sweep (the simulation oracle that replaces
    // per-assignment enumeration at scale).
    // ---------------------------------------------------------------
    const int w12 = 12;
    const auto spec12 = multibit::BlockChainSpec::parse(w12, "gear:4:4");
    // The bit-sliced sweep enumerates cin = 0 only, so the analytic
    // side must condition on the same event.
    const auto profile12 = multibit::InputProfile::uniform_with_cin(
        static_cast<std::size_t>(w12), 0.5, 0.0);
    const analysis::BlockAnalysis analytic12 =
        analysis::BlockErrorModel::analyze(spec12, profile12);
    util::WallTimer sliced_timer;
    const sim::ErrorMetrics sliced = sim::block_exhaustive(spec12);
    const double sliced_seconds = sliced_timer.elapsed_seconds();
    const bool sliced_matches =
        relative_gap(analytic12.pmf.error_rate(), sliced.error_rate()) <=
            1e-9 &&
        relative_gap(analytic12.pmf.mean_error_distance(),
                     sliced.mean_abs_error()) <= 1e-9 &&
        relative_gap(analytic12.pmf.mean_squared_error(),
                     sliced.mean_squared_error()) <= 1e-9 &&
        analytic12.pmf.worst_case_error() == sliced.worst_case_error();
    ok = ok && sliced_matches;
    std::cout << "  " << spec12.describe() << "  bit-sliced sweep "
              << util::duration(sliced_seconds) << " ("
              << util::with_commas(sliced.cases()) << " pairs)"
              << (sliced_matches ? "  ok" : "  FAIL") << "\n";

    obs::Json w12_json = obs::Json::object();
    w12_json.set("spec", obs::Json(spec12.to_string()));
    w12_json.set("bitsliced_seconds", obs::Json(sliced_seconds));
    w12_json.set("cases", obs::Json(sliced.cases()));
    w12_json.set("error_rate", obs::Json(analytic12.pmf.error_rate()));
    section.set("width12", std::move(w12_json));

    // ---------------------------------------------------------------
    // Width 32: no oracle exists; the analytic DP still answers in
    // linear work with zero samples.
    // ---------------------------------------------------------------
    const int w32 = 32;
    const auto spec32 = multibit::BlockChainSpec::parse(w32, "gear:8:8");
    const auto profile32 =
        multibit::InputProfile::uniform(static_cast<std::size_t>(w32), p);
    double seconds32 = 0.0;
    engine::EvaluateOptions options32;
    options32.blocks = spec32;
    engine::Evaluation eval32;
    for (int rep = 0; rep < reps; ++rep) {
      util::WallTimer timer;
      eval32 = engine::evaluate(
          multibit::AdderChain::homogeneous(adders::accurate(),
                                            static_cast<std::size_t>(w32)),
          profile32, engine::Method::kBlockAnalytic, options32);
      const double seconds = timer.elapsed_seconds();
      if (rep == 0 || seconds < seconds32) seconds32 = seconds;
    }
    std::cout << "  " << spec32.describe() << "  analytic "
              << util::duration(seconds32) << " (0 samples)  MED "
              << util::fixed(eval32.distribution->mean_error_distance, 6)
              << "\n";
    obs::Json w32_json = obs::Json::object();
    w32_json.set("spec", obs::Json(spec32.to_string()));
    w32_json.set("analytic_seconds", obs::Json(seconds32));
    w32_json.set("analytic_work_items", obs::Json(eval32.work_items));
    w32_json.set("zero_simulation_samples", obs::Json(true));
    w32_json.set("evaluation", obs::to_json(eval32));
    section.set("width32", std::move(w32_json));
    total.stop();

    // Gated metrics hoisted to the section's top level, where
    // scripts/check_bench_regression.py reads them: the correctness
    // flags must stay true, the speedup at >= 50% of the reference.
    section.set("exact_within_1e9", obs::Json(exactness_ok));
    section.set("bitsliced_matches_analytic", obs::Json(sliced_matches));
    section.set("zero_simulation_samples", obs::Json(true));
    section.set("analytic_vs_enumeration_speedup", obs::Json(speedup));

    std::cout << "speedup (w10 analytic vs enumeration) = "
              << util::fixed(speedup, 2) << "x\nresult: "
              << (ok ? "ok" : "DIVERGED") << "\n";
    if (!ok) {
      std::cerr << "FAIL: block analytics diverged from the enumeration "
                   "oracles\n";
    }

    if (const auto path = obs::report_path(args, "BENCH_block_adders.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Measures what the SoA batch engine buys over per-chain scalar scoring
// on the DSE-shaped workload it exists for: score a batch of candidate
// chains against one profile and palette.
//
// Three contenders per (width, batch) configuration:
//   scalar      per-chain engine::ChainEvaluator::final_success with the
//               prefix cache disabled — the pure Equation 10-12 recursion
//               cost a chain paid before the batch engine;
//   soa strict  engine::ChainBatchEvaluator driving all lanes through the
//               scalar-ordered advance per stage (bit-identical mode);
//   soa fast    the same lanes through the precomputed-coefficient
//               AVX2/AVX-512/portable kernels (~1e-12 of strict).
//
// Correctness is gated, speed mostly reported: strict results must be
// bit-identical to RecursiveAnalyzer::analyze, every fast kernel level
// (forced via util::set_forced_kernel) must agree with strict to 1e-12
// relative, and the headline width-32 batch-of-16 fast speedup must
// reach 4x — the bench exits non-zero otherwise.  Per-level "ratio_*"
// numbers are informational (a forced level above the CPU's capability
// runs at the capability, so they converge on modest machines).
//
// Hand-rolled driver (not google-benchmark) so the run can emit the
// versioned sealpaa.run-report JSON: results land in
// BENCH_many_chain.json next to the binary (--no-json suppresses,
// --json-report=FILE redirects).
//
// Flags: --reps=3  --p=0.35  --quick
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

struct Config {
  std::size_t width = 0;
  std::size_t batch = 0;
};

struct ChainSet {
  std::vector<std::vector<std::size_t>> chains;       // palette indices
  std::vector<std::vector<std::uint8_t>> per_stage;   // [stage][lane]
};

/// Deterministic random chains (fixed seed per configuration) so the
/// committed reference JSON and every CI run score the same workload.
ChainSet build_chains(std::size_t width, std::size_t batch,
                      std::size_t palette) {
  std::mt19937 rng(static_cast<std::uint32_t>(0x5ea1'0000u + width * 131 +
                                              batch));
  std::uniform_int_distribution<std::size_t> pick(0, palette - 1);
  ChainSet set;
  set.chains.assign(batch, std::vector<std::size_t>(width));
  set.per_stage.assign(width, std::vector<std::uint8_t>(batch));
  for (std::size_t l = 0; l < batch; ++l) {
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t c = pick(rng);
      set.chains[l][i] = c;
      set.per_stage[i][l] = static_cast<std::uint8_t>(c);
    }
  }
  return set;
}

/// Per-chain scalar baseline: ChainEvaluator::final_success with caching
/// off, so every chain pays width-1 advance_stage calls plus Equation 12
/// from bit 0 — exactly the recursion cost, no prefix amortization.
double time_scalar(engine::ChainEvaluator& evaluator, const ChainSet& set,
                   int iters, double& sink) {
  const util::WallTimer timer;
  for (int it = 0; it < iters; ++it) {
    for (const std::vector<std::size_t>& chain : set.chains) {
      const std::span<const std::size_t> prefix(chain.data(),
                                                chain.size() - 1);
      sink += evaluator.final_success(prefix, chain.back());
    }
  }
  return timer.elapsed_seconds();
}

/// SoA contender: all lanes advance together stage-major, then one
/// Equation 12 pass — the same call sequence ChainEvaluator's batch
/// paths and the dispatcher use.
double time_soa(engine::ChainBatchEvaluator& batch, const ChainSet& set,
                int iters, engine::BatchMode mode, double& sink) {
  const std::size_t n = set.per_stage.size();
  const std::size_t lanes_n = set.chains.size();
  engine::ChainBatchEvaluator::Lanes lanes;
  std::vector<double> out(lanes_n);
  const util::WallTimer timer;
  for (int it = 0; it < iters; ++it) {
    batch.init_lanes(lanes, lanes_n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      batch.advance(i, set.per_stage[i], lanes, mode);
    }
    batch.final_success(lanes, set.per_stage[n - 1], out, mode);
    sink += out[0];
  }
  return timer.elapsed_seconds();
}

double min_of_reps(int reps, const std::function<double()>& run) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double seconds = run();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"reps", "p", "quick", "threads", "json-report",
                       "no-json"});
    const bool quick = args.get_bool("quick", false);
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 1 : 3));
    const double p = args.get_double("p", 0.35);
    const int iter_scale = quick ? 1 : 8;

    const std::span<const adders::AdderCell> palette =
        adders::builtin_lpaas();
    const std::vector<Config> configs = {
        // 63 is the repo-wide width ceiling (bit-packed evaluator limit).
        {16, 8}, {16, 16}, {32, 8}, {32, 16}, {63, 8}, {63, 16}};

    std::cout << util::banner(
        "many-chain SoA kernel: per-chain scalar recursion vs batched "
        "lanes");
    std::cout << "candidates: " << palette.size() << "  p: "
              << util::fixed(p, 2) << "  reps: " << reps << "  kernel: "
              << util::kernel_level_name(engine::active_batch_kernel())
              << "\n";

    obs::RunReport report("bench_many_chain");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");
    obs::Json& section = report.section("many_chain");

    bool identical = true;
    bool fast_within_tolerance = true;
    double max_rel_error = 0.0;
    double speedup_w32_batch16 = 0.0;
    constexpr double kTolerance = 1e-12;

    for (const Config& config : configs) {
      const auto profile = multibit::InputProfile::uniform(config.width, p);
      const ChainSet set = build_chains(config.width, config.batch,
                                        palette.size());
      const std::vector<adders::AdderCell> cells(palette.begin(),
                                                 palette.end());

      // Correctness before speed: strict lanes must reproduce the batch
      // analyzer bit-for-bit, fast lanes to 1e-12 relative at every
      // dispatch level the override can reach.
      engine::ChainBatchEvaluator batch(profile, cells);
      std::vector<std::span<const std::size_t>> chain_spans;
      chain_spans.reserve(set.chains.size());
      for (const std::vector<std::size_t>& chain : set.chains) {
        chain_spans.emplace_back(chain);
      }
      const std::vector<analysis::AnalysisResult> strict =
          batch.evaluate(chain_spans, engine::BatchMode::kStrict);
      for (std::size_t l = 0; l < set.chains.size(); ++l) {
        std::vector<adders::AdderCell> stages;
        stages.reserve(config.width);
        for (const std::size_t c : set.chains[l]) {
          stages.push_back(palette[c]);
        }
        const analysis::AnalysisResult reference =
            analysis::RecursiveAnalyzer::analyze(
                multibit::AdderChain(std::move(stages)), profile);
        identical = identical &&
                    strict[l].p_success == reference.p_success &&
                    strict[l].p_error == reference.p_error &&
                    strict[l].final_carry.c0 == reference.final_carry.c0 &&
                    strict[l].final_carry.c1 == reference.final_carry.c1;
      }
      for (const util::KernelLevel level :
           {util::KernelLevel::kScalar, util::KernelLevel::kAvx2,
            util::KernelLevel::kAvx512}) {
        util::set_forced_kernel(level);
        const std::vector<analysis::AnalysisResult> fast =
            batch.evaluate(chain_spans, engine::BatchMode::kFast);
        for (std::size_t l = 0; l < set.chains.size(); ++l) {
          const double scale =
              std::max(1.0, std::abs(strict[l].p_success));
          const double rel =
              std::abs(fast[l].p_success - strict[l].p_success) / scale;
          if (rel > max_rel_error) max_rel_error = rel;
          fast_within_tolerance = fast_within_tolerance && rel <= kTolerance;
        }
      }
      util::set_forced_kernel(std::nullopt);

      // Timing: equal work per contender (iters x batch chains).
      const int iters = iter_scale *
                        static_cast<int>(200'000 /
                                         (config.width * config.batch));
      engine::ChainEvaluatorOptions no_cache;
      no_cache.cache_capacity = 0;
      engine::ChainEvaluator scalar_eval(profile, cells, no_cache);
      double sink = 0.0;
      const double scalar_seconds = min_of_reps(reps, [&] {
        return time_scalar(scalar_eval, set, iters, sink);
      });
      const double strict_seconds = min_of_reps(reps, [&] {
        return time_soa(batch, set, iters, engine::BatchMode::kStrict, sink);
      });
      const double fast_seconds = min_of_reps(reps, [&] {
        return time_soa(batch, set, iters, engine::BatchMode::kFast, sink);
      });
      const double speedup =
          fast_seconds > 0.0 ? scalar_seconds / fast_seconds : 0.0;
      if (config.width == 32 && config.batch == 16) {
        speedup_w32_batch16 = speedup;
        // Informational per-level ratios: forcing a cap above the CPU's
        // capability runs at the capability, so all three keys always
        // exist and degrade gracefully on modest machines.
        for (const util::KernelLevel level :
             {util::KernelLevel::kScalar, util::KernelLevel::kAvx2,
              util::KernelLevel::kAvx512}) {
          util::set_forced_kernel(level);
          const double seconds = min_of_reps(reps, [&] {
            return time_soa(batch, set, iters, engine::BatchMode::kFast,
                            sink);
          });
          section.set(
              "ratio_" + std::string(util::kernel_level_name(level)),
              obs::Json(seconds > 0.0 ? scalar_seconds / seconds : 0.0));
        }
        util::set_forced_kernel(std::nullopt);
      }
      // Keep the accumulated scores observable so the timed loops can't
      // be optimized away.
      volatile double guard = sink;
      (void)guard;

      const std::string tag = "w" + std::to_string(config.width) +
                              "_batch" + std::to_string(config.batch);
      std::cout << "  " << tag << ":  scalar "
                << util::duration(scalar_seconds) << "  strict "
                << util::duration(strict_seconds) << "  fast "
                << util::duration(fast_seconds) << "  ("
                << util::fixed(speedup, 2) << "x)\n";
      section.set("scalar_seconds_" + tag, obs::Json(scalar_seconds));
      section.set("strict_seconds_" + tag, obs::Json(strict_seconds));
      section.set("fast_seconds_" + tag, obs::Json(fast_seconds));
      if (config.width == 32 && config.batch == 16) {
        section.set("speedup_" + tag, obs::Json(speedup));
      }
    }
    total.stop();

    const bool speedup_ok = speedup_w32_batch16 >= 4.0;
    std::cout << "strict bit-identical to analyze: "
              << (identical ? "yes" : "NO")
              << "  fast within 1e-12: "
              << (fast_within_tolerance ? "yes" : "NO")
              << "  (max rel err " << max_rel_error << ")\n"
              << "headline w32/batch16 speedup = "
              << util::fixed(speedup_w32_batch16, 2) << "x  (gate: >= 4x "
              << (speedup_ok ? "ok" : "FAIL") << ")\n";
    if (!identical) {
      std::cerr << "FAIL: strict SoA lanes diverged from "
                   "RecursiveAnalyzer::analyze\n";
    }
    if (!fast_within_tolerance) {
      std::cerr << "FAIL: a fast kernel exceeded the 1e-12 relative "
                   "tolerance\n";
    }
    if (!speedup_ok) {
      std::cerr << "FAIL: w32/batch16 fast speedup below 4x\n";
    }

    section.set("p", obs::Json(p));
    section.set("reps", obs::Json(static_cast<std::uint64_t>(
                            static_cast<std::size_t>(reps))));
    section.set("candidates", obs::Json(static_cast<std::uint64_t>(
                                  palette.size())));
    section.set("kernel",
                obs::Json(std::string(util::kernel_level_name(
                    engine::active_batch_kernel()))));
    section.set("identical", obs::Json(identical));
    section.set("fast_within_tolerance", obs::Json(fast_within_tolerance));
    section.set("max_rel_error", obs::Json(max_rel_error));

    if (const auto path = obs::report_path(args, "BENCH_many_chain.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return identical && fast_within_tolerance && speedup_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

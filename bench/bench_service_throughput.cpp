// Measures what sealpaad's pipelining + cross-request batching buy over
// the naive one-connection-per-request client, on the workload the
// service exists for: a DSE driver scoring a beam of candidate designs.
//
// The request mix is beam-search shaped — width-16 recursive requests
// whose chains share long prefixes (a few surviving beam prefixes, every
// combination of the seven LPAA cells in the last stages) — so the
// dispatcher's batching keeps the shared ChainEvaluator prefix cache
// hot.  Mode A pipelines every request down one connection; mode B pays
// connect/send/recv/close per request, which also pays one batching
// window of latency per request.
//
// Every response from both modes is compared byte-for-byte against a
// frame built locally from engine::evaluate — the bench exits non-zero
// on any mismatch (or if the server fails to drain cleanly), so CI
// catches a service that silently diverges from the library.  The
// speedup itself is reported, not gated here (machine-dependent);
// scripts/check_bench_regression.py gates it against the committed
// reference ratio.
//
// Hand-rolled driver (not google-benchmark) so the run can emit the
// versioned sealpaa.run-report JSON: results land in
// BENCH_service.json next to the binary (--no-json suppresses,
// --json-report=FILE redirects).
//
// Flags: --bits=16  --tail=3  --prefixes=3  --reps=3  --quick
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

struct Workload {
  std::vector<std::string> request_lines;   // one request per line, no '\n'
  std::vector<std::string> expected_lines;  // serialize_frame output, with '\n'
  std::string pipelined_bytes;              // all request frames concatenated
};

/// Beam-search-shaped request mix: `prefixes` surviving beam prefixes
/// (differing in their first stage), each expanded by every combination
/// of the seven LPAA cells over the last `tail` stages.  All requests
/// use the default profile (p = 0.5), so the dispatcher groups them onto
/// one pooled evaluator and the shared stages hit the prefix cache.
Workload build_workload(std::size_t bits, std::size_t tail,
                        std::size_t prefixes) {
  const std::span<const adders::AdderCell> lpaas = adders::builtin_lpaas();
  const auto profile = multibit::InputProfile::uniform(bits, 0.5);

  std::size_t combos = 1;
  for (std::size_t i = 0; i < tail; ++i) combos *= lpaas.size();

  Workload workload;
  workload.request_lines.reserve(prefixes * combos);
  workload.expected_lines.reserve(prefixes * combos);

  std::uint64_t id = 0;
  for (std::size_t prefix = 0; prefix < prefixes; ++prefix) {
    for (std::size_t combo = 0; combo < combos; ++combo) {
      // Shared prefix: first stage names the beam survivor, the rest is
      // a fixed pattern; tail stages enumerate the LPAA candidates.
      std::vector<adders::AdderCell> stages;
      stages.reserve(bits);
      stages.push_back(lpaas[prefix % lpaas.size()]);
      for (std::size_t i = 1; i + tail < bits; ++i) {
        stages.push_back(lpaas[(i * 3) % lpaas.size()]);
      }
      std::size_t rest = combo;
      for (std::size_t i = 0; i < tail; ++i) {
        stages.push_back(lpaas[rest % lpaas.size()]);
        rest /= lpaas.size();
      }

      std::string line = "{\"id\":" + std::to_string(id) +
                         ",\"method\":\"recursive\",\"width\":" +
                         std::to_string(bits) + ",\"chain\":[";
      for (std::size_t i = 0; i < stages.size(); ++i) {
        if (i != 0) line += ',';
        line += '"';
        line += stages[i].name();
        line += '"';
      }
      line += "]}";

      const engine::Evaluation evaluation =
          engine::evaluate(multibit::AdderChain(stages), profile,
                           engine::Method::kRecursive);
      workload.expected_lines.push_back(service::serialize_frame(
          service::make_evaluation_response(obs::Json(id), evaluation)));

      workload.pipelined_bytes += line;
      workload.pipelined_bytes += '\n';
      workload.request_lines.push_back(std::move(line));
      ++id;
    }
  }
  return workload;
}

/// Response `text` (no newline) must equal the expected frame minus its
/// terminating newline.
bool matches(const std::string& text, const std::string& expected_frame) {
  return text.size() + 1 == expected_frame.size() &&
         expected_frame.compare(0, text.size(), text) == 0 &&
         expected_frame.back() == '\n';
}

/// Mode A: one connection, every frame written up front, responses
/// drained in order.
double run_pipelined(std::uint16_t port, const Workload& workload,
                     std::uint64_t& mismatches) {
  service::Client client;
  client.connect("127.0.0.1", port);
  util::WallTimer timer;
  client.send_bytes(workload.pipelined_bytes);
  for (const std::string& expected : workload.expected_lines) {
    const auto response = client.read_frame();
    if (!response || !matches(*response, expected)) ++mismatches;
  }
  const double seconds = timer.elapsed_seconds();
  client.close();
  return seconds;
}

/// Mode B: connect / send / recv / close for every single request.
double run_per_connection(std::uint16_t port, const Workload& workload,
                          std::uint64_t& mismatches) {
  util::WallTimer timer;
  for (std::size_t i = 0; i < workload.request_lines.size(); ++i) {
    service::Client client;
    client.connect("127.0.0.1", port);
    client.send_frame(workload.request_lines[i]);
    const auto response = client.read_frame();
    if (!response || !matches(*response, workload.expected_lines[i])) {
      ++mismatches;
    }
    client.close();
  }
  return timer.elapsed_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"bits", "tail", "prefixes", "reps", "quick", "threads",
                       "json-report", "no-json"});
    const bool quick = args.get_bool("quick", false);
    const auto bits =
        static_cast<std::size_t>(args.get_uint("bits", 16));
    const auto tail =
        static_cast<std::size_t>(args.get_uint("tail", quick ? 2 : 3));
    const auto prefixes =
        static_cast<std::size_t>(args.get_uint("prefixes", quick ? 1 : 3));
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 1 : 3));

    std::cout << util::banner("service throughput: pipelined batching vs "
                              "one connection per request");
    const Workload workload = build_workload(bits, tail, prefixes);
    const std::size_t n = workload.request_lines.size();
    std::cout << "bits: " << bits << "  requests: " << util::with_commas(n)
              << "  (" << prefixes << " beam prefixes x last-" << tail
              << "-stage LPAA combinations)  reps: " << reps << "\n";

    obs::RunReport report("bench_service_throughput");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");

    service::ServerOptions options;
    options.port = 0;  // ephemeral: parallel CI jobs must not collide
    options.dispatcher.dispatch_threads =
        static_cast<unsigned>(args.get_uint("threads", 1));
    // The pipelined mode fronts the whole workload on one connection.
    options.max_inflight_per_connection = n + 1;
    service::Server server(options);
    const std::uint16_t port = server.start();
    int serve_rc = -1;
    std::thread io([&] { serve_rc = server.serve(); });

    std::uint64_t mismatches = 0;
    double pipelined_seconds = 0.0;
    double per_connection_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const double seconds = run_pipelined(port, workload, mismatches);
      if (rep == 0 || seconds < pipelined_seconds) {
        pipelined_seconds = seconds;
      }
    }
    std::cout << "  pipelined, one connection   "
              << util::duration(pipelined_seconds) << "  ("
              << util::with_commas(n) << " requests)\n";
    for (int rep = 0; rep < reps; ++rep) {
      const double seconds = run_per_connection(port, workload, mismatches);
      if (rep == 0 || seconds < per_connection_seconds) {
        per_connection_seconds = seconds;
      }
    }
    std::cout << "  connection per request      "
              << util::duration(per_connection_seconds) << "\n";

    // Server-side view of the run (batch sizes, cache hits, latency).
    obs::Json server_stats;
    {
      service::Client client;
      client.connect("127.0.0.1", port);
      client.send_frame(R"({"id":"stats","method":"stats"})");
      const auto response = client.read_frame();
      const obs::Json parsed =
          response ? obs::Json::parse(*response) : obs::Json();
      if (const obs::Json* stats = parsed.find("stats")) {
        server_stats = *stats;
      } else {
        ++mismatches;
      }
      client.close();
    }

    server.request_stop();
    io.join();
    total.stop();

    // Hoisted SoA proof points (check_bench_regression only walks
    // top-level section keys): the dispatcher batch-size distribution's
    // p50/p99 and the pool-level lane counters behind evaluate_batch.
    // `dispatcher_batched` is the gated boolean — it flips false if the
    // service regresses to one-request-at-a-time evaluation.
    std::uint64_t batch_size_p50 = 0;
    std::uint64_t batch_size_p99 = 0;
    std::uint64_t soa_batches = 0;
    std::uint64_t soa_lanes = 0;
    std::uint64_t soa_max_lanes = 0;
    if (const obs::Json* batches = server_stats.find("batches")) {
      if (const obs::Json* size = batches->find("size")) {
        if (const obs::Json* q = size->find("p50")) {
          batch_size_p50 = q->unsigned_integer();
        }
        if (const obs::Json* q = size->find("p99")) {
          batch_size_p99 = q->unsigned_integer();
        }
      }
    }
    if (const obs::Json* evaluators = server_stats.find("evaluators")) {
      if (const obs::Json* batch = evaluators->find("batch")) {
        if (const obs::Json* v = batch->find("batches")) {
          soa_batches = v->unsigned_integer();
        }
        if (const obs::Json* v = batch->find("lanes")) {
          soa_lanes = v->unsigned_integer();
        }
        if (const obs::Json* v = batch->find("max_lanes")) {
          soa_max_lanes = v->unsigned_integer();
        }
      }
    }
    const bool dispatcher_batched = soa_max_lanes > 1;
    std::cout << "batch size p50/p99 = " << batch_size_p50 << "/"
              << batch_size_p99 << "  soa lanes: "
              << util::with_commas(soa_lanes) << " across "
              << util::with_commas(soa_batches)
              << " batches (max " << soa_max_lanes << ")\n";

    const double speedup = pipelined_seconds > 0.0
                               ? per_connection_seconds / pipelined_seconds
                               : 0.0;
    const bool verified = mismatches == 0 && serve_rc == 0;
    std::cout << "speedup  = " << util::fixed(speedup, 2)
              << "x  verified vs engine::evaluate: "
              << (verified ? "yes" : "NO") << "\n";
    if (mismatches != 0) {
      std::cerr << "FAIL: " << util::with_commas(mismatches)
                << " responses diverged from engine::evaluate\n";
    }
    if (serve_rc != 0) {
      std::cerr << "FAIL: server drain returned " << serve_rc << "\n";
    }

    obs::Json& section = report.section("service_throughput");
    section.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
    section.set("tail", obs::Json(static_cast<std::uint64_t>(tail)));
    section.set("prefixes",
                obs::Json(static_cast<std::uint64_t>(prefixes)));
    section.set("requests", obs::Json(static_cast<std::uint64_t>(n)));
    section.set("reps", obs::Json(static_cast<std::uint64_t>(
                            static_cast<std::size_t>(reps))));
    section.set("pipelined_seconds", obs::Json(pipelined_seconds));
    section.set("per_connection_seconds",
                obs::Json(per_connection_seconds));
    section.set("speedup", obs::Json(speedup));
    section.set("mismatches", obs::Json(mismatches));
    section.set("verified", obs::Json(verified));
    section.set("batch_size_p50", obs::Json(batch_size_p50));
    section.set("batch_size_p99", obs::Json(batch_size_p99));
    section.set("soa_batches", obs::Json(soa_batches));
    section.set("soa_lanes", obs::Json(soa_lanes));
    section.set("soa_max_lanes", obs::Json(soa_max_lanes));
    section.set("dispatcher_batched", obs::Json(dispatcher_batched));
    section.set("server_stats", std::move(server_stats));

    if (const auto path = obs::report_path(args, "BENCH_service.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return verified ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

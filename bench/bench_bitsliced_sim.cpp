// Scalar vs bit-sliced simulation throughput — what the 64-lane kernel
// buys each simulator, measured on the production inner loops:
//
//   * width  8: the full 2^17-case exhaustive sweep (ExhaustiveSimulator)
//   * width 16: an `a`-subrange of the exhaustive sweep through the same
//     shard functions the simulator runs on the pool (the full 2^33
//     sweep is pointless to wait for under the scalar kernel — which is
//     the point of this bench)
//   * width 32: Monte Carlo sampling (exhaustive enumeration infeasible)
//
// each at 1 and 8 worker threads.  Every (width, threads) pair runs both
// kernels and the bench exits non-zero unless the resulting metrics are
// *identical* — the bit-sliced path must count exactly the same errors,
// or the speedup is meaningless.  Throughput (cases/sec) and the
// single-thread width-16 speedup are reported in
// BENCH_bitsliced_sim.json (--no-json suppresses, --json-report=FILE
// redirects).
//
// Flags: --reps=3  --subrange=64  --samples=1048576  --quick
#include <iostream>
#include <string>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

struct Measurement {
  sim::ErrorMetrics metrics;
  double seconds = 0.0;
  std::uint64_t cases = 0;
};

bool metrics_identical(const sim::ErrorMetrics& a,
                       const sim::ErrorMetrics& b) {
  return a.cases() == b.cases() && a.value_errors() == b.value_errors() &&
         a.stage_failures() == b.stage_failures() &&
         a.mean_error() == b.mean_error() &&
         a.mean_abs_error() == b.mean_abs_error() &&
         a.mean_squared_error() == b.mean_squared_error() &&
         a.worst_case_error() == b.worst_case_error();
}

/// Best-of-reps wall time around `body`, which returns the metrics of
/// one full run (re-executed every rep).
template <typename Body>
Measurement measure(int reps, const Body& body) {
  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    util::WallTimer timer;
    sim::ErrorMetrics metrics = body();
    const double seconds = timer.elapsed_seconds();
    if (rep == 0 || seconds < best.seconds) best.seconds = seconds;
    best.metrics = metrics;
    best.cases = metrics.cases();
  }
  return best;
}

/// Width-16 subrange sweep through the production shard entry points,
/// sharded over `threads` workers exactly like ExhaustiveSimulator.
sim::ErrorMetrics sweep_subrange(const multibit::AdderChain& chain,
                                 const sim::BitSlicedKernel* kernel,
                                 std::uint64_t a_limit, unsigned threads) {
  const std::uint64_t grain = std::max<std::uint64_t>(1, a_limit / 16);
  return util::with_pool(threads, [&](util::ThreadPool& pool) {
    return util::parallel_map_reduce(
        pool, 0, a_limit, grain, sim::ExhaustiveShard{},
        [&](std::uint64_t a_begin, std::uint64_t a_end) {
          return kernel != nullptr
                     ? sim::exhaustive_shard_bitsliced(*kernel, a_begin,
                                                       a_end)
                     : sim::exhaustive_shard_scalar(chain, a_begin, a_end);
        },
        [](sim::ExhaustiveShard& acc, sim::ExhaustiveShard&& shard) {
          acc.metrics.merge(shard.metrics);
        },
        nullptr);
  }).metrics;
}

obs::Json row_json(const std::string& sim_name, std::size_t width,
                   unsigned threads, sim::Kernel kernel,
                   const Measurement& m) {
  obs::Json row = obs::Json::object();
  row.set("sim", obs::Json(sim_name));
  row.set("width", obs::Json(static_cast<std::uint64_t>(width)));
  row.set("threads", obs::Json(threads));
  row.set("kernel", obs::Json(std::string(sim::kernel_name(kernel))));
  row.set("seconds", obs::Json(m.seconds));
  row.set("cases", obs::Json(m.cases));
  row.set("cases_per_second",
          obs::Json(m.seconds > 0.0 ? static_cast<double>(m.cases) / m.seconds
                                    : 0.0));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"reps", "subrange", "samples", "quick", "threads",
                       "json-report", "no-json"});
    const bool quick = args.get_bool("quick", false);
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 1 : 3));
    const std::uint64_t subrange =
        args.get_uint("subrange", quick ? 8 : 64);  // width-16 `a` values
    const std::uint64_t samples =
        args.get_uint("samples", quick ? 1ULL << 16 : 1ULL << 20);
    const unsigned kThreadCounts[] = {1, 8};

    const adders::AdderCell cell = adders::lpaa(5);
    std::cout << util::banner(
        "bit-sliced 64-lane kernel vs scalar evaluate_traced");
    std::cout << "cell: " << cell.name() << "  reps: " << reps
              << "  width-16 subrange: " << subrange
              << " a-values  MC samples: " << util::with_commas(samples)
              << "\n";

    obs::RunReport report("bench_bitsliced_sim");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");

    obs::Json rows = obs::Json::array();
    bool all_identical = true;
    double width16_scalar_1t = 0.0;
    double width16_bitsliced_1t = 0.0;

    const auto record = [&](const std::string& sim_name, std::size_t width,
                            unsigned threads, const Measurement& scalar,
                            const Measurement& bitsliced) {
      const bool identical = metrics_identical(scalar.metrics,
                                               bitsliced.metrics);
      all_identical = all_identical && identical;
      const double speedup =
          bitsliced.seconds > 0.0 ? scalar.seconds / bitsliced.seconds : 0.0;
      std::cout << "  " << sim_name << "  w=" << width << "  t=" << threads
                << "  scalar " << util::duration(scalar.seconds)
                << "  bitsliced " << util::duration(bitsliced.seconds)
                << "  speedup " << util::fixed(speedup, 2) << "x  ("
                << util::with_commas(scalar.cases) << " cases)  identical: "
                << (identical ? "yes" : "NO") << "\n";
      if (!identical) {
        std::cerr << "FAIL: kernels diverged at " << sim_name << " width "
                  << width << " threads " << threads << "\n";
      }
      rows.push_back(row_json(sim_name, width, threads, sim::Kernel::kScalar,
                              scalar));
      rows.push_back(row_json(sim_name, width, threads,
                              sim::Kernel::kBitSliced, bitsliced));
    };

    // Width 8: the full exhaustive sweep through the public simulator.
    {
      const auto chain = multibit::AdderChain::homogeneous(cell, 8);
      for (const unsigned threads : kThreadCounts) {
        const Measurement scalar = measure(reps, [&] {
          return sim::ExhaustiveSimulator::run(chain, 13, threads,
                                               sim::Kernel::kScalar)
              .metrics;
        });
        const Measurement bitsliced = measure(reps, [&] {
          return sim::ExhaustiveSimulator::run(chain, 13, threads,
                                               sim::Kernel::kBitSliced)
              .metrics;
        });
        record("exhaustive", 8, threads, scalar, bitsliced);
      }
    }

    // Width 16: `a` in [0, subrange) through the production shard loops.
    {
      const auto chain = multibit::AdderChain::homogeneous(cell, 16);
      const sim::BitSlicedKernel kernel(chain);
      for (const unsigned threads : kThreadCounts) {
        const Measurement scalar = measure(reps, [&] {
          return sweep_subrange(chain, nullptr, subrange, threads);
        });
        const Measurement bitsliced = measure(reps, [&] {
          return sweep_subrange(chain, &kernel, subrange, threads);
        });
        record("exhaustive-subrange", 16, threads, scalar, bitsliced);
        if (threads == 1) {
          width16_scalar_1t = scalar.seconds;
          width16_bitsliced_1t = bitsliced.seconds;
        }
      }
    }

    // Width 32: Monte Carlo (the exhaustive space is 2^65 cases).
    {
      const auto chain = multibit::AdderChain::homogeneous(cell, 32);
      const auto profile = multibit::InputProfile::uniform(32, 0.5);
      for (const unsigned threads : kThreadCounts) {
        const Measurement scalar = measure(reps, [&] {
          return sim::MonteCarloSimulator::run_parallel(
                     chain, profile, samples, threads, 1, sim::Kernel::kScalar)
              .metrics;
        });
        const Measurement bitsliced = measure(reps, [&] {
          return sim::MonteCarloSimulator::run_parallel(
                     chain, profile, samples, threads, 1,
                     sim::Kernel::kBitSliced)
              .metrics;
        });
        record("monte-carlo", 32, threads, scalar, bitsliced);
      }
    }
    total.stop();

    const double width16_speedup =
        width16_bitsliced_1t > 0.0 ? width16_scalar_1t / width16_bitsliced_1t
                                   : 0.0;
    std::cout << "width-16 single-thread exhaustive speedup: "
              << util::fixed(width16_speedup, 2) << "x\n"
              << "all kernels identical: " << (all_identical ? "yes" : "NO")
              << "\n";

    obs::Json& section = report.section("bitsliced_sim");
    section.set("cell", obs::Json(cell.name()));
    section.set("reps", obs::Json(static_cast<std::uint64_t>(
                            static_cast<unsigned>(reps))));
    section.set("subrange", obs::Json(subrange));
    section.set("samples", obs::Json(samples));
    section.set("rows", std::move(rows));
    section.set("all_identical", obs::Json(all_identical));
    section.set("width16_speedup_1thread", obs::Json(width16_speedup));

    if (const auto path = obs::report_path(args, "BENCH_bitsliced_sim.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return all_identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Reproduces Table 2: error cases / power / area of the LPAA cells, and
// extends it with the per-cell error probability at p = 0.5 (8-bit chain)
// plus the resulting power-error Pareto front.
//
// Writes BENCH_table2_characteristics.json by default (--no-json
// suppresses, --json-report=FILE redirects).
#include <iostream>

#include "sealpaa/sealpaa.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"bits", "p", "threads", "json-report", "no-json"});
    const auto bits = static_cast<std::size_t>(args.get_uint("bits", 8));
    const double p = args.get_double("p", 0.5);

    obs::RunReport report("bench_table2_characteristics");
    report.record_args(args);

    std::cout << util::banner("Table 2: Characteristics of LPAA cells [7]");
    util::TextTable table({"LPAA Type", "Error Cases", "Power (nW)",
                           "Area (GE)"});
    for (std::size_t c = 1; c <= 3; ++c) {
      table.set_align(c, util::Align::Right);
    }
    for (const auto& row : adders::builtin_characteristics()) {
      table.add_row(
          {row.cell_name, std::to_string(row.error_cases),
           row.power_nw ? util::fixed(*row.power_nw, 0) : "n/a",
           row.area_ge ? util::fixed(*row.area_ge, 2) : "n/a"});
    }
    std::cout << table;

    const auto profile = multibit::InputProfile::uniform(bits, p);
    util::ShardTimings sweep_timings;
    const auto points =
        explore::homogeneous_sweep(profile, args.threads(), &sweep_timings);
    std::cout << "\nExtension: " << bits << "-bit homogeneous chains at p = "
              << util::fixed(p, 2) << "\n";
    util::TextTable sweep({"Design", "P(Error)", "Power (nW)", "Area (GE)"});
    for (std::size_t c = 1; c <= 3; ++c) {
      sweep.set_align(c, util::Align::Right);
    }
    for (const auto& point : points) {
      sweep.add_row({point.name, util::prob6(point.p_error),
                     point.has_cost ? util::fixed(point.power_nw, 0) : "n/a",
                     point.has_cost ? util::fixed(point.area_ge, 2) : "n/a"});
    }
    std::cout << sweep;

    explore::ParetoStats pareto_stats;
    const auto front =
        explore::pareto_front(points, /*use_area=*/true, &pareto_stats);
    std::cout << "\nPower/area/error Pareto front: ";
    for (const auto& point : front) std::cout << point.name << " ";
    std::cout << "\n";

    obs::Json& section = report.section("table2");
    section.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
    section.set("p", obs::Json(p));
    section.set("design_points", obs::to_json(points));
    section.set("pareto_front", obs::to_json(front));
    section.set("pareto_stats", obs::to_json(pareto_stats));
    section.set("sweep_timings", obs::to_json(sweep_timings));
    report.counters().add("table2/designs_swept", points.size());
    report.counters().add("table2/front_size", front.size());

    if (const auto path = obs::report_path(
            args, "BENCH_table2_characteristics.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

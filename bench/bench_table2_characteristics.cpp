// Reproduces Table 2: error cases / power / area of the LPAA cells, and
// extends it with the per-cell error probability at p = 0.5 (8-bit chain)
// plus the resulting power-error Pareto front.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/explore/pareto.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  std::cout << util::banner("Table 2: Characteristics of LPAA cells [7]");
  util::TextTable table({"LPAA Type", "Error Cases", "Power (nW)",
                         "Area (GE)"});
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, util::Align::Right);
  for (const auto& row : adders::builtin_characteristics()) {
    table.add_row(
        {row.cell_name, std::to_string(row.error_cases),
         row.power_nw ? util::fixed(*row.power_nw, 0) : "n/a",
         row.area_ge ? util::fixed(*row.area_ge, 2) : "n/a"});
  }
  std::cout << table;

  const auto profile = multibit::InputProfile::uniform(8, 0.5);
  const auto points = explore::homogeneous_sweep(profile);
  std::cout << "\nExtension: 8-bit homogeneous chains at p = 0.5\n";
  util::TextTable sweep({"Design", "P(Error)", "Power (nW)", "Area (GE)"});
  for (std::size_t c = 1; c <= 3; ++c) sweep.set_align(c, util::Align::Right);
  for (const auto& point : points) {
    sweep.add_row({point.name, util::prob6(point.p_error),
                   point.has_cost ? util::fixed(point.power_nw, 0) : "n/a",
                   point.has_cost ? util::fixed(point.area_ge, 2) : "n/a"});
  }
  std::cout << sweep;

  std::cout << "\nPower/area/error Pareto front: ";
  for (const auto& point : explore::pareto_front(points)) {
    std::cout << point.name << " ";
  }
  std::cout << "\n";
  return 0;
}

// Extension X3 (paper §1.1): the recursive style of analysis also covers
// low-latency adders (GeAr) without inclusion-exclusion.  For a range of
// GeAr configurations this bench compares:
//   * the exact O(N) joint-carry DP (our recursive-style analysis),
//   * the per-block independence approximation (GeAr paper's estimate),
//   * exhaustive simulation (ground truth at small N).
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  std::cout << util::banner(
      "X3: GeAr (LLAA) error analysis - exact DP vs independence approx vs "
      "exhaustive (uniform p = 0.5)");

  util::TextTable table({"Config", "k blocks", "L (latency)",
                         "P(E) exact DP", "P(E) exhaustive",
                         "P(E) indep approx", "P(E) sum-only"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_align(c, util::Align::Right);

  const gear::GearConfig configs[] = {
      {8, 2, 0}, {8, 2, 2}, {8, 2, 4}, {8, 4, 4},
      {12, 3, 3}, {12, 2, 2}, {12, 4, 4}, {12, 6, 6},
  };
  for (const gear::GearConfig& config : configs) {
    const auto profile = multibit::InputProfile::uniform(
        static_cast<std::size_t>(config.n()), 0.5);
    const auto analysis = gear::GearAnalyzer::analyze(config, profile);
    const auto metrics = gear::GearAnalyzer::exhaustive(config);
    table.add_row({config.describe(), std::to_string(config.blocks()),
                   std::to_string(config.critical_path_bits()),
                   util::prob6(analysis.p_error_exact_dp),
                   util::prob6(metrics.error_rate()),
                   util::prob6(analysis.p_error_independent_approx),
                   util::prob6(analysis.p_error_sum_only)});
  }
  std::cout << table;

  std::cout << "\nGeAr(16, R, P) accuracy/latency trade-off (analytical only, "
               "instant at any N):\n";
  util::TextTable wide({"Config", "L", "P(E) exact DP"});
  wide.set_align(1, util::Align::Right);
  wide.set_align(2, util::Align::Right);
  for (const gear::GearConfig& config :
       {gear::GearConfig(16, 2, 2), gear::GearConfig(16, 2, 4),
        gear::GearConfig(16, 4, 4), gear::GearConfig(16, 4, 8),
        gear::GearConfig(16, 8, 8)}) {
    const auto analysis = gear::GearAnalyzer::analyze(
        config, multibit::InputProfile::uniform(16, 0.5));
    wide.add_row({config.describe(),
                  std::to_string(config.critical_path_bits()),
                  util::prob6(analysis.p_error_exact_dp)});
  }
  std::cout << wide;

  std::cout << "\nDouble approximation: GeAr(12,3,3) with approximate "
               "sub-adder cells (exact value-level DP vs exhaustive):\n";
  util::TextTable hybrid({"Sub-adder cell", "P(E) exact DP",
                          "P(E) exhaustive"});
  hybrid.set_align(1, util::Align::Right);
  hybrid.set_align(2, util::Align::Right);
  const gear::GearConfig hybrid_config(12, 3, 3);
  const auto hybrid_profile = multibit::InputProfile::uniform(12, 0.5);
  for (const char* name : {"AccuFA", "LPAA1", "LPAA6", "LPAA7"}) {
    const adders::AdderCell& cell = *adders::find_builtin(name);
    const auto analysis = gear::GearAnalyzer::analyze_with_cell(
        hybrid_config, cell, hybrid_profile);
    const auto metrics =
        gear::GearAnalyzer::exhaustive_with_cell(hybrid_config, cell);
    hybrid.add_row({name, util::prob6(analysis.p_error_exact_dp),
                    util::prob6(metrics.error_rate())});
  }
  std::cout << hybrid;

  std::cout << "\nThe exact DP matches exhaustive simulation to machine "
               "precision in every mode; the independence approximation "
               "overestimates (block failures are positively correlated).\n";
  return 0;
}

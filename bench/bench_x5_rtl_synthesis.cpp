// Extension X5 (paper §1.2 "design automation ... high-level
// synthesis"): gate-level synthesis of every cell, with gate counts,
// logic depth and a signal-probability-driven switching-activity proxy —
// compared against the Table 2 power/area trend.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/rtl/optimize.hpp"
#include "sealpaa/rtl/synth.hpp"
#include "sealpaa/rtl/verilog.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  std::cout << util::banner(
      "X5: gate-level synthesis of the cells (SOP + wire detection)");
  util::TextTable table({"Cell", "SOP gates", "Optimized gates", "Depth",
                         "Switching (p=0.5)", "Table 2 power (nW)",
                         "Table 2 area (GE)"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_align(c, util::Align::Right);
  for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
    const rtl::Netlist raw = rtl::synthesize_cell(cell);
    const rtl::Netlist netlist = rtl::optimize(raw);
    const auto* row = adders::find_characteristics(cell);
    table.add_row(
        {cell.name(), std::to_string(raw.logic_gate_count()),
         std::to_string(netlist.logic_gate_count()),
         std::to_string(netlist.depth()),
         util::fixed(netlist.switching_activity({0.5, 0.5, 0.5}), 3),
         row != nullptr && row->power_nw ? util::fixed(*row->power_nw, 0)
                                         : "n/a",
         row != nullptr && row->area_ge ? util::fixed(*row->area_ge, 2)
                                        : "n/a"});
  }
  std::cout << table;
  std::cout << "(Two-level SOP gate counts are an upper bound on the "
               "transistor-level designs of [7]; LPAA5 correctly "
               "synthesizes to zero gates.)\n";

  std::cout << "\nTopology synthesis:\n";
  util::TextTable topo({"Design", "Logic gates", "Depth"});
  topo.set_align(1, util::Align::Right);
  topo.set_align(2, util::Align::Right);
  const auto add = [&](const std::string& name, const rtl::Netlist& n) {
    topo.add_row({name, std::to_string(n.logic_gate_count()),
                  std::to_string(n.depth())});
  };
  add("8-bit RCA (AccuFA)", rtl::synthesize_chain(
                                multibit::AdderChain::homogeneous(
                                    adders::accurate(), 8)));
  add("8-bit RCA (LPAA2)", rtl::synthesize_chain(
                               multibit::AdderChain::homogeneous(
                                   adders::lpaa(2), 8)));
  add("GeAr(8,2,2), exact sub-adders",
      rtl::synthesize_gear(gear::GearConfig(8, 2, 2)));
  add("GeAr(16,4,4), exact sub-adders",
      rtl::synthesize_gear(gear::GearConfig(16, 4, 4)));
  add("16-bit RCA (AccuFA)", rtl::synthesize_chain(
                                 multibit::AdderChain::homogeneous(
                                     adders::accurate(), 16)));
  std::cout << topo;
  std::cout << "\nGeAr trades extra gates (overlapping sub-adders) for "
               "logic depth - the latency win of Figure 2.\n";

  std::cout << "\nSample Verilog export (LPAA6 cell):\n\n";
  std::cout << rtl::to_verilog(rtl::synthesize_cell(adders::lpaa(6)),
                               "lpaa6_cell");
  return 0;
}

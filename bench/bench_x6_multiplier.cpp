// Extension X6 (paper §1.1 accelerator datapaths, [16] multipliers):
// quality of an 8x8 approximate array multiplier per accumulation cell
// and reduction topology.
#include <cmath>
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/multiplier/array_multiplier.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::uint64_t samples =
      static_cast<std::uint64_t>(args.get_int("samples", 100'000));

  std::cout << util::banner(
      "X6: 8x8 approximate array multiplier quality (" +
      util::with_commas(samples) + " random operand pairs)");

  for (const auto mode : {multiplier::ReductionMode::RippleAccumulate,
                          multiplier::ReductionMode::CarrySaveTree}) {
    const char* mode_name =
        mode == multiplier::ReductionMode::RippleAccumulate
            ? "ripple accumulation"
            : "carry-save tree";
    std::cout << "\nReduction: " << mode_name << "\n";
    util::TextTable table({"Accumulator cell", "Error rate", "MED",
                           "Normalized MED", "RMS error", "Worst |error|"});
    for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::Right);
    for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
      const multiplier::ApproxMultiplier mult(8, cell, mode);
      const auto report = multiplier::measure_multiplier(mult, samples);
      table.add_row(
          {cell.name(), util::fixed(report.metrics.error_rate(), 5),
           util::fixed(report.metrics.mean_abs_error(), 1),
           util::fixed(report.normalized_med(), 5),
           util::fixed(std::sqrt(report.metrics.mean_squared_error()), 1),
           util::with_commas(static_cast<std::uint64_t>(
               std::llabs(report.metrics.worst_case_error())))});
    }
    std::cout << table;
  }

  std::cout << "\nQuality is strongly topology-dependent per cell: the "
               "carry-save tree rescues the aggressive cells whose errors "
               "compound along long ripple accumulations (LPAA2/3 MED drops "
               "~30%), while cells with benign per-stage errors (LPAA1) "
               "prefer the ripple order.  The statistical analysis has to "
               "model the topology, not just the cell - the paper's point "
               "about accelerator datapaths (1.1).\n";
  return 0;
}

// Thread-scaling of the parallel execution core: exhaustive simulation,
// weighted enumeration, Monte Carlo and the hybrid DSE sharded over a
// configurable set of worker counts, with a determinism cross-check at
// every width (the metrics must be bit-identical at 1 and N threads).
//
// Hand-rolled driver (not google-benchmark) so the run can emit the
// versioned sealpaa.run-report JSON: by default the results land in
// BENCH_parallel_scaling.json next to the binary (--no-json suppresses,
// --json-report=FILE redirects), which is what the perf-trajectory
// tooling and the CI smoke job consume.
//
// Flags: --thread-counts=1,2,4,8  --reps=3  --samples=500000
//        --exhaustive-bits=11  --hybrid-bits=6  --quick
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

struct Measurement {
  unsigned threads = 0;
  double best_seconds = 0.0;   // fastest of the reps
  double check = 0.0;          // engine result; must match across widths
  util::ShardTimings timings;  // from the fastest rep (when available)
};

struct EngineResult {
  std::string name;
  std::string workload;
  std::vector<Measurement> runs;
  bool deterministic = true;  // check value identical across all widths
};

std::vector<unsigned> parse_thread_counts(const std::string& csv) {
  std::vector<unsigned> counts;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const int value = std::stoi(token);
    if (value <= 0) {
      throw std::invalid_argument("--thread-counts entries must be >= 1");
    }
    counts.push_back(static_cast<unsigned>(value));
  }
  if (counts.empty()) {
    throw std::invalid_argument("--thread-counts must list at least one value");
  }
  return counts;
}

template <typename Run>
EngineResult measure(const std::string& name, const std::string& workload,
                     const std::vector<unsigned>& thread_counts, int reps,
                     Run&& run) {
  EngineResult result;
  result.name = name;
  result.workload = workload;
  double reference_check = 0.0;
  for (const unsigned threads : thread_counts) {
    Measurement best;
    best.threads = threads;
    for (int rep = 0; rep < reps; ++rep) {
      Measurement sample;
      sample.threads = threads;
      util::WallTimer timer;
      sample.check = run(threads, sample.timings);
      sample.best_seconds = timer.elapsed_seconds();
      if (rep == 0 || sample.best_seconds < best.best_seconds) best = sample;
    }
    if (result.runs.empty()) {
      reference_check = best.check;
    } else if (best.check != reference_check) {
      result.deterministic = false;
    }
    result.runs.push_back(std::move(best));
    std::cout << "  " << name << "  threads=" << threads << "  "
              << util::duration(result.runs.back().best_seconds) << "\n";
  }
  return result;
}

obs::Json to_json(const EngineResult& engine) {
  obs::Json out = obs::Json::object();
  out.set("name", obs::Json(engine.name));
  out.set("workload", obs::Json(engine.workload));
  out.set("deterministic", obs::Json(engine.deterministic));
  const double base = engine.runs.empty() ? 0.0
                                          : engine.runs.front().best_seconds;
  obs::Json runs = obs::Json::array();
  for (const Measurement& m : engine.runs) {
    obs::Json entry = obs::Json::object();
    entry.set("threads", obs::Json(m.threads));
    entry.set("best_seconds", obs::Json(m.best_seconds));
    entry.set("speedup_vs_first",
              obs::Json(m.best_seconds > 0.0 ? base / m.best_seconds : 0.0));
    entry.set("check", obs::Json(m.check));
    if (!m.timings.shards.empty()) {
      entry.set("shard_timings", obs::to_json(m.timings));
    }
    runs.push_back(std::move(entry));
  }
  out.set("runs", std::move(runs));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"thread-counts", "reps", "samples", "exhaustive-bits",
                       "hybrid-bits", "quick", "threads", "json-report",
                       "no-json"});
    const bool quick = args.get_bool("quick", false);
    const std::vector<unsigned> thread_counts =
        parse_thread_counts(args.get("thread-counts", "1,2,4,8"));
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 1 : 3));
    const std::uint64_t samples =
        args.get_uint("samples", quick ? 100'000 : 500'000);
    const auto exhaustive_bits =
        static_cast<std::size_t>(args.get_uint("exhaustive-bits",
                                               quick ? 9 : 11));
    const auto hybrid_bits =
        static_cast<std::size_t>(args.get_uint("hybrid-bits", quick ? 5 : 6));

    std::cout << util::banner("Parallel scaling: engines vs worker count");
    std::cout << "thread counts: " << args.get("thread-counts", "1,2,4,8")
              << "  reps: " << reps << "  hardware threads: "
              << util::hardware_threads() << "\n";

    obs::RunReport report("bench_parallel_scaling");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");

    std::vector<EngineResult> engines;

    {
      const auto chain =
          multibit::AdderChain::homogeneous(adders::lpaa(6), exhaustive_bits);
      engines.push_back(measure(
          "exhaustive_sim",
          "LPAA6 x" + std::to_string(exhaustive_bits) + ", all 2^(2N+1) cases",
          thread_counts, reps, [&](unsigned threads, util::ShardTimings& t) {
            const auto r = sim::ExhaustiveSimulator::run(chain, 13, threads);
            t = r.shard_timings;
            return r.metrics.stage_failure_rate();
          }));
    }
    {
      const auto chain =
          multibit::AdderChain::homogeneous(adders::lpaa(1), 10);
      const auto profile = multibit::InputProfile::uniform(10, 0.3);
      engines.push_back(measure(
          "weighted_exhaustive", "LPAA1 x10, p=0.3", thread_counts, reps,
          [&](unsigned threads, util::ShardTimings&) {
            const auto r = baseline::WeightedExhaustive::analyze(
                chain, profile, 14, threads);
            return r.p_stage_success;
          }));
    }
    {
      const auto chain =
          multibit::AdderChain::homogeneous(adders::lpaa(5), 16);
      const auto profile = multibit::InputProfile::uniform(16, 0.2);
      engines.push_back(measure(
          "montecarlo",
          "LPAA5 x16, " + util::with_commas(samples) + " samples",
          thread_counts, reps, [&](unsigned threads, util::ShardTimings& t) {
            const auto r = sim::MonteCarloSimulator::run_parallel(
                chain, profile, samples, threads);
            t = r.shard_timings;
            return r.metrics.stage_failure_rate();
          }));
    }
    {
      const auto profile = multibit::InputProfile::uniform(hybrid_bits, 0.35);
      engines.push_back(measure(
          "hybrid_exhaustive",
          "7 LPAAs ^ " + std::to_string(hybrid_bits) + " stages, p=0.35",
          thread_counts, reps, [&](unsigned threads, util::ShardTimings&) {
            const auto design = explore::HybridOptimizer::exhaustive(
                profile, adders::builtin_lpaas(), {}, 50'000'000, threads);
            return design.p_error;
          }));
    }
    total.stop();

    bool all_deterministic = true;
    util::TextTable table({"engine", "threads", "best time", "speedup",
                           "deterministic"});
    for (const EngineResult& engine : engines) {
      all_deterministic = all_deterministic && engine.deterministic;
      const double base = engine.runs.front().best_seconds;
      for (const Measurement& m : engine.runs) {
        table.add_row({engine.name, std::to_string(m.threads),
                       util::duration(m.best_seconds),
                       util::fixed(m.best_seconds > 0.0
                                       ? base / m.best_seconds
                                       : 0.0,
                                   2) +
                           "x",
                       engine.deterministic ? "yes" : "NO"});
      }
    }
    std::cout << table;
    if (!all_deterministic) {
      std::cerr << "FAIL: some engine produced thread-count-dependent "
                   "results\n";
    }

    obs::Json engines_json = obs::Json::array();
    for (const EngineResult& engine : engines) {
      engines_json.push_back(to_json(engine));
    }
    // Executor-level counters: drive one instrumented pool directly so
    // the report also carries tasks/queue/busy-time statistics.
    util::ThreadPool pool(thread_counts.back());
    util::parallel_for(pool, 0, 4096, 64, [](std::uint64_t lo,
                                             std::uint64_t hi) {
      volatile double sink = 0.0;
      for (std::uint64_t i = lo; i < hi; ++i) {
        sink = sink + static_cast<double>(i);
      }
    });

    obs::Json& section = report.section("scaling");
    section.set("engines", std::move(engines_json));
    section.set("all_deterministic", obs::Json(all_deterministic));
    section.set("pool_sample", obs::to_json(pool.stats()));

    if (const auto path =
            obs::report_path(args, "BENCH_parallel_scaling.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return all_deterministic ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Thread-scaling of the parallel execution core: exhaustive simulation,
// weighted enumeration, Monte Carlo and the hybrid DSE sharded over 1–8
// workers.  Real time is the comparison axis (CPU time sums over
// workers); on an 8-core host the 12-bit exhaustive sweep should show
// >= 3x speedup at 8 threads with bit-identical metrics throughout.
#include <benchmark/benchmark.h>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/montecarlo.hpp"

namespace {

using sealpaa::adders::builtin_lpaas;
using sealpaa::adders::lpaa;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

void BM_ExhaustiveSim12BitThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const AdderChain chain = AdderChain::homogeneous(lpaa(6), 12);
  double check = 0.0;
  for (auto _ : state) {
    const auto report = sealpaa::sim::ExhaustiveSimulator::run(chain, 13,
                                                               threads);
    check = report.metrics.stage_failure_rate();
    benchmark::DoNotOptimize(report);
  }
  state.counters["p_error"] = check;  // must match across thread counts
}
BENCHMARK(BM_ExhaustiveSim12BitThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_WeightedExhaustive10BitThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), 10);
  const InputProfile profile = InputProfile::uniform(10, 0.3);
  double check = 0.0;
  for (auto _ : state) {
    const auto report = sealpaa::baseline::WeightedExhaustive::analyze(
        chain, profile, 14, threads);
    check = report.p_stage_success;
    benchmark::DoNotOptimize(report);
  }
  state.counters["p_success"] = check;
}
BENCHMARK(BM_WeightedExhaustive10BitThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MonteCarlo1MThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const AdderChain chain = AdderChain::homogeneous(lpaa(5), 16);
  const InputProfile profile = InputProfile::uniform(16, 0.2);
  for (auto _ : state) {
    const auto report = sealpaa::sim::MonteCarloSimulator::run_parallel(
        chain, profile, 1'000'000, threads);
    benchmark::DoNotOptimize(report.metrics.stage_failure_rate());
  }
}
BENCHMARK(BM_MonteCarlo1MThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_HybridExhaustive7x7Threads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const InputProfile profile = InputProfile::uniform(7, 0.35);
  for (auto _ : state) {
    const auto design = sealpaa::explore::HybridOptimizer::exhaustive(
        profile, builtin_lpaas(), {}, 50'000'000, threads);
    benchmark::DoNotOptimize(design.p_error);
  }
}
BENCHMARK(BM_HybridExhaustive7x7Threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Extension X10: closing the workload loop.
//
// The paper assumes input-bit probabilities are given.  Here we derive
// them from a realistic operand trace (the accumulator inputs of an FIR
// filter over a noisy sine), then compare three predictions of the
// adder's stage-failure rate on that trace:
//   (1) independent marginal profile  (the paper's model),
//   (2) correlated per-bit joint profile (our X8 generalization),
//   (3) the empirically measured rate on the trace itself.
// Real operands correlate strongly across bits of A and B, so (2)
// closes most of the gap that (1) leaves.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/correlated.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/apps/fir.hpp"
#include "sealpaa/multibit/profile_estimation.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

namespace {

// Reconstructs the accumulator operand pairs (acc, addend) that an
// approximate FIR accumulation would see.
std::vector<sealpaa::multibit::OperandSample> fir_accumulator_trace(
    std::size_t width, std::size_t samples) {
  using namespace sealpaa;
  prob::Xoshiro256StarStar rng(0xF1A7);
  const auto signal = apps::make_sine_signal(samples, 800.0, 0.013, 40.0, rng);
  const std::vector<int> taps = {1, 4, 6, 4, 1};
  std::vector<multibit::OperandSample> trace;
  for (std::size_t n = 0; n < signal.size(); ++n) {
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < taps.size() && k <= n; ++k) {
      const std::int64_t product =
          static_cast<std::int64_t>(taps[k]) * signal[n - k];
      const std::uint64_t addend = multibit::mask_width(
          static_cast<std::uint64_t>(product), width);
      trace.push_back({acc, addend});
      acc = multibit::mask_width(acc + addend, width);
    }
  }
  return trace;
}

}  // namespace

int main() {
  using namespace sealpaa;
  const std::size_t width = 14;
  const auto trace = fir_accumulator_trace(width, 4000);

  std::cout << util::banner(
      "X10: workload-derived profiles (FIR accumulator trace, " +
      util::with_commas(trace.size()) + " operand pairs, 14-bit)");

  const auto marginal = multibit::estimate_profile(trace, width);
  const auto joint = multibit::estimate_joint_profile(trace, width, 0.0, 0.5);
  const auto rho = multibit::operand_correlation(trace, width);

  std::cout << "Estimated P(A_i = 1) per bit (LSB..MSB): ";
  for (std::size_t i = 0; i < width; ++i) {
    std::cout << util::fixed(marginal.p_a(i), 2) << " ";
  }
  std::cout << "\nEmpirical operand correlation per bit:  ";
  for (std::size_t i = 0; i < width; ++i) {
    std::cout << util::fixed(rho[i], 2) << " ";
  }
  std::cout << "\n\n";

  util::TextTable table({"Adder", "P(E) independent model",
                         "P(E) correlated model", "measured on trace"});
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, util::Align::Right);
  for (int cell : {1, 4, 5, 6, 7}) {
    const auto chain =
        multibit::AdderChain::homogeneous(adders::lpaa(cell), width);
    const double independent =
        analysis::RecursiveAnalyzer::analyze(chain, marginal).p_error;
    const double correlated =
        analysis::CorrelatedAnalyzer::analyze(chain, joint).p_error;
    std::uint64_t failures = 0;
    for (const auto& sample : trace) {
      if (!chain.evaluate_traced(sample.a, sample.b, false)
               .all_stages_success) {
        ++failures;
      }
    }
    const double measured =
        static_cast<double>(failures) / static_cast<double>(trace.size());
    table.add_row({chain.describe(), util::prob6(independent),
                   util::prob6(correlated), util::prob6(measured)});
  }
  std::cout << table;
  std::cout << "\nBoth analytical models are O(N).  Where the trace shows "
               "per-bit operand correlation (the sign bits here), the "
               "correlated model adjusts the prediction; the residual gap "
               "to the measured rate comes from *cross-bit* dependence "
               "inside each operand (strong for this two's-complement "
               "stream, e.g. LPAA5), which is exactly the modelling "
               "boundary the paper's independence assumption draws.  The "
               "trace-measured column is the ground truth a deployment "
               "decision should use when that structure is present.\n";
  return 0;
}

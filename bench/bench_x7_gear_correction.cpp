// Extension X7 (paper §1 + [11]): GeAr error detection/correction —
// exact distribution of recovery cycles and the resulting effective
// latency of a variable-latency corrected adder.
#include <iostream>

#include "sealpaa/gear/correction.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  std::cout << util::banner(
      "X7: GeAr error correction - recovery-cycle distribution (p = 0.5)");

  util::TextTable table({"Config", "P(0 cyc)", "P(1 cyc)", "P(2 cyc)",
                         "P(>=3 cyc)", "E[recovery cycles]",
                         "Effective latency (L + E.R)"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_align(c, util::Align::Right);

  const gear::GearConfig configs[] = {
      {8, 2, 0}, {8, 2, 2}, {12, 2, 2}, {12, 3, 3},
      {16, 2, 2}, {16, 4, 4}, {32, 4, 4}, {32, 8, 8},
  };
  for (const gear::GearConfig& config : configs) {
    const auto profile = multibit::InputProfile::uniform(
        static_cast<std::size_t>(config.n()), 0.5);
    const auto distribution =
        gear::correction_cycle_distribution(config, profile);
    const double expected =
        gear::expected_recovery_cycles(config, profile);
    double tail = 0.0;
    for (std::size_t c = 3; c < distribution.size(); ++c) {
      tail += distribution[c];
    }
    const auto at = [&](std::size_t c) {
      return c < distribution.size() ? distribution[c] : 0.0;
    };
    // Effective latency model: L-bit carry chain per cycle, one extra
    // cycle per failing block.
    const double effective =
        config.l() * (1.0 + expected);
    table.add_row({config.describe(), util::prob6(at(0)), util::prob6(at(1)),
                   util::prob6(at(2)), util::prob6(tail),
                   util::fixed(expected, 4), util::fixed(effective, 2)});
  }
  std::cout << table;

  std::cout << "\nCorrected GeAr is always numerically exact; the cost is a "
               "stochastic latency.  Larger overlap P simultaneously cuts "
               "the error probability (X3) and the expected recovery "
               "cycles, at the price of a longer base carry chain.\n";
  return 0;
}

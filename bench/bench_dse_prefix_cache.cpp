// Measures what the engine's prefix cache buys the beam DSE: the same
// beam search run (a) naively, re-analyzing every partial design from
// bit 0 with the batch recursive analyzer — the per-chain cost model the
// optimizer had before the engine layer — and (b) through
// explore::HybridOptimizer::beam on engine::ChainEvaluator, where each
// expansion is one cached-prefix probe plus one stage advance.
//
// The two searches must return the *identical* winning design and
// p_error (bit-identical scores, same tie-breaks); the bench exits
// non-zero when they disagree or when the prefix cache never hit, so CI
// catches both a broken cache and a silently diverging rewrite.  The
// speedup itself is reported, not gated (machine-dependent).
//
// Hand-rolled driver (not google-benchmark) so the run can emit the
// versioned sealpaa.run-report JSON: results land in
// BENCH_dse_prefix_cache.json next to the binary (--no-json suppresses,
// --json-report=FILE redirects).
//
// Flags: --bits=16  --beam=128  --reps=3  --p=0.35  --quick
#include <algorithm>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

/// Beam search scored exclusively with RecursiveAnalyzer::analyze on the
/// truncated chain/profile — every expansion pays O(stage) work.  Mirrors
/// HybridOptimizer::beam's expansion order, comparator and tie-breaks
/// exactly (no constraints), so any output difference is a correctness
/// bug, not a search-policy difference.
struct NaiveResult {
  std::vector<std::size_t> choice;
  double p_error = 1.0;
  std::uint64_t stage_advances = 0;  // total stages re-analyzed
};

NaiveResult naive_beam(const multibit::InputProfile& profile,
                       std::span<const adders::AdderCell> candidates,
                       std::size_t beam_width) {
  const std::size_t n = profile.width();
  NaiveResult result;

  const auto truncated_profile = [&](std::size_t width) {
    const std::vector<double> p_a(profile.all_p_a().begin(),
                                  profile.all_p_a().begin() +
                                      static_cast<std::ptrdiff_t>(width));
    const std::vector<double> p_b(profile.all_p_b().begin(),
                                  profile.all_p_b().begin() +
                                      static_cast<std::ptrdiff_t>(width));
    return multibit::InputProfile(p_a, p_b, profile.p_cin());
  };
  const auto chain_of = [&](const std::vector<std::size_t>& choice) {
    std::vector<adders::AdderCell> stages;
    stages.reserve(choice.size());
    for (const std::size_t c : choice) stages.push_back(candidates[c]);
    return multibit::AdderChain(std::move(stages));
  };

  struct Partial {
    std::vector<std::size_t> choice;
    double score = 0.0;  // success mass after the prefix
  };
  std::vector<Partial> beam_set{Partial{{}, 1.0}};

  double best_success = -1.0;
  std::vector<std::size_t> best_choice;

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Partial> expanded;
    expanded.reserve(beam_set.size() * candidates.size());
    for (const Partial& partial : beam_set) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        Partial next;
        next.choice = partial.choice;
        next.choice.push_back(c);
        result.stage_advances += next.choice.size();
        // Each candidate evaluation is self-contained, exactly as the
        // public analyze(chain, profile) API requires: build the partial
        // chain and its matching truncated profile, run the recursion
        // from bit 0.
        if (i + 1 == n) {
          const double p_success = analysis::RecursiveAnalyzer::analyze(
                                       chain_of(next.choice), profile)
                                       .p_success;
          if (p_success > best_success) {
            best_success = p_success;
            best_choice = next.choice;
          }
        } else {
          next.score = analysis::RecursiveAnalyzer::analyze(
                           chain_of(next.choice), truncated_profile(i + 1))
                           .final_carry.success_mass();
          expanded.push_back(std::move(next));
        }
      }
    }
    if (i + 1 == n) break;
    const std::size_t keep = std::min(beam_width, expanded.size());
    std::partial_sort(expanded.begin(),
                      expanded.begin() + static_cast<std::ptrdiff_t>(keep),
                      expanded.end(), [](const Partial& a, const Partial& b) {
                        return a.score > b.score;
                      });
    expanded.resize(keep);
    beam_set = std::move(expanded);
  }

  result.choice = best_choice;
  result.p_error =
      analysis::RecursiveAnalyzer::analyze(chain_of(best_choice), profile)
          .p_error;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"bits", "beam", "reps", "p", "quick", "threads",
                       "json-report", "no-json"});
    const bool quick = args.get_bool("quick", false);
    const auto bits =
        static_cast<std::size_t>(args.get_uint("bits", quick ? 10 : 16));
    const auto beam_width =
        static_cast<std::size_t>(args.get_uint("beam", quick ? 32 : 128));
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 1 : 3));
    const double p = args.get_double("p", 0.35);

    const auto profile = multibit::InputProfile::uniform(bits, p);
    const std::span<const adders::AdderCell> candidates =
        adders::builtin_lpaas();

    std::cout << util::banner("DSE prefix cache: naive re-analysis vs "
                              "ChainEvaluator");
    std::cout << "bits: " << bits << "  beam: " << beam_width
              << "  candidates: " << candidates.size() << "  p: "
              << util::fixed(p, 2) << "  reps: " << reps << "\n";

    obs::RunReport report("bench_dse_prefix_cache");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");

    NaiveResult naive;
    double naive_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      util::WallTimer timer;
      naive = naive_beam(profile, candidates, beam_width);
      const double seconds = timer.elapsed_seconds();
      if (rep == 0 || seconds < naive_seconds) naive_seconds = seconds;
    }
    std::cout << "  naive per-chain recursion  " << util::duration(naive_seconds)
              << "  (" << util::with_commas(naive.stage_advances)
              << " stage advances)\n";

    explore::HybridDesign design;
    double engine_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      util::WallTimer timer;
      design = explore::HybridOptimizer::beam(profile, candidates, {},
                                              beam_width);
      const double seconds = timer.elapsed_seconds();
      if (rep == 0 || seconds < engine_seconds) engine_seconds = seconds;
    }
    std::cout << "  engine prefix cache        "
              << util::duration(engine_seconds) << "  ("
              << util::with_commas(design.stats.stages_computed)
              << " stage advances, "
              << util::with_commas(design.stats.cache_hits) << " cache hits)\n";
    total.stop();

    // Correctness gates: same winner, same p_error, a cache that works.
    bool identical = design.stages.size() == naive.choice.size() &&
                     design.p_error == naive.p_error;
    if (identical) {
      for (std::size_t i = 0; i < naive.choice.size(); ++i) {
        identical = identical &&
                    design.stages[i] == candidates[naive.choice[i]];
      }
    }
    const bool cache_active = design.stats.cache_hits > 0;
    const double speedup =
        engine_seconds > 0.0 ? naive_seconds / engine_seconds : 0.0;

    std::cout << "winner: " << design.chain().describe() << "\n"
              << "P(Error) = " << util::prob6(design.p_error) << "\n"
              << "speedup  = " << util::fixed(speedup, 2) << "x  identical: "
              << (identical ? "yes" : "NO") << "  cache hits: "
              << util::with_commas(design.stats.cache_hits) << "\n";
    if (!identical) {
      std::cerr << "FAIL: cached beam diverged from naive recursion "
                   "(naive P(Error) = " << util::prob6(naive.p_error)
                << ")\n";
    }
    if (!cache_active) {
      std::cerr << "FAIL: prefix cache never hit\n";
    }

    obs::Json& section = report.section("dse_prefix_cache");
    section.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
    section.set("beam_width",
                obs::Json(static_cast<std::uint64_t>(beam_width)));
    section.set("candidates",
                obs::Json(static_cast<std::uint64_t>(candidates.size())));
    section.set("p", obs::Json(p));
    section.set("reps", obs::Json(static_cast<std::uint64_t>(
                            static_cast<std::size_t>(reps))));
    section.set("naive_seconds", obs::Json(naive_seconds));
    section.set("engine_seconds", obs::Json(engine_seconds));
    section.set("speedup", obs::Json(speedup));
    section.set("identical", obs::Json(identical));
    section.set("naive_stage_advances", obs::Json(naive.stage_advances));
    section.set("design", obs::to_json(design));
    section.set("search", obs::to_json(design.stats));

    if (const auto path =
            obs::report_path(args, "BENCH_dse_prefix_cache.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return identical && cache_active ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Extension X2 (paper §5): optimal hybrid multistage adder design.  The
// paper: "Similar results can be obtained for multiple input bit
// probability configurations ... to optimally design a hybrid multistage
// low power adder using more than one type of LPAA."
//
// Scenario: a DSP-style operand profile — low-significance bits are
// noise-like (p ~ 0.5), MSBs are mostly zero (p ~ 0.05) — optimised
// exhaustively, by beam search, and greedily; then under a power budget.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"
#include "sealpaa/util/timer.hpp"

int main() {
  using namespace sealpaa;

  // 8-bit profile: dense (mostly-1) low bits, sparse (mostly-0) high
  // bits — the regime where the paper expects LPAA1-like cells to win
  // the LSBs and LPAA7-like cells the MSBs.
  const std::vector<double> p_bits = {0.9, 0.9, 0.8, 0.6,
                                      0.3, 0.15, 0.08, 0.05};
  const multibit::InputProfile profile(p_bits, p_bits, 0.9);

  std::cout << util::banner("X2: hybrid multistage adder design (8-bit DSP profile)");

  util::TextTable table({"Method", "Chain (LSB..MSB)", "P(Error)",
                         "P(Succ)", "Power (nW)", "Search time"});
  table.set_align(2, util::Align::Right);
  table.set_align(3, util::Align::Right);
  table.set_align(4, util::Align::Right);

  const auto add_design = [&](const std::string& name,
                              const explore::HybridDesign& design,
                              double seconds) {
    table.add_row({name, design.chain().describe(),
                   util::prob6(design.p_error), util::prob6(design.p_success),
                   design.power_nw ? util::fixed(*design.power_nw, 0) : "n/a",
                   util::duration(seconds)});
  };

  {
    util::WallTimer timer;
    const auto design =
        explore::HybridOptimizer::exhaustive(profile, adders::builtin_lpaas());
    add_design("exhaustive (7^8)", design, timer.elapsed_seconds());
  }
  {
    util::WallTimer timer;
    const auto design = explore::HybridOptimizer::beam(
        profile, adders::builtin_lpaas(), {}, 128);
    add_design("beam-128", design, timer.elapsed_seconds());
  }
  {
    util::WallTimer timer;
    const auto design =
        explore::HybridOptimizer::greedy(profile, adders::builtin_lpaas());
    add_design("greedy", design, timer.elapsed_seconds());
  }

  // Best homogeneous baselines for contrast.
  for (int cell : {1, 6, 7}) {
    const double p_error = analysis::RecursiveAnalyzer::error_probability(
        adders::lpaa(cell), profile);
    const auto power = adders::chain_power_nw(adders::lpaa(cell), 8);
    table.add_row({"homogeneous", "8 x LPAA" + std::to_string(cell),
                   util::prob6(p_error), util::prob6(1.0 - p_error),
                   power ? util::fixed(*power, 0) : "n/a", "-"});
  }
  std::cout << table;

  // Power-constrained variant over the cells with Table 2 data.
  std::vector<adders::AdderCell> costed;
  for (int i = 1; i <= 5; ++i) costed.push_back(adders::lpaa(i));
  explore::DesignConstraints constraints;
  constraints.max_power_nw = 2500.0;
  const auto constrained = explore::HybridOptimizer::exhaustive(
      profile, costed, constraints);
  std::cout << "\nPower-constrained (LPAA1-5, budget 2500 nW): "
            << constrained.chain().describe() << "  P(E) = "
            << util::prob6(constrained.p_error) << "  power = "
            << util::fixed(*constrained.power_nw, 0) << " nW\n";
  return 0;
}

// google-benchmark microbenchmarks backing the paper's performance
// claims: the recursive analysis runs in well under 1 ms at any width
// (§5), scales linearly, and dwarfs both simulation and the
// inclusion-exclusion baseline.
#include <benchmark/benchmark.h>

#include <cmath>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/joint.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/inclusion_exclusion.hpp"
#include "sealpaa/sim/montecarlo.hpp"

namespace {

using sealpaa::adders::lpaa;
using sealpaa::multibit::AdderChain;
using sealpaa::multibit::InputProfile;

void BM_RecursiveAnalyzer(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), bits);
  const InputProfile profile = InputProfile::uniform(bits, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sealpaa::analysis::RecursiveAnalyzer::analyze(chain, profile)
            .p_error);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RecursiveAnalyzer)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Arg(63)  // the bit-packed evaluators cap widths at 63
    ->Complexity(benchmark::oN);

void BM_JointValueLevelDp(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const AdderChain chain = AdderChain::homogeneous(lpaa(6), bits);
  const InputProfile profile = InputProfile::uniform(bits, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sealpaa::analysis::JointCarryAnalyzer::analyze(chain, profile)
            .p_value_correct);
  }
}
BENCHMARK(BM_JointValueLevelDp)->Arg(8)->Arg(16)->Arg(32);

void BM_InclusionExclusionBaseline(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), bits);
  const InputProfile profile = InputProfile::uniform(bits, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sealpaa::baseline::InclusionExclusionAnalyzer::analyze(chain, profile)
            .p_error);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InclusionExclusionBaseline)
    ->DenseRange(4, 16, 4)
    ->Complexity([](benchmark::IterationCount n) {
      return static_cast<double>(n) *
             std::pow(2.0, static_cast<double>(n));
    });

void BM_MonteCarlo100k(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const AdderChain chain = AdderChain::homogeneous(lpaa(1), bits);
  const InputProfile profile = InputProfile::uniform(bits, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sealpaa::sim::MonteCarloSimulator::run(chain, profile, 100'000)
            .metrics.stage_failure_rate());
  }
}
BENCHMARK(BM_MonteCarlo100k)->Arg(8)->Arg(16)->Arg(32);

void BM_HybridStageAdvance(benchmark::State& state) {
  const auto mkl = sealpaa::analysis::MklMatrices::from_cell(lpaa(6));
  sealpaa::analysis::CarryState carry{0.5, 0.5};
  for (auto _ : state) {
    carry = sealpaa::analysis::advance_stage(mkl, 0.3, 0.7, carry);
    benchmark::DoNotOptimize(carry);
    // Re-normalise so the state never degenerates to zero mass.
    carry = sealpaa::analysis::CarryState{0.5, 0.5};
  }
}
BENCHMARK(BM_HybridStageAdvance);

}  // namespace

BENCHMARK_MAIN();

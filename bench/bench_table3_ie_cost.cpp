// Reproduces Table 3: inclusion-exclusion equation terms,
// multiplications, additions and memory units versus the number of
// stages — the exponential blow-up the paper's method eliminates.
// Also *runs* the IE engine for small k as an executable witness and
// confirms it returns the same P(Error) as the O(N) recursion.
//
// Writes BENCH_table3_ie_cost.json by default (--no-json suppresses,
// --json-report=FILE redirects).
#include <iostream>

#include "sealpaa/sealpaa.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"threads", "json-report", "no-json"});
    obs::RunReport report("bench_table3_ie_cost");
    report.record_args(args);

    std::cout << util::banner(
        "Table 3: Inclusion-Exclusion cost vs number of stages (closed form)");
    util::TextTable table({"No. of stages", "Terms", "Multiplications",
                           "Additions", "Memory Units"});
    for (std::size_t c = 0; c <= 4; ++c) {
      table.set_align(c, util::Align::Right);
    }
    obs::Json cost_rows = obs::Json::array();
    for (int k = 4; k <= 32; k += 4) {
      const auto cost = baseline::inclusion_exclusion_cost(k);
      table.add_row({std::to_string(k), util::engineering(cost.terms),
                     util::engineering(cost.multiplications),
                     util::engineering(cost.additions),
                     util::engineering(cost.memory_units)});
      obs::Json entry = obs::Json::object();
      entry.set("stages", obs::Json(k));
      entry.set("terms", obs::Json(cost.terms));
      entry.set("multiplications", obs::Json(cost.multiplications));
      entry.set("additions", obs::Json(cost.additions));
      entry.set("memory_units", obs::Json(cost.memory_units));
      cost_rows.push_back(std::move(entry));
    }
    std::cout << table;
    std::cout << "\nNote: the paper's Terms/Additions entries for k >= 20 "
                 "carry unit typos (10^9 printed where 2^k gives 10^6-scale "
                 "values); the closed forms above match all small-k rows "
                 "exactly.\n";

    std::cout << "\nExecutable witness (LPAA1, p = 0.3): IE vs recursive\n";
    util::TextTable witness({"Stages", "IE terms", "IE time",
                             "Recursive time", "P(Error) IE",
                             "P(Error) recursive"});
    for (std::size_t c = 1; c <= 5; ++c) {
      witness.set_align(c, util::Align::Right);
    }
    obs::Json witness_rows = obs::Json::array();
    obs::ScopedTimer witness_timer(report.counters(), "witness");
    for (std::size_t k : {4u, 8u, 12u, 16u, 20u}) {
      const auto chain =
          multibit::AdderChain::homogeneous(adders::lpaa(1), k);
      const auto profile = multibit::InputProfile::uniform(k, 0.3);
      util::WallTimer ie_timer;
      const auto ie = baseline::InclusionExclusionAnalyzer::analyze(
          chain, profile, /*max_width=*/20);
      const double ie_seconds = ie_timer.elapsed_seconds();
      util::WallTimer rec_timer;
      const auto rec = analysis::RecursiveAnalyzer::analyze(chain, profile);
      const double rec_seconds = rec_timer.elapsed_seconds();
      witness.add_row({std::to_string(k),
                       util::with_commas(ie.terms_evaluated),
                       util::duration(ie_seconds),
                       util::duration(rec_seconds), util::prob6(ie.p_error),
                       util::prob6(rec.p_error)});
      obs::Json entry = obs::Json::object();
      entry.set("stages", obs::Json(static_cast<std::uint64_t>(k)));
      entry.set("ie_terms", obs::Json(ie.terms_evaluated));
      entry.set("ie_seconds", obs::Json(ie_seconds));
      entry.set("recursive_seconds", obs::Json(rec_seconds));
      entry.set("p_error_ie", obs::Json(ie.p_error));
      entry.set("p_error_recursive", obs::Json(rec.p_error));
      witness_rows.push_back(std::move(entry));
      report.counters().add("witness/ie_terms", ie.terms_evaluated);
    }
    witness_timer.stop();
    std::cout << witness;

    obs::Json& section = report.section("table3");
    section.set("closed_form_costs", std::move(cost_rows));
    section.set("witness", std::move(witness_rows));

    if (const auto path =
            obs::report_path(args, "BENCH_table3_ie_cost.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Reproduces Table 3: inclusion-exclusion equation terms,
// multiplications, additions and memory units versus the number of
// stages — the exponential blow-up the paper's method eliminates.
// Also *runs* the IE engine for small k as an executable witness and
// confirms it returns the same P(Error) as the O(N) recursion.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/inclusion_exclusion.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"
#include "sealpaa/util/timer.hpp"

int main() {
  using namespace sealpaa;

  std::cout << util::banner(
      "Table 3: Inclusion-Exclusion cost vs number of stages (closed form)");
  util::TextTable table({"No. of stages", "Terms", "Multiplications",
                         "Additions", "Memory Units"});
  for (std::size_t c = 0; c <= 4; ++c) table.set_align(c, util::Align::Right);
  for (int k = 4; k <= 32; k += 4) {
    const auto cost = baseline::inclusion_exclusion_cost(k);
    table.add_row({std::to_string(k), util::engineering(cost.terms),
                   util::engineering(cost.multiplications),
                   util::engineering(cost.additions),
                   util::engineering(cost.memory_units)});
  }
  std::cout << table;
  std::cout << "\nNote: the paper's Terms/Additions entries for k >= 20 carry "
               "unit typos (10^9 printed where 2^k gives 10^6-scale values); "
               "the closed forms above match all small-k rows exactly.\n";

  std::cout << "\nExecutable witness (LPAA1, p = 0.3): IE vs recursive\n";
  util::TextTable witness({"Stages", "IE terms", "IE time", "Recursive time",
                           "P(Error) IE", "P(Error) recursive"});
  for (std::size_t c = 1; c <= 5; ++c) witness.set_align(c, util::Align::Right);
  for (std::size_t k : {4u, 8u, 12u, 16u, 20u}) {
    const auto chain =
        multibit::AdderChain::homogeneous(adders::lpaa(1), k);
    const auto profile = multibit::InputProfile::uniform(k, 0.3);
    util::WallTimer ie_timer;
    const auto ie = baseline::InclusionExclusionAnalyzer::analyze(
        chain, profile, /*max_width=*/20);
    const double ie_seconds = ie_timer.elapsed_seconds();
    util::WallTimer rec_timer;
    const auto rec = analysis::RecursiveAnalyzer::analyze(chain, profile);
    const double rec_seconds = rec_timer.elapsed_seconds();
    witness.add_row({std::to_string(k),
                     util::with_commas(ie.terms_evaluated),
                     util::duration(ie_seconds), util::duration(rec_seconds),
                     util::prob6(ie.p_error), util::prob6(rec.p_error)});
  }
  std::cout << witness;
  return 0;
}

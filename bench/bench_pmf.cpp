// Analytic error-PMF propagation vs simulation: the tentpole claim of
// the analysis layer is that MED/MSE/WCE come out of the O(N * support)
// propagation *exactly*, with zero simulation samples.  This bench
// checks that claim at three widths and measures what it buys:
//
//   * width 8  — analytic MED/MSE against the weighted-exhaustive
//     enumeration (2^17 assignments), gated at 1e-9 relative
//     divergence; the run exits non-zero past the gate;
//   * width 16 — analytic MED against a Monte Carlo 99% CI (the
//     containment boolean is gated by scripts/check_bench_regression.py);
//   * width 32 — far beyond any enumeration: analytic MED with
//     work_items == 32 and zero samples, again inside the MC 99% CI.
//
// The reported speedup is analytic propagation vs the cheapest honest
// simulated MED at width 8 (the weighted enumeration); wall-clock only,
// the correctness gates are exact.
//
// Hand-rolled driver (not google-benchmark) so the run can emit the
// versioned sealpaa.run-report JSON: results land in BENCH_pmf.json
// next to the binary (--no-json suppresses, --json-report=FILE
// redirects).
//
// Flags: --reps=5  --samples=400000  --p=0.42  --quick
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

/// The realistic hybrid shape: approximate LPAA low bits, exact high
/// bits — the configuration whose PMF support stays small at any width.
multibit::AdderChain hybrid_chain(std::size_t width,
                                  std::size_t approximate_lsbs) {
  std::vector<adders::AdderCell> stages;
  stages.reserve(width);
  for (std::size_t s = 0; s < width; ++s) {
    stages.push_back(s < approximate_lsbs
                         ? adders::lpaa(1 + static_cast<int>(s % 7))
                         : adders::accurate());
  }
  return multibit::AdderChain(std::move(stages));
}

double relative_gap(double got, double want) {
  return std::abs(got - want) / std::max(1.0, std::abs(want));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"reps", "samples", "p", "quick", "threads",
                       "json-report", "no-json"});
    const bool quick = args.get_bool("quick", false);
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 2 : 5));
    const auto samples = args.get_uint("samples", quick ? 100'000 : 400'000);
    const double p = args.get_double("p", 0.42);

    std::cout << util::banner(
        "analytic error-PMF vs simulated MED (widths 8/16/32)");
    std::cout << "p: " << util::fixed(p, 2) << "  reps: " << reps
              << "  mc samples: " << util::with_commas(samples) << "\n";

    obs::RunReport report("bench_pmf");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");
    obs::Json& section = report.section("pmf");
    section.set("p", obs::Json(p));
    section.set("reps",
                obs::Json(static_cast<std::uint64_t>(
                    static_cast<std::size_t>(reps))));

    bool ok = true;

    // ---------------------------------------------------------------
    // Width 8: exact gate against the weighted enumeration.
    // ---------------------------------------------------------------
    const std::size_t w8 = 8;
    const auto chain8 = hybrid_chain(w8, w8);  // fully approximate
    const auto profile8 = multibit::InputProfile::uniform(w8, p);

    engine::Evaluation analytic8;
    double analytic_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      util::WallTimer timer;
      analytic8 = engine::evaluate(chain8, profile8,
                                   engine::Method::kAnalyticPmf);
      const double seconds = timer.elapsed_seconds();
      if (rep == 0 || seconds < analytic_seconds) analytic_seconds = seconds;
    }
    engine::Evaluation oracle8;
    double oracle_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      util::WallTimer timer;
      oracle8 = engine::evaluate(chain8, profile8,
                                 engine::Method::kWeightedExhaustive);
      const double seconds = timer.elapsed_seconds();
      if (rep == 0 || seconds < oracle_seconds) oracle_seconds = seconds;
    }
    const double med_gap =
        relative_gap(analytic8.distribution->mean_error_distance,
                     oracle8.distribution->mean_error_distance);
    const double mse_gap =
        relative_gap(analytic8.distribution->mean_squared_error,
                     oracle8.distribution->mean_squared_error);
    const bool w8_exact = med_gap <= 1e-9 && mse_gap <= 1e-9 &&
                          analytic8.distribution->worst_case_error ==
                              oracle8.distribution->worst_case_error;
    ok = ok && w8_exact;
    const double speedup =
        analytic_seconds > 0.0 ? oracle_seconds / analytic_seconds : 0.0;

    std::cout << "  width 8   analytic " << util::duration(analytic_seconds)
              << "  enumeration " << util::duration(oracle_seconds)
              << "  MED gap " << med_gap << "  MSE gap " << mse_gap
              << (w8_exact ? "  ok" : "  FAIL") << "\n";

    obs::Json w8_json = obs::Json::object();
    w8_json.set("analytic_seconds", obs::Json(analytic_seconds));
    w8_json.set("enumeration_seconds", obs::Json(oracle_seconds));
    w8_json.set("analytic_vs_enumeration_speedup", obs::Json(speedup));
    w8_json.set("med", obs::Json(analytic8.distribution->mean_error_distance));
    w8_json.set("mse", obs::Json(analytic8.distribution->mean_squared_error));
    w8_json.set("med_relative_gap", obs::Json(med_gap));
    w8_json.set("mse_relative_gap", obs::Json(mse_gap));
    w8_json.set("exact_within_1e9", obs::Json(w8_exact));
    w8_json.set("evaluation", obs::to_json(analytic8));
    section.set("width8", std::move(w8_json));

    // ---------------------------------------------------------------
    // Widths 16 and 32: Monte Carlo 99% CI containment.
    // ---------------------------------------------------------------
    bool all_inside_ci = true;
    for (const std::size_t width : {std::size_t{16}, std::size_t{32}}) {
      const auto chain = hybrid_chain(width, 8);
      const auto profile = multibit::InputProfile::uniform(width, p);

      engine::Evaluation analytic;
      double seconds = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        util::WallTimer timer;
        analytic = engine::evaluate(chain, profile,
                                    engine::Method::kAnalyticPmf);
        const double elapsed = timer.elapsed_seconds();
        if (rep == 0 || elapsed < seconds) seconds = elapsed;
      }

      engine::EvaluateOptions mc_options;
      mc_options.samples = samples;
      mc_options.seed = 0xbe2c'50f5'0000'0001ULL + width;
      util::WallTimer mc_timer;
      const engine::Evaluation mc = engine::evaluate(
          chain, profile, engine::Method::kMonteCarlo, mc_options);
      const double mc_seconds = mc_timer.elapsed_seconds();

      const double med_hat = mc.distribution->mean_error_distance;
      const double mse_hat = mc.distribution->mean_squared_error;
      const double variance = std::max(0.0, mse_hat - med_hat * med_hat);
      const double half_width =
          2.5758 * std::sqrt(variance / static_cast<double>(samples));
      const double med = analytic.distribution->mean_error_distance;
      const bool inside =
          med >= med_hat - half_width && med <= med_hat + half_width;
      ok = ok && inside;
      all_inside_ci = all_inside_ci && inside;

      std::cout << "  width " << width << "  analytic "
                << util::duration(seconds) << " (0 samples)  MC "
                << util::duration(mc_seconds) << " ("
                << util::with_commas(samples) << " samples)  MED "
                << util::fixed(med, 6) << "  CI ["
                << util::fixed(med_hat - half_width, 6) << ", "
                << util::fixed(med_hat + half_width, 6) << "]"
                << (inside ? "  ok" : "  FAIL") << "\n";

      obs::Json entry = obs::Json::object();
      entry.set("analytic_seconds", obs::Json(seconds));
      entry.set("monte_carlo_seconds", obs::Json(mc_seconds));
      entry.set("analytic_med", obs::Json(med));
      entry.set("analytic_work_items", obs::Json(analytic.work_items));
      entry.set("analytic_simulation_samples",
                obs::Json(std::uint64_t{0}));
      entry.set("zero_simulation_samples", obs::Json(true));
      entry.set("mc_samples", obs::Json(samples));
      entry.set("mc_med", obs::Json(med_hat));
      entry.set("mc_ci_low", obs::Json(med_hat - half_width));
      entry.set("mc_ci_high", obs::Json(med_hat + half_width));
      entry.set("med_inside_mc_99ci", obs::Json(inside));
      entry.set("pmf_support",
                obs::Json(analytic.pmf ? analytic.pmf->support
                                       : std::uint64_t{0}));
      section.set("width" + std::to_string(width), std::move(entry));
    }
    total.stop();

    // Gated metrics hoisted to the section's top level, where
    // scripts/check_bench_regression.py reads them: the two correctness
    // flags must stay true, the speedup at >= 50% of the reference.
    section.set("exact_within_1e9", obs::Json(w8_exact));
    section.set("med_inside_mc_99ci", obs::Json(all_inside_ci));
    section.set("zero_simulation_samples", obs::Json(true));
    section.set("analytic_vs_enumeration_speedup", obs::Json(speedup));

    std::cout << "speedup (w8 analytic vs enumeration) = "
              << util::fixed(speedup, 2) << "x\nresult: "
              << (ok ? "ok" : "DIVERGED") << "\n";
    if (!ok) {
      std::cerr << "FAIL: analytic PMF diverged from the simulation "
                   "oracles\n";
    }

    if (const auto path = obs::report_path(args, "BENCH_pmf.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

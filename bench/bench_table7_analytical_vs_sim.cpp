// Reproduces Table 7: P(E) of LPAA 1-7 for N = 2..12 with all input
// probabilities at 0.1 — proposed analytical method vs 1M-case
// simulation (paper's setup) side by side.
//
// Writes BENCH_table7_analytical_vs_sim.json by default (--no-json
// suppresses, --json-report=FILE redirects).
#include <iostream>

#include "sealpaa/sealpaa.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"samples", "p", "threads", "json-report", "no-json"});
    const std::uint64_t samples = args.get_uint("samples", 1'000'000);
    const double p = args.get_double("p", 0.1);

    obs::RunReport report("bench_table7_analytical_vs_sim");
    report.record_args(args);

    std::cout << util::banner(
        "Table 7: Analytical vs simulation, A_i = B_i = Cin = " +
        util::fixed(p, 1) + ", " + util::with_commas(samples) + " MC cases");

    std::vector<std::string> header = {"Bits"};
    for (int cell = 1; cell <= 7; ++cell) {
      header.push_back("LPAA" + std::to_string(cell) + " Analyt.");
      header.push_back("LPAA" + std::to_string(cell) + " Sim.");
    }
    util::TextTable table(header);
    for (std::size_t c = 0; c < header.size(); ++c) {
      table.set_align(c, util::Align::Right);
    }

    obs::Json rows = obs::Json::array();
    obs::ScopedTimer sweep_timer(report.counters(), "table7");
    for (std::size_t bits = 2; bits <= 12; bits += 2) {
      const auto profile = multibit::InputProfile::uniform(bits, p);
      std::vector<std::string> row = {std::to_string(bits)};
      for (int cell = 1; cell <= 7; ++cell) {
        const double analytical =
            analysis::RecursiveAnalyzer::error_probability(
                adders::lpaa(cell), profile);
        const auto chain =
            multibit::AdderChain::homogeneous(adders::lpaa(cell), bits);
        const auto mc = sim::MonteCarloSimulator::run(
            chain, profile, samples,
            /*seed=*/static_cast<std::uint64_t>(0x7ab1e7) *
                    static_cast<std::uint64_t>(bits) +
                static_cast<std::uint64_t>(cell));
        row.push_back(util::fixed(analytical, 5));
        row.push_back(util::fixed(mc.metrics.stage_failure_rate(), 5));

        obs::Json entry = obs::Json::object();
        entry.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
        entry.set("cell", obs::Json("LPAA" + std::to_string(cell)));
        entry.set("analytical_p_error", obs::Json(analytical));
        entry.set("simulated_p_error",
                  obs::Json(mc.metrics.stage_failure_rate()));
        entry.set("simulated_ci", obs::to_json(mc.stage_failure_ci));
        entry.set("samples", obs::Json(mc.samples));
        entry.set("seconds", obs::Json(mc.seconds));
        rows.push_back(std::move(entry));
        report.counters().add("table7/samples", mc.samples);
        report.counters().add("table7/configurations");
      }
      table.add_row(std::move(row));
    }
    sweep_timer.stop();
    std::cout << table;
    std::cout << "\nPaper's analytical column is reproduced exactly (see "
                 "tests/test_recursive.cpp, Table7 golden test); simulation "
                 "columns agree to ~3 decimals as in the paper.\n";

    obs::Json& section = report.section("table7");
    section.set("p", obs::Json(p));
    section.set("samples_per_configuration", obs::Json(samples));
    section.set("rows", std::move(rows));

    if (const auto path = obs::report_path(
            args, "BENCH_table7_analytical_vs_sim.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

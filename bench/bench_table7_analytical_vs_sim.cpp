// Reproduces Table 7: P(E) of LPAA 1-7 for N = 2..12 with all input
// probabilities at 0.1 — proposed analytical method vs 1M-case
// simulation (paper's setup) side by side.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/sim/montecarlo.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::uint64_t samples =
      static_cast<std::uint64_t>(args.get_int("samples", 1'000'000));
  const double p = args.get_double("p", 0.1);

  std::cout << util::banner(
      "Table 7: Analytical vs simulation, A_i = B_i = Cin = " +
      util::fixed(p, 1) + ", " + util::with_commas(samples) + " MC cases");

  std::vector<std::string> header = {"Bits"};
  for (int cell = 1; cell <= 7; ++cell) {
    header.push_back("LPAA" + std::to_string(cell) + " Analyt.");
    header.push_back("LPAA" + std::to_string(cell) + " Sim.");
  }
  util::TextTable table(header);
  for (std::size_t c = 0; c < header.size(); ++c) {
    table.set_align(c, util::Align::Right);
  }

  for (std::size_t bits = 2; bits <= 12; bits += 2) {
    const auto profile = multibit::InputProfile::uniform(bits, p);
    std::vector<std::string> row = {std::to_string(bits)};
    for (int cell = 1; cell <= 7; ++cell) {
      const double analytical =
          analysis::RecursiveAnalyzer::error_probability(adders::lpaa(cell),
                                                         profile);
      const auto chain =
          multibit::AdderChain::homogeneous(adders::lpaa(cell), bits);
      const auto mc = sim::MonteCarloSimulator::run(
          chain, profile, samples,
          /*seed=*/static_cast<std::uint64_t>(0x7ab1e7) *
                  static_cast<std::uint64_t>(bits) +
              static_cast<std::uint64_t>(cell));
      row.push_back(util::fixed(analytical, 5));
      row.push_back(util::fixed(mc.metrics.stage_failure_rate(), 5));
    }
    table.add_row(std::move(row));
  }
  std::cout << table;
  std::cout << "\nPaper's analytical column is reproduced exactly (see "
               "tests/test_recursive.cpp, Table7 golden test); simulation "
               "columns agree to ~3 decimals as in the paper.\n";
  return 0;
}

// Reproduces Table 5: the M, K and L analysis matrices derived from each
// LPAA's truth table (§4.2 steps 1-3).
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/mkl.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  std::cout << util::banner("Table 5: M, K and L matrices for LPAA 1-7");
  util::TextTable table({"LPAA Type", "M Matrix", "K Matrix", "L Matrix"});
  for (const adders::AdderCell& cell : adders::builtin_lpaas()) {
    const auto mkl = analysis::MklMatrices::from_cell(cell);
    table.add_row({cell.name(), analysis::MklMatrices::render(mkl.m),
                   analysis::MklMatrices::render(mkl.k),
                   analysis::MklMatrices::render(mkl.l)});
  }
  std::cout << table;

  std::cout << "\nFor reference, the accurate cell:\n";
  const auto accu = analysis::MklMatrices::from_cell(adders::accurate());
  std::cout << "AccuFA  M=" << analysis::MklMatrices::render(accu.m)
            << "  K=" << analysis::MklMatrices::render(accu.k)
            << "  L=" << analysis::MklMatrices::render(accu.l) << "\n";
  return 0;
}

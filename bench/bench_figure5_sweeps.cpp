// Reproduces Figure 5: probability of success and error for every LPAA
// versus adder width, in the paper's three input regimes:
//   (a) equally probable operands (p = 0.5),
//   (b) low input probability (p = 0.1),
//   (c) high input probability (p = 0.9).
// The paper's qualitative findings are checked in-line: LPAA7 wins at
// low p, LPAA1 is strong at high p, LPAA6 is good everywhere ("four
// season adder"), and at p = 0.5 no cell remains useful beyond ~10 bits.
#include <algorithm>
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/explore/robustness.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

#include "sealpaa/util/csv.hpp"

namespace {

void sweep(const char* label, double p, std::size_t max_bits,
           const std::string& csv_dir) {
  using namespace sealpaa;
  std::cout << util::banner(std::string("Figure 5") + label +
                            ": P(Error) vs adder width, p = " +
                            util::fixed(p, 1));
  std::vector<std::string> header = {"Bits"};
  for (int cell = 1; cell <= 7; ++cell) {
    header.push_back("LPAA" + std::to_string(cell));
  }
  util::TextTable table(header);
  for (std::size_t c = 0; c < header.size(); ++c) {
    table.set_align(c, util::Align::Right);
  }
  for (std::size_t bits = 2; bits <= max_bits; bits += 2) {
    const auto profile = multibit::InputProfile::uniform(bits, p);
    std::vector<std::string> row = {std::to_string(bits)};
    for (int cell = 1; cell <= 7; ++cell) {
      row.push_back(util::fixed(
          analysis::RecursiveAnalyzer::error_probability(
              adders::lpaa(cell), profile),
          5));
    }
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  if (!csv_dir.empty()) {
    util::CsvWriter csv(csv_dir + "/figure5" + label + ".csv");
    std::vector<std::string> csv_header = {"bits"};
    for (int cell = 1; cell <= 7; ++cell) {
      csv_header.push_back("LPAA" + std::to_string(cell));
    }
    csv.write_row(csv_header);
    for (std::size_t bits = 2; bits <= max_bits; bits += 2) {
      const auto profile = multibit::InputProfile::uniform(bits, p);
      std::vector<std::string> row = {std::to_string(bits)};
      for (int cell = 1; cell <= 7; ++cell) {
        row.push_back(util::sig(
            analysis::RecursiveAnalyzer::error_probability(
                adders::lpaa(cell), profile),
            10));
      }
      csv.write_row(row);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t max_bits =
      static_cast<std::size_t>(args.get_int("max-bits", 16));
  const std::string csv_dir = args.get("csv", "");

  sweep("(a)", 0.5, max_bits, csv_dir);
  sweep("(b)", 0.1, max_bits, csv_dir);
  sweep("(c)", 0.9, max_bits, csv_dir);
  if (!csv_dir.empty()) {
    std::cout << "CSV series written to " << csv_dir << "/figure5(*).csv\n";
  }

  // Qualitative checks from the paper's discussion.
  const auto error_at = [](int cell, double p, std::size_t bits) {
    return analysis::RecursiveAnalyzer::error_probability(
        adders::lpaa(cell), multibit::InputProfile::uniform(bits, p));
  };

  std::cout << util::banner("Qualitative checks (paper 5)");
  const bool lpaa7_wins_low = error_at(7, 0.1, 8) < error_at(1, 0.1, 8);
  std::cout << "LPAA7 beats LPAA1 at low p (0.1, 8 bits):  "
            << (lpaa7_wins_low ? "yes" : "NO") << "  ("
            << util::fixed(error_at(7, 0.1, 8), 5) << " vs "
            << util::fixed(error_at(1, 0.1, 8), 5) << ")\n";
  const bool lpaa1_wins_high = error_at(1, 0.9, 8) < error_at(7, 0.9, 8);
  std::cout << "LPAA1 beats LPAA7 at high p (0.9, 8 bits): "
            << (lpaa1_wins_high ? "yes" : "NO") << "  ("
            << util::fixed(error_at(1, 0.9, 8), 5) << " vs "
            << util::fixed(error_at(7, 0.9, 8), 5) << ")\n";

  double worst_best_cell = 1.0;
  for (int cell = 1; cell <= 7; ++cell) {
    worst_best_cell = std::min(worst_best_cell, error_at(cell, 0.5, 12));
  }
  std::cout << "Best achievable P(E) at p = 0.5, 12 bits: "
            << util::fixed(worst_best_cell, 5)
            << "  (paper: none useful beyond ~10 bits of cascading)\n";

  const auto ranking = explore::four_season_ranking(8);
  std::cout << "Four-season ranking by worst-case P(E) over p-grid: ";
  for (const auto& score : ranking) {
    std::cout << score.cell_name << "("
              << util::fixed(score.worst_error, 3) << ") ";
  }
  std::cout << "\n(The paper crowns LPAA6 the 'Four Season Adder'.)\n";
  return 0;
}

// Reproduces Table 1: truth tables of AccuFA and LPAA 1-7, with error
// cases marked (the paper prints them bold red; we mark with '*').
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;

  util::TextTable table;
  std::vector<std::string> header = {"A", "B", "Cin"};
  for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
    header.push_back(cell.name() + " S/C");
  }
  table.set_header(header);

  for (std::size_t row = 0; row < adders::AdderCell::kRows; ++row) {
    std::vector<std::string> cells = {
        std::to_string((row >> 2) & 1U), std::to_string((row >> 1) & 1U),
        std::to_string(row & 1U)};
    for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
      std::string entry = std::to_string(cell.rows()[row].sum) + "/" +
                          std::to_string(cell.rows()[row].carry);
      if (!cell.row_is_success(row)) entry += " *";
      cells.push_back(entry);
    }
    table.add_row(std::move(cells));
  }

  std::cout << util::banner(
      "Table 1: Truth Tables of Single-Bit LPAAs ('*' = error case)");
  std::cout << table;

  std::cout << "\nError cases per cell: ";
  for (const adders::AdderCell& cell : adders::builtin_lpaas()) {
    std::cout << cell.name() << "=" << cell.error_case_count() << " ";
  }
  std::cout << "\n";
  return 0;
}

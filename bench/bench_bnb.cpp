// Proves the branch-and-bound DSE earns its "quality mode" title: on
// exhaustively checkable spaces it must reproduce the exhaustive
// optimizer's optimum bit-for-bit for all three objectives while
// expanding at least 10x fewer nodes, and a suspended + resumed run must
// reproduce the uninterrupted search exactly.
//
// Three gated legs per run:
//   optimum identity   bnb stages/scores == exhaustive (err at width 14
//                      over a 3-cell palette, med/mse at width 10 under
//                      a power budget);
//   node ratio         exhaustive leaves scored vs bnb nodes touched
//                      (expanded + leaf-scored), gated at >= 10x per
//                      objective;
//   determinism        the 8-thread run returns the 1-thread design and
//                      a kill/resume cycle matches the uninterrupted
//                      run's incumbent and nodes_expanded.
// Wall-clock numbers (speedup_vs_exhaustive_*, thread_scaling_8t) are
// reported for the regression gate; the scaling key is informational.
//
// Hand-rolled driver (not google-benchmark) so the run can emit the
// versioned sealpaa.run-report JSON: results land in BENCH_bnb.json next
// to the binary (--no-json suppresses, --json-report=FILE redirects).
//
// Flags: --reps=3  --quick
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "sealpaa/sealpaa.hpp"

namespace {

using namespace sealpaa;

/// Deterministic non-uniform profile.  A skewed profile matters here:
/// uniform p = 0.5 creates huge score-tie plateaus that no admissible
/// bound may prune (ties must be explored to keep the optimum exact),
/// which would understate the pruning the search achieves on realistic
/// operand statistics.
multibit::InputProfile bench_profile(std::size_t width) {
  std::vector<double> p_a;
  std::vector<double> p_b;
  for (std::size_t i = 0; i < width; ++i) {
    p_a.push_back(0.10 + 0.08 * static_cast<double>(i % 10));
    p_b.push_back(0.90 - 0.07 * static_cast<double>(i % 10));
  }
  return multibit::InputProfile(p_a, p_b, 0.25);
}

double min_of_reps(int reps, const std::function<double()>& run) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double seconds = run();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

bool same_design(const explore::HybridDesign& a,
                 const explore::HybridDesign& b) {
  if (a.stages.size() != b.stages.size()) return false;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    if (a.stages[i].name() != b.stages[i].name()) return false;
  }
  return a.p_success == b.p_success && a.med == b.med && a.mse == b.mse;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"reps", "quick", "threads", "json-report", "no-json"});
    const bool quick = args.get_bool("quick", false);
    const int reps = static_cast<int>(args.get_uint("reps", quick ? 1 : 3));

    // Two regimes, one per bound family.
    //
    // err: an all-approximate 3-cell palette keeps the exhaustive
    // reference tractable at width 14 (3^14 ~ 4.8M designs) while
    // spanning the paper's regimes (LPAA1 high-p, LPAA7 low-p, LPAA3
    // in between).  The success-mass bound is palette-agnostic.
    //
    // med/mse: the residue bound only sees error mass that is NOT a
    // multiple of 2^d, so it cannot prune when the optimum's MED is
    // itself dominated by high-bit errors — which is exactly what an
    // unconstrained approximate-only palette produces.  The bound's
    // regime (and the paper's use case, Sec. 6) is the power-budgeted
    // search where accurate cells are affordable for the high bits and
    // the optimum MED is small; the budget below admits AccuFA on all
    // but the four lowest stages (1385 nW/stage) with LPAA3 (198 nW)
    // covering the rest.
    const std::vector<adders::AdderCell> err_palette = {
        adders::lpaa(1), adders::lpaa(3), adders::lpaa(7)};
    const std::vector<adders::AdderCell> pmf_palette = {
        adders::accurate(), adders::lpaa(2), adders::lpaa(3)};
    const std::size_t pmf_width = quick ? std::size_t{8} : std::size_t{10};
    explore::DesignConstraints pmf_constraints;
    pmf_constraints.max_power_nw =
        1385.0 * static_cast<double>(pmf_width - 4) + 198.0 * 4;
    struct Leg {
      explore::Objective objective;
      std::size_t width;
      const std::vector<adders::AdderCell>& palette;
      explore::DesignConstraints constraints;
    };
    const std::vector<Leg> legs = {
        {explore::Objective::kErrorRate,
         quick ? std::size_t{10} : std::size_t{14}, err_palette, {}},
        {explore::Objective::kMed, pmf_width, pmf_palette, pmf_constraints},
        {explore::Objective::kMse, pmf_width, pmf_palette, pmf_constraints},
    };

    std::cout << util::banner(
        "branch-and-bound DSE: exact optimum vs exhaustive enumeration");
    std::cout << "palettes: " << err_palette.size() << " cells (err), "
              << pmf_palette.size() << " cells + "
              << util::fixed(*pmf_constraints.max_power_nw, 0)
              << " nW budget (med/mse)  reps: " << reps
              << (quick ? "  (quick)" : "") << "\n";

    obs::RunReport report("bench_bnb");
    report.record_args(args);
    obs::ScopedTimer total(report.counters(), "total");
    obs::Json& section = report.section("bnb");

    bool identical = true;
    bool threads_identical = true;
    bool resume_identical = true;
    double min_node_ratio = 0.0;
    bool first_ratio = true;

    for (const Leg& leg : legs) {
      const std::string name(explore::objective_name(leg.objective));
      const multibit::InputProfile profile = bench_profile(leg.width);

      // Exhaustive is pinned to 1 thread so speedup_vs_exhaustive_* is a
      // single-thread vs single-thread comparison and does not shrink on
      // machines with more cores than the committed reference run.
      const explore::HybridDesign exact = explore::HybridOptimizer::exhaustive(
          profile, leg.palette, leg.constraints, 50'000'000, 1, leg.objective);
      explore::BnbOptions one_thread;
      one_thread.threads = 1;
      const explore::BnbResult bnb = explore::BranchBoundOptimizer::optimize(
          profile, leg.palette, leg.constraints, leg.objective, one_thread);
      identical = identical && bnb.complete && same_design(bnb.design, exact);

      // Nodes the two searches touched: exhaustive scores every design;
      // bnb pays one bound test per expanded node plus the leaf scores.
      const double exhaustive_nodes =
          static_cast<double>(exact.stats.candidates_evaluated);
      const double bnb_nodes =
          static_cast<double>(bnb.design.stats.nodes_expanded +
                              bnb.design.stats.candidates_evaluated);
      const double node_ratio =
          bnb_nodes > 0.0 ? exhaustive_nodes / bnb_nodes : 0.0;
      if (first_ratio || node_ratio < min_node_ratio) {
        min_node_ratio = node_ratio;
        first_ratio = false;
      }

      const double exhaustive_seconds = min_of_reps(reps, [&] {
        const util::WallTimer timer;
        volatile double guard =
            explore::HybridOptimizer::exhaustive(profile, leg.palette,
                                                 leg.constraints, 50'000'000,
                                                 1, leg.objective)
                .p_success;
        (void)guard;
        return timer.elapsed_seconds();
      });
      const double bnb_seconds = min_of_reps(reps, [&] {
        const util::WallTimer timer;
        volatile double guard =
            explore::BranchBoundOptimizer::optimize(profile, leg.palette,
                                                    leg.constraints,
                                                    leg.objective, one_thread)
                .design.p_success;
        (void)guard;
        return timer.elapsed_seconds();
      });
      const double speedup = bnb_seconds > 0.0
                                 ? exhaustive_seconds / bnb_seconds
                                 : 0.0;

      std::cout << "  " << name << " w" << leg.width << ":  exhaustive "
                << util::duration(exhaustive_seconds) << " ("
                << exact.stats.candidates_evaluated << " designs)  bnb "
                << util::duration(bnb_seconds) << " ("
                << bnb.design.stats.nodes_expanded << " expanded, "
                << bnb.design.stats.candidates_evaluated << " scored)  "
                << util::fixed(node_ratio, 1) << "x fewer nodes, "
                << util::fixed(speedup, 1) << "x faster\n";

      section.set("node_ratio_" + name, obs::Json(node_ratio));
      section.set("speedup_vs_exhaustive_" + name, obs::Json(speedup));
      section.set("nodes_expanded_" + name,
                  obs::Json(bnb.design.stats.nodes_expanded));
      section.set("bound_cutoffs_" + name,
                  obs::Json(bnb.design.stats.bound_cutoffs));
    }

    // Parallel-scaling leg: the widest err search at 1 vs 8 workers must
    // return the same design; the wall-clock ratio is informational
    // (CI machines may have 2 cores).
    {
      const Leg& leg = legs.front();
      const multibit::InputProfile profile = bench_profile(leg.width);
      explore::BnbOptions one_thread;
      one_thread.threads = 1;
      explore::BnbOptions eight_threads;
      eight_threads.threads = 8;
      const explore::BnbResult one = explore::BranchBoundOptimizer::optimize(
          profile, leg.palette, leg.constraints, leg.objective, one_thread);
      const explore::BnbResult eight = explore::BranchBoundOptimizer::optimize(
          profile, leg.palette, leg.constraints, leg.objective, eight_threads);
      threads_identical = same_design(one.design, eight.design);
      const double t1 = min_of_reps(reps, [&] {
        const util::WallTimer timer;
        volatile double guard =
            explore::BranchBoundOptimizer::optimize(profile, leg.palette,
                                                    leg.constraints,
                                                    leg.objective, one_thread)
                .design.p_success;
        (void)guard;
        return timer.elapsed_seconds();
      });
      const double t8 = min_of_reps(reps, [&] {
        const util::WallTimer timer;
        volatile double guard =
            explore::BranchBoundOptimizer::optimize(profile, leg.palette,
                                                    leg.constraints,
                                                    leg.objective,
                                                    eight_threads)
                .design.p_success;
        (void)guard;
        return timer.elapsed_seconds();
      });
      const double scaling = t8 > 0.0 ? t1 / t8 : 0.0;
      std::cout << "  8-thread design identical: "
                << (threads_identical ? "yes" : "NO")
                << "  thread_scaling_8t = " << util::fixed(scaling, 2)
                << "x\n";
      section.set("thread_scaling_8t", obs::Json(scaling));
    }

    // Kill/resume leg: suspend after 3 units, resume from the
    // checkpoint, and require the uninterrupted run's incumbent and
    // nodes_expanded total exactly.
    {
      const Leg& leg = legs.front();
      const multibit::InputProfile profile = bench_profile(leg.width);
      explore::BnbOptions suspend;
      suspend.threads = 1;
      suspend.suspend_after_units = 3;
      const explore::BnbResult interrupted =
          explore::BranchBoundOptimizer::optimize(profile, leg.palette,
                                                  leg.constraints,
                                                  leg.objective, suspend);
      explore::BnbOptions one_thread;
      one_thread.threads = 1;
      const explore::BnbResult resumed = explore::BranchBoundOptimizer::resume(
          profile, leg.palette, interrupted.checkpoint, leg.constraints,
          leg.objective, one_thread);
      const explore::BnbResult uninterrupted =
          explore::BranchBoundOptimizer::optimize(profile, leg.palette,
                                                  leg.constraints,
                                                  leg.objective, one_thread);
      resume_identical =
          !interrupted.complete && resumed.complete &&
          same_design(resumed.design, uninterrupted.design) &&
          resumed.design.stats.nodes_expanded ==
              uninterrupted.design.stats.nodes_expanded &&
          resumed.design.stats.candidates_evaluated ==
              uninterrupted.design.stats.candidates_evaluated;
      std::cout << "  kill/resume reproduces uninterrupted run: "
                << (resume_identical ? "yes" : "NO") << "\n";
    }
    total.stop();

    const bool ratio_ok = min_node_ratio >= 10.0;
    std::cout << "optimum identical to exhaustive: "
              << (identical ? "yes" : "NO") << "  min node ratio = "
              << util::fixed(min_node_ratio, 1) << "x  (gate: >= 10x "
              << (ratio_ok ? "ok" : "FAIL") << ")\n";
    if (!identical) {
      std::cerr << "FAIL: bnb diverged from the exhaustive optimum\n";
    }
    if (!ratio_ok) {
      std::cerr << "FAIL: node ratio below 10x\n";
    }
    if (!threads_identical) {
      std::cerr << "FAIL: 8-thread design differs from 1-thread\n";
    }
    if (!resume_identical) {
      std::cerr << "FAIL: resume did not reproduce the uninterrupted run\n";
    }

    section.set("reps", obs::Json(static_cast<std::uint64_t>(
                            static_cast<std::size_t>(reps))));
    section.set("quick", obs::Json(quick));
    section.set("min_node_ratio", obs::Json(min_node_ratio));
    section.set("identical", obs::Json(identical));
    section.set("node_ratio_ok", obs::Json(ratio_ok));
    section.set("threads_identical", obs::Json(threads_identical));
    section.set("resume_identical", obs::Json(resume_identical));

    if (const auto path = obs::report_path(args, "BENCH_bnb.json")) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return identical && ratio_ok && threads_identical && resume_identical
               ? 0
               : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Extension X11: the full signed-error distribution of each 8-bit LPAA
// chain (exact, from weighted enumeration) — beyond P(E), which the
// paper reports, to the magnitude spectrum that application-level
// quality (PSNR/SNR) actually depends on.
#include <cmath>
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/joint.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;
  const std::size_t bits = 8;
  const auto profile = multibit::InputProfile::uniform(bits, 0.5);

  std::cout << util::banner(
      "X11: exact signed-error distribution, 8-bit chains, p = 0.5");

  util::TextTable table({"Cell", "P(err=0)", "P(|err|<4)", "P(|err|<32)",
                         "mean err", "RMS err", "worst err",
                         "distinct values"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_align(c, util::Align::Right);

  for (const adders::AdderCell& cell : adders::builtin_lpaas()) {
    const auto chain = multibit::AdderChain::homogeneous(cell, bits);
    const auto report = baseline::WeightedExhaustive::analyze(chain, profile);
    double p_zero = 0.0;
    double p_small = 0.0;
    double p_medium = 0.0;
    for (const auto& [error, probability] : report.error_distribution) {
      if (error == 0) p_zero += probability;
      if (std::llabs(error) < 4) p_small += probability;
      if (std::llabs(error) < 32) p_medium += probability;
    }
    // Cross-check the closed-form moments against the distribution.
    const auto moments =
        analysis::JointCarryAnalyzer::moments(chain, profile);
    table.add_row(
        {cell.name(), util::prob6(p_zero), util::prob6(p_small),
         util::prob6(p_medium), util::fixed(moments.mean, 2),
         util::fixed(moments.rms(), 2),
         std::to_string(report.worst_case_error),
         std::to_string(report.error_distribution.size())});
  }
  std::cout << table;

  std::cout << "\nReading guide: error *rate* and error *magnitude* rank "
               "the cells differently.  LPAA6 matches LPAA2's P(err = 0) "
               "but its carry-only faults explode in magnitude (RMS ~181, "
               "worst 510) because a wrong carry keeps rippling, while "
               "LPAA1's more frequent faults stay small (RMS ~60).  LPAA7 "
               "errs with a constant positive bias (mean ~64 = its two "
               "sum-up rows).  Application metrics (PSNR/SNR) follow RMS, "
               "not P(E) - which is why this library reports both.\n";
  return 0;
}

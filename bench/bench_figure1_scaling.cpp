// Reproduces Figure 1: exhaustive simulation time and number of
// computations vs adder length N — exponential growth — contrasted with
// the proposed analytical method, which stays microsecond-flat.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/costs.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"
#include "sealpaa/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t max_bits =
      static_cast<std::size_t>(args.get_int("max-bits", 12));

  std::cout << util::banner(
      "Figure 1: exhaustive simulation vs the proposed analytical method");
  util::TextTable table({"N", "Sim cases 2^(2N+1)", "Sim bit-ops",
                         "Sim time", "Analytical ops", "Analytical time"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::Right);

  for (std::size_t bits = 2; bits <= max_bits; ++bits) {
    const auto chain =
        multibit::AdderChain::homogeneous(adders::lpaa(1), bits);
    const auto report = sim::ExhaustiveSimulator::run(chain, max_bits);

    const auto profile = multibit::InputProfile::uniform(bits, 0.5);
    util::WallTimer timer;
    // Repeat the O(N) analysis enough times to get a measurable duration,
    // then report the per-run time.
    constexpr int kRepeats = 2000;
    double sink = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
      sink += analysis::RecursiveAnalyzer::analyze(chain, profile).p_error;
    }
    const double analytical_seconds = timer.elapsed_seconds() / kRepeats;
    const auto model = analysis::implementation_model(adders::lpaa(1), bits);

    table.add_row({std::to_string(bits),
                   util::with_commas((1ULL << (2 * bits)) * 2),
                   util::with_commas(report.bit_operations),
                   util::duration(report.seconds),
                   util::with_commas(model.total_arithmetic()),
                   util::duration(analytical_seconds)});
    (void)sink;
  }
  std::cout << table;
  std::cout << "\nSimulation cost quadruples per added bit (exponential, as "
               "in Figure 1); the analytical method is linear in N and runs "
               "in well under 1 ms at any practical width (paper 5).\n";
  return 0;
}

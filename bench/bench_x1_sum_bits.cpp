// Extension X1 (paper §4.2, last paragraph): per-sum-bit probabilities
// via the same matrix machinery — success-filtered masses and
// unconditional signal probabilities (useful for switching-activity /
// dynamic-power estimation).
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/sum_bits.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
  const double p = args.get_double("p", 0.3);

  for (int cell : {1, 6}) {
    const auto chain =
        multibit::AdderChain::homogeneous(adders::lpaa(cell), bits);
    const auto profile = multibit::InputProfile::uniform(bits, p);
    const auto report = analysis::SumBitAnalyzer::analyze(chain, profile);

    std::cout << util::banner("X1: per-sum-bit analysis, " +
                              chain.describe() + ", p = " +
                              util::fixed(p, 2));
    util::TextTable table({"Bit", "P(sum=1 & prefix success)",
                           "P(prefix success)", "P(sum=1) approx",
                           "P(sum=1) exact adder", "P(carry=1) approx"});
    for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::Right);
    for (std::size_t i = 0; i < bits; ++i) {
      table.add_row({std::to_string(i),
                     util::prob6(report.p_sum_one_and_success[i]),
                     util::prob6(report.p_prefix_success[i]),
                     util::prob6(report.p_sum_one[i]),
                     util::prob6(report.p_sum_one_exact[i]),
                     util::prob6(report.p_carry_one[i])});
    }
    std::cout << table << "\n";
  }
  std::cout << "Signal-probability bias (approx vs exact sum columns) feeds "
               "switching-activity estimates for the approximate datapath.\n";
  return 0;
}

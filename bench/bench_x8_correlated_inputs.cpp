// Extension X8: lifting the paper's operand-independence assumption
// (§4).  The recursion needs only the per-stage joint P(A_i, B_i), so
// operand correlation folds in at zero asymptotic cost.  This bench
// sweeps the Pearson correlation between operands and shows how far the
// independent-model P(E) drifts from the truth — and that the
// generalized recursion tracks the exact oracle throughout.
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/correlated.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main() {
  using namespace sealpaa;
  const std::size_t bits = 8;
  const multibit::InputProfile marginals =
      multibit::InputProfile::uniform(bits, 0.5);

  std::cout << util::banner(
      "X8: operand correlation vs P(Error), 8-bit chains, marginals p = 0.5");

  for (int cell : {1, 6, 7}) {
    const auto chain =
        multibit::AdderChain::homogeneous(adders::lpaa(cell), bits);
    const double independent_answer =
        analysis::RecursiveAnalyzer::analyze(chain, marginals).p_error;

    std::cout << "\n" << chain.describe()
              << "   (paper's independent model: P(E) = "
              << util::prob6(independent_answer) << ")\n";
    util::TextTable table({"rho", "P(E) generalized recursion",
                           "P(E) exact oracle", "independent-model error"});
    for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, util::Align::Right);
    for (double rho : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
      const auto joint =
          multibit::JointInputProfile::correlated(marginals, rho);
      const double analytical =
          analysis::CorrelatedAnalyzer::analyze(chain, joint).p_error;
      const double oracle =
          1.0 - baseline::WeightedExhaustive::analyze_joint(chain, joint)
                    .p_stage_success;
      table.add_row({util::fixed(rho, 2), util::prob6(analytical),
                     util::prob6(oracle),
                     util::prob6(analytical - independent_answer)});
    }
    std::cout << table;
  }

  std::cout << "\nA = B (rho = 1) avoids LPAA1's (0,1)/(1,0) error rows "
               "entirely at the first stage, while anti-correlated operands "
               "hit them constantly; assuming independence can misestimate "
               "P(E) by tens of percentage points.  The generalized "
               "recursion stays exact (oracle column) at the same O(N) "
               "cost.\n";
  return 0;
}

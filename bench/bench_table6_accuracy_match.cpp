// Reproduces Table 6: accuracy match of the proposed method against
// exhaustive simulation.
//
//  * Equally probable inputs: all 2^(2N+1) cases are enumerated; the
//    match must be exact to double precision ("precisely up to any
//    decimal place" in the paper).
//  * Per-bit probabilities: the paper used 1M Monte Carlo samples and
//    saw agreement to the 3rd decimal; we additionally check against the
//    *exact* weighted enumeration, where the match is again full
//    precision.
#include <cmath>
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/montecarlo.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t width =
      static_cast<std::size_t>(args.get_int("bits", 8));
  const std::uint64_t samples =
      static_cast<std::uint64_t>(args.get_int("samples", 1'000'000));

  std::cout << util::banner("Table 6: Accuracy match of the proposed method");

  std::cout << "\nScenario 1 - equally probable inputs (p = 0.5), " << width
            << "-bit adders, " << util::with_commas((1ULL << (2 * width)) * 2)
            << " exhaustive cases per cell:\n";
  util::TextTable equal({"Cell", "P(E) analytical", "P(E) exhaustive",
                         "|difference|"});
  for (std::size_t c = 1; c <= 3; ++c) equal.set_align(c, util::Align::Right);
  double worst_equal = 0.0;
  for (const adders::AdderCell& cell : adders::builtin_lpaas()) {
    const auto chain = multibit::AdderChain::homogeneous(cell, width);
    const double analytical = analysis::RecursiveAnalyzer::error_probability(
        cell, multibit::InputProfile::uniform(width, 0.5));
    const auto sim = sim::ExhaustiveSimulator::run(chain);
    const double simulated = sim.metrics.stage_failure_rate();
    worst_equal = std::max(worst_equal, std::fabs(analytical - simulated));
    equal.add_row({cell.name(), util::fixed(analytical, 12),
                   util::fixed(simulated, 12),
                   util::sig(std::fabs(analytical - simulated), 3)});
  }
  std::cout << equal;
  std::cout << "Worst deviation: " << util::sig(worst_equal, 3)
            << "  (paper: precise to any decimal place)\n";

  std::cout << "\nScenario 2 - per-bit probabilities (p = 0.1), " << width
            << "-bit adders, " << util::with_commas(samples)
            << " Monte Carlo samples + exact weighted enumeration:\n";
  util::TextTable unequal({"Cell", "P(E) analytical", "P(E) Monte Carlo",
                           "|diff| MC", "P(E) weighted-exact", "|diff| exact"});
  for (std::size_t c = 1; c <= 5; ++c) unequal.set_align(c, util::Align::Right);
  const auto profile = multibit::InputProfile::uniform(width, 0.1);
  for (const adders::AdderCell& cell : adders::builtin_lpaas()) {
    const auto chain = multibit::AdderChain::homogeneous(cell, width);
    const double analytical =
        analysis::RecursiveAnalyzer::error_probability(cell, profile);
    const auto mc = sim::MonteCarloSimulator::run(chain, profile, samples);
    const auto exact = baseline::WeightedExhaustive::analyze(chain, profile);
    unequal.add_row(
        {cell.name(), util::fixed(analytical, 6),
         util::fixed(mc.metrics.stage_failure_rate(), 6),
         util::sig(std::fabs(analytical - mc.metrics.stage_failure_rate()), 2),
         util::fixed(1.0 - exact.p_stage_success, 6),
         util::sig(std::fabs(analytical - (1.0 - exact.p_stage_success)), 2)});
  }
  std::cout << unequal;
  std::cout << "Paper: MC matches to the 3rd decimal at 1M cases; the exact "
               "weighted enumeration matches to machine precision.\n";
  return 0;
}

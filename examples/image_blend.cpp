// Image blending with approximate adders — the error-resilient media
// workload from the paper's introduction.  Blends two synthetic images
// with every LPAA cell and reports PSNR; writes PGM files for visual
// inspection, and shows the hybrid MSB-exact trick.
//
//   ./example_image_blend [--size=128] [--out-dir=/tmp]
#include <cmath>
#include <limits>
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/analysis/joint.hpp"
#include "sealpaa/apps/image.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/profile_estimation.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 128));
  const std::string out_dir = args.get("out-dir", "/tmp");

  prob::Xoshiro256StarStar rng(0xB1E0D);
  const apps::Image scene = apps::Image::blobs(size, size, 6, rng);
  const apps::Image overlay = apps::Image::gradient(size, size);
  const apps::Image reference = apps::exact_blend(scene, overlay);

  scene.write_pgm(out_dir + "/sealpaa_scene.pgm");
  overlay.write_pgm(out_dir + "/sealpaa_overlay.pgm");
  reference.write_pgm(out_dir + "/sealpaa_blend_exact.pgm");

  std::cout << "Blending two " << size << "x" << size
            << " synthetic images ((a+b)/2) through 8-bit adder chains:\n\n";

  // Analytical PSNR prediction: estimate the per-bit pixel statistics,
  // get the exact adder-error second moment from the joint-carry DP,
  // and map it to pixel MSE (the >>1 halves the error; clamping is
  // ignored, so the model is optimistic for huge errors).
  std::vector<multibit::OperandSample> pixel_trace;
  for (std::size_t y = 0; y < scene.height(); ++y) {
    for (std::size_t x = 0; x < scene.width(); ++x) {
      pixel_trace.push_back({scene.at(x, y), overlay.at(x, y)});
    }
  }
  const multibit::InputProfile pixel_profile =
      multibit::estimate_profile(pixel_trace, 8, 0.0);

  util::TextTable table({"Adder", "PSNR (dB)", "predicted PSNR", "MSE",
                         "Power (nW, 8 cells)"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, util::Align::Right);

  for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
    const auto chain = multibit::AdderChain::homogeneous(cell, 8);
    const apps::Image blended = apps::approx_blend(scene, overlay, chain);
    blended.write_pgm(out_dir + "/sealpaa_blend_" + cell.name() + ".pgm");
    const double psnr = apps::image_psnr(reference, blended);
    const auto moments =
        analysis::JointCarryAnalyzer::moments(chain, pixel_profile);
    const double pixel_mse = moments.second_moment / 4.0;  // err >> 1
    const double predicted =
        pixel_mse <= 0.0 ? std::numeric_limits<double>::infinity()
                         : 10.0 * std::log10(255.0 * 255.0 / pixel_mse);
    const auto power = adders::chain_power_nw(cell, 8);
    table.add_row({chain.describe(),
                   std::isinf(psnr) ? "inf" : util::fixed(psnr, 2),
                   std::isinf(predicted) ? "inf" : util::fixed(predicted, 2),
                   util::fixed(apps::image_mse(reference, blended), 2),
                   power ? util::fixed(*power, 0) : "n/a"});
  }

  // The standard trick: approximate only the low nibble.
  std::vector<adders::AdderCell> hybrid;
  for (int i = 0; i < 4; ++i) hybrid.push_back(adders::lpaa(5));
  for (int i = 0; i < 4; ++i) hybrid.push_back(adders::accurate());
  const auto hybrid_chain = multibit::AdderChain(hybrid);
  const apps::Image hybrid_blend =
      apps::approx_blend(scene, overlay, hybrid_chain);
  hybrid_blend.write_pgm(out_dir + "/sealpaa_blend_hybrid.pgm");
  const auto hybrid_moments =
      analysis::JointCarryAnalyzer::moments(hybrid_chain, pixel_profile);
  const double hybrid_predicted =
      10.0 * std::log10(255.0 * 255.0 / (hybrid_moments.second_moment / 4.0));
  table.add_row({"LPAA5 x4 | AccuFA x4 (LSB-only approx)",
                 util::fixed(apps::image_psnr(reference, hybrid_blend), 2),
                 util::fixed(hybrid_predicted, 2),
                 util::fixed(apps::image_mse(reference, hybrid_blend), 2),
                 util::fixed(4 * 0.0 + 4 * 1385.0, 0)});
  std::cout << table;

  std::cout << "\nPGM files written to " << out_dir
            << " (sealpaa_blend_*.pgm) for visual inspection.\n"
            << "LSB-only approximation keeps PSNR high while zeroing the "
               "power of half the cells - exactly the error-resilience "
               "argument of the paper's introduction.\n";
  return 0;
}

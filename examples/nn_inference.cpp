// Quantized neural-network inference on an approximate MAC datapath —
// the "deep learning networks / artificial intelligence" workload class
// from the paper's introduction.  A tiny frozen MLP classifies synthetic
// 2-D Gaussian clusters; every multiply-accumulate runs through an
// approximate multiplier + accumulator, and we report how often the
// predicted class (argmax) survives the approximation.
//
//   ./example_nn_inference [--samples=2000]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multiplier/array_multiplier.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

namespace {

using namespace sealpaa;

constexpr int kInputs = 8;
constexpr int kHidden = 6;
constexpr int kClasses = 3;
constexpr std::size_t kOperandBits = 7;  // magnitudes < 128
constexpr std::size_t kAccumulatorBits = 22;

struct Mlp {
  int w1[kHidden][kInputs];
  int w2[kClasses][kHidden];
};

// Frozen pseudo-random weights in [-20, 20].
Mlp make_network(prob::Xoshiro256StarStar& rng) {
  Mlp net{};
  for (auto& row : net.w1) {
    for (int& w : row) w = static_cast<int>(rng.next() % 41) - 20;
  }
  for (auto& row : net.w2) {
    for (int& w : row) w = static_cast<int>(rng.next() % 41) - 20;
  }
  return net;
}

// One synthetic sample: cluster center per class + noise, quantized to
// [0, 127].
std::vector<std::int64_t> make_sample(int true_class,
                                      prob::Xoshiro256StarStar& rng) {
  std::vector<std::int64_t> x(kInputs);
  for (int i = 0; i < kInputs; ++i) {
    const double center = 30.0 + 30.0 * ((true_class + i) % kClasses);
    const double noise = 24.0 * (rng.uniform01() - 0.5);
    x[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(
        std::clamp(center + noise, 0.0, 127.0));
  }
  return x;
}

// Signed MAC through the approximate datapath: products via the
// multiplier (sign-magnitude), accumulation via the chain in
// two's-complement modulo 2^W.
std::int64_t approx_dot(const std::vector<std::int64_t>& x, const int* w,
                        int n, const multiplier::ApproxMultiplier& mult,
                        const multibit::AdderChain& acc) {
  std::uint64_t sum = 0;
  for (int i = 0; i < n; ++i) {
    const std::int64_t product =
        mult.multiply_signed(x[static_cast<std::size_t>(i)], w[i]);
    const std::uint64_t addend = multibit::mask_width(
        static_cast<std::uint64_t>(product), kAccumulatorBits);
    sum = acc.evaluate(sum, addend, false).sum_bits;
  }
  const std::uint64_t sign_bit = 1ULL << (kAccumulatorBits - 1);
  const std::uint64_t masked = multibit::mask_width(sum, kAccumulatorBits);
  return (masked & sign_bit) != 0
             ? static_cast<std::int64_t>(masked) -
                   static_cast<std::int64_t>(1ULL << kAccumulatorBits)
             : static_cast<std::int64_t>(masked);
}

int infer(const Mlp& net, const std::vector<std::int64_t>& x,
          const multiplier::ApproxMultiplier& mult,
          const multibit::AdderChain& acc) {
  std::vector<std::int64_t> hidden(kHidden);
  for (int h = 0; h < kHidden; ++h) {
    const std::int64_t pre = approx_dot(x, net.w1[h], kInputs, mult, acc);
    hidden[static_cast<std::size_t>(h)] =
        std::clamp<std::int64_t>(pre / 64, 0, 127);  // ReLU + requantize
  }
  std::int64_t best = 0;
  int best_class = 0;
  for (int c = 0; c < kClasses; ++c) {
    const std::int64_t logit =
        approx_dot(hidden, net.w2[c], kHidden, mult, acc);
    if (c == 0 || logit > best) {
      best = logit;
      best_class = c;
    }
  }
  return best_class;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int samples = static_cast<int>(args.get_int("samples", 2000));

  prob::Xoshiro256StarStar rng(0x0ee7);
  const Mlp net = make_network(rng);

  // Pre-generate the evaluation set.
  std::vector<std::pair<int, std::vector<std::int64_t>>> dataset;
  for (int s = 0; s < samples; ++s) {
    const int true_class = static_cast<int>(rng.next() % kClasses);
    dataset.emplace_back(true_class, make_sample(true_class, rng));
  }

  const multiplier::ApproxMultiplier exact_mult(kOperandBits,
                                                adders::accurate());
  const multibit::AdderChain exact_acc =
      multibit::AdderChain::homogeneous(adders::accurate(), kAccumulatorBits);

  // Exact-datapath predictions are the reference.
  std::vector<int> reference;
  reference.reserve(dataset.size());
  for (const auto& [label, x] : dataset) {
    reference.push_back(infer(net, x, exact_mult, exact_acc));
  }

  std::cout << "Tiny MLP (" << kInputs << "-" << kHidden << "-" << kClasses
            << ", int8-style) on " << samples
            << " synthetic samples; MACs on approximate datapaths:\n\n";

  util::TextTable table({"Datapath", "top-1 agreement with exact"});
  table.set_align(1, util::Align::Right);

  const auto evaluate = [&](const std::string& name,
                            const multiplier::ApproxMultiplier& mult,
                            const multibit::AdderChain& acc) {
    int agree = 0;
    for (std::size_t s = 0; s < dataset.size(); ++s) {
      if (infer(net, dataset[s].second, mult, acc) == reference[s]) ++agree;
    }
    table.add_row({name, util::fixed(100.0 * agree /
                                         static_cast<double>(dataset.size()),
                                     2) +
                             " %"});
  };

  evaluate("exact multiplier + exact accumulator", exact_mult, exact_acc);

  // Approximate the accumulator LSBs progressively.  LPAA7 errors are
  // sum-only (bounded by the approximated bits); LPAA6 errors corrupt
  // carries and ripple upward — the error-*magnitude* lesson of
  // bench_x11 playing out at application level.
  const auto lsb_chain = [&](int cell_index, std::size_t approx_bits) {
    std::vector<adders::AdderCell> stages;
    for (std::size_t i = 0; i < approx_bits; ++i) {
      stages.push_back(adders::lpaa(cell_index));
    }
    for (std::size_t i = approx_bits; i < kAccumulatorBits; ++i) {
      stages.push_back(adders::accurate());
    }
    return multibit::AdderChain(stages);
  };
  for (std::size_t approx_bits :
       {std::size_t{4}, std::size_t{8}, std::size_t{12}}) {
    evaluate("exact mult + LPAA7 on " + std::to_string(approx_bits) + "/" +
                 std::to_string(kAccumulatorBits) + " acc LSBs",
             exact_mult, lsb_chain(7, approx_bits));
  }
  evaluate("exact mult + LPAA6 on 8/" + std::to_string(kAccumulatorBits) +
               " acc LSBs (carry-corrupting)",
           exact_mult, lsb_chain(6, 8));

  // Approximate multiplier too (double approximation).
  const multiplier::ApproxMultiplier lpaa7_mult(kOperandBits,
                                                adders::lpaa(7));
  evaluate("LPAA7 multiplier + exact accumulator", lpaa7_mult, exact_acc);

  std::cout << table;
  std::cout << "\nArgmax classification absorbs bounded-magnitude error "
               "well: LPAA7 (sum-only errors, bounded by the approximated "
               "LSBs) degrades gracefully as the approximate region grows, "
               "while LPAA6's carry-corrupting errors at the same position "
               "are catastrophic - at equal P(E), error *magnitude* decides "
               "application quality (see bench_x11).  The sweep tells a "
               "designer which cell and how many accumulator LSBs are "
               "safely approximable.\n";
  return 0;
}

// Quickstart: analyze the error probability of an 8-bit low-power
// approximate adder in a dozen lines of library code.
//
//   ./example_quickstart [--cell=LPAA6] [--bits=8] [--p=0.5]
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::string cell_name = args.get("cell", "LPAA6");
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
  const double p = args.get_double("p", 0.5);

  // 1. Pick a single-bit approximate adder cell (or build your own with
  //    AdderCell::from_columns).
  const adders::AdderCell* cell = adders::find_builtin(cell_name);
  if (cell == nullptr) {
    std::cerr << "unknown cell '" << cell_name
              << "'; builtin cells are AccuFA and LPAA1..LPAA7\n";
    return 1;
  }
  std::cout << cell->to_string() << "\n";

  // 2. Describe the input statistics: P(bit = 1) per operand bit plus
  //    the carry-in.
  const multibit::InputProfile profile =
      multibit::InputProfile::uniform(bits, p);

  // 3. Run the paper's recursive analysis (O(N), microseconds).
  analysis::AnalyzeOptions options;
  options.record_trace = true;
  const analysis::AnalysisResult result =
      analysis::RecursiveAnalyzer::analyze(*cell, profile, options);

  std::cout << bits << "-bit chain of " << cell->name() << " at p = "
            << util::fixed(p, 2) << ":\n";
  std::cout << "  P(Success) = " << util::prob6(result.p_success) << "\n";
  std::cout << "  P(Error)   = " << util::prob6(result.p_error) << "\n\n";

  std::cout << "Per-stage success-filtered carry masses:\n";
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    std::cout << "  stage " << i << ": P(C=0 & Succ) = "
              << util::prob6(result.trace[i].carry_out.c0)
              << "   P(C=1 & Succ) = "
              << util::prob6(result.trace[i].carry_out.c1) << "\n";
  }
  return 0;
}

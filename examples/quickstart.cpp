// Quickstart: analyze the error probability of an 8-bit low-power
// approximate adder in a dozen lines of library code.
//
//   ./example_quickstart [--cell=LPAA6] [--bits=8] [--p=0.5]
//       [--method=recursive]
#include <iostream>
#include <stdexcept>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::string cell_name = args.get("cell", "LPAA6");
  const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
  const double p = args.get_double("p", 0.5);

  // 1. Pick a single-bit approximate adder cell (or build your own with
  //    AdderCell::from_columns).
  const adders::AdderCell* cell = adders::find_builtin(cell_name);
  if (cell == nullptr) {
    std::cerr << "unknown cell '" << cell_name
              << "'; builtin cells are AccuFA and LPAA1..LPAA7\n";
    return 1;
  }
  std::cout << cell->to_string() << "\n";

  // 2. Describe the input statistics: P(bit = 1) per operand bit plus
  //    the carry-in.
  const multibit::InputProfile profile =
      multibit::InputProfile::uniform(bits, p);

  // 3. Evaluate through the engine's method registry.  The default
  //    method is the paper's recursive analysis (O(N), microseconds);
  //    --method=monte-carlo etc. dispatches to any other engine through
  //    the same call.
  engine::Evaluation result;
  try {
    const engine::Method method =
        engine::parse_method(args.get("method", "recursive"));
    engine::EvaluateOptions options;
    options.record_trace = true;  // per-stage trace (recursive method only)
    result = engine::evaluate(*cell, profile, method, options);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << bits << "-bit chain of " << cell->name() << " at p = "
            << util::fixed(p, 2) << " (method: "
            << engine::method_name(result.method) << "):\n";
  std::cout << "  P(Success) = " << util::prob6(result.p_success) << "\n";
  std::cout << "  P(Error)   = " << util::prob6(result.p_error) << "\n\n";

  if (!result.trace.empty()) {
    std::cout << "Per-stage success-filtered carry masses:\n";
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      std::cout << "  stage " << i << ": P(C=0 & Succ) = "
                << util::prob6(result.trace[i].carry_out.c0)
                << "   P(C=1 & Succ) = "
                << util::prob6(result.trace[i].carry_out.c1) << "\n";
    }
  }
  return 0;
}

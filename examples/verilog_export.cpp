// Verilog export: synthesize a cell, a (possibly hybrid) multi-bit
// chain, or a GeAr adder to a synthesizable Verilog module — the
// hand-off from statistical exploration to a conventional EDA flow.
//
//   ./example_verilog_export --kind=cell  --cell=LPAA6
//   ./example_verilog_export --kind=chain --cell=LPAA1 --bits=8 [--out=f.v]
//   ./example_verilog_export --kind=hybrid --stages=LPAA1,LPAA1,AccuFA
//   ./example_verilog_export --kind=gear --bits=8 --r=2 --p=2
// Add --tb to also emit a self-checking testbench (<module>_tb), and
// --no-opt to skip the structural optimizer.
#include <fstream>
#include <iostream>
#include <sstream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/rtl/optimize.hpp"
#include "sealpaa/rtl/synth.hpp"
#include "sealpaa/rtl/verilog.hpp"
#include "sealpaa/util/cli.hpp"

namespace {

const sealpaa::adders::AdderCell& cell_or_die(const std::string& name) {
  const sealpaa::adders::AdderCell* cell = sealpaa::adders::find_builtin(name);
  if (cell == nullptr) {
    std::cerr << "unknown cell '" << name << "'\n";
    std::exit(1);
  }
  return *cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::string kind = args.get("kind", "cell");

  rtl::Netlist netlist;
  std::string module_name;
  if (kind == "cell") {
    const auto& cell = cell_or_die(args.get("cell", "LPAA6"));
    netlist = rtl::synthesize_cell(cell);
    module_name = cell.name() + "_cell";
  } else if (kind == "chain") {
    const auto& cell = cell_or_die(args.get("cell", "LPAA1"));
    const std::size_t bits =
        static_cast<std::size_t>(args.get_int("bits", 8));
    netlist = rtl::synthesize_chain(
        multibit::AdderChain::homogeneous(cell, bits));
    module_name = cell.name() + "_rca" + std::to_string(bits);
  } else if (kind == "hybrid") {
    std::vector<adders::AdderCell> stages;
    std::stringstream stream(args.get("stages", "LPAA1,LPAA6,AccuFA"));
    std::string token;
    while (std::getline(stream, token, ',')) {
      stages.push_back(cell_or_die(token));
    }
    netlist = rtl::synthesize_chain(multibit::AdderChain(stages));
    module_name = "hybrid_rca" + std::to_string(stages.size());
  } else if (kind == "gear") {
    const gear::GearConfig config(static_cast<int>(args.get_int("bits", 8)),
                                  static_cast<int>(args.get_int("r", 2)),
                                  static_cast<int>(args.get_int("p", 2)));
    netlist = rtl::synthesize_gear(config);
    module_name = "gear_n" + std::to_string(config.n()) + "_r" +
                  std::to_string(config.r()) + "_p" +
                  std::to_string(config.p());
  } else {
    std::cerr << "unknown --kind=" << kind
              << " (expected cell|chain|hybrid|gear)\n";
    return 1;
  }

  if (!args.get_bool("no-opt", false)) netlist = rtl::optimize(netlist);

  std::string text = rtl::to_verilog(netlist, module_name);
  if (args.get_bool("tb", false)) {
    text += "\n" + rtl::to_verilog_testbench(netlist, module_name);
  }
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path);
    out << text;
    std::cout << "wrote " << out_path << " (" << netlist.logic_gate_count()
              << " logic gates, depth " << netlist.depth() << ")\n";
  }
  std::cerr << "// " << module_name << ": "
            << netlist.logic_gate_count() << " logic gates, depth "
            << netlist.depth() << "\n";
  return 0;
}

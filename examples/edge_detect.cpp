// Sobel edge detection with approximate magnitude addition: compare
// edge-map quality (PSNR vs the exact operator) across adder designs.
//
//   ./example_edge_detect [--size=128] [--out-dir=/tmp]
#include <cmath>
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/apps/sobel.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 128));
  const std::string out_dir = args.get("out-dir", "/tmp");

  prob::Xoshiro256StarStar rng(0xED6E);
  const apps::Image scene = apps::Image::blobs(size, size, 8, rng);
  const apps::Image reference = apps::sobel_magnitude_exact(scene);
  scene.write_pgm(out_dir + "/sealpaa_sobel_input.pgm");
  reference.write_pgm(out_dir + "/sealpaa_sobel_exact.pgm");

  std::cout << "Sobel edge detection on a " << size << "x" << size
            << " synthetic scene; the |Gx|+|Gy| addition runs on a 12-bit "
               "approximate chain:\n\n";

  util::TextTable table({"Magnitude adder", "PSNR vs exact (dB)", "MSE"});
  table.set_align(1, util::Align::Right);
  table.set_align(2, util::Align::Right);

  const auto evaluate = [&](const std::string& name,
                            const multibit::AdderChain& chain) {
    const apps::Image edges = apps::sobel_magnitude(scene, chain);
    edges.write_pgm(out_dir + "/sealpaa_sobel_" + name + ".pgm");
    const double psnr = apps::image_psnr(reference, edges);
    table.add_row({name, std::isinf(psnr) ? "inf" : util::fixed(psnr, 2),
                   util::fixed(apps::image_mse(reference, edges), 2)});
  };

  for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
    evaluate(cell.name(), multibit::AdderChain::homogeneous(cell, 12));
  }
  // LSB-only approximation keeps edges crisp.
  std::vector<adders::AdderCell> hybrid;
  for (int i = 0; i < 5; ++i) hybrid.push_back(adders::lpaa(6));
  for (int i = 5; i < 12; ++i) hybrid.push_back(adders::accurate());
  evaluate("LPAA6_LSB5_hybrid", multibit::AdderChain(hybrid));

  std::cout << table;
  std::cout << "\nEdge maps written to " << out_dir
            << "/sealpaa_sobel_*.pgm.  Gradient magnitudes tolerate LSB "
               "approximation gracefully - the class of error-resilient "
               "kernels the paper's introduction targets.\n";
  return 0;
}

// GeAr configuration explorer: sweep (R, P) for a given operand width
// and chart the latency/accuracy trade-off analytically (no simulation
// needed — the exact DP is O(N)).
//
//   ./example_gear_explorer [--bits=16] [--p=0.5]
#include <iostream>

#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const int bits = static_cast<int>(args.get_int("bits", 16));
  const double p = args.get_double("p", 0.5);
  const auto profile =
      multibit::InputProfile::uniform(static_cast<std::size_t>(bits), p);

  std::cout << "GeAr design space for N = " << bits << ", p = "
            << util::fixed(p, 2) << ":\n\n";

  util::TextTable table({"Config", "Blocks", "Carry chain (L)",
                         "P(Error) exact", "P(Error) indep approx",
                         "Worst block P(B_i)"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::Right);

  int printed = 0;
  for (int r = 1; r <= bits; ++r) {
    for (int pp = 0; pp + r <= bits; ++pp) {
      if ((bits - (r + pp)) % r != 0) continue;
      const gear::GearConfig config(bits, r, pp);
      if (config.blocks() == 1 && r != bits) continue;
      const auto analysis = gear::GearAnalyzer::analyze(config, profile);
      double worst_block = 0.0;
      for (double f : analysis.block_failure) {
        worst_block = std::max(worst_block, f);
      }
      table.add_row({config.describe(), std::to_string(config.blocks()),
                     std::to_string(config.critical_path_bits()),
                     util::prob6(analysis.p_error_exact_dp),
                     util::prob6(analysis.p_error_independent_approx),
                     util::prob6(worst_block)});
      ++printed;
    }
  }
  std::cout << table;
  std::cout << "\n" << printed << " valid configurations. Pick the shortest "
               "carry chain whose P(Error) fits the application's "
               "resilience budget.\n";
  return 0;
}

// GeAr configuration explorer: sweep (R, P) for a given operand width
// and chart the latency/accuracy trade-off analytically (no simulation
// needed — the exact DP is O(N)).
//
// Ported to the library's observability surface: flags are validated
// strictly and the sweep can be captured as a versioned
// sealpaa.run-report JSON (--json-report=FILE), one entry per valid
// configuration, for downstream plotting.
//
//   ./example_gear_explorer [--bits=16] [--p=0.5] [--json-report=FILE]
#include <iostream>

#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/obs/report.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags({"bits", "p", "json-report", "no-json"});
    const int bits = static_cast<int>(args.get_int("bits", 16));
    const double p = args.get_double("p", 0.5);
    const auto profile =
        multibit::InputProfile::uniform(static_cast<std::size_t>(bits), p);

    std::cout << "GeAr design space for N = " << bits << ", p = "
              << util::fixed(p, 2) << ":\n\n";

    obs::RunReport report("example_gear_explorer");
    report.record_args(args);
    obs::Json configs = obs::Json::array();

    util::TextTable table({"Config", "Blocks", "Carry chain (L)",
                           "P(Error) exact", "P(Error) indep approx",
                           "Worst block P(B_i)"});
    for (std::size_t c = 1; c <= 5; ++c) {
      table.set_align(c, util::Align::Right);
    }

    int printed = 0;
    for (int r = 1; r <= bits; ++r) {
      for (int pp = 0; pp + r <= bits; ++pp) {
        if ((bits - (r + pp)) % r != 0) continue;
        const gear::GearConfig config(bits, r, pp);
        if (config.blocks() == 1 && r != bits) continue;
        const auto analysis = gear::GearAnalyzer::analyze(config, profile);
        double worst_block = 0.0;
        for (double f : analysis.block_failure) {
          worst_block = std::max(worst_block, f);
        }
        table.add_row({config.describe(), std::to_string(config.blocks()),
                       std::to_string(config.critical_path_bits()),
                       util::prob6(analysis.p_error_exact_dp),
                       util::prob6(analysis.p_error_independent_approx),
                       util::prob6(worst_block)});
        ++printed;

        obs::Json entry = obs::Json::object();
        entry.set("config", obs::Json(config.describe()));
        entry.set("blocks", obs::Json(config.blocks()));
        entry.set("critical_path_bits",
                  obs::Json(config.critical_path_bits()));
        entry.set("p_error_exact_dp", obs::Json(analysis.p_error_exact_dp));
        entry.set("p_error_independent_approx",
                  obs::Json(analysis.p_error_independent_approx));
        entry.set("worst_block_failure", obs::Json(worst_block));
        configs.push_back(std::move(entry));
      }
    }
    std::cout << table;
    std::cout << "\n" << printed << " valid configurations. Pick the "
                 "shortest carry chain whose P(Error) fits the "
                 "application's resilience budget.\n";

    obs::Json& section = report.section("gear_explorer");
    section.set("bits", obs::Json(bits));
    section.set("p", obs::Json(p));
    section.set("configurations", std::move(configs));

    if (const auto path = obs::report_path(args)) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Fixed-point FIR filtering with approximate accumulation — the DSP
// datapath workload from the paper's introduction.  Runs a low-pass FIR
// over a noisy sine and reports output SNR per accumulation adder.
//
//   ./example_fir_filter [--samples=512] [--width=16]
#include <cmath>
#include <iostream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/apps/fir.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  const std::size_t samples =
      static_cast<std::size_t>(args.get_int("samples", 512));
  const std::size_t width = static_cast<std::size_t>(args.get_int("width", 16));

  // 9-tap low-pass (binomial) filter.
  const apps::FirFilter filter({1, 8, 28, 56, 70, 56, 28, 8, 1}, width);
  prob::Xoshiro256StarStar rng(0xF17);
  const auto signal = apps::make_sine_signal(samples, 100.0, 0.01, 15.0, rng);
  const auto exact = filter.run_exact(signal);

  std::cout << "9-tap FIR over " << samples << " samples, " << width
            << "-bit accumulation datapath:\n\n";

  util::TextTable table({"Accumulator adder", "SNR vs exact (dB)",
                         "Max |error|"});
  table.set_align(1, util::Align::Right);
  table.set_align(2, util::Align::Right);

  const auto report = [&](const std::string& name,
                          const multibit::AdderChain& chain) {
    const auto approx = filter.run_approx(signal, chain);
    std::int64_t max_error = 0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      max_error = std::max<std::int64_t>(max_error,
                                         std::llabs(exact[i] - approx[i]));
    }
    const double snr = apps::snr_db(exact, approx);
    table.add_row({name, std::isinf(snr) ? "inf" : util::fixed(snr, 2),
                   std::to_string(max_error)});
  };

  for (const adders::AdderCell& cell : adders::all_builtin_cells()) {
    report(std::to_string(width) + " x " + cell.name(),
           multibit::AdderChain::homogeneous(cell, width));
  }

  // Approximate only the low bits of the accumulator.
  for (std::size_t approx_bits : {4u, 6u, 8u}) {
    std::vector<adders::AdderCell> stages;
    for (std::size_t i = 0; i < approx_bits; ++i) {
      stages.push_back(adders::lpaa(6));
    }
    for (std::size_t i = approx_bits; i < width; ++i) {
      stages.push_back(adders::accurate());
    }
    report("LPAA6 on " + std::to_string(approx_bits) + " LSBs, exact above",
           multibit::AdderChain(stages));
  }
  std::cout << table;

  std::cout << "\nGraceful SNR degradation as more accumulator LSBs are "
               "approximated is the error-resilience property approximate "
               "DSP datapaths rely on.\n";
  return 0;
}

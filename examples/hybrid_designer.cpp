// Hybrid adder designer: given a per-bit input-probability profile and
// an optional power budget, search for the best per-stage mix of LPAA
// cells (the use-case the paper's §5 motivates).
//
// The search runs on the engine layer: the exhaustive optimizer walks a
// DFS over engine::IncrementalAnalyzer, and the beam fallback scores
// expansions through engine::ChainEvaluator's prefix cache.  The winner
// is re-checked through engine::evaluate — the same uniform entry point
// the CLI's --method flag uses — and the search/cache counters are
// printed (and reported as JSON) so the prefix reuse is visible.
//
//   ./example_hybrid_designer [--bits=8] [--budget-nw=3000]
//       [--profile=0.5,0.5,0.4,0.3,0.2,0.1,0.05,0.05]
//       [--json-report=FILE | --no-json]
#include <iostream>
#include <sstream>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/explore/pareto.hpp"
#include "sealpaa/obs/report.hpp"
#include "sealpaa/obs/serialize.hpp"
#include "sealpaa/util/cli.hpp"
#include "sealpaa/util/format.hpp"
#include "sealpaa/util/table.hpp"

namespace {

std::vector<double> parse_profile(const std::string& csv, std::size_t bits) {
  if (csv.empty()) {
    // Default DSP-like profile: noisy LSBs, sparse MSBs.
    std::vector<double> p(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      p[i] = 0.5 - 0.45 * static_cast<double>(i) /
                       static_cast<double>(bits > 1 ? bits - 1 : 1);
    }
    return p;
  }
  std::vector<double> p;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) p.push_back(std::stod(token));
  return p;
}

void print_search_stats(const sealpaa::explore::SearchStats& stats) {
  using sealpaa::util::with_commas;
  std::cout << "  search: " << with_commas(stats.candidates_evaluated)
            << " candidates, " << with_commas(stats.stages_computed)
            << " stage advances";
  if (stats.cache_hits + stats.cache_misses > 0) {
    std::cout << ", prefix cache " << with_commas(stats.cache_hits)
              << " hits / " << with_commas(stats.cache_misses) << " misses";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sealpaa;
  const util::CliArgs args(argc, argv);
  try {
    args.expect_flags(
        {"bits", "profile", "budget-nw", "json-report", "no-json"});
    const std::size_t bits = static_cast<std::size_t>(args.get_int("bits", 8));
    const std::vector<double> p_bits =
        parse_profile(args.get("profile", ""), bits);
    if (p_bits.size() != bits) {
      std::cerr << "profile must list exactly " << bits << " probabilities\n";
      return 1;
    }
    const multibit::InputProfile profile(p_bits, p_bits, p_bits.front());

    std::cout << "Input profile P(bit = 1), LSB..MSB: ";
    for (double p : p_bits) std::cout << util::fixed(p, 2) << " ";
    std::cout << "\n\n";

    obs::RunReport report("example_hybrid_designer");
    report.record_args(args);

    // Homogeneous baselines.
    util::TextTable baselines(
        {"Homogeneous design", "P(Error)", "Power (nW)"});
    baselines.set_align(1, util::Align::Right);
    baselines.set_align(2, util::Align::Right);
    for (const auto& point : explore::homogeneous_sweep(profile)) {
      baselines.add_row({point.name, util::prob6(point.p_error),
                         point.has_cost ? util::fixed(point.power_nw, 0)
                                        : "n/a"});
    }
    std::cout << baselines << "\n";

    // Unconstrained hybrid optimum.
    const auto best = bits <= 9
        ? explore::HybridOptimizer::exhaustive(profile,
                                               adders::builtin_lpaas())
        : explore::HybridOptimizer::beam(profile, adders::builtin_lpaas(), {},
                                         512);
    std::cout << "Best hybrid (approximate cells only):\n  "
              << best.chain().describe() << "\n  P(Error) = "
              << util::prob6(best.p_error) << "\n";
    print_search_stats(best.stats);

    // Cross-check the winner through the uniform engine entry point.
    const engine::Evaluation check =
        engine::evaluate(best.chain(), profile, engine::Method::kRecursive);
    std::cout << "  engine::evaluate(recursive) agrees: "
              << (check.p_error == best.p_error ? "yes" : "NO") << "\n\n";

    obs::Json& section = report.section("hybrid_designer");
    section.set("bits", obs::Json(static_cast<std::uint64_t>(bits)));
    section.set("best", obs::to_json(best));
    section.set("search", obs::to_json(best.stats));
    section.set("recursive_check", obs::to_json(check));

    // Power-constrained search over the cells with Table 2 data.
    if (args.has("budget-nw")) {
      const double budget = args.get_double("budget-nw", 3000.0);
      std::vector<adders::AdderCell> costed;
      costed.push_back(adders::accurate());
      for (int i = 1; i <= 5; ++i) costed.push_back(adders::lpaa(i));
      explore::DesignConstraints constraints;
      constraints.max_power_nw = budget;
      try {
        const auto constrained = bits <= 9
            ? explore::HybridOptimizer::exhaustive(profile, costed,
                                                   constraints)
            : explore::HybridOptimizer::beam(profile, costed, constraints,
                                             512);
        std::cout << "Best under " << util::fixed(budget, 0) << " nW:\n  "
                  << constrained.chain().describe() << "\n  P(Error) = "
                  << util::prob6(constrained.p_error) << "   power = "
                  << util::fixed(*constrained.power_nw, 0) << " nW\n";
        print_search_stats(constrained.stats);
        section.set("constrained", obs::to_json(constrained));
      } catch (const std::runtime_error& e) {
        std::cout << "No design fits the budget: " << e.what() << "\n";
      }
    } else {
      std::cout << "(pass --budget-nw=<nanowatts> for a power-constrained "
                   "search over LPAA1-5 + AccuFA)\n";
    }

    if (const auto path = obs::report_path(args)) {
      report.write_file(*path);
      std::cout << "json report written to " << *path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// GeAr — the Generic Accuracy-configurable low-latency adder of Shafique
// et al. [17] (paper §2.2, Figure 2).
//
// An N-bit GeAr(N, R, P) splits the addition into k = (N-L)/R + 1
// sub-adders of length L = R + P.  Sub-adder i adds operand bits
// [iR, iR+L-1] with carry-in 0; block 0 contributes all L result bits,
// every later block contributes its top R bits.  The carry chain is thus
// cut to L bits — lower latency, occasionally wrong sums.
//
// The paper claims (§1.1) that its recursive style of analysis also
// covers such LLAAs without inclusion-exclusion.  `GearAnalyzer`
// demonstrates that: an O(N) dynamic program over the joint (exact
// carry, active window carries) state computes the exact error
// probability; a closed-form per-block model with an independence
// approximation (the GeAr paper's own estimate) is provided for
// comparison, and Monte Carlo/exhaustive simulation for validation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sealpaa/multibit/blocks.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/sim/metrics.hpp"

namespace sealpaa::gear {

/// A validated GeAr configuration.  R need not divide N - L: a ragged
/// tail is handled by clamping the final sub-adder's window to end at
/// bit N (it keeps its L input bits and contributes the remaining
/// result bits), matching heterogeneous-block hardware.
class GearConfig {
 public:
  /// Throws std::invalid_argument unless 1 <= R, 0 <= P, L = R+P <= N,
  /// and N <= 63.
  GearConfig(int n, int r, int p);

  /// The Almost Correct Adder of Kahng & Kang [10]: each result bit sees
  /// a K-bit carry window — ACA(N, K) = GeAr(N, 1, K-1) [17].
  [[nodiscard]] static GearConfig aca(int n, int k) {
    return GearConfig(n, 1, k - 1);
  }

  /// ETAII (error-tolerant adder type II): equal-size non-overlapping
  /// result segments with X-bit carry lookahead — ETAII(N, X) =
  /// GeAr(N, X, X) [17].
  [[nodiscard]] static GearConfig etaii(int n, int x) {
    return GearConfig(n, x, x);
  }

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int r() const noexcept { return r_; }
  [[nodiscard]] int p() const noexcept { return p_; }
  [[nodiscard]] int l() const noexcept { return r_ + p_; }
  /// Number of sub-adder blocks, k = ceil((N-L)/R) + 1 (1 when N == L).
  [[nodiscard]] int blocks() const noexcept;
  /// Worst-case carry-chain length (the latency proxy): L bits.
  [[nodiscard]] int critical_path_bits() const noexcept { return l(); }

  /// Window start bit of block `i`: min(iR, N-L) — only the final
  /// block can clamp.
  [[nodiscard]] int window_start(int block) const noexcept;
  /// First result bit contributed by block `i`.
  [[nodiscard]] int result_start(int block) const noexcept;
  /// Carry-prediction bits of block `i`'s window
  /// (result_start - window_start): 0 for block 0, P for aligned
  /// blocks, up to R+P-1 for a clamped final window.
  [[nodiscard]] int overlap(int block) const noexcept;

  /// The equivalent heterogeneous block spec — the bridge into
  /// analysis::BlockErrorModel and the block simulation kernels.
  [[nodiscard]] multibit::BlockChainSpec to_blocks() const;

  [[nodiscard]] std::string describe() const;

 private:
  int n_;
  int r_;
  int p_;
};

/// Functional GeAr model.  By default the sub-adders are exact; passing
/// an approximate cell yields the doubly-approximate LLAA-of-LPAA
/// hybrid the paper's §1.1 gestures at for accelerator datapaths.
class GearAdder {
 public:
  explicit GearAdder(GearConfig config);
  GearAdder(GearConfig config, adders::AdderCell cell);

  /// Evaluates the GeAr sum of `a + b` (carry-in fixed to 0, as in the
  /// hardware).  The returned carry-out is the last block's carry.
  [[nodiscard]] multibit::AddResult evaluate(std::uint64_t a,
                                             std::uint64_t b) const noexcept;

  [[nodiscard]] const GearConfig& config() const noexcept { return config_; }
  [[nodiscard]] const adders::AdderCell& cell() const noexcept {
    return cell_;
  }

 private:
  GearConfig config_;
  adders::AdderCell cell_;
};

/// Exact and approximate analytical error probabilities for GeAr.
struct GearAnalysis {
  /// Exact P(GeAr output != exact sum), final carry-out included,
  /// from the joint-carry dynamic program (no inclusion-exclusion).
  double p_error_exact_dp = 0.0;
  /// Same but ignoring the final carry-out.
  double p_error_sum_only = 0.0;
  /// Independence approximation: 1 - prod_i (1 - P(block i fails)).
  double p_error_independent_approx = 0.0;
  /// Exact per-block failure probabilities P(B_i), i = 1..k-1.
  std::vector<double> block_failure;
};

class GearAnalyzer {
 public:
  /// Analyzes GeAr under per-bit input probabilities (carry-in is fixed
  /// to 0 by the topology; profile.p_cin() is ignored).  O(N) states.
  [[nodiscard]] static GearAnalysis analyze(
      const GearConfig& config, const multibit::InputProfile& profile);

  /// Exact value-level error probability of a GeAr whose sub-adders are
  /// built from an arbitrary (possibly approximate) cell: the DP tracks
  /// every live window's cell-driven carry against the exact carry and
  /// checks the cell's sum bit at each result position.  Reduces to
  /// `analyze` for the accurate cell.  The per-block closed forms do not
  /// apply to approximate cells, so `block_failure` /
  /// `p_error_independent_approx` are left empty/zero.
  [[nodiscard]] static GearAnalysis analyze_with_cell(
      const GearConfig& config, const adders::AdderCell& cell,
      const multibit::InputProfile& profile);

  /// Exhaustive validation sweep over all 2^(2N) input pairs (uniform
  /// inputs); guarded at `max_width` bits.
  [[nodiscard]] static sim::ErrorMetrics exhaustive(
      const GearConfig& config, std::size_t max_width = 13);

  /// Exhaustive sweep of a cell-based GeAr.
  [[nodiscard]] static sim::ErrorMetrics exhaustive_with_cell(
      const GearConfig& config, const adders::AdderCell& cell,
      std::size_t max_width = 13);
};

}  // namespace sealpaa::gear

// GeAr error detection and correction (paper §1: "The error in this LLAA
// model can be detected as well as corrected as explained in [11]").
//
// Detection: block i (i >= 1) is erroneous iff the true carry into its
// first result bit differs from the window-internal carry — equivalently
// iff the carry into the window start is 1 AND all P overlap bits
// propagate.  Both signals are computable in hardware from the operands
// and the neighbouring sub-adder's internal carries.
//
// Correction: each detected block is patched by injecting the missed
// carry (one correction per recovery cycle, as in the consolidated ECC
// of Mazahir et al. [11]); corrections of distinct blocks are
// independent, so the number of recovery cycles equals the number of
// failing blocks.  This module provides the functional corrector and the
// exact analytical distribution of recovery-cycle counts.
#pragma once

#include <cstdint>
#include <vector>

#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::gear {

/// Outcome of a corrected GeAr evaluation.
struct CorrectedResult {
  multibit::AddResult outputs;   // always the exact sum after correction
  int failing_blocks = 0;        // detected erroneous blocks
  int total_cycles = 1;          // 1 base cycle + one per failing block
};

/// Functional model of GeAr + detection + correction.
class GearCorrector {
 public:
  explicit GearCorrector(GearConfig config) : config_(config) {}

  /// Detects failing blocks for one operand pair (indices 1..k-1).
  [[nodiscard]] std::vector<int> detect(std::uint64_t a,
                                        std::uint64_t b) const;

  /// Evaluates with correction: the final outputs equal the exact sum;
  /// cycle count reflects the number of detected blocks.
  [[nodiscard]] CorrectedResult evaluate(std::uint64_t a,
                                         std::uint64_t b) const;

  [[nodiscard]] const GearConfig& config() const noexcept { return config_; }

 private:
  GearConfig config_;
};

/// Analytical distribution of the number of failing blocks (= recovery
/// cycles) for a GeAr adder under per-bit input probabilities: entry c
/// is P(exactly c blocks fail), c = 0..k-1.  Computed by the same
/// joint-carry dynamic program as GearAnalyzer, extended with a failure
/// counter — still O(N), no inclusion-exclusion.
[[nodiscard]] std::vector<double> correction_cycle_distribution(
    const GearConfig& config, const multibit::InputProfile& profile);

/// Expected number of recovery cycles E[#failing blocks].
[[nodiscard]] double expected_recovery_cycles(
    const GearConfig& config, const multibit::InputProfile& profile);

}  // namespace sealpaa::gear

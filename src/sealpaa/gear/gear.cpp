#include "sealpaa/gear/gear.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sealpaa/adders/builtin.hpp"

namespace sealpaa::gear {

namespace {

constexpr bool majority(bool a, bool b, bool c) noexcept {
  return (static_cast<int>(a) + static_cast<int>(b) + static_cast<int>(c)) >= 2;
}

}  // namespace

GearConfig::GearConfig(int n, int r, int p) : n_(n), r_(r), p_(p) {
  if (n < 1 || n > 63) {
    throw std::invalid_argument("GearConfig: N must be in [1, 63]");
  }
  if (r < 1 || p < 0) {
    throw std::invalid_argument("GearConfig: require R >= 1 and P >= 0");
  }
  if (r + p > n) {
    throw std::invalid_argument("GearConfig: sub-adder length L = R+P > N");
  }
}

int GearConfig::blocks() const noexcept {
  // Ragged tails are allowed: when R does not divide N - L the final
  // sub-adder's window is clamped to end at bit N and it contributes
  // the remaining (N - L) mod R result bits.
  if (n_ == l()) return 1;
  return (n_ - l() + r_ - 1) / r_ + 1;
}

int GearConfig::window_start(int block) const noexcept {
  return std::min(block * r_, n_ - l());
}

int GearConfig::result_start(int block) const noexcept {
  return block == 0 ? 0 : block * r_ + p_;
}

int GearConfig::overlap(int block) const noexcept {
  return result_start(block) - window_start(block);
}

multibit::BlockChainSpec GearConfig::to_blocks() const {
  std::vector<multibit::SubBlock> blocks_list;
  const int k = blocks();
  for (int i = 0; i < k; ++i) {
    const int result_width =
        (i + 1 < k ? result_start(i + 1) : n_) - result_start(i);
    blocks_list.push_back({result_width, overlap(i)});
  }
  return multibit::BlockChainSpec(std::move(blocks_list));
}

std::string GearConfig::describe() const {
  std::ostringstream out;
  out << "GeAr(N=" << n_ << ",R=" << r_ << ",P=" << p_ << ") L=" << l()
      << " k=" << blocks();
  return out.str();
}

GearAdder::GearAdder(GearConfig config)
    : config_(config), cell_(adders::accurate()) {}

GearAdder::GearAdder(GearConfig config, adders::AdderCell cell)
    : config_(config), cell_(std::move(cell)) {}

multibit::AddResult GearAdder::evaluate(std::uint64_t a,
                                        std::uint64_t b) const noexcept {
  const int n = config_.n();
  const int l = config_.l();
  const int k = config_.blocks();
  multibit::AddResult result;
  for (int block = 0; block < k; ++block) {
    const int start = config_.window_start(block);
    // Offset of the first contributed bit within the window: P for the
    // aligned blocks, more for a clamped final window.
    const int first_result = config_.overlap(block);
    bool carry = false;  // sub-adders restart with cin = 0
    for (int bit = 0; bit < l; ++bit) {
      const bool a_bit = ((a >> (start + bit)) & 1ULL) != 0;
      const bool b_bit = ((b >> (start + bit)) & 1ULL) != 0;
      const adders::BitPair out = cell_.output(a_bit, b_bit, carry);
      if (bit >= first_result) {
        result.sum_bits |= static_cast<std::uint64_t>(out.sum)
                           << (start + bit);
      }
      carry = out.carry;
    }
    if (block == k - 1) result.carry_out = carry;
  }
  result.sum_bits = multibit::mask_width(result.sum_bits,
                                         static_cast<std::size_t>(n));
  return result;
}

namespace {

// Index of the block whose result region contains bit j.
int producing_block(const GearConfig& config, int j) noexcept {
  if (j < config.l()) return 0;
  // The division is exact for aligned blocks; a clamped final block's
  // region extends past (k-1)R + P + R, hence the cap.
  return std::min((j - config.p()) / config.r(), config.blocks() - 1);
}

}  // namespace

GearAnalysis GearAnalyzer::analyze(const GearConfig& config,
                                   const multibit::InputProfile& profile) {
  if (static_cast<int>(profile.width()) != config.n()) {
    throw std::invalid_argument(
        "GearAnalyzer: profile width must equal the GeAr operand width");
  }
  const int n = config.n();
  const int k = config.blocks();
  GearAnalysis analysis;

  // ---- Exact per-block failure probabilities (independence model) ----
  // Block i >= 1 fails iff the exact carry into its window start is 1 and
  // all P overlap bits propagate (a XOR b).  The carry depends only on
  // lower bits, so the product below is exact per block.
  {
    double carry_one = 0.0;  // exact carry distribution, cin = 0
    std::vector<double> p_carry_at(static_cast<std::size_t>(n) + 1, 0.0);
    for (int j = 0; j < n; ++j) {
      p_carry_at[static_cast<std::size_t>(j)] = carry_one;
      const double pa = profile.p_a(static_cast<std::size_t>(j));
      const double pb = profile.p_b(static_cast<std::size_t>(j));
      // P(carry' = 1) = P(generate) + P(propagate) * P(carry = 1)
      carry_one = pa * pb + (pa * (1.0 - pb) + pb * (1.0 - pa)) * carry_one;
    }
    p_carry_at[static_cast<std::size_t>(n)] = carry_one;
    for (int block = 1; block < k; ++block) {
      const int start = config.window_start(block);
      double failure = p_carry_at[static_cast<std::size_t>(start)];
      // The overlap is P for aligned blocks and R+P minus the remaining
      // result width for a clamped final window.
      for (int j = start; j < config.result_start(block); ++j) {
        const double pa = profile.p_a(static_cast<std::size_t>(j));
        const double pb = profile.p_b(static_cast<std::size_t>(j));
        failure *= pa * (1.0 - pb) + pb * (1.0 - pa);
      }
      analysis.block_failure.push_back(failure);
    }
    double p_all_ok = 1.0;
    for (double f : analysis.block_failure) p_all_ok *= 1.0 - f;
    analysis.p_error_independent_approx = 1.0 - p_all_ok;
  }

  // ---- Exact joint DP over (exact carry, active window carries) ----
  // States are kept only for input paths whose checked result bits have
  // all been correct so far (the paper's "discard error terms" idea);
  // the lost mass is exactly the error probability.
  {
    std::vector<int> active;  // block indices with a tracked window carry
    std::vector<double> state(2, 0.0);
    state[0] = 1.0;  // c_exact = 0, no active windows (cin = 0)

    const auto state_bits = [&]() {
      return 1 + static_cast<int>(active.size());
    };

    for (int j = 0; j < n; ++j) {
      // Open windows starting at j (block 0 shares the exact carry chain
      // and is never tracked).
      for (int block = 1; block < k; ++block) {
        if (config.window_start(block) == j) {
          // New carry bit appended as the most significant state bit,
          // initialised to 0: masses keep their low-bit encoding.
          active.push_back(block);
          state.resize(1ULL << state_bits(), 0.0);
        }
      }

      // Result-bit check at entry of j: the producing block's window
      // carry must equal the exact carry (sum bits match iff carries
      // match, both cells being exact adders).  Failing paths drop out.
      const int producer = producing_block(config, j);
      if (producer >= 1) {
        const auto it = std::find(active.begin(), active.end(), producer);
        const std::size_t bit_pos =
            1 + static_cast<std::size_t>(it - active.begin());
        for (std::size_t s = 0; s < state.size(); ++s) {
          const bool c_exact = (s & 1U) != 0;
          const bool c_window = ((s >> bit_pos) & 1U) != 0;
          if (c_exact != c_window) state[s] = 0.0;
        }
      }

      // Advance every carry chain through bit j.
      const double pa = profile.p_a(static_cast<std::size_t>(j));
      const double pb = profile.p_b(static_cast<std::size_t>(j));
      const double ab[4] = {(1.0 - pa) * (1.0 - pb), (1.0 - pa) * pb,
                            pa * (1.0 - pb), pa * pb};
      std::vector<double> next(state.size(), 0.0);
      for (std::size_t s = 0; s < state.size(); ++s) {
        if (state[s] == 0.0) continue;
        for (int abi = 0; abi < 4; ++abi) {
          const bool a = (abi & 2) != 0;
          const bool b = (abi & 1) != 0;
          std::size_t s2 = 0;
          const bool c_exact = (s & 1U) != 0;
          if (majority(a, b, c_exact)) s2 |= 1U;
          for (std::size_t w = 0; w < active.size(); ++w) {
            const bool cw = ((s >> (1 + w)) & 1U) != 0;
            if (majority(a, b, cw)) s2 |= 1ULL << (1 + w);
          }
          next[s2] += state[s] * ab[abi];
        }
      }
      state = std::move(next);

      // Retire windows whose last result bit was j (keep the final block
      // so its carry-out can be checked at the end).
      for (std::size_t w = 0; w < active.size();) {
        const int block = active[w];
        const int last_bit = config.window_start(block) + config.l() - 1;
        if (last_bit == j && block != k - 1) {
          // Marginalise bit (1 + w) out of the state vector.
          std::vector<double> reduced(state.size() / 2, 0.0);
          for (std::size_t s = 0; s < state.size(); ++s) {
            const std::size_t low = s & ((1ULL << (1 + w)) - 1ULL);
            const std::size_t high = (s >> (2 + w)) << (1 + w);
            reduced[high | low] += state[s];
          }
          state = std::move(reduced);
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(w));
        } else {
          ++w;
        }
      }
    }

    // After the sweep only the final block remains tracked (its window
    // ends at bit N-1); its carry is the GeAr carry-out.
    std::size_t final_carry_bit = 0;
    if (!active.empty()) {
      const auto it = std::find(active.begin(), active.end(), k - 1);
      final_carry_bit = 1 + static_cast<std::size_t>(it - active.begin());
    }
    double ok_mass = 0.0;
    double ok_mass_with_carry = 0.0;
    for (std::size_t s = 0; s < state.size(); ++s) {
      ok_mass += state[s];
      bool carry_matches = true;
      if (final_carry_bit != 0) {
        const bool c_exact = (s & 1U) != 0;
        const bool c_window = ((s >> final_carry_bit) & 1U) != 0;
        carry_matches = (c_window == c_exact);
      }
      if (carry_matches) ok_mass_with_carry += state[s];
    }
    analysis.p_error_sum_only = 1.0 - ok_mass;
    analysis.p_error_exact_dp = 1.0 - ok_mass_with_carry;
  }

  return analysis;
}

GearAnalysis GearAnalyzer::analyze_with_cell(
    const GearConfig& config, const adders::AdderCell& cell,
    const multibit::InputProfile& profile) {
  if (static_cast<int>(profile.width()) != config.n()) {
    throw std::invalid_argument(
        "GearAnalyzer::analyze_with_cell: profile width must equal N");
  }
  const int n = config.n();
  const int k = config.blocks();
  GearAnalysis analysis;

  // Generalized joint DP: every live window carries a cell-driven carry
  // (block 0 included — with an approximate cell its chain deviates from
  // the exact one), and the result-bit check compares the cell's sum
  // against the exact sum *per (a, b) combination* during the update.
  std::vector<int> active;
  std::vector<double> state(2, 0.0);
  state[0] = 1.0;  // exact carry 0, no windows yet

  const auto state_bits = [&]() {
    return 1 + static_cast<int>(active.size());
  };

  for (int j = 0; j < n; ++j) {
    for (int block = 0; block < k; ++block) {
      if (config.window_start(block) == j) {
        active.push_back(block);
        state.resize(1ULL << state_bits(), 0.0);
      }
    }

    const int producer = producing_block(config, j);
    const auto it = std::find(active.begin(), active.end(), producer);
    const std::size_t producer_bit =
        1 + static_cast<std::size_t>(it - active.begin());

    const double pa = profile.p_a(static_cast<std::size_t>(j));
    const double pb = profile.p_b(static_cast<std::size_t>(j));
    const double ab[4] = {(1.0 - pa) * (1.0 - pb), (1.0 - pa) * pb,
                          pa * (1.0 - pb), pa * pb};
    std::vector<double> next(state.size(), 0.0);
    for (std::size_t s = 0; s < state.size(); ++s) {
      if (state[s] == 0.0) continue;
      const bool c_exact = (s & 1U) != 0;
      for (int abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2) != 0;
        const bool b = (abi & 1) != 0;
        // Result-bit check at position j.
        const bool cw = ((s >> producer_bit) & 1U) != 0;
        const adders::BitPair cell_out = cell.output(a, b, cw);
        const bool exact_sum = (a != b) ? !c_exact : c_exact;
        if (cell_out.sum != exact_sum) continue;  // error path dropped
        // Advance all carries.
        std::size_t s2 = 0;
        if (majority(a, b, c_exact)) s2 |= 1U;
        for (std::size_t w = 0; w < active.size(); ++w) {
          const bool cw_in = ((s >> (1 + w)) & 1U) != 0;
          if (cell.output(a, b, cw_in).carry) s2 |= 1ULL << (1 + w);
        }
        next[s2] += state[s] * ab[abi];
      }
    }
    state = std::move(next);

    for (std::size_t w = 0; w < active.size();) {
      const int block = active[w];
      const int last_bit = config.window_start(block) + config.l() - 1;
      if (last_bit == j && block != k - 1) {
        std::vector<double> reduced(state.size() / 2, 0.0);
        for (std::size_t s = 0; s < state.size(); ++s) {
          const std::size_t low = s & ((1ULL << (1 + w)) - 1ULL);
          const std::size_t high = (s >> (2 + w)) << (1 + w);
          reduced[high | low] += state[s];
        }
        state = std::move(reduced);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(w));
      } else {
        ++w;
      }
    }
  }

  std::size_t final_carry_bit = 0;
  if (!active.empty()) {
    const auto last = std::find(active.begin(), active.end(), k - 1);
    final_carry_bit = 1 + static_cast<std::size_t>(last - active.begin());
  }
  double ok_mass = 0.0;
  double ok_mass_with_carry = 0.0;
  for (std::size_t s = 0; s < state.size(); ++s) {
    ok_mass += state[s];
    bool carry_matches = true;
    if (final_carry_bit != 0) {
      const bool c_exact = (s & 1U) != 0;
      const bool c_window = ((s >> final_carry_bit) & 1U) != 0;
      carry_matches = (c_window == c_exact);
    }
    if (carry_matches) ok_mass_with_carry += state[s];
  }
  analysis.p_error_sum_only = 1.0 - ok_mass;
  analysis.p_error_exact_dp = 1.0 - ok_mass_with_carry;
  return analysis;
}

sim::ErrorMetrics GearAnalyzer::exhaustive_with_cell(
    const GearConfig& config, const adders::AdderCell& cell,
    std::size_t max_width) {
  const std::size_t n = static_cast<std::size_t>(config.n());
  if (n > max_width) {
    throw std::invalid_argument(
        "GearAnalyzer::exhaustive_with_cell: width exceeds the guard");
  }
  GearAdder adder{config, cell};
  sim::ErrorMetrics metrics;
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      const multibit::AddResult approx = adder.evaluate(a, b);
      const multibit::AddResult exact = multibit::exact_add(a, b, false, n);
      metrics.add(approx.value(n), exact.value(n),
                  approx.value(n) == exact.value(n));
    }
  }
  return metrics;
}

sim::ErrorMetrics GearAnalyzer::exhaustive(const GearConfig& config,
                                           std::size_t max_width) {
  const std::size_t n = static_cast<std::size_t>(config.n());
  if (n > max_width) {
    throw std::invalid_argument(
        "GearAnalyzer::exhaustive: width exceeds the sweep guard");
  }
  GearAdder adder{config};
  sim::ErrorMetrics metrics;
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      const multibit::AddResult approx = adder.evaluate(a, b);
      const multibit::AddResult exact = multibit::exact_add(a, b, false, n);
      metrics.add(approx.value(n), exact.value(n),
                  approx.value(n) == exact.value(n));
    }
  }
  return metrics;
}

}  // namespace sealpaa::gear

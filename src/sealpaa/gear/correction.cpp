#include "sealpaa/gear/correction.hpp"

#include <algorithm>
#include <stdexcept>

namespace sealpaa::gear {

namespace {

// Carry into bit position `j` of the exact sum a + b (cin = 0).
bool exact_carry_into(std::uint64_t a, std::uint64_t b, int j) noexcept {
  if (j <= 0) return false;
  const std::uint64_t mask =
      j >= 64 ? ~0ULL : ((1ULL << j) - 1ULL);
  const std::uint64_t low = (a & mask) + (b & mask);
  return ((low >> j) & 1ULL) != 0;
}

}  // namespace

std::vector<int> GearCorrector::detect(std::uint64_t a,
                                       std::uint64_t b) const {
  std::vector<int> failing;
  for (int block = 1; block < config_.blocks(); ++block) {
    const int start = config_.window_start(block);
    // Per-block overlap width: P for aligned blocks, larger for a
    // clamped final window.
    const int p = config_.overlap(block);
    // Window-internal carry into the first result bit (cin = 0 over the
    // overlap bits)...
    const std::uint64_t overlap_mask =
        p == 0 ? 0ULL : ((1ULL << p) - 1ULL);
    const std::uint64_t wa = (a >> start) & overlap_mask;
    const std::uint64_t wb = (b >> start) & overlap_mask;
    const bool window_carry = p == 0 ? false : (((wa + wb) >> p) & 1ULL) != 0;
    // ...versus the true carry into the same position.
    const bool true_carry = exact_carry_into(a, b, start + p);
    if (window_carry != true_carry) failing.push_back(block);
  }
  return failing;
}

CorrectedResult GearCorrector::evaluate(std::uint64_t a,
                                        std::uint64_t b) const {
  CorrectedResult result;
  result.failing_blocks = static_cast<int>(detect(a, b).size());
  result.total_cycles = 1 + result.failing_blocks;
  // Injecting every missed carry yields the exact sum.
  result.outputs = multibit::exact_add(
      a, b, false, static_cast<std::size_t>(config_.n()));
  return result;
}

std::vector<double> correction_cycle_distribution(
    const GearConfig& config, const multibit::InputProfile& profile) {
  if (static_cast<int>(profile.width()) != config.n()) {
    throw std::invalid_argument(
        "correction_cycle_distribution: profile width must equal N");
  }
  const int n = config.n();
  const int k = config.blocks();

  // DP over (exact carry, active window carries) x failure count.  A
  // block's window only needs tracking from its start to its first
  // result bit (the failure event is decided there), so at most
  // ceil(P/R) + 1 windows are live at once.
  struct Layer {
    std::vector<int> active;     // block indices, in opening order
    std::vector<std::vector<double>> mass;  // [failures][state bits]
  };
  Layer layer;
  layer.mass.assign(static_cast<std::size_t>(k), std::vector<double>(2, 0.0));
  layer.mass[0][0] = 1.0;  // c_exact = 0 (cin = 0), zero failures

  const auto state_bits = [&]() {
    return 1 + static_cast<int>(layer.active.size());
  };

  for (int j = 0; j < n; ++j) {
    // Open windows starting at j.
    for (int block = 1; block < k; ++block) {
      if (config.window_start(block) == j) {
        layer.active.push_back(block);
        for (auto& states : layer.mass) {
          states.resize(1ULL << state_bits(), 0.0);
        }
      }
    }

    // Failure decision at a block's first result bit: carries differing
    // moves the mass to failures+1; the window then retires.
    for (std::size_t w = 0; w < layer.active.size();) {
      const int block = layer.active[w];
      if (config.result_start(block) != j) {
        ++w;
        continue;
      }
      const std::size_t bit_pos = 1 + w;
      std::vector<std::vector<double>> next_mass(
          layer.mass.size(),
          std::vector<double>(layer.mass[0].size() / 2, 0.0));
      for (std::size_t f = 0; f < layer.mass.size(); ++f) {
        for (std::size_t s = 0; s < layer.mass[f].size(); ++s) {
          const double m = layer.mass[f][s];
          if (m == 0.0) continue;
          const bool c_exact = (s & 1U) != 0;
          const bool c_window = ((s >> bit_pos) & 1U) != 0;
          const std::size_t low = s & ((1ULL << bit_pos) - 1ULL);
          const std::size_t high = (s >> (bit_pos + 1)) << bit_pos;
          const std::size_t reduced = high | low;
          // At most k-1 blocks can fail, so f+1 stays within the k-entry
          // distribution; .at() guards the invariant.
          const std::size_t f2 = f + (c_exact != c_window ? 1 : 0);
          next_mass.at(f2)[reduced] += m;
        }
      }
      layer.mass = std::move(next_mass);
      layer.active.erase(layer.active.begin() +
                         static_cast<std::ptrdiff_t>(w));
    }

    // Advance every carry chain through bit j.
    const double pa = profile.p_a(static_cast<std::size_t>(j));
    const double pb = profile.p_b(static_cast<std::size_t>(j));
    const double ab[4] = {(1.0 - pa) * (1.0 - pb), (1.0 - pa) * pb,
                          pa * (1.0 - pb), pa * pb};
    for (auto& states : layer.mass) {
      std::vector<double> next(states.size(), 0.0);
      for (std::size_t s = 0; s < states.size(); ++s) {
        if (states[s] == 0.0) continue;
        for (int abi = 0; abi < 4; ++abi) {
          const int a_bit = (abi >> 1) & 1;
          const int b_bit = abi & 1;
          std::size_t s2 = 0;
          const int c_exact = static_cast<int>(s & 1U);
          if (a_bit + b_bit + c_exact >= 2) s2 |= 1U;
          for (std::size_t w = 0; w < layer.active.size(); ++w) {
            const int cw = static_cast<int>((s >> (1 + w)) & 1U);
            if (a_bit + b_bit + cw >= 2) s2 |= 1ULL << (1 + w);
          }
          next[s2] += states[s] * ab[abi];
        }
      }
      states = std::move(next);
    }
  }

  std::vector<double> distribution(static_cast<std::size_t>(k), 0.0);
  for (std::size_t f = 0; f < layer.mass.size(); ++f) {
    for (double m : layer.mass[f]) distribution[f] += m;
  }
  return distribution;
}

double expected_recovery_cycles(const GearConfig& config,
                                const multibit::InputProfile& profile) {
  const std::vector<double> distribution =
      correction_cycle_distribution(config, profile);
  double expectation = 0.0;
  for (std::size_t c = 0; c < distribution.size(); ++c) {
    expectation += static_cast<double>(c) * distribution[c];
  }
  return expectation;
}

}  // namespace sealpaa::gear

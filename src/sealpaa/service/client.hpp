// Minimal blocking client for the sealpaad TCP endpoint.
//
// This is the in-process counterpart of scripts/service_smoke.py: the
// unit tests and bench_service_throughput use it to pipeline requests
// and read newline-delimited responses without hand-rolling socket code
// at every call site.  Deliberately synchronous — measurement and test
// clients want deterministic, sequential IO.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sealpaa/service/wire.hpp"

namespace sealpaa::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to an IPv4 address (dotted quad) and enables TCP_NODELAY.
  /// Throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);

  /// Writes `json` plus the terminating newline, fully.
  void send_frame(std::string_view json);

  /// Writes raw bytes verbatim — lets tests send malformed, merged or
  /// partial frames.
  void send_bytes(std::string_view bytes);

  /// Blocks for the next response line; nullopt once the server closes
  /// the connection.  Throws std::runtime_error on IO errors.
  [[nodiscard]] std::optional<std::string> read_frame();

  /// Half-closes the write side (the pipelined-EOF pattern: send
  /// everything, shut down writes, then drain responses).
  void shutdown_write();

  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  /// Response frames can embed large stats payloads, so the client
  /// accepts far longer lines than the server does.
  FrameSplitter splitter_{std::size_t{1} << 22};
};

}  // namespace sealpaa::service

// Wire protocol of the batch analysis service (schema sealpaa.service,
// version 1).
//
// Transport framing is newline-delimited JSON: one request object per
// line, one response object per line, over either a TCP connection or
// the sealpaad stdin/stdout pipe.  Requests look like
//
//   {"id": 7, "method": "recursive", "width": 16,
//    "chain": "LPAA3",                     // or ["LPAA3", "AccuFA", ...]
//    "params": {"p": 0.35, "timeout_ms": 1000}}
//
// The block-analytic method takes its topology from a "blocks" spec
// string instead of the cell chain ("chain" is then optional and
// defaults to the accurate cell — block sub-adders are exact by
// construction):
//
//   {"id": 8, "method": "block-analytic", "width": 16,
//    "blocks": "gear:4:4", "params": {"p": 0.5}}
//
// and successful responses echo the id and carry the *same* evaluation
// projection the CLI writes into its run report:
//
//   {"schema": "sealpaa.service", "schema_version": 1, "id": 7,
//    "ok": true, "method": "recursive", "evaluation": {...}}
//
// Failures are structured, never silent:
//
//   {"schema": "sealpaa.service", "schema_version": 1, "id": 7,
//    "ok": false, "error": {"code": "width-limit", "message": "..."}}
//
// This header owns everything transport-independent: the frame
// splitter (robust against arbitrarily split/merged TCP reads and
// oversized frames), strict request parsing against WireLimits, and the
// response builders.  The dispatcher and server compose these; the unit
// tests drive them without any socket.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sealpaa/engine/method.hpp"
#include "sealpaa/obs/json.hpp"
#include "sealpaa/sim/kernel.hpp"

namespace sealpaa::service {

inline constexpr std::string_view kWireSchema = "sealpaa.service";
inline constexpr int kWireSchemaVersion = 1;

/// Stable error codes of the "error.code" response field.
namespace error_code {
inline constexpr std::string_view kInvalidJson = "invalid-json";
inline constexpr std::string_view kFrameTooLarge = "frame-too-large";
inline constexpr std::string_view kBadRequest = "bad-request";
inline constexpr std::string_view kUnknownMethod = "unknown-method";
inline constexpr std::string_view kUnknownCell = "unknown-cell";
inline constexpr std::string_view kWidthLimit = "width-limit";
inline constexpr std::string_view kRequestLimit = "request-limit";
inline constexpr std::string_view kTimeout = "timeout";
inline constexpr std::string_view kInternal = "internal";
}  // namespace error_code

/// Per-request robustness limits enforced before any work is scheduled.
struct WireLimits {
  /// Longest accepted request line (bytes, excluding the newline).
  std::size_t max_frame_bytes = 64 * 1024;
  /// Widest accepted chain; individual methods may reject earlier
  /// (inclusion-exclusion guards at 20, the exhaustive engines at
  /// 13/14).
  std::size_t max_width = 64;
  /// Monte Carlo sample cap per request.
  std::uint64_t max_samples = std::uint64_t{1} << 24;
  /// Deadline applied when a request does not set params.timeout_ms.
  std::uint64_t default_timeout_ms = 10'000;
  /// Largest accepted params.timeout_ms.
  std::uint64_t max_timeout_ms = 300'000;
};

/// Incremental newline-delimited framing over an arbitrary byte stream.
/// Bytes may arrive in any fragmentation (TCP gives no message
/// boundaries); frames come out exactly as sent.  A line exceeding
/// `max_frame_bytes` yields one frame flagged `oversized` (so the
/// caller can answer with a structured error) and the remainder of that
/// line is discarded — the stream stays usable for the next frame.
class FrameSplitter {
 public:
  struct Frame {
    std::string text;
    bool oversized = false;
  };

  explicit FrameSplitter(std::size_t max_frame_bytes);

  /// Appends raw bytes; complete frames become available via next().
  /// Empty lines are skipped (cheap keep-alives), a trailing "\r" is
  /// stripped so CRLF clients work.
  void feed(std::string_view bytes);

  /// Signals end of stream: a trailing line without a final newline is
  /// flushed as a frame.
  void finish();

  /// Next complete frame in arrival order, or nullopt.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes of the current incomplete line held back.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return partial_.size();
  }

 private:
  std::size_t max_frame_bytes_;
  std::string partial_;
  bool discarding_ = false;  // inside an oversized line, eating to '\n'
  std::deque<Frame> ready_;
};

/// A fully validated evaluate request.
struct Request {
  enum class Kind { kEvaluate, kStats, kPing };

  obs::Json id;  // echoed verbatim; null when the client sent none
  Kind kind = Kind::kEvaluate;
  engine::Method method = engine::Method::kRecursive;
  std::size_t width = 0;
  /// Per-stage cell names, least significant first; size() == width.
  std::vector<std::string> chain;
  /// Block-adder topology; set exactly when method == kBlockAnalytic.
  std::optional<multibit::BlockChainSpec> blocks;
  double p = 0.5;
  std::uint64_t samples = 1'000'000;
  std::uint64_t seed = 0x5ea1'c0de'2017'dacULL;
  sim::Kernel kernel = sim::Kernel::kBitSliced;
  std::uint64_t timeout_ms = 0;  // resolved; 0 = expire immediately
};

struct WireError {
  std::string code;
  std::string message;
};

/// Result of parsing one frame: `id` is always the best-effort echo
/// (null when the frame was not even valid JSON); exactly one of
/// `request` / `error` is set.
struct ParseOutcome {
  obs::Json id;
  std::optional<Request> request;
  std::optional<WireError> error;
};

/// Validates one frame against the limits.  Strict like the CLI parser:
/// unknown top-level or params keys, wrong value types, out-of-range
/// probabilities and malformed chains are errors, never guesses.
[[nodiscard]] ParseOutcome parse_request(const FrameSplitter::Frame& frame,
                                         const WireLimits& limits);

/// {"schema", "schema_version", "id", "ok": false, "error": {...}}.
[[nodiscard]] obs::Json make_error_response(const obs::Json& id,
                                            std::string_view code,
                                            std::string_view message);

/// {"schema", "schema_version", "id", "ok": true, "method",
///  "evaluation": obs::to_json(evaluation)} — field-for-field the
/// projection `sealpaa_cli analyze` writes under
/// sections.analyze.evaluation.
[[nodiscard]] obs::Json make_evaluation_response(
    const obs::Json& id, const engine::Evaluation& evaluation);

/// {"schema", "schema_version", "id", "ok": true, "pong": true}.
[[nodiscard]] obs::Json make_ping_response(const obs::Json& id);

/// Compact single-line serialization plus the terminating newline.
[[nodiscard]] std::string serialize_frame(const obs::Json& response);

}  // namespace sealpaa::service

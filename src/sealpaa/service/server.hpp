// Long-running batch analysis server (`sealpaad`).
//
// The IO thread (serve()) runs a poll() loop over the TCP listener — or
// stdin/stdout in pipe mode — reading bytes, splitting frames and
// flushing response bytes.  Each frame is handed straight to the
// sharded Dispatcher, whose dispatch workers (`DispatcherOptions::
// dispatch_threads`) parse-route it to its profile's shard, batch
// adaptively and evaluate; finished responses come back through the
// dispatcher's sink and a wake pipe.  The IO thread never evaluates
// anything, so a slow analysis cannot stall accepts or reads.
//
// Responses complete out of order per connection across shards (clients
// match them by request id); within one (connection, profile) pair they
// stay FIFO.
//
// Robustness behaviors, all exercised by tests/test_service.cpp and the
// CI smoke job:
//  * connection cap with backpressure — at the cap the listener simply
//    stops being polled, so new connections queue in the kernel backlog
//    instead of being dropped;
//  * per-connection pipelining cap — a client with too many responses
//    outstanding stops being read until they drain;
//  * malformed / oversized frames produce structured error responses
//    and the connection keeps serving;
//  * request_stop() (async-signal-safe; wired to SIGTERM by sealpaad)
//    triggers a graceful drain: stop accepting, stop reading, answer
//    everything already received, flush, then return 0 from serve().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "sealpaa/service/dispatcher.hpp"

namespace sealpaa::service {

struct ServerOptions {
  DispatcherOptions dispatcher{};
  /// TCP bind address; only IPv4 dotted-quad addresses are accepted.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (start() returns the choice).
  std::uint16_t port = 7413;
  /// Serve one session over stdin/stdout instead of TCP.
  bool pipe_mode = false;
  /// Connection cap; the listener is not polled while at the cap.
  std::size_t max_connections = 64;
  /// Per-connection outstanding-request cap; reads pause beyond it.
  std::size_t max_inflight_per_connection = 1024;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// TCP mode: binds and listens, returning the bound port.  Pipe mode:
  /// no-op returning 0.  Throws std::runtime_error on socket failure.
  std::uint16_t start();

  /// Runs the IO loop until end of input (pipe mode) or request_stop().
  /// Returns 0 after a clean drain, non-zero on a fatal IO error.
  /// start() must have been called first in TCP mode.
  int serve();

  /// Triggers a graceful drain.  Async-signal-safe and thread-safe —
  /// this is the SIGTERM hook.
  void request_stop() noexcept;

  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }
  /// Lifetime stats; meaningful once serve() returned (or between
  /// batches for an embedded server — reads are not synchronized with
  /// the dispatch thread).
  [[nodiscard]] const Dispatcher& dispatcher() const noexcept {
    return dispatcher_;
  }

 private:
  ServerOptions options_;
  Dispatcher dispatcher_;
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // poll()ed alongside the sockets
  int wake_write_fd_ = -1;  // written by request_stop / dispatch thread
  std::atomic<bool> stop_requested_{false};
};

}  // namespace sealpaa::service

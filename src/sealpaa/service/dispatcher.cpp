#include "sealpaa/service/dispatcher.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/obs/serialize.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::service {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::vector<adders::AdderCell> builtin_palette() {
  const std::span<const adders::AdderCell> cells = adders::all_builtin_cells();
  return {cells.begin(), cells.end()};
}

struct MethodStats {
  std::uint64_t count = 0;
  std::uint64_t errors = 0;
  obs::Histogram latency_us;
};

/// Accounting one worker publishes after each batch.  Guarded by
/// Shard::stats_mutex, so stats requests read a coherent snapshot
/// without ever touching the worker's live EvaluatorPool.
struct ShardStats {
  std::uint64_t batches = 0;
  std::uint64_t cut_through_batches = 0;  // drained queue, window skipped
  std::uint64_t coalesced_batches = 0;    // backlogged, window held open
  obs::Histogram batch_sizes;
  std::map<std::string, MethodStats> methods;
  std::uint64_t pool_live = 0;
  std::uint64_t pool_created = 0;
  std::uint64_t pool_evicted = 0;
  std::uint64_t pool_hits = 0;
  engine::CacheStats prefix{};
  engine::CacheStats pmf{};
  engine::BatchStats batch{};
};

void fold(engine::CacheStats& into, const engine::CacheStats& from) noexcept {
  into.hits += from.hits;
  into.misses += from.misses;
  into.insertions += from.insertions;
  into.evictions += from.evictions;
  into.stages_computed += from.stages_computed;
  into.chains_evaluated += from.chains_evaluated;
}

void fold(engine::BatchStats& into, const engine::BatchStats& from) noexcept {
  into.batches += from.batches;
  into.lanes += from.lanes;
  into.max_lanes = std::max(into.max_lanes, from.max_lanes);
  into.lane_stages += from.lane_stages;
  into.fast_lane_stages += from.fast_lane_stages;
}

[[nodiscard]] obs::Json methods_to_json(
    const std::map<std::string, MethodStats>& methods) {
  obs::Json out = obs::Json::object();
  for (const auto& [name, stats] : methods) {
    obs::Json entry = obs::Json::object();
    entry.set("count", obs::Json(stats.count));
    entry.set("errors", obs::Json(stats.errors));
    entry.set("latency_us", stats.latency_us.to_json());
    out.set(name, std::move(entry));
  }
  return out;
}

[[nodiscard]] obs::Json evaluators_to_json(const ShardStats& stats) {
  obs::Json out = obs::Json::object();
  out.set("live", obs::Json(stats.pool_live));
  out.set("created", obs::Json(stats.pool_created));
  out.set("evicted", obs::Json(stats.pool_evicted));
  out.set("pool_hits", obs::Json(stats.pool_hits));
  out.set("prefix_cache", obs::to_json(stats.prefix));
  out.set("pmf_cache", obs::to_json(stats.pmf));
  out.set("batch", obs::to_json(stats.batch));
  return out;
}

}  // namespace

/// One framed request after parsing: the origin, the validated request,
/// and the chain resolved to palette indices.
struct Dispatcher::ParsedItem {
  PendingRequest pending;
  Request request;
  std::vector<std::size_t> choices;
};

/// One dispatch worker's world: its queue, its adaptive-window state and
/// its own EvaluatorPool.  The pool is touched only by the owning worker
/// (or by run_batch's per-shard threads, which never overlap a running
/// worker), so evaluator state needs no locking.
struct Dispatcher::Shard {
  Shard(unsigned index_, std::vector<adders::AdderCell> palette,
        const engine::EvaluatorPoolOptions& pool_options)
      : index(index_), pool(std::move(palette), pool_options) {}

  const unsigned index;

  std::mutex mutex;  // guards queue / draining / backlog / high_water
  std::condition_variable cv;
  std::deque<ParsedItem> queue;
  bool draining = false;
  /// Did the previous take leave requests behind?  Set under load,
  /// cleared when the queue drains — the adaptive window only opens
  /// while this is true.
  bool backlog = false;
  std::uint64_t high_water = 0;

  engine::EvaluatorPool pool;

  std::mutex stats_mutex;
  ShardStats stats;

  std::thread worker;
};

Dispatcher::Dispatcher(DispatcherOptions options) : options_(options) {
  if (options_.dispatch_threads == 0) options_.dispatch_threads = 1;
  palette_ = builtin_palette();
  palette_index_.reserve(palette_.size());
  for (std::size_t i = 0; i < palette_.size(); ++i) {
    palette_index_.emplace(palette_[i].name(), i);
  }
  shards_.reserve(options_.dispatch_threads);
  for (unsigned shard = 0; shard < options_.dispatch_threads; ++shard) {
    shards_.push_back(
        std::make_unique<Shard>(shard, palette_, options_.pool));
  }
}

Dispatcher::~Dispatcher() { stop(); }

unsigned Dispatcher::shard_of(std::size_t width, double p,
                              unsigned shards) noexcept {
  if (shards <= 1) return 0;
  // FNV-1a over the exact (width, p) bits — the same identity the
  // EvaluatorPool keys on for uniform profiles, so one profile's
  // evaluators can never be split across two workers.  The murmur3
  // fmix64 finalizer avalanches the hash: plain FNV's low bits barely
  // move for small-integer widths, collapsing every profile onto shard
  // 0 at small worker counts.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix = [&hash](std::uint64_t value) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffu;
      hash *= 0x100000001b3ull;
    }
  };
  mix(static_cast<std::uint64_t>(width));
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(p));
  std::memcpy(&bits, &p, sizeof(bits));
  mix(bits);
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return static_cast<unsigned>(hash % shards);
}

void Dispatcher::start(ResponseSink sink) {
  if (started_) return;
  sink_ = std::move(sink);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->draining = false;
      shard->backlog = false;
    }
    shard->worker =
        std::thread([this, shard = shard.get()] { worker_loop(*shard); });
  }
  started_ = true;
}

void Dispatcher::submit(PendingRequest request) {
  requests_received_.fetch_add(1, std::memory_order_relaxed);
  ParsedItem item;
  switch (admit(std::move(request), sink_, &item)) {
    case Admission::kResponded:
      return;
    case Admission::kControl:
      // Answered inline: control requests never queue behind
      // evaluations (a stats probe may race ahead of an in-flight
      // batch — by design).
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      sink_(OutgoingResponse{item.pending.connection, item.pending.sequence,
                             serialize_frame(control_response(item.request))});
      return;
    case Admission::kEvaluate:
      route(std::move(item));
      return;
  }
}

void Dispatcher::drain() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  drain_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void Dispatcher::stop() {
  if (!started_) return;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->draining = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  started_ = false;
}

Dispatcher::Admission Dispatcher::admit(PendingRequest pending,
                                        const ResponseSink& sink,
                                        ParsedItem* item) {
  ParseOutcome outcome = parse_request(pending.frame, options_.limits);
  if (outcome.error) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    sink(OutgoingResponse{
        pending.connection, pending.sequence,
        serialize_frame(make_error_response(outcome.id, outcome.error->code,
                                            outcome.error->message))});
    return Admission::kResponded;
  }
  item->pending = std::move(pending);
  item->request = std::move(*outcome.request);
  item->choices.clear();
  if (item->request.kind != Request::Kind::kEvaluate) {
    return Admission::kControl;
  }
  item->choices.reserve(item->request.chain.size());
  for (const std::string& name : item->request.chain) {
    const auto found = palette_index_.find(name);
    if (found == palette_index_.end()) {
      requests_error_.fetch_add(1, std::memory_order_relaxed);
      sink(OutgoingResponse{
          item->pending.connection, item->pending.sequence,
          serialize_frame(make_error_response(
              item->request.id, error_code::kUnknownCell,
              "unknown cell '" + name + "' (try: sealpaa_cli cells)"))});
      return Admission::kResponded;
    }
    item->choices.push_back(found->second);
  }
  return Admission::kEvaluate;
}

void Dispatcher::route(ParsedItem item) {
  Shard& shard = *shards_[shard_of(item.request.width, item.request.p,
                                   static_cast<unsigned>(shards_.size()))];
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.queue.push_back(std::move(item));
    shard.high_water = std::max(shard.high_water,
                                static_cast<std::uint64_t>(shard.queue.size()));
  }
  shard.cv.notify_one();
}

void Dispatcher::worker_loop(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mutex);
  for (;;) {
    shard.cv.wait(lock, [&shard] {
      return !shard.queue.empty() || shard.draining;
    });
    if (shard.queue.empty()) return;  // draining and nothing left to do
    // Adaptive window: only a backlogged shard (the previous take left
    // work behind) holds the window open for stragglers; an idle shard
    // cuts through immediately so a lone request never pays the window.
    bool waited = false;
    if (shard.backlog && !shard.draining &&
        options_.batch_window.count() > 0 &&
        shard.queue.size() < options_.batch_max) {
      waited = true;
      const auto deadline = Clock::now() + options_.batch_window;
      while (shard.queue.size() < options_.batch_max && !shard.draining &&
             shard.cv.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
    }
    const std::size_t take = std::min(shard.queue.size(), options_.batch_max);
    std::vector<ParsedItem> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(shard.queue.front()));
      shard.queue.pop_front();
    }
    shard.backlog = !shard.queue.empty();
    lock.unlock();
    process_batch(shard, std::move(batch), sink_, waited);
    {
      std::lock_guard<std::mutex> guard(lifecycle_mutex_);
      inflight_.fetch_sub(take, std::memory_order_acq_rel);
    }
    drain_cv_.notify_all();
    lock.lock();
  }
}

void Dispatcher::process_batch(Shard& shard, std::vector<ParsedItem> items,
                               const ResponseSink& sink, bool waited) {
  struct Slot {
    obs::Json response;
    bool error = false;
    std::uint64_t micros = 0;
  };
  std::vector<Slot> slots(items.size());

  // Group per profile so every request against one (width, p) runs
  // against one pooled ChainEvaluator: recursive requests become the
  // lanes of one strict SoA pass, analytic-pmf requests share the
  // evaluator's PMF prefix cache.
  struct Group {
    std::shared_ptr<engine::ChainEvaluator> evaluator;
    std::vector<std::size_t> recursive;
    std::vector<std::size_t> analytic;
  };
  std::map<std::string, Group> groups;
  std::vector<std::size_t> other_jobs;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Request& request = items[i].request;
    if (request.method == engine::Method::kRecursive ||
        request.method == engine::Method::kAnalyticPmf) {
      // Group key: width plus the exact probability bits — the same
      // identity EvaluatorPool keys on for uniform profiles.
      std::string key = std::to_string(request.width);
      key.push_back(':');
      key.append(reinterpret_cast<const char*>(&request.p), sizeof(double));
      Group& group = groups[key];
      if (!group.evaluator) {
        group.evaluator = shard.pool.acquire(
            multibit::InputProfile::uniform(request.width, request.p));
      }
      (request.method == engine::Method::kRecursive ? group.recursive
                                                    : group.analytic)
          .push_back(i);
    } else {
      other_jobs.push_back(i);
    }
  }

  const auto palette = std::span<const adders::AdderCell>(shard.pool.palette());
  const auto run_evaluate = [&](std::size_t index,
                                engine::ChainEvaluator* evaluator) {
    Slot& slot = slots[index];
    const ParsedItem& item = items[index];
    const Request& request = item.request;
    const util::WallTimer timer;
    const auto deadline =
        item.pending.arrival + std::chrono::milliseconds(request.timeout_ms);
    try {
      if (request.timeout_ms == 0 || Clock::now() >= deadline) {
        slot.response = make_error_response(
            request.id, error_code::kTimeout,
            "deadline of " + std::to_string(request.timeout_ms) +
                " ms expired before evaluation started");
        slot.error = true;
      } else if (evaluator != nullptr &&
                 request.method == engine::Method::kRecursive) {
        const analysis::AnalysisResult result =
            evaluator->evaluate(item.choices);
        engine::Evaluation evaluation;
        evaluation.method = engine::Method::kRecursive;
        evaluation.p_error = result.p_error;
        evaluation.p_success = result.p_success;
        evaluation.work_items = request.width;
        slot.response = make_evaluation_response(request.id, evaluation);
      } else if (evaluator != nullptr &&
                 request.method == engine::Method::kAnalyticPmf) {
        // The pooled analytic-pmf projection: ChainEvaluator::evaluate
        // is bit-identical to RecursiveAnalyzer::analyze and error_pmf
        // to propagate_error_pmf for a full-width chain, so this
        // response is byte-for-byte what engine::evaluate serializes —
        // the PMF prefix cache only changes how often stages recompute.
        const analysis::AnalysisResult result =
            evaluator->evaluate(item.choices);
        engine::Evaluation evaluation;
        evaluation.method = engine::Method::kAnalyticPmf;
        evaluation.p_error = result.p_error;
        evaluation.p_success = result.p_success;
        evaluation.work_items = request.width;
        const analysis::ErrorPmf pmf = evaluator->error_pmf(item.choices);
        engine::DistributionStats stats;
        stats.error_rate = pmf.error_rate();
        stats.mean_error = pmf.mean_error();
        stats.mean_error_distance = pmf.mean_error_distance();
        stats.mean_squared_error = pmf.mean_squared_error();
        stats.worst_case_error = pmf.worst_case_error();
        stats.psnr_db = pmf.psnr_db(request.width);
        evaluation.distribution = stats;
        engine::PmfSummary summary;
        summary.support = pmf.support_size();
        summary.total_mass = pmf.total_mass();
        summary.entropy_bits = pmf.entropy_bits();
        if (!pmf.empty()) {
          summary.min_value = pmf.min_value();
          summary.max_value = pmf.max_value();
        }
        summary.top = pmf.top_mass_points(engine::EvaluateOptions{}.pmf_top_k);
        evaluation.pmf = summary;
        slot.response = make_evaluation_response(request.id, evaluation);
      } else {
        std::vector<adders::AdderCell> stages;
        stages.reserve(item.choices.size());
        for (const std::size_t choice : item.choices) {
          stages.push_back(palette[choice]);
        }
        const multibit::AdderChain chain(std::move(stages));
        const auto profile =
            multibit::InputProfile::uniform(request.width, request.p);
        engine::EvaluateOptions options;
        options.samples = request.samples;
        options.seed = request.seed;
        options.kernel = request.kernel;
        options.blocks = request.blocks;
        // Evaluate inline: dispatch workers must not contend for the
        // shared thread pool.  Monte Carlo results are thread-count-
        // independent (disjoint jump streams), so responses stay
        // byte-identical to any other worker count.
        options.threads = 1;
        const engine::Evaluation evaluation =
            engine::evaluate(chain, profile, request.method, options);
        slot.response = make_evaluation_response(request.id, evaluation);
      }
    } catch (const std::invalid_argument& e) {
      slot.response =
          make_error_response(request.id, error_code::kBadRequest, e.what());
      slot.error = true;
    } catch (const std::exception& e) {
      slot.response =
          make_error_response(request.id, error_code::kInternal, e.what());
      slot.error = true;
    }
    slot.micros = static_cast<std::uint64_t>(timer.elapsed_seconds() * 1e6);
  };

  // A whole recursive group in one SoA pass: expired requests are
  // filtered out first (the same "before evaluation started" check
  // run_evaluate makes), the survivors' chains become the lanes of one
  // strict-mode evaluate_batch call — bit-identical per lane to the
  // per-request evaluate().  Should the batch throw (one malformed
  // chain poisons the whole lane pass), the group replays per slot so
  // the error attaches to the request that caused it.
  const auto run_group = [&](const std::vector<std::size_t>& indices,
                             engine::ChainEvaluator* evaluator) {
    std::vector<std::size_t> live;
    live.reserve(indices.size());
    for (const std::size_t index : indices) {
      Slot& slot = slots[index];
      const Request& request = items[index].request;
      const auto deadline = items[index].pending.arrival +
                            std::chrono::milliseconds(request.timeout_ms);
      if (request.timeout_ms == 0 || Clock::now() >= deadline) {
        slot.response = make_error_response(
            request.id, error_code::kTimeout,
            "deadline of " + std::to_string(request.timeout_ms) +
                " ms expired before evaluation started");
        slot.error = true;
        continue;
      }
      live.push_back(index);
    }
    if (live.empty()) return;
    std::vector<std::span<const std::size_t>> chains;
    chains.reserve(live.size());
    for (const std::size_t index : live) {
      chains.emplace_back(items[index].choices);
    }
    const util::WallTimer timer;
    try {
      const std::vector<analysis::AnalysisResult> results =
          evaluator->evaluate_batch(chains);
      const std::uint64_t micros = static_cast<std::uint64_t>(
          timer.elapsed_seconds() * 1e6 / static_cast<double>(live.size()));
      for (std::size_t j = 0; j < live.size(); ++j) {
        Slot& slot = slots[live[j]];
        const Request& request = items[live[j]].request;
        engine::Evaluation evaluation;
        evaluation.method = engine::Method::kRecursive;
        evaluation.p_error = results[j].p_error;
        evaluation.p_success = results[j].p_success;
        evaluation.work_items = request.width;
        slot.response = make_evaluation_response(request.id, evaluation);
        slot.micros = micros;
      }
    } catch (...) {
      for (const std::size_t index : live) {
        run_evaluate(index, evaluator);
      }
    }
  };

  for (auto& [key, group] : groups) {
    run_group(group.recursive, group.evaluator.get());
    for (const std::size_t index : group.analytic) {
      run_evaluate(index, group.evaluator.get());
    }
  }
  for (const std::size_t index : other_jobs) {
    run_evaluate(index, nullptr);
  }

  // Emit in (connection, sequence) order within the batch — one shard's
  // responses to one connection always leave FIFO; only responses from
  // different shards interleave on the wire.
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&items](std::size_t a, std::size_t b) {
              const PendingRequest& pa = items[a].pending;
              const PendingRequest& pb = items[b].pending;
              return pa.connection != pb.connection
                         ? pa.connection < pb.connection
                         : pa.sequence < pb.sequence;
            });
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  for (const std::size_t index : order) {
    (slots[index].error ? errors : ok) += 1;
    sink(OutgoingResponse{items[index].pending.connection,
                          items[index].pending.sequence,
                          serialize_frame(slots[index].response)});
  }
  requests_ok_.fetch_add(ok, std::memory_order_relaxed);
  requests_error_.fetch_add(errors, std::memory_order_relaxed);

  std::lock_guard<std::mutex> guard(shard.stats_mutex);
  ShardStats& stats = shard.stats;
  stats.batches += 1;
  stats.batch_sizes.record(items.size());
  (waited ? stats.coalesced_batches : stats.cut_through_batches) += 1;
  for (std::size_t i = 0; i < items.size(); ++i) {
    MethodStats& method = stats.methods[std::string(
        engine::method_name(items[i].request.method))];
    method.count += 1;
    if (slots[i].error) method.errors += 1;
    method.latency_us.record(slots[i].micros);
  }
  stats.pool_live = static_cast<std::uint64_t>(shard.pool.size());
  stats.pool_created = shard.pool.created();
  stats.pool_evicted = shard.pool.evicted();
  stats.pool_hits = shard.pool.pool_hits();
  stats.prefix = shard.pool.aggregate_stats();
  stats.pmf = shard.pool.aggregate_pmf_stats();
  stats.batch = shard.pool.aggregate_batch_stats();
}

std::vector<OutgoingResponse> Dispatcher::run_batch(
    std::vector<PendingRequest> batch, unsigned worker_override) {
  requests_received_.fetch_add(batch.size(), std::memory_order_relaxed);

  std::mutex responses_mutex;
  std::vector<OutgoingResponse> responses;
  responses.reserve(batch.size());
  const ResponseSink collect = [&responses_mutex,
                                &responses](OutgoingResponse response) {
    std::lock_guard<std::mutex> lock(responses_mutex);
    responses.push_back(std::move(response));
  };

  std::vector<std::vector<ParsedItem>> buckets(shards_.size());
  std::vector<ParsedItem> control;
  for (PendingRequest& pending : batch) {
    ParsedItem item;
    switch (admit(std::move(pending), collect, &item)) {
      case Admission::kResponded:
        break;
      case Admission::kControl:
        control.push_back(std::move(item));
        break;
      case Admission::kEvaluate: {
        const unsigned shard =
            shard_of(item.request.width, item.request.p,
                     static_cast<unsigned>(shards_.size()));
        buckets[shard].push_back(std::move(item));
        break;
      }
    }
  }

  // Process the non-empty shards in waves of at most `worker_override`
  // concurrent threads (0 = the configured worker count) — the same
  // shard-affine execution the live workers perform, minus the queues.
  std::vector<std::size_t> busy;
  for (std::size_t shard = 0; shard < buckets.size(); ++shard) {
    if (!buckets[shard].empty()) busy.push_back(shard);
  }
  const unsigned cap = std::max(
      1u, worker_override == 0 ? options_.dispatch_threads : worker_override);
  for (std::size_t begin = 0; begin < busy.size(); begin += cap) {
    const std::size_t end = std::min(busy.size(), begin + cap);
    if (end - begin == 1) {
      const std::size_t shard = busy[begin];
      process_batch(*shards_[shard], std::move(buckets[shard]), collect,
                    false);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(end - begin);
      for (std::size_t j = begin; j < end; ++j) {
        const std::size_t shard = busy[j];
        threads.emplace_back([this, shard, &buckets, &collect] {
          process_batch(*shards_[shard], std::move(buckets[shard]), collect,
                        false);
        });
      }
      for (std::thread& thread : threads) thread.join();
    }
  }

  // Control responses last, so a stats request sees its own batch.
  for (ParsedItem& item : control) {
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    collect(OutgoingResponse{item.pending.connection, item.pending.sequence,
                             serialize_frame(control_response(item.request))});
  }

  std::sort(responses.begin(), responses.end(),
            [](const OutgoingResponse& a, const OutgoingResponse& b) {
              return a.connection != b.connection ? a.connection < b.connection
                                                  : a.sequence < b.sequence;
            });
  return responses;
}

obs::Json Dispatcher::control_response(const Request& request) const {
  if (request.kind == Request::Kind::kPing) {
    return make_ping_response(request.id);
  }
  obs::Json out = obs::Json::object();
  out.set("schema", obs::Json(std::string(kWireSchema)));
  out.set("schema_version", obs::Json(kWireSchemaVersion));
  out.set("id", request.id);
  out.set("ok", obs::Json(true));
  out.set("stats", stats_json());
  return out;
}

obs::Json Dispatcher::stats_json() const {
  std::uint64_t batches_total = 0;
  std::uint64_t cut_through = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t queue_high_water = 0;
  obs::Histogram batch_sizes;
  std::map<std::string, MethodStats> methods;
  ShardStats totals;
  obs::Json shards = obs::Json::array();

  for (const auto& shard : shards_) {
    ShardStats snapshot;
    {
      std::lock_guard<std::mutex> guard(shard->stats_mutex);
      snapshot = shard->stats;
    }
    std::uint64_t high_water = 0;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      high_water = shard->high_water;
    }

    batches_total += snapshot.batches;
    cut_through += snapshot.cut_through_batches;
    coalesced += snapshot.coalesced_batches;
    queue_high_water = std::max(queue_high_water, high_water);
    batch_sizes.merge(snapshot.batch_sizes);
    for (const auto& [name, stats] : snapshot.methods) {
      MethodStats& merged = methods[name];
      merged.count += stats.count;
      merged.errors += stats.errors;
      merged.latency_us.merge(stats.latency_us);
    }
    totals.pool_live += snapshot.pool_live;
    totals.pool_created += snapshot.pool_created;
    totals.pool_evicted += snapshot.pool_evicted;
    totals.pool_hits += snapshot.pool_hits;
    fold(totals.prefix, snapshot.prefix);
    fold(totals.pmf, snapshot.pmf);
    fold(totals.batch, snapshot.batch);

    obs::Json entry = obs::Json::object();
    entry.set("index", obs::Json(static_cast<std::uint64_t>(shard->index)));
    obs::Json entry_batches = obs::Json::object();
    entry_batches.set("count", obs::Json(snapshot.batches));
    entry_batches.set("size", snapshot.batch_sizes.to_json());
    entry.set("batches", std::move(entry_batches));
    entry.set("cut_through_batches", obs::Json(snapshot.cut_through_batches));
    entry.set("coalesced_batches", obs::Json(snapshot.coalesced_batches));
    entry.set("queue_high_water", obs::Json(high_water));
    entry.set("evaluators", evaluators_to_json(snapshot));
    entry.set("methods", methods_to_json(snapshot.methods));
    shards.push_back(std::move(entry));
  }

  obs::Json out = obs::Json::object();

  obs::Json requests = obs::Json::object();
  requests.set("received",
               obs::Json(requests_received_.load(std::memory_order_relaxed)));
  requests.set("ok", obs::Json(requests_ok_.load(std::memory_order_relaxed)));
  requests.set("errors",
               obs::Json(requests_error_.load(std::memory_order_relaxed)));
  out.set("requests", std::move(requests));

  obs::Json batches = obs::Json::object();
  batches.set("count", obs::Json(batches_total));
  batches.set("size", batch_sizes.to_json());
  out.set("batches", std::move(batches));

  obs::Json dispatch = obs::Json::object();
  dispatch.set("workers",
               obs::Json(static_cast<std::uint64_t>(shards_.size())));
  dispatch.set("batch_window_us",
               obs::Json(static_cast<std::uint64_t>(
                   options_.batch_window.count())));
  dispatch.set("batch_max",
               obs::Json(static_cast<std::uint64_t>(options_.batch_max)));
  dispatch.set("cut_through_batches", obs::Json(cut_through));
  dispatch.set("coalesced_batches", obs::Json(coalesced));
  dispatch.set("queue_high_water", obs::Json(queue_high_water));
  out.set("dispatch", std::move(dispatch));

  out.set("evaluators", evaluators_to_json(totals));
  out.set("methods", methods_to_json(methods));
  out.set("shards", std::move(shards));
  return out;
}

std::uint64_t Dispatcher::requests_served() const noexcept {
  return requests_ok_.load(std::memory_order_relaxed) +
         requests_error_.load(std::memory_order_relaxed);
}

}  // namespace sealpaa::service

#include "sealpaa/service/dispatcher.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/obs/serialize.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::service {

namespace {

[[nodiscard]] std::vector<adders::AdderCell> builtin_palette() {
  const std::span<const adders::AdderCell> cells = adders::all_builtin_cells();
  return {cells.begin(), cells.end()};
}

}  // namespace

Dispatcher::Dispatcher(DispatcherOptions options)
    : options_(options), evaluators_(builtin_palette(), options.pool) {}

std::vector<OutgoingResponse> Dispatcher::run_batch(
    std::vector<PendingRequest> batch, unsigned threads) {
  using Clock = std::chrono::steady_clock;

  batches_ += 1;
  batch_sizes_.record(batch.size());
  requests_received_ += batch.size();

  struct Slot {
    const PendingRequest* pending = nullptr;
    std::optional<Request> request;
    std::vector<std::size_t> choices;  // palette indices (evaluate only)
    obs::Json response;
    bool done = false;   // response already built (parse error, stats, ping)
    bool error = false;  // response is an error
    std::uint64_t micros = 0;  // evaluation wall time (evaluate only)
  };
  std::vector<Slot> slots(batch.size());

  // A group of recursive requests sharing one input profile — evaluated
  // sequentially against one ChainEvaluator so every request after the
  // first starts from a warm prefix cache.
  struct RecursiveGroup {
    std::shared_ptr<engine::ChainEvaluator> evaluator;
    std::vector<std::size_t> slot_indices;
  };
  std::map<std::string, RecursiveGroup> recursive_groups;
  std::vector<std::size_t> other_jobs;
  std::vector<std::size_t> deferred;  // stats / ping, answered post-batch

  // Phase 1 (dispatch thread): parse and validate every frame, resolve
  // cell names, and acquire each group's evaluator before any task runs
  // (EvaluatorPool is single-threaded by contract).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Slot& slot = slots[i];
    slot.pending = &batch[i];
    ParseOutcome outcome = parse_request(batch[i].frame, options_.limits);
    if (outcome.error) {
      slot.response = make_error_response(outcome.id, outcome.error->code,
                                          outcome.error->message);
      slot.done = true;
      slot.error = true;
      continue;
    }
    slot.request = std::move(outcome.request);
    if (slot.request->kind != Request::Kind::kEvaluate) {
      deferred.push_back(i);
      continue;
    }
    bool unknown_cell = false;
    slot.choices.reserve(slot.request->chain.size());
    for (const std::string& name : slot.request->chain) {
      const auto index = evaluators_.candidate_index(name);
      if (!index) {
        slot.response = make_error_response(
            slot.request->id, error_code::kUnknownCell,
            "unknown cell '" + name + "' (try: sealpaa_cli cells)");
        slot.done = true;
        slot.error = true;
        unknown_cell = true;
        break;
      }
      slot.choices.push_back(*index);
    }
    if (unknown_cell) continue;
    if (slot.request->method == engine::Method::kRecursive) {
      // Group key: width plus the exact probability bits — the same
      // identity EvaluatorPool keys on for uniform profiles.
      std::string key = std::to_string(slot.request->width);
      key.push_back(':');
      key.append(reinterpret_cast<const char*>(&slot.request->p),
                 sizeof(double));
      RecursiveGroup& group = recursive_groups[key];
      if (!group.evaluator) {
        group.evaluator = evaluators_.acquire(multibit::InputProfile::uniform(
            slot.request->width, slot.request->p));
      }
      group.slot_indices.push_back(i);
    } else {
      other_jobs.push_back(i);
    }
  }

  // Phase 2: fan evaluation out.  Tasks write only their own slots and
  // never throw — every failure becomes a structured error response.
  const auto palette = std::span<const adders::AdderCell>(
      evaluators_.palette());
  const auto run_evaluate = [&palette](Slot& slot,
                                       engine::ChainEvaluator* evaluator) {
    const Request& request = *slot.request;
    const util::WallTimer timer;
    const auto deadline =
        slot.pending->arrival + std::chrono::milliseconds(request.timeout_ms);
    try {
      if (request.timeout_ms == 0 || Clock::now() >= deadline) {
        slot.response = make_error_response(
            request.id, error_code::kTimeout,
            "deadline of " + std::to_string(request.timeout_ms) +
                " ms expired before evaluation started");
        slot.error = true;
      } else if (evaluator != nullptr) {
        const analysis::AnalysisResult result =
            evaluator->evaluate(slot.choices);
        engine::Evaluation evaluation;
        evaluation.method = engine::Method::kRecursive;
        evaluation.p_error = result.p_error;
        evaluation.p_success = result.p_success;
        evaluation.work_items = request.width;
        slot.response = make_evaluation_response(request.id, evaluation);
      } else {
        std::vector<adders::AdderCell> stages;
        stages.reserve(slot.choices.size());
        for (const std::size_t choice : slot.choices) {
          stages.push_back(palette[choice]);
        }
        const multibit::AdderChain chain(std::move(stages));
        const auto profile =
            multibit::InputProfile::uniform(request.width, request.p);
        engine::EvaluateOptions options;
        options.samples = request.samples;
        options.seed = request.seed;
        options.kernel = request.kernel;
        options.blocks = request.blocks;
        // Workers already run on the pool; nested parallel regions
        // degrade to inline execution, so the result stays
        // thread-count-independent.
        const engine::Evaluation evaluation =
            engine::evaluate(chain, profile, request.method, options);
        slot.response = make_evaluation_response(request.id, evaluation);
      }
    } catch (const std::invalid_argument& e) {
      slot.response = make_error_response(request.id, error_code::kBadRequest,
                                          e.what());
      slot.error = true;
    } catch (const std::exception& e) {
      slot.response =
          make_error_response(request.id, error_code::kInternal, e.what());
      slot.error = true;
    }
    slot.done = true;
    slot.micros = static_cast<std::uint64_t>(timer.elapsed_seconds() * 1e6);
  };

  // A whole recursive group in one SoA pass: expired requests are
  // filtered out first (the same "before evaluation started" check
  // run_evaluate makes), the survivors' chains become the lanes of one
  // strict-mode evaluate_batch call — bit-identical per lane to the
  // per-request evaluate(), so responses stay byte-for-byte what the
  // sequential loop produced.  Should the batch throw (one malformed
  // chain poisons the whole lane pass), the group replays per slot so
  // the error attaches to the request that caused it.
  const auto run_group = [&slots, &run_evaluate](
                             const std::vector<std::size_t>& indices,
                             engine::ChainEvaluator* evaluator) {
    std::vector<std::size_t> live;
    live.reserve(indices.size());
    for (const std::size_t index : indices) {
      Slot& slot = slots[index];
      const Request& request = *slot.request;
      const auto deadline = slot.pending->arrival +
                            std::chrono::milliseconds(request.timeout_ms);
      if (request.timeout_ms == 0 || Clock::now() >= deadline) {
        slot.response = make_error_response(
            request.id, error_code::kTimeout,
            "deadline of " + std::to_string(request.timeout_ms) +
                " ms expired before evaluation started");
        slot.error = true;
        slot.done = true;
        continue;
      }
      live.push_back(index);
    }
    if (live.empty()) return;
    std::vector<std::span<const std::size_t>> chains;
    chains.reserve(live.size());
    for (const std::size_t index : live) {
      chains.emplace_back(slots[index].choices);
    }
    const util::WallTimer timer;
    try {
      const std::vector<analysis::AnalysisResult> results =
          evaluator->evaluate_batch(chains);
      const std::uint64_t micros = static_cast<std::uint64_t>(
          timer.elapsed_seconds() * 1e6 /
          static_cast<double>(live.size()));
      for (std::size_t j = 0; j < live.size(); ++j) {
        Slot& slot = slots[live[j]];
        engine::Evaluation evaluation;
        evaluation.method = engine::Method::kRecursive;
        evaluation.p_error = results[j].p_error;
        evaluation.p_success = results[j].p_success;
        evaluation.work_items = slot.request->width;
        slot.response =
            make_evaluation_response(slot.request->id, evaluation);
        slot.done = true;
        slot.micros = micros;
      }
    } catch (...) {
      for (const std::size_t index : live) {
        run_evaluate(slots[index], evaluator);
      }
    }
  };

  util::with_pool(threads, [&](util::ThreadPool& pool) {
    for (auto& [key, group] : recursive_groups) {
      engine::ChainEvaluator* evaluator = group.evaluator.get();
      const std::vector<std::size_t>& indices = group.slot_indices;
      pool.submit([&run_group, evaluator, &indices] {
        run_group(indices, evaluator);
      });
    }
    for (const std::size_t index : other_jobs) {
      pool.submit([&slots, &run_evaluate, index] {
        run_evaluate(slots[index], nullptr);
      });
    }
    pool.wait();
    return 0;
  });

  // Phase 3 (dispatch thread): accounting, then the deferred stats/ping
  // responses — so a stats request in this batch sees this batch's
  // evaluations.
  for (const Slot& slot : slots) {
    if (!slot.done) continue;  // deferred
    if (slot.error) {
      requests_error_ += 1;
    } else {
      requests_ok_ += 1;
    }
    if (slot.request && slot.request->kind == Request::Kind::kEvaluate) {
      MethodStats& stats =
          methods_[std::string(engine::method_name(slot.request->method))];
      stats.count += 1;
      if (slot.error) stats.errors += 1;
      stats.latency_us.record(slot.micros);
    }
  }
  for (const std::size_t index : deferred) {
    Slot& slot = slots[index];
    requests_ok_ += 1;
    if (slot.request->kind == Request::Kind::kPing) {
      slot.response = make_ping_response(slot.request->id);
    } else {
      obs::Json out = obs::Json::object();
      out.set("schema", obs::Json(std::string(kWireSchema)));
      out.set("schema_version", obs::Json(kWireSchemaVersion));
      out.set("id", slot.request->id);
      out.set("ok", obs::Json(true));
      out.set("stats", stats_json());
      slot.response = std::move(out);
    }
    slot.done = true;
  }

  // Phase 4: serialize and order.  Per-connection responses leave in
  // request order regardless of which worker finished first.
  std::vector<OutgoingResponse> responses;
  responses.reserve(slots.size());
  for (Slot& slot : slots) {
    responses.push_back(OutgoingResponse{slot.pending->connection,
                                         slot.pending->sequence,
                                         serialize_frame(slot.response)});
  }
  std::sort(responses.begin(), responses.end(),
            [](const OutgoingResponse& a, const OutgoingResponse& b) {
              return a.connection != b.connection
                         ? a.connection < b.connection
                         : a.sequence < b.sequence;
            });
  return responses;
}

obs::Json Dispatcher::stats_json() const {
  obs::Json out = obs::Json::object();

  obs::Json requests = obs::Json::object();
  requests.set("received", obs::Json(requests_received_));
  requests.set("ok", obs::Json(requests_ok_));
  requests.set("errors", obs::Json(requests_error_));
  out.set("requests", std::move(requests));

  obs::Json batches = obs::Json::object();
  batches.set("count", obs::Json(batches_));
  batches.set("size", batch_sizes_.to_json());
  out.set("batches", std::move(batches));

  obs::Json evaluators = obs::Json::object();
  evaluators.set("live", obs::Json(static_cast<std::uint64_t>(
                             evaluators_.size())));
  evaluators.set("created", obs::Json(evaluators_.created()));
  evaluators.set("evicted", obs::Json(evaluators_.evicted()));
  evaluators.set("pool_hits", obs::Json(evaluators_.pool_hits()));
  evaluators.set("prefix_cache", obs::to_json(evaluators_.aggregate_stats()));
  evaluators.set("pmf_cache", obs::to_json(evaluators_.aggregate_pmf_stats()));
  evaluators.set("batch", obs::to_json(evaluators_.aggregate_batch_stats()));
  out.set("evaluators", std::move(evaluators));

  obs::Json methods = obs::Json::object();
  for (const auto& [name, stats] : methods_) {
    obs::Json entry = obs::Json::object();
    entry.set("count", obs::Json(stats.count));
    entry.set("errors", obs::Json(stats.errors));
    entry.set("latency_us", stats.latency_us.to_json());
    methods.set(name, std::move(entry));
  }
  out.set("methods", std::move(methods));
  return out;
}

}  // namespace sealpaa::service

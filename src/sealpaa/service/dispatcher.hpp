// Sharded multi-worker request dispatcher — the bridge between the
// transport layer and engine::evaluate.
//
// The dispatcher owns N dispatch workers (`DispatcherOptions::
// dispatch_threads`), each with its own request queue and its own
// engine::EvaluatorPool.  submit() parses a frame on the caller's
// thread (cheap, bounded by the frame limit) and routes it to the shard
// of its `(width, profile)` key, so every request against one profile
// always lands on the same worker: evaluator state is never shared
// across threads, and a design-sweep client's chains keep hitting one
// hot prefix cache no matter how many workers run.  Control requests
// (ping / stats) are answered inline by submit() — they never queue
// behind evaluations.
//
// Each worker batches adaptively: when its previous drain left work
// behind (the shard is backlogged) it holds the window open up to
// `batch_window` so a pipelined burst coalesces into one batch — grouped
// per profile onto one pooled ChainEvaluator, recursive groups running
// as strict SoA lanes; when the queue drained (idle traffic) the window
// shrinks to zero and a lone request cuts straight through.  Responses
// are emitted through the sink as each shard batch completes, so
// responses to one connection complete out of order across shards —
// clients match them by request id.  Within one shard (hence one
// profile) per-connection order is still FIFO.
//
// Robustness contract: a batch never throws.  Malformed frames, limit
// violations, expired deadlines and engine rejections all become
// structured error responses; every submitted request produces exactly
// one response.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sealpaa/engine/evaluator_pool.hpp"
#include "sealpaa/obs/counters.hpp"
#include "sealpaa/obs/histogram.hpp"
#include "sealpaa/service/wire.hpp"

namespace sealpaa::service {

struct DispatcherOptions {
  WireLimits limits{};
  engine::EvaluatorPoolOptions pool{};
  /// Dispatch workers; each owns one shard queue + one EvaluatorPool.
  unsigned dispatch_threads = 1;
  /// How long a backlogged shard holds its window open for stragglers.
  /// An idle shard always cuts through immediately (window of zero).
  std::chrono::microseconds batch_window{500};
  /// Requests per shard batch beyond which the window closes early.
  std::size_t batch_max = 256;
};

/// One framed request as the transport saw it, tagged with its origin so
/// responses can be routed and ordered.
struct PendingRequest {
  std::uint64_t connection = 0;
  std::uint64_t sequence = 0;  // per-connection arrival order
  FrameSplitter::Frame frame;
  std::chrono::steady_clock::time_point arrival{};
};

/// One serialized response line, addressed back to its connection.
struct OutgoingResponse {
  std::uint64_t connection = 0;
  std::uint64_t sequence = 0;
  std::string frame;  // newline-terminated JSON
};

class Dispatcher {
 public:
  /// Called with each finished response.  May be invoked from any
  /// dispatch worker and from the submit() caller (parse errors and
  /// control requests) — implementations synchronize themselves.
  using ResponseSink = std::function<void(OutgoingResponse)>;

  explicit Dispatcher(DispatcherOptions options = {});
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Spawns the dispatch workers and installs the response sink.  Must
  /// be called before submit(); idempotent once started.
  void start(ResponseSink sink);

  /// Parses `request` and either answers it immediately through the
  /// sink (parse errors, ping, stats) or enqueues it on its profile's
  /// shard.  Thread-safe against the workers; call from one submitting
  /// thread at a time (the server's IO thread).  Well-formed evaluation
  /// requests may be submitted before start() — they queue and run once
  /// the workers spawn — but anything answered through the sink
  /// requires start() first.
  void submit(PendingRequest request);

  /// Blocks until every submitted request has been answered.
  void drain();

  /// Drains, then joins the workers.  start() may be called again
  /// afterwards.  Called by the destructor.
  void stop();

  /// Synchronous convenience used by tests and the benches: processes
  /// one batch through `worker_override` workers (0 = the configured
  /// dispatch_threads), returning exactly one response per request,
  /// sorted by (connection, sequence).  Stats responses are answered
  /// after every evaluation in the batch, so a stats request sees its
  /// own batch.  Never throws on request-level failures.  Must not be
  /// mixed with a running start()ed dispatcher.
  [[nodiscard]] std::vector<OutgoingResponse> run_batch(
      std::vector<PendingRequest> batch, unsigned worker_override = 0);

  /// Lifetime service statistics: request/batch counters, adaptive-
  /// window accounting, evaluator-pool and prefix-cache accounting and
  /// per-method latency histograms — aggregated across shards, plus a
  /// per-shard breakdown under "shards".  The payload of a
  /// {"method": "stats"} response.  Thread-safe (reads the per-shard
  /// snapshots workers publish after each batch).
  [[nodiscard]] obs::Json stats_json() const;

  [[nodiscard]] const WireLimits& limits() const noexcept {
    return options_.limits;
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// Shard a `(width, p)` profile key routes to under `shards` workers.
  /// Exposed so tests (and the smoke suite's fixtures) can pick keys
  /// that provably land on different workers.
  [[nodiscard]] static unsigned shard_of(std::size_t width, double p,
                                         unsigned shards) noexcept;

 private:
  struct Shard;
  struct ParsedItem;

  /// What became of one frame inside admit().
  enum class Admission {
    kResponded,  // parse error / unknown cell — response already emitted
    kControl,    // ping or stats, `item` holds the parsed request
    kEvaluate,   // evaluation, `item` holds request + resolved choices
  };

  [[nodiscard]] Admission admit(PendingRequest pending,
                                const ResponseSink& sink, ParsedItem* item);
  void route(ParsedItem item);
  void process_batch(Shard& shard, std::vector<ParsedItem> items,
                     const ResponseSink& sink, bool waited);
  void worker_loop(Shard& shard);
  [[nodiscard]] obs::Json control_response(const Request& request) const;

  DispatcherOptions options_;
  std::vector<adders::AdderCell> palette_;
  std::unordered_map<std::string, std::size_t> palette_index_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ResponseSink sink_;
  bool started_ = false;
  std::atomic<std::uint64_t> requests_received_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> inflight_{0};
  mutable std::mutex lifecycle_mutex_;
  std::condition_variable drain_cv_;
};

}  // namespace sealpaa::service

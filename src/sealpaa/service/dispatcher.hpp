// Batch request dispatcher — the bridge between the transport layer and
// engine::evaluate.
//
// The server collects requests that arrive within one batching window
// into a batch and hands it here.  The dispatcher parses every frame,
// groups recursive-method requests by input profile so each group runs
// against one engine::ChainEvaluator (the prefix cache stays hot across
// requests — a design-sweep client's chains share long prefixes exactly
// like beam-search expansions), fans the groups plus every non-recursive
// request out onto the shared util::ThreadPool, and serializes one
// response per request.  The EvaluatorPool persists across batches, so
// the cache also stays warm between windows and across connections.
//
// Robustness contract: a batch never throws.  Malformed frames, limit
// violations, expired deadlines and engine rejections all become
// structured error responses; per-connection response order always
// matches request order.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sealpaa/engine/evaluator_pool.hpp"
#include "sealpaa/obs/counters.hpp"
#include "sealpaa/obs/histogram.hpp"
#include "sealpaa/service/wire.hpp"

namespace sealpaa::service {

struct DispatcherOptions {
  WireLimits limits{};
  engine::EvaluatorPoolOptions pool{};
};

/// One framed request as the transport saw it, tagged with its origin so
/// responses can be routed and ordered.
struct PendingRequest {
  std::uint64_t connection = 0;
  std::uint64_t sequence = 0;  // per-connection arrival order
  FrameSplitter::Frame frame;
  std::chrono::steady_clock::time_point arrival{};
};

/// One serialized response line, addressed back to its connection.
struct OutgoingResponse {
  std::uint64_t connection = 0;
  std::uint64_t sequence = 0;
  std::string frame;  // newline-terminated JSON
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options = {});

  /// Processes one batch: parse, group, evaluate (on the shared pool
  /// when `threads` is 0, on a dedicated pool otherwise), serialize.
  /// Returns exactly one response per request, sorted by (connection,
  /// sequence).  Never throws on request-level failures.  Not
  /// thread-safe: call from one dispatch thread.
  [[nodiscard]] std::vector<OutgoingResponse> run_batch(
      std::vector<PendingRequest> batch, unsigned threads = 0);

  /// Lifetime service statistics: request/batch counters, evaluator-pool
  /// and prefix-cache accounting, per-method latency histograms.  The
  /// payload of a {"method": "stats"} response.
  [[nodiscard]] obs::Json stats_json() const;

  [[nodiscard]] const WireLimits& limits() const noexcept {
    return options_.limits;
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_ok_ + requests_error_;
  }

 private:
  struct MethodStats {
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    obs::Histogram latency_us;
  };

  DispatcherOptions options_;
  engine::EvaluatorPool evaluators_;
  std::uint64_t requests_received_ = 0;
  std::uint64_t requests_ok_ = 0;
  std::uint64_t requests_error_ = 0;
  std::uint64_t batches_ = 0;
  obs::Histogram batch_sizes_;
  std::map<std::string, MethodStats> methods_;  // keyed by method name
};

}  // namespace sealpaa::service

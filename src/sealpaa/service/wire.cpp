#include "sealpaa/service/wire.hpp"

#include <stdexcept>
#include <utility>

#include "sealpaa/obs/serialize.hpp"

namespace sealpaa::service {

FrameSplitter::FrameSplitter(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  if (max_frame_bytes_ == 0) {
    throw std::invalid_argument("FrameSplitter: max_frame_bytes must be >= 1");
  }
}

void FrameSplitter::feed(std::string_view bytes) {
  for (const char c : bytes) {
    if (discarding_) {
      if (c == '\n') discarding_ = false;
      continue;
    }
    if (c == '\n') {
      if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
      if (!partial_.empty()) {
        ready_.push_back(Frame{std::move(partial_), false});
      }
      partial_.clear();
      continue;
    }
    partial_.push_back(c);
    if (partial_.size() > max_frame_bytes_) {
      // Emit the rejection immediately (the caller answers with a
      // structured error) and eat the rest of the line so the next
      // frame parses cleanly.
      ready_.push_back(Frame{std::string(), true});
      partial_.clear();
      discarding_ = true;
    }
  }
}

void FrameSplitter::finish() {
  if (discarding_) {
    discarding_ = false;
    return;  // the oversized frame was already emitted
  }
  if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
  if (!partial_.empty()) {
    ready_.push_back(Frame{std::move(partial_), false});
  }
  partial_.clear();
}

std::optional<FrameSplitter::Frame> FrameSplitter::next() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

namespace {

/// Raised during request validation; carries the wire error code.
struct RequestError {
  std::string_view code;
  std::string message;
};

[[noreturn]] void reject(std::string_view code, std::string message) {
  throw RequestError{code, std::move(message)};
}

[[nodiscard]] const obs::Json* find_key(const obs::Json& object,
                                        const char* key) {
  return object.find(key);
}

void check_known_keys(const obs::Json& object,
                      std::initializer_list<std::string_view> allowed,
                      const char* where) {
  for (const auto& [key, value] : object.items()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      reject(error_code::kBadRequest,
             std::string("unknown ") + where + " key \"" + key + '"');
    }
  }
}

Request parse_validated(const obs::Json& doc, const obs::Json& id,
                        const WireLimits& limits) {
  check_known_keys(doc, {"id", "method", "width", "chain", "blocks", "params"},
                   "request");

  Request request;
  request.id = id;
  if (!id.is_null() && !id.is_string() && !id.is_number()) {
    reject(error_code::kBadRequest,
           "\"id\" must be a string, a number or absent");
  }

  const obs::Json* method = find_key(doc, "method");
  if (method == nullptr || !method->is_string()) {
    reject(error_code::kBadRequest, "\"method\" must be a string");
  }
  const std::string& method_name = method->string_value();
  if (method_name == "stats" || method_name == "ping") {
    if (find_key(doc, "width") != nullptr ||
        find_key(doc, "chain") != nullptr ||
        find_key(doc, "blocks") != nullptr ||
        find_key(doc, "params") != nullptr) {
      reject(error_code::kBadRequest,
             '"' + method_name + "\" requests take no other fields");
    }
    request.kind = method_name == "stats" ? Request::Kind::kStats
                                          : Request::Kind::kPing;
    return request;
  }
  try {
    request.method = engine::parse_method(method_name);
  } catch (const std::invalid_argument& e) {
    reject(error_code::kUnknownMethod, e.what());
  }

  const obs::Json* width = find_key(doc, "width");
  if (width == nullptr || !width->is_number() || width->is_bool()) {
    reject(error_code::kBadRequest, "\"width\" must be a positive integer");
  }
  std::uint64_t width_value = 0;
  try {
    width_value = width->unsigned_integer();
  } catch (const std::invalid_argument&) {
    reject(error_code::kBadRequest, "\"width\" must be a positive integer");
  }
  if (width_value == 0) {
    reject(error_code::kBadRequest, "\"width\" must be >= 1");
  }
  if (width_value > limits.max_width) {
    reject(error_code::kWidthLimit,
           "width " + std::to_string(width_value) + " exceeds the limit of " +
               std::to_string(limits.max_width));
  }
  request.width = static_cast<std::size_t>(width_value);

  const obs::Json* blocks = find_key(doc, "blocks");
  if (request.method == engine::Method::kBlockAnalytic) {
    if (blocks == nullptr || !blocks->is_string()) {
      reject(error_code::kBadRequest,
             "\"blocks\" must be a spec string (R:P,R:P,... or aca:K / "
             "etaii:X / gear:R:P) for method \"block-analytic\"");
    }
    try {
      request.blocks = multibit::BlockChainSpec::parse(
          static_cast<int>(request.width), blocks->string_value());
    } catch (const std::invalid_argument& e) {
      reject(error_code::kBadRequest, e.what());
    }
  } else if (blocks != nullptr) {
    reject(error_code::kBadRequest,
           "\"blocks\" is only valid with method \"block-analytic\"");
  }

  const obs::Json* chain = find_key(doc, "chain");
  if (chain == nullptr) {
    // Block sub-adders are exact by construction, so block-analytic
    // requests may omit the chain; every other method needs one.
    if (request.method == engine::Method::kBlockAnalytic) {
      request.chain.assign(request.width, "AccuFA");
    } else {
      reject(error_code::kBadRequest,
             "\"chain\" is required (a cell name or an array of cell names)");
    }
  } else if (chain->is_string()) {
    request.chain.assign(request.width, chain->string_value());
  } else if (chain->is_array()) {
    if (chain->size() != request.width) {
      reject(error_code::kBadRequest,
             "\"chain\" lists " + std::to_string(chain->size()) +
                 " stages but \"width\" is " + std::to_string(request.width));
    }
    request.chain.reserve(request.width);
    for (std::size_t i = 0; i < chain->size(); ++i) {
      if (!chain->at(i).is_string()) {
        reject(error_code::kBadRequest,
               "\"chain\"[" + std::to_string(i) + "] must be a cell name");
      }
      request.chain.push_back(chain->at(i).string_value());
    }
  } else {
    reject(error_code::kBadRequest,
           "\"chain\" must be a cell name or an array of cell names");
  }

  request.timeout_ms = limits.default_timeout_ms;
  if (const obs::Json* params = find_key(doc, "params"); params != nullptr) {
    if (!params->is_object()) {
      reject(error_code::kBadRequest, "\"params\" must be an object");
    }
    check_known_keys(*params, {"p", "samples", "seed", "kernel", "timeout_ms"},
                     "params");
    if (const obs::Json* p = find_key(*params, "p"); p != nullptr) {
      if (!p->is_number()) {
        reject(error_code::kBadRequest, "params.p must be a number");
      }
      request.p = p->number();
      if (!(request.p >= 0.0 && request.p <= 1.0)) {
        reject(error_code::kBadRequest, "params.p must be in [0, 1]");
      }
    }
    if (const obs::Json* samples = find_key(*params, "samples");
        samples != nullptr) {
      try {
        request.samples = samples->unsigned_integer();
      } catch (const std::invalid_argument&) {
        reject(error_code::kBadRequest,
               "params.samples must be a non-negative integer");
      }
      if (request.samples > limits.max_samples) {
        reject(error_code::kRequestLimit,
               "params.samples " + std::to_string(request.samples) +
                   " exceeds the limit of " +
                   std::to_string(limits.max_samples));
      }
    }
    if (const obs::Json* seed = find_key(*params, "seed"); seed != nullptr) {
      try {
        request.seed = seed->unsigned_integer();
      } catch (const std::invalid_argument&) {
        reject(error_code::kBadRequest,
               "params.seed must be a non-negative integer");
      }
    }
    if (const obs::Json* kernel = find_key(*params, "kernel");
        kernel != nullptr) {
      if (!kernel->is_string()) {
        reject(error_code::kBadRequest, "params.kernel must be a string");
      }
      try {
        request.kernel = sim::parse_kernel(kernel->string_value());
      } catch (const std::invalid_argument& e) {
        reject(error_code::kBadRequest, e.what());
      }
    }
    if (const obs::Json* timeout = find_key(*params, "timeout_ms");
        timeout != nullptr) {
      try {
        request.timeout_ms = timeout->unsigned_integer();
      } catch (const std::invalid_argument&) {
        reject(error_code::kBadRequest,
               "params.timeout_ms must be a non-negative integer");
      }
      if (request.timeout_ms > limits.max_timeout_ms) {
        reject(error_code::kRequestLimit,
               "params.timeout_ms " + std::to_string(request.timeout_ms) +
                   " exceeds the limit of " +
                   std::to_string(limits.max_timeout_ms));
      }
    }
  }
  return request;
}

}  // namespace

ParseOutcome parse_request(const FrameSplitter::Frame& frame,
                           const WireLimits& limits) {
  ParseOutcome outcome;
  if (frame.oversized) {
    outcome.error = WireError{
        std::string(error_code::kFrameTooLarge),
        "frame exceeds the " + std::to_string(limits.max_frame_bytes) +
            "-byte limit"};
    return outcome;
  }
  obs::Json doc;
  try {
    doc = obs::Json::parse(frame.text);
  } catch (const std::invalid_argument& e) {
    outcome.error =
        WireError{std::string(error_code::kInvalidJson), e.what()};
    return outcome;
  }
  if (!doc.is_object()) {
    outcome.error = WireError{std::string(error_code::kBadRequest),
                              "request must be a JSON object"};
    return outcome;
  }
  if (const obs::Json* id = doc.find("id"); id != nullptr) {
    outcome.id = *id;  // echo whatever arrived, even if validation fails
  }
  try {
    outcome.request = parse_validated(doc, outcome.id, limits);
  } catch (const RequestError& e) {
    outcome.error = WireError{std::string(e.code), e.message};
  }
  return outcome;
}

namespace {

obs::Json response_header(const obs::Json& id, bool ok) {
  obs::Json out = obs::Json::object();
  out.set("schema", obs::Json(std::string(kWireSchema)));
  out.set("schema_version", obs::Json(kWireSchemaVersion));
  out.set("id", id);
  out.set("ok", obs::Json(ok));
  return out;
}

}  // namespace

obs::Json make_error_response(const obs::Json& id, std::string_view code,
                              std::string_view message) {
  obs::Json out = response_header(id, false);
  obs::Json error = obs::Json::object();
  error.set("code", obs::Json(std::string(code)));
  error.set("message", obs::Json(std::string(message)));
  out.set("error", std::move(error));
  return out;
}

obs::Json make_evaluation_response(const obs::Json& id,
                                   const engine::Evaluation& evaluation) {
  obs::Json out = response_header(id, true);
  out.set("method",
          obs::Json(std::string(engine::method_name(evaluation.method))));
  out.set("evaluation", obs::to_json(evaluation));
  return out;
}

obs::Json make_ping_response(const obs::Json& id) {
  obs::Json out = response_header(id, true);
  out.set("pong", obs::Json(true));
  return out;
}

std::string serialize_frame(const obs::Json& response) {
  std::string out = response.dump(0);
  out.push_back('\n');
  return out;
}

}  // namespace sealpaa::service

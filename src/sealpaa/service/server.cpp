#include "sealpaa/service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sealpaa::service {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One client session.  In TCP mode fd_in == fd_out (the socket); in
/// pipe mode they are stdin and stdout.  `inflight` counts frames
/// handed to the dispatcher whose responses have not yet reached
/// `outbuf` — the read-side backpressure signal.
struct Connection {
  Connection(std::uint64_t id_, int in, int out, bool tcp_,
             std::size_t max_frame_bytes)
      : id(id_), fd_in(in), fd_out(out), tcp(tcp_), splitter(max_frame_bytes) {}

  std::uint64_t id;
  int fd_in;
  int fd_out;
  bool tcp;  // owns its fd and may use send(MSG_NOSIGNAL)
  FrameSplitter splitter;
  std::uint64_t next_sequence = 0;
  std::size_t inflight = 0;
  std::string outbuf;
  std::size_t out_offset = 0;
  bool in_open = true;  // input side not yet at EOF
  bool dead = false;    // fatal IO error; drop without flushing
};

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), dispatcher_(options_.dispatcher) {
  int fds[2] = {-1, -1};
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error(errno_message("Server: pipe2 failed"));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

std::uint16_t Server::start() {
  if (options_.pipe_mode) return 0;
  if (listen_fd_ >= 0) return bound_port_;

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(errno_message("Server: socket failed"));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("Server: invalid bind address \"" +
                             options_.bind_address + '"');
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = errno_message("Server: bind failed");
    ::close(fd);
    throw std::runtime_error(message);
  }
  if (::listen(fd, 128) != 0) {
    const std::string message = errno_message("Server: listen failed");
    ::close(fd);
    throw std::runtime_error(message);
  }

  sockaddr_in bound{};
  socklen_t length = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    const std::string message = errno_message("Server: getsockname failed");
    ::close(fd);
    throw std::runtime_error(message);
  }
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  return bound_port_;
}

void Server::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_relaxed);
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

int Server::serve() {
  if (!options_.pipe_mode && listen_fd_ < 0) start();

  const std::size_t max_frame = options_.dispatcher.limits.max_frame_bytes;
  std::map<std::uint64_t, Connection> connections;
  std::uint64_t next_connection_id = 2;  // 0 and 1 are the poll sentinels

  if (options_.pipe_mode) {
    set_nonblocking(STDIN_FILENO);
    set_nonblocking(STDOUT_FILENO);
    const std::uint64_t id = next_connection_id++;
    connections.emplace(
        id, Connection(id, STDIN_FILENO, STDOUT_FILENO, false, max_frame));
  }

  // Finished responses land here from the dispatch workers (and from
  // submit() itself for parse errors and control requests); the wake
  // byte pulls the IO thread out of poll() to flush them.
  std::mutex outgoing_mutex;
  std::vector<OutgoingResponse> outgoing;
  dispatcher_.start(
      [this, &outgoing_mutex, &outgoing](OutgoingResponse response) {
        {
          const std::lock_guard<std::mutex> lock(outgoing_mutex);
          outgoing.push_back(std::move(response));
        }
        const char byte = 'r';
        [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
      });

  bool draining = false;
  int exit_code = 0;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> owners;  // 0 = wake pipe, 1 = listener
  std::vector<OutgoingResponse> completed;

  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed) && !draining) {
      draining = true;
    }

    // Exit once every accepted request has been answered and flushed.
    // Per-connection inflight counts cover everything handed to the
    // dispatcher: a request is inflight until its response reached the
    // connection's output buffer.
    bool queues_empty = false;
    {
      const std::lock_guard<std::mutex> lock(outgoing_mutex);
      queues_empty = outgoing.empty();
    }
    bool connections_idle = true;
    for (const auto& [id, connection] : connections) {
      if (connection.inflight != 0 ||
          connection.out_offset < connection.outbuf.size()) {
        connections_idle = false;
        break;
      }
    }
    if (draining && queues_empty && connections_idle) break;
    if (options_.pipe_mode && connections.empty() && queues_empty) break;

    fds.clear();
    owners.clear();
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    owners.push_back(0);
    if (!options_.pipe_mode && !draining &&
        connections.size() < options_.max_connections) {
      // Backpressure: at the connection cap the listener is simply not
      // polled, so new clients wait in the kernel backlog.
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      owners.push_back(1);
    }
    for (const auto& [id, connection] : connections) {
      if (connection.dead) continue;
      short read_events = 0;
      if (connection.in_open && !draining &&
          connection.inflight < options_.max_inflight_per_connection) {
        read_events = POLLIN;
      }
      const short write_events =
          connection.out_offset < connection.outbuf.size() ? POLLOUT
                                                           : short{0};
      if (connection.fd_in == connection.fd_out) {
        const short events = static_cast<short>(read_events | write_events);
        if (events != 0) {
          fds.push_back(pollfd{connection.fd_in, events, 0});
          owners.push_back(id);
        }
      } else {
        if (read_events != 0) {
          fds.push_back(pollfd{connection.fd_in, read_events, 0});
          owners.push_back(id);
        }
        if (write_events != 0) {
          fds.push_back(pollfd{connection.fd_out, write_events, 0});
          owners.push_back(id);
        }
      }
    }

    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      exit_code = 1;
      break;
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;

      if (owners[i] == 0) {
        char drain_buffer[64];
        while (::read(wake_read_fd_, drain_buffer, sizeof(drain_buffer)) > 0) {
        }
        continue;
      }

      if (owners[i] == 1) {
        for (;;) {
          if (connections.size() >= options_.max_connections) break;
          const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (client < 0) break;
          const int one = 1;
          ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          const std::uint64_t id = next_connection_id++;
          connections.emplace(id,
                              Connection(id, client, client, true, max_frame));
        }
        continue;
      }

      const auto it = connections.find(owners[i]);
      if (it == connections.end()) continue;
      Connection& connection = it->second;
      if (connection.dead) continue;

      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        connection.dead = true;
        continue;
      }

      if ((revents & (POLLIN | POLLHUP)) != 0 &&
          fds[i].fd == connection.fd_in && connection.in_open) {
        char buffer[16384];
        const ssize_t n = ::read(connection.fd_in, buffer, sizeof(buffer));
        if (n > 0) {
          connection.splitter.feed(
              std::string_view(buffer, static_cast<std::size_t>(n)));
        } else if (n == 0) {
          connection.in_open = false;
          connection.splitter.finish();
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          connection.dead = true;
          continue;
        }
        const auto now = std::chrono::steady_clock::now();
        while (auto frame = connection.splitter.next()) {
          connection.inflight += 1;
          dispatcher_.submit(PendingRequest{connection.id,
                                            connection.next_sequence++,
                                            std::move(*frame), now});
        }
      }

      if ((revents & POLLOUT) != 0 && fds[i].fd == connection.fd_out) {
        while (connection.out_offset < connection.outbuf.size()) {
          const std::size_t remaining =
              connection.outbuf.size() - connection.out_offset;
          const char* data = connection.outbuf.data() + connection.out_offset;
          const ssize_t n =
              connection.tcp
                  ? ::send(connection.fd_out, data, remaining, MSG_NOSIGNAL)
                  : ::write(connection.fd_out, data, remaining);
          if (n > 0) {
            connection.out_offset += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 &&
              (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
            break;
          }
          connection.dead = true;
          break;
        }
        if (connection.out_offset == connection.outbuf.size()) {
          connection.outbuf.clear();
          connection.out_offset = 0;
        }
      }
    }

    completed.clear();
    {
      const std::lock_guard<std::mutex> lock(outgoing_mutex);
      completed.swap(outgoing);
    }
    for (OutgoingResponse& response : completed) {
      const auto it = connections.find(response.connection);
      if (it == connections.end()) continue;  // client already gone
      it->second.inflight -= 1;
      if (!it->second.dead) it->second.outbuf += response.frame;
    }

    for (auto it = connections.begin(); it != connections.end();) {
      Connection& connection = it->second;
      const bool flushed = connection.out_offset >= connection.outbuf.size();
      const bool finished =
          (!connection.in_open || draining) && connection.inflight == 0 &&
          flushed;
      if (connection.dead || finished) {
        if (connection.tcp) ::close(connection.fd_in);
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Joins the dispatch workers after they drain their queues; responses
  // for requests whose connection already died are discarded with them.
  dispatcher_.stop();

  for (auto& [id, connection] : connections) {
    if (connection.tcp) ::close(connection.fd_in);
  }
  connections.clear();
  return exit_code;
}

}  // namespace sealpaa::service

#include "sealpaa/service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sealpaa::service {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), splitter_(std::move(other.splitter_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    splitter_ = std::move(other.splitter_);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(errno_message("Client: socket failed"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("Client: invalid address \"" + host + '"');
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = errno_message("Client: connect failed");
    ::close(fd);
    throw std::runtime_error(message);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

void Client::send_frame(std::string_view json) {
  std::string line(json);
  line.push_back('\n');
  send_bytes(line);
}

void Client::send_bytes(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + offset, bytes.size() - offset,
                             MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error(errno_message("Client: send failed"));
  }
}

std::optional<std::string> Client::read_frame() {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  for (;;) {
    if (auto frame = splitter_.next()) {
      return std::move(frame->text);
    }
    char buffer[16384];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      splitter_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      splitter_.finish();
      if (auto frame = splitter_.next()) {
        return std::move(frame->text);
      }
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(errno_message("Client: recv failed"));
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sealpaa::service

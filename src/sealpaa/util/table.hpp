// Aligned plain-text table rendering used by the benchmark harness to
// print paper tables/figure series in a readable, diff-friendly form.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sealpaa::util {

/// Horizontal alignment of one table column.
enum class Align { Left, Right, Center };

/// A simple monospaced text table with a header row, column alignment
/// and box-drawing-free ASCII rendering.  Intended for benchmark output
/// that mirrors the paper's tables; deliberately minimal and allocation
/// friendly rather than feature rich.
class TextTable {
 public:
  TextTable() = default;

  /// Creates a table with the given header labels (left-aligned by default).
  explicit TextTable(std::vector<std::string> header);

  /// Replaces the header row.
  void set_header(std::vector<std::string> header);

  /// Sets the alignment of column `col` (must exist in the header).
  void set_align(std::size_t col, Align align);

  /// Appends one data row.  Rows shorter than the header are padded with
  /// empty cells; longer rows extend the column count.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator after the most recently added row.
  void add_separator();

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table to a string, including a trailing newline.
  [[nodiscard]] std::string str() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_after = false;
  };

  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Renders a section banner such as
/// "==== Table 7: Analytical vs Simulation ====".
[[nodiscard]] std::string banner(const std::string& title);

}  // namespace sealpaa::util

#include "sealpaa/util/format.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace sealpaa::util {

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string sig(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

std::string engineering(double value) {
  if (!std::isfinite(value)) return "inf";
  const double magnitude = std::fabs(value);
  if (magnitude < 1.0e6) {
    // Small enough to print exactly.
    if (magnitude == std::floor(magnitude)) {
      return with_commas(static_cast<std::uint64_t>(magnitude));
    }
    return sig(value, 6);
  }
  // Engineering notation: exponent snapped down to a multiple of 3, the
  // style the paper's tables use (e.g. 68.7x10^9).
  int exponent = static_cast<int>(std::floor(std::log10(magnitude)));
  exponent -= ((exponent % 3) + 3) % 3;
  const double mantissa = value / std::pow(10.0, exponent);
  std::ostringstream out;
  out << sig(mantissa, 3) << "x10^" << exponent;
  return out.str();
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return out;
}

std::string prob6(double value) { return fixed(value, 6); }

std::string duration(double seconds) {
  if (seconds < 1.0e-6) return fixed(seconds * 1.0e9, 1) + " ns";
  if (seconds < 1.0e-3) return fixed(seconds * 1.0e6, 1) + " us";
  if (seconds < 1.0) return fixed(seconds * 1.0e3, 2) + " ms";
  return fixed(seconds, 3) + " s";
}

}  // namespace sealpaa::util

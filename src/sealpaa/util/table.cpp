#include "sealpaa/util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sealpaa::util {

namespace {

std::string pad(const std::string& text, std::size_t width, Align align) {
  if (text.size() >= width) return text;
  const std::size_t total = width - text.size();
  switch (align) {
    case Align::Left:
      return text + std::string(total, ' ');
    case Align::Right:
      return std::string(total, ' ') + text;
    case Align::Center: {
      const std::size_t left = total / 2;
      return std::string(left, ' ') + text + std::string(total - left, ' ');
    }
  }
  return text;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header) {
  set_header(std::move(header));
}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  aligns_.resize(header_.size(), Align::Left);
}

void TextTable::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) aligns_.resize(col + 1, Align::Left);
  aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_separator() {
  if (!rows_.empty()) rows_.back().separator_after = true;
}

std::vector<std::size_t> TextTable::column_widths() const {
  std::size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = std::max(widths[c], header_[c].size());
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

std::string TextTable::str() const {
  const std::vector<std::size_t> widths = column_widths();
  std::ostringstream out;

  const auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      const Align align = c < aligns_.size() ? aligns_[c] : Align::Left;
      out << "| " << pad(text, widths[c], align) << ' ';
    }
    out << "|\n";
  };

  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const Row& row : rows_) {
    emit(row.cells);
    if (row.separator_after) rule();
  }
  rule();
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.str();
}

std::string banner(const std::string& title) {
  return "==== " + title + " ====\n";
}

}  // namespace sealpaa::util

// Monotonic wall-clock timer for the scaling experiments (Figure 1).
#pragma once

#include <chrono>

namespace sealpaa::util {

/// Simple monotonic stopwatch.  Starts on construction; `elapsed_seconds`
/// may be called repeatedly; `reset` restarts the epoch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    const auto delta = Clock::now() - start_;
    return std::chrono::duration<double>(delta).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sealpaa::util

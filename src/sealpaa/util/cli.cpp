#include "sealpaa/util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "sealpaa/util/parallel.hpp"

namespace sealpaa::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      // Bare `--flag` is a boolean switch; values must use `--key=value`
      // (the space-separated form is ambiguous next to positionals).
      flags_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

unsigned CliArgs::threads() const {
  const std::int64_t value = get_int("threads", 0);
  if (value <= 0) return hardware_threads();
  return static_cast<unsigned>(value);
}

}  // namespace sealpaa::util

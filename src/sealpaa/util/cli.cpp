#include "sealpaa/util/cli.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "sealpaa/util/parallel.hpp"

namespace sealpaa::util {

namespace {

[[noreturn]] void bad_value(const std::string& name, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("--" + name + "=" + value + ": expected " +
                              expected);
}

// Full-string std::from_chars parse: rejects empty values, trailing
// garbage ("1e6", "8x"), and out-of-range magnitudes.
std::int64_t parse_int(const std::string& name, const std::string& value) {
  std::int64_t parsed = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec == std::errc::result_out_of_range) {
    bad_value(name, value, "an integer in the std::int64_t range");
  }
  if (ec != std::errc() || ptr != last) {
    bad_value(name, value, "a base-10 integer (no suffix; '1e6' is invalid)");
  }
  return parsed;
}

double parse_double(const std::string& name, const std::string& value) {
  if (value.empty()) bad_value(name, value, "a number");
  // strtod accepts leading whitespace; reject it to keep the "full
  // string, nothing else" contract symmetric with parse_int.
  if (std::isspace(static_cast<unsigned char>(value.front()))) {
    bad_value(name, value, "a number");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) {
    bad_value(name, value, "a number (trailing characters found)");
  }
  if (errno == ERANGE || !std::isfinite(parsed)) {
    bad_value(name, value, "a finite number in double range");
  }
  return parsed;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      // Bare `--flag` is a boolean switch; values must use `--key=value`
      // (the space-separated form is ambiguous next to positionals).
      flags_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return parse_int(name, it->second);
}

std::uint64_t CliArgs::get_uint(const std::string& name,
                                std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::uint64_t parsed = 0;
  const char* first = it->second.data();
  const char* last = it->second.data() + it->second.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec == std::errc::result_out_of_range) {
    bad_value(name, it->second, "an integer in the std::uint64_t range");
  }
  if (ec != std::errc() || ptr != last) {
    bad_value(name, it->second,
              "a non-negative base-10 integer (no suffix; '1e6' is invalid)");
  }
  return parsed;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return parse_double(name, it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

unsigned CliArgs::threads() const {
  const std::int64_t value = get_int("threads", 0);
  if (value <= 0) return hardware_threads();
  return static_cast<unsigned>(value);
}

void CliArgs::expect_flags(
    std::initializer_list<std::string_view> allowed) const {
  expect_flags(std::span<const std::string_view>(allowed.begin(),
                                                 allowed.size()));
}

void CliArgs::expect_flags(std::span<const std::string_view> allowed) const {
  for (const auto& [name, value] : flags_) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (name == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("unknown flag --" + name +
                                  " (run with no arguments for usage)");
    }
  }
}

}  // namespace sealpaa::util

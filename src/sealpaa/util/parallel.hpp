// Shared parallel execution core for the simulators, oracles and the
// design-space exploration.
//
// Two design rules make the pool safe for a validation library:
//
//  1. *Deterministic chunking.*  `parallel_for` / `parallel_map_reduce`
//     split a range into contiguous chunks of `grain` indices.  The chunk
//     layout depends only on (range, grain) — never on the thread count —
//     and the reduction folds chunk results strictly in chunk order on
//     the calling thread.  Floating-point merges are therefore bit-stable
//     whether the region runs on 1 thread or 64.
//
//  2. *No work stealing.*  Chunks are claimed from a simple FIFO; a
//     chunk's work never migrates mid-flight, so per-chunk state (RNG
//     streams, Kahan accumulators) stays thread-private until the ordered
//     merge.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "sealpaa/util/timer.hpp"

namespace sealpaa::util {

/// Wall-clock record of one shard of a parallel sweep.
struct ShardTiming {
  std::uint64_t shard = 0;    // chunk index in deterministic reduction order
  std::uint64_t items = 0;    // indices of the sharded range covered
  double seconds = 0.0;       // wall-clock spent inside the shard
};

/// Per-shard accounting of a parallel run, filled by
/// util::parallel_map_reduce.  `wall_seconds` is the elapsed time of the
/// whole fork/join region; the shard seconds sum to the aggregate CPU
/// time, so `cpu_seconds() / wall_seconds` approximates the achieved
/// parallel speedup and benches can report scaling.
struct ShardTimings {
  unsigned threads = 0;       // pool width the region ran on
  double wall_seconds = 0.0;
  std::vector<ShardTiming> shards;

  /// Sum of all shard durations (aggregate work time).
  [[nodiscard]] double cpu_seconds() const noexcept;
  /// Longest single shard — the lower bound on the critical path.
  [[nodiscard]] double max_shard_seconds() const noexcept;
  /// cpu_seconds / wall_seconds; ~threads when scaling is perfect.
  [[nodiscard]] double speedup() const noexcept;
  [[nodiscard]] std::string summary() const;
};

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] unsigned hardware_threads() noexcept;

/// Process-wide default worker count used when an engine is called with
/// `threads == 0`.  Pass 0 to restore `hardware_threads()`.  The CLI sets
/// this once at startup from `--threads`.
void set_default_threads(unsigned threads) noexcept;
[[nodiscard]] unsigned default_threads() noexcept;

/// Fixed-width FIFO thread pool.  Tasks are executed in submission order
/// by whichever worker frees up first; `wait()` blocks until every
/// submitted task finished and rethrows the first task exception.
class ThreadPool {
 public:
  /// Lifetime execution statistics of a pool, snapshot via `stats()` —
  /// the raw material of the observability layer's thread-pool section.
  struct Stats {
    std::uint64_t tasks_executed = 0;
    /// Peak number of tasks queued (submitted but not yet started).
    std::uint64_t queue_high_water = 0;
    /// Wall seconds each worker spent executing tasks, indexed by worker.
    std::vector<double> worker_busy_seconds;

    /// Sum over all workers.
    [[nodiscard]] double total_busy_seconds() const noexcept;
  };

  /// Spawns `threads` workers (0 → `default_threads()`).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one task.  Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks completed; rethrows the first
  /// exception any task raised.
  void wait();

  /// True when the calling thread is one of this pool's workers — used
  /// by the parallel helpers to degrade to inline execution instead of
  /// deadlocking on nested fork/join regions.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Snapshot of the pool's lifetime execution counters.  Thread-safe;
  /// call after `wait()` for totals that cover every submitted task.
  [[nodiscard]] Stats stats() const;

  /// Lazily constructed process-wide pool sized `default_threads()` at
  /// first use.  Engines called with `threads == 0` run here, so repeated
  /// invocations reuse one set of workers instead of respawning threads.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_main(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;  // queued + currently executing
  bool stop_ = false;
  std::exception_ptr first_error_;
  // Execution counters, all guarded by mutex_.
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t queue_high_water_ = 0;
  std::vector<double> worker_busy_seconds_;
};

/// Runs `fn(pool)` on the shared pool when `threads` is 0 (the library
/// default) or on a dedicated pool of exactly `threads` workers otherwise
/// (used by determinism tests and the scaling bench to pin parallelism).
template <typename Fn>
auto with_pool(unsigned threads, Fn&& fn) {
  if (threads == 0) return fn(ThreadPool::shared());
  ThreadPool pool(threads);
  return fn(pool);
}

/// Chunked map + *ordered* reduce over [begin, end).
///
/// `map(chunk_begin, chunk_end)` runs concurrently, one call per chunk
/// of at most `grain` indices; `reduce(acc, chunk_result)` then folds
/// the chunk results into `init` sequentially in ascending chunk order
/// on the calling thread.  Because the chunk layout is a function of
/// (begin, end, grain) only, the returned value is bit-identical for
/// every pool width.  When `timings` is non-null it receives one
/// ShardTiming per chunk (in chunk order) plus the region wall time.
template <typename R, typename Map, typename Reduce>
R parallel_map_reduce(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                      std::uint64_t grain, R init, Map&& map, Reduce&& reduce,
                      ShardTimings* timings = nullptr) {
  if (grain == 0) {
    throw std::invalid_argument("parallel_map_reduce: grain must be >= 1");
  }
  R acc = std::move(init);
  if (timings != nullptr) {
    timings->threads = pool.thread_count();
    timings->wall_seconds = 0.0;
    timings->shards.clear();
  }
  if (end <= begin) return acc;

  WallTimer wall;
  const std::uint64_t span = end - begin;
  const std::size_t chunks = static_cast<std::size_t>((span + grain - 1) / grain);
  using Mapped = std::invoke_result_t<Map&, std::uint64_t, std::uint64_t>;
  std::vector<std::optional<Mapped>> results(chunks);
  std::vector<ShardTiming> shard_times(timings != nullptr ? chunks : 0);

  const auto run_chunk = [&](std::size_t chunk) {
    const std::uint64_t lo = begin + static_cast<std::uint64_t>(chunk) * grain;
    const std::uint64_t hi = std::min(end, lo + grain);
    WallTimer shard_timer;
    results[chunk].emplace(map(lo, hi));
    if (timings != nullptr) {
      shard_times[chunk] = ShardTiming{static_cast<std::uint64_t>(chunk),
                                       hi - lo, shard_timer.elapsed_seconds()};
    }
  };

  // Inline when concurrency cannot help (single chunk / single worker) or
  // must not be used (nested call from a worker): same chunk layout, same
  // reduction order, so the result is unchanged.
  const bool inline_run =
      chunks == 1 || pool.thread_count() == 1 || pool.on_worker_thread();
  if (inline_run) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  } else {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      pool.submit([&run_chunk, chunk] { run_chunk(chunk); });
    }
    pool.wait();
  }

  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    reduce(acc, std::move(*results[chunk]));
  }
  if (timings != nullptr) {
    timings->shards = std::move(shard_times);
    timings->wall_seconds = wall.elapsed_seconds();
  }
  return acc;
}

/// Chunked parallel loop: `fn(chunk_begin, chunk_end)` once per chunk.
/// Same chunking and determinism contract as `parallel_map_reduce`.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  std::uint64_t grain, Fn&& fn,
                  ShardTimings* timings = nullptr) {
  struct Unit {};
  parallel_map_reduce(
      pool, begin, end, grain, Unit{},
      [&fn](std::uint64_t lo, std::uint64_t hi) {
        fn(lo, hi);
        return Unit{};
      },
      [](Unit&, Unit&&) {}, timings);
}

}  // namespace sealpaa::util

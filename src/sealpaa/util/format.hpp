// Numeric formatting helpers shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace sealpaa::util {

/// Formats `value` with exactly `digits` digits after the decimal point.
[[nodiscard]] std::string fixed(double value, int digits);

/// Formats `value` with `digits` significant digits (general format).
[[nodiscard]] std::string sig(double value, int digits);

/// Formats a large count in the paper's engineering style, e.g.
/// 1.04e9 -> "1.04x10^9", 255 -> "255".
[[nodiscard]] std::string engineering(double value);

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Formats a probability for table display: 6 decimal places with
/// trailing-zero trimming disabled (so columns align).
[[nodiscard]] std::string prob6(double value);

/// Formats a duration given in seconds with an adaptive unit
/// (ns / us / ms / s).
[[nodiscard]] std::string duration(double seconds);

}  // namespace sealpaa::util

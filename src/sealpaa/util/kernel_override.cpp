#include "sealpaa/util/kernel_override.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sealpaa::util {

namespace {

// Encoded override states.  The atomic holds the *effective* value so
// forced_kernel() is one relaxed load on the hot path.
constexpr int kUnparsed = -3;  // environment not read yet
constexpr int kNone = -1;      // no cap (unset / unrecognized / cleared)

std::atomic<int> g_forced{kUnparsed};

int parse_environment() noexcept {
  const char* value = std::getenv("SEALPAA_FORCE_KERNEL");
  if (value == nullptr || value[0] == '\0') return kNone;
  const std::string_view text(value);
  if (text == "scalar") return static_cast<int>(KernelLevel::kScalar);
  if (text == "avx2") return static_cast<int>(KernelLevel::kAvx2);
  if (text == "avx512") return static_cast<int>(KernelLevel::kAvx512);
  std::fprintf(stderr,
               "sealpaa: ignoring unrecognized SEALPAA_FORCE_KERNEL=%s "
               "(valid: scalar, avx2, avx512)\n",
               value);
  return kNone;
}

int effective() noexcept {
  int state = g_forced.load(std::memory_order_relaxed);
  if (state == kUnparsed) {
    // Racing first readers parse the same environment and store the
    // same value; compare_exchange keeps a concurrent set_forced_kernel
    // from being overwritten by a stale environment parse.
    const int parsed = parse_environment();
    if (g_forced.compare_exchange_strong(state, parsed,
                                         std::memory_order_relaxed)) {
      state = parsed;
    }
  }
  return state;
}

}  // namespace

std::string_view kernel_level_name(KernelLevel level) noexcept {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<KernelLevel> forced_kernel() noexcept {
  const int state = effective();
  if (state < 0) return std::nullopt;
  return static_cast<KernelLevel>(state);
}

void set_forced_kernel(std::optional<KernelLevel> level) noexcept {
  // Clearing re-arms the environment parse, so a cleared programmatic
  // override falls back to SEALPAA_FORCE_KERNEL rather than to "no cap".
  g_forced.store(level ? static_cast<int>(*level) : kUnparsed,
                 std::memory_order_relaxed);
}

bool kernel_level_allowed(KernelLevel level) noexcept {
  const int state = effective();
  return state < 0 || state >= static_cast<int>(level);
}

}  // namespace sealpaa::util

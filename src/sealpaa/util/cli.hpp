// Tiny command-line flag parser for the CLI, examples and benches.
// Supports --name=value and boolean --flag forms.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sealpaa::util {

/// Parses `--key=value` and bare `--flag` arguments.
/// Positional arguments are collected in order.  Numeric getters parse
/// the *full* value and throw std::invalid_argument on trailing garbage
/// ("--samples=1e6" is rejected for an integer flag, not silently read
/// as 1) and on out-of-range values.  Unknown flags are kept at parse
/// time; call `expect_flags` to reject typos loudly.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Returns the flag value, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Strict integer: the whole value must be a base-10 integer that fits
  /// std::int64_t.  Throws std::invalid_argument otherwise.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Strict non-negative integer (counts, sample sizes, seeds).
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;

  /// Strict finite double: the whole value must parse and be finite.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Worker-thread count from `--threads=N`.  Absent or non-positive
  /// values fall back to `hardware_threads()`, so every driver gets a
  /// uniform `--threads` flag that defaults to full hardware concurrency.
  [[nodiscard]] unsigned threads() const;

  /// Throws std::invalid_argument when any parsed `--flag` is not in
  /// `allowed`, naming the offender — so `--thread=8` fails loudly
  /// instead of being ignored.  Call once per entry point with the full
  /// flag vocabulary (including global flags).
  void expect_flags(std::initializer_list<std::string_view> allowed) const;
  /// Overload for callers that assemble the vocabulary at runtime
  /// (e.g. subcommand-specific flags plus a shared global set).
  void expect_flags(std::span<const std::string_view> allowed) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All parsed `--key=value` / `--flag` pairs (bare flags map to
  /// "true").  Used by the observability layer to echo the command line.
  [[nodiscard]] const std::map<std::string, std::string>& flags() const {
    return flags_;
  }

  /// Name of the executable (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sealpaa::util

// Tiny command-line flag parser for examples and benches.
// Supports --name=value and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sealpaa::util {

/// Parses `--key=value` and bare `--flag` arguments.
/// Positional arguments are collected in order.  Unknown flags are kept
/// (callers decide whether to reject them).
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Returns the flag value, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Worker-thread count from `--threads=N`.  Absent or non-positive
  /// values fall back to `hardware_threads()`, so every driver gets a
  /// uniform `--threads` flag that defaults to full hardware concurrency.
  [[nodiscard]] unsigned threads() const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Name of the executable (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sealpaa::util

// Arithmetic-operation accounting used to reproduce the paper's resource
// tables: Table 3 (inclusion-exclusion blow-up), Table 8 (proposed
// method) and the computation counts of Figure 1.
//
// Not to be confused with obs::Counters, the observability layer's named
// metric counters: util::OpCounter counts the *arithmetic an engine
// performs* (the paper's cost model), obs::Counters records *run metrics
// for the JSON report*.
#pragma once

#include <cstdint>
#include <string>

namespace sealpaa::util {

/// Counts of primitive operations performed by an analysis/simulation run.
/// "Memory units" follows the paper's convention: the peak number of
/// scalar values that must be kept live simultaneously.
struct OpCounts {
  std::uint64_t multiplications = 0;
  std::uint64_t additions = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t memory_units = 0;  // peak live scalars

  OpCounts& operator+=(const OpCounts& other) noexcept;
  [[nodiscard]] std::uint64_t total_arithmetic() const noexcept {
    return multiplications + additions + comparisons;
  }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] OpCounts operator+(OpCounts lhs, const OpCounts& rhs) noexcept;

/// Scoped counter sink.  Engines that support instrumentation accept an
/// optional `OpCounter*`; a null pointer disables accounting at zero cost.
class OpCounter {
 public:
  void count_mul(std::uint64_t n = 1) noexcept { counts_.multiplications += n; }
  void count_add(std::uint64_t n = 1) noexcept { counts_.additions += n; }
  void count_cmp(std::uint64_t n = 1) noexcept { counts_.comparisons += n; }

  /// Records that `n` scalars are live right now; keeps the maximum.
  void note_live(std::uint64_t n) noexcept {
    if (n > counts_.memory_units) counts_.memory_units = n;
  }

  void reset() noexcept { counts_ = OpCounts{}; }
  [[nodiscard]] const OpCounts& counts() const noexcept { return counts_; }

 private:
  OpCounts counts_;
};

}  // namespace sealpaa::util

#include "sealpaa/util/op_counter.hpp"

#include <algorithm>
#include <sstream>

#include "sealpaa/util/format.hpp"

namespace sealpaa::util {

OpCounts& OpCounts::operator+=(const OpCounts& other) noexcept {
  multiplications += other.multiplications;
  additions += other.additions;
  comparisons += other.comparisons;
  memory_units = std::max(memory_units, other.memory_units);
  return *this;
}

OpCounts operator+(OpCounts lhs, const OpCounts& rhs) noexcept {
  lhs += rhs;
  return lhs;
}

std::string OpCounts::summary() const {
  std::ostringstream out;
  out << "mul=" << with_commas(multiplications)
      << " add=" << with_commas(additions)
      << " cmp=" << with_commas(comparisons)
      << " mem=" << with_commas(memory_units);
  return out.str();
}

}  // namespace sealpaa::util

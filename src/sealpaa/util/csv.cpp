#include "sealpaa/util/csv.hpp"

#include <stdexcept>

namespace sealpaa::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  out_.flush();
  out_.close();
}

}  // namespace sealpaa::util

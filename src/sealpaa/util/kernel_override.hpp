// Process-wide SIMD kernel-level override, shared by every
// runtime-dispatched kernel family in the tree (sim/bitsliced_x86.cpp
// and engine/batch_x86.cpp).
//
// Dispatch normally picks the widest instruction set the CPU reports,
// which means one machine exercises exactly one code path.  The
// `SEALPAA_FORCE_KERNEL` environment variable caps the dispatch level so
// CI (or a user chasing a kernel-specific bug) can run the scalar,
// AVX2 and AVX-512 paths of the same binary on one box:
//
//   SEALPAA_FORCE_KERNEL=scalar   portable reference paths only
//   SEALPAA_FORCE_KERNEL=avx2     at most the AVX2/FMA kernels
//   SEALPAA_FORCE_KERNEL=avx512   at most the AVX-512 kernels (i.e. no
//                                 cap — still falls back when the CPU
//                                 lacks the instructions)
//
// Forcing a level the CPU cannot execute is a *cap*, never a promise:
// dispatchers take min(cpu, override), so `avx512` on an AVX2-only box
// runs AVX2.  An unrecognized value is diagnosed once on stderr and
// ignored — a daemon must not crash over a typo in its environment.
//
// Tests use set_forced_kernel() to walk every level in one process; the
// environment variable is read once and then only consulted when no
// programmatic override is set.
#pragma once

#include <optional>
#include <string_view>

namespace sealpaa::util {

/// Dispatch tiers, ordered: a forced level allows every tier at or
/// below it.
enum class KernelLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar", "avx2" or "avx512".
[[nodiscard]] std::string_view kernel_level_name(KernelLevel level) noexcept;

/// The active cap: the programmatic override if set, else the parsed
/// `SEALPAA_FORCE_KERNEL` value, else nullopt (no cap).  Lock-free and
/// safe to call from any thread, including inside noexcept dispatchers.
[[nodiscard]] std::optional<KernelLevel> forced_kernel() noexcept;

/// Installs a process-wide cap that shadows the environment variable;
/// nullopt clears it and falls back to `SEALPAA_FORCE_KERNEL` again.
/// For tests that walk every dispatch level in one process; not meant
/// for production configuration.
void set_forced_kernel(std::optional<KernelLevel> level) noexcept;

/// True when the cap (if any) admits `level`: no override, or
/// override >= level.  Callers still AND this with their own CPU-feature
/// check.
[[nodiscard]] bool kernel_level_allowed(KernelLevel level) noexcept;

}  // namespace sealpaa::util

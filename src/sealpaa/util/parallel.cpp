#include "sealpaa/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "sealpaa/util/format.hpp"

namespace sealpaa::util {

double ShardTimings::cpu_seconds() const noexcept {
  double total = 0.0;
  for (const ShardTiming& shard : shards) total += shard.seconds;
  return total;
}

double ShardTimings::max_shard_seconds() const noexcept {
  double worst = 0.0;
  for (const ShardTiming& shard : shards) {
    worst = std::max(worst, shard.seconds);
  }
  return worst;
}

double ShardTimings::speedup() const noexcept {
  if (wall_seconds <= 0.0) return 1.0;
  return cpu_seconds() / wall_seconds;
}

std::string ShardTimings::summary() const {
  std::ostringstream out;
  out << "threads=" << threads << " shards=" << shards.size()
      << " wall=" << fixed(wall_seconds, 4) << "s"
      << " cpu=" << fixed(cpu_seconds(), 4) << "s"
      << " max-shard=" << fixed(max_shard_seconds(), 4) << "s"
      << " speedup=" << fixed(speedup(), 2) << "x";
  return out.str();
}

namespace {

std::atomic<unsigned> g_default_threads{0};

// Set for the lifetime of each worker thread; lets nested fork/join
// regions detect they are already inside a pool and run inline.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void set_default_threads(unsigned threads) noexcept {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

unsigned default_threads() noexcept {
  const unsigned n = g_default_threads.load(std::memory_order_relaxed);
  return n == 0 ? hardware_threads() : n;
}

double ThreadPool::Stats::total_busy_seconds() const noexcept {
  double total = 0.0;
  for (const double seconds : worker_busy_seconds) total += seconds;
  return total;
}

ThreadPool::ThreadPool(unsigned threads) {
  unsigned count = threads == 0 ? default_threads() : threads;
  if (count == 0) count = 1;
  workers_.reserve(count);
  worker_busy_seconds_.assign(count, 0.0);
  for (unsigned t = 0; t < count; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
    queue_.push_back(std::move(task));
    queue_high_water_ =
        std::max<std::uint64_t>(queue_high_water_, queue_.size());
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return tls_worker_pool == this;
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot;
  snapshot.tasks_executed = tasks_executed_;
  snapshot.queue_high_water = queue_high_water_;
  snapshot.worker_busy_seconds = worker_busy_seconds_;
  return snapshot;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_threads());
  return pool;
}

void ThreadPool::worker_main(std::size_t worker_index) {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    WallTimer busy;
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tasks_executed_;
      worker_busy_seconds_[worker_index] += busy.elapsed_seconds();
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sealpaa::util

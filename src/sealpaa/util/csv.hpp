// Minimal CSV writer so bench output can be post-processed/plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace sealpaa::util {

/// Writes RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
/// Throws std::runtime_error if the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Writes one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Flushes and closes; further writes are invalid.
  void close();

  [[nodiscard]] bool is_open() const { return out_.is_open(); }

 private:
  static std::string escape(const std::string& field);
  std::ofstream out_;
};

}  // namespace sealpaa::util

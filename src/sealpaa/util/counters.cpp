#include "sealpaa/util/counters.hpp"

#include <algorithm>
#include <sstream>

#include "sealpaa/util/format.hpp"

namespace sealpaa::util {

OpCounts& OpCounts::operator+=(const OpCounts& other) noexcept {
  multiplications += other.multiplications;
  additions += other.additions;
  comparisons += other.comparisons;
  memory_units = std::max(memory_units, other.memory_units);
  return *this;
}

OpCounts operator+(OpCounts lhs, const OpCounts& rhs) noexcept {
  lhs += rhs;
  return lhs;
}

std::string OpCounts::summary() const {
  std::ostringstream out;
  out << "mul=" << with_commas(multiplications)
      << " add=" << with_commas(additions)
      << " cmp=" << with_commas(comparisons)
      << " mem=" << with_commas(memory_units);
  return out.str();
}

double ShardTimings::cpu_seconds() const noexcept {
  double total = 0.0;
  for (const ShardTiming& shard : shards) total += shard.seconds;
  return total;
}

double ShardTimings::max_shard_seconds() const noexcept {
  double worst = 0.0;
  for (const ShardTiming& shard : shards) {
    worst = std::max(worst, shard.seconds);
  }
  return worst;
}

double ShardTimings::speedup() const noexcept {
  if (wall_seconds <= 0.0) return 1.0;
  return cpu_seconds() / wall_seconds;
}

std::string ShardTimings::summary() const {
  std::ostringstream out;
  out << "threads=" << threads << " shards=" << shards.size()
      << " wall=" << fixed(wall_seconds, 4) << "s"
      << " cpu=" << fixed(cpu_seconds(), 4) << "s"
      << " max-shard=" << fixed(max_shard_seconds(), 4) << "s"
      << " speedup=" << fixed(speedup(), 2) << "x";
  return out.str();
}

}  // namespace sealpaa::util

// Arithmetic-operation accounting used to reproduce the paper's resource
// tables: Table 3 (inclusion-exclusion blow-up), Table 8 (proposed
// method) and the computation counts of Figure 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sealpaa::util {

/// Counts of primitive operations performed by an analysis/simulation run.
/// "Memory units" follows the paper's convention: the peak number of
/// scalar values that must be kept live simultaneously.
struct OpCounts {
  std::uint64_t multiplications = 0;
  std::uint64_t additions = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t memory_units = 0;  // peak live scalars

  OpCounts& operator+=(const OpCounts& other) noexcept;
  [[nodiscard]] std::uint64_t total_arithmetic() const noexcept {
    return multiplications + additions + comparisons;
  }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] OpCounts operator+(OpCounts lhs, const OpCounts& rhs) noexcept;

/// Scoped counter sink.  Engines that support instrumentation accept an
/// optional `OpCounter*`; a null pointer disables accounting at zero cost.
class OpCounter {
 public:
  void count_mul(std::uint64_t n = 1) noexcept { counts_.multiplications += n; }
  void count_add(std::uint64_t n = 1) noexcept { counts_.additions += n; }
  void count_cmp(std::uint64_t n = 1) noexcept { counts_.comparisons += n; }

  /// Records that `n` scalars are live right now; keeps the maximum.
  void note_live(std::uint64_t n) noexcept {
    if (n > counts_.memory_units) counts_.memory_units = n;
  }

  void reset() noexcept { counts_ = OpCounts{}; }
  [[nodiscard]] const OpCounts& counts() const noexcept { return counts_; }

 private:
  OpCounts counts_;
};

/// Wall-clock record of one shard of a parallel sweep.
struct ShardTiming {
  std::uint64_t shard = 0;    // chunk index in deterministic reduction order
  std::uint64_t items = 0;    // indices of the sharded range covered
  double seconds = 0.0;       // wall-clock spent inside the shard
};

/// Per-shard accounting of a parallel run, filled by
/// util::parallel_map_reduce.  `wall_seconds` is the elapsed time of the
/// whole fork/join region; the shard seconds sum to the aggregate CPU
/// time, so `cpu_seconds() / wall_seconds` approximates the achieved
/// parallel speedup and benches can report scaling.
struct ShardTimings {
  unsigned threads = 0;       // pool width the region ran on
  double wall_seconds = 0.0;
  std::vector<ShardTiming> shards;

  /// Sum of all shard durations (aggregate work time).
  [[nodiscard]] double cpu_seconds() const noexcept;
  /// Longest single shard — the lower bound on the critical path.
  [[nodiscard]] double max_shard_seconds() const noexcept;
  /// cpu_seconds / wall_seconds; ~threads when scaling is perfect.
  [[nodiscard]] double speedup() const noexcept;
  [[nodiscard]] std::string summary() const;
};

}  // namespace sealpaa::util

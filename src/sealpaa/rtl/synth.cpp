#include "sealpaa/rtl/synth.hpp"

#include <array>

#include "sealpaa/adders/builtin.hpp"

namespace sealpaa::rtl {

namespace detail {

namespace {

// Lazily materialised input literal: the complement gate is only created
// if some column actually uses it, so wire-only cells synthesize to zero
// logic gates.
struct LiteralCache {
  int net = -1;
  int not_net = -1;

  int get(Netlist& netlist, bool positive) {
    if (positive) return net;
    if (not_net < 0) not_net = netlist.add_unary(GateKind::Not, net);
    return not_net;
  }
};

// Builds one output column of a cell as a sum of minterms over
// (a, b, cin), with constant/single-literal simplifications.  Literal
// caches are shared between the sum and carry columns.
int build_column(Netlist& netlist, const std::array<bool, 8>& column,
                 LiteralCache& a_literal, LiteralCache& b_literal,
                 LiteralCache& c_literal) {
  int ones = 0;
  for (bool bit : column) ones += bit ? 1 : 0;
  if (ones == 0) return netlist.add_const(false);
  if (ones == 8) return netlist.add_const(true);

  // Single-literal detection: a column equal to a, b, cin (row bit) or a
  // complement is a wire, not logic — e.g. LPAA5 (sum = B, cout = A)
  // synthesizes to zero gates, matching its zero-power entry in Table 2.
  const auto matches_literal = [&](unsigned bit_shift, bool inverted) {
    for (std::size_t row = 0; row < 8; ++row) {
      const bool literal = ((row >> bit_shift) & 1U) != 0;
      if (column[row] != (inverted ? !literal : literal)) return false;
    }
    return true;
  };
  if (matches_literal(2, false)) return a_literal.get(netlist, true);
  if (matches_literal(1, false)) return b_literal.get(netlist, true);
  if (matches_literal(0, false)) return c_literal.get(netlist, true);
  if (matches_literal(2, true)) return a_literal.get(netlist, false);
  if (matches_literal(1, true)) return b_literal.get(netlist, false);
  if (matches_literal(0, true)) return c_literal.get(netlist, false);

  int result = -1;
  for (std::size_t row = 0; row < 8; ++row) {
    if (!column[row]) continue;
    const int la = a_literal.get(netlist, ((row >> 2) & 1U) != 0);
    const int lb = b_literal.get(netlist, ((row >> 1) & 1U) != 0);
    const int lc = c_literal.get(netlist, (row & 1U) != 0);
    const int ab = netlist.add_binary(GateKind::And, la, lb);
    const int minterm = netlist.add_binary(GateKind::And, ab, lc);
    result = result < 0 ? minterm
                        : netlist.add_binary(GateKind::Or, result, minterm);
  }
  return result;
}

}  // namespace

CellNets instantiate_cell(Netlist& netlist, const adders::AdderCell& cell,
                          int a, int b, int cin) {
  // Fast path: the exact full adder gets the canonical XOR/majority
  // structure (5 two-input gates) rather than two-level SOP.
  if (cell.is_exact()) {
    const int axb = netlist.add_binary(GateKind::Xor, a, b);
    const int sum = netlist.add_binary(GateKind::Xor, axb, cin);
    const int ab = netlist.add_binary(GateKind::And, a, b);
    const int prop = netlist.add_binary(GateKind::And, axb, cin);
    const int cout = netlist.add_binary(GateKind::Or, ab, prop);
    return {sum, cout};
  }

  LiteralCache a_literal{a, -1};
  LiteralCache b_literal{b, -1};
  LiteralCache c_literal{cin, -1};

  std::array<bool, 8> sum_column{};
  std::array<bool, 8> carry_column{};
  for (std::size_t row = 0; row < 8; ++row) {
    sum_column[row] = cell.rows()[row].sum;
    carry_column[row] = cell.rows()[row].carry;
  }
  CellNets nets;
  nets.sum =
      build_column(netlist, sum_column, a_literal, b_literal, c_literal);
  nets.cout =
      build_column(netlist, carry_column, a_literal, b_literal, c_literal);
  return nets;
}

}  // namespace detail

Netlist synthesize_cell(const adders::AdderCell& cell) {
  Netlist netlist;
  const int a = netlist.add_input("a");
  const int b = netlist.add_input("b");
  const int cin = netlist.add_input("cin");
  const detail::CellNets nets = detail::instantiate_cell(netlist, cell, a, b, cin);
  netlist.set_output("sum", nets.sum);
  netlist.set_output("cout", nets.cout);
  return netlist;
}

Netlist synthesize_chain(const multibit::AdderChain& chain) {
  Netlist netlist;
  std::vector<int> a_nets;
  std::vector<int> b_nets;
  for (std::size_t i = 0; i < chain.width(); ++i) {
    a_nets.push_back(netlist.add_input("a" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < chain.width(); ++i) {
    b_nets.push_back(netlist.add_input("b" + std::to_string(i)));
  }
  int carry = netlist.add_input("cin");
  std::vector<int> sum_nets;
  for (std::size_t i = 0; i < chain.width(); ++i) {
    const detail::CellNets nets = detail::instantiate_cell(
        netlist, chain.stage(i), a_nets[i], b_nets[i], carry);
    sum_nets.push_back(nets.sum);
    carry = nets.cout;
  }
  for (std::size_t i = 0; i < sum_nets.size(); ++i) {
    netlist.set_output("sum" + std::to_string(i), sum_nets[i]);
  }
  netlist.set_output("cout", carry);
  return netlist;
}

Netlist synthesize_gear(const gear::GearConfig& config) {
  Netlist netlist;
  const std::size_t n = static_cast<std::size_t>(config.n());
  std::vector<int> a_nets;
  std::vector<int> b_nets;
  for (std::size_t i = 0; i < n; ++i) {
    a_nets.push_back(netlist.add_input("a" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    b_nets.push_back(netlist.add_input("b" + std::to_string(i)));
  }

  std::vector<int> sum_nets(n, -1);
  int cout_net = -1;
  const int zero = netlist.add_const(false);
  for (int block = 0; block < config.blocks(); ++block) {
    const int start = config.window_start(block);
    int carry = zero;
    for (int bit = 0; bit < config.l(); ++bit) {
      const std::size_t pos = static_cast<std::size_t>(start + bit);
      const detail::CellNets nets = detail::instantiate_cell(
          netlist, adders::accurate(), a_nets[pos], b_nets[pos], carry);
      const int first_result = block == 0 ? 0 : config.p();
      if (bit >= first_result) sum_nets[pos] = nets.sum;
      carry = nets.cout;
    }
    if (block == config.blocks() - 1) cout_net = carry;
  }

  for (std::size_t i = 0; i < n; ++i) {
    netlist.set_output("sum" + std::to_string(i), sum_nets[i]);
  }
  netlist.set_output("cout", cout_net);
  return netlist;
}

}  // namespace sealpaa::rtl

#include "sealpaa/rtl/optimize.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

namespace sealpaa::rtl {

namespace {

Netlist optimize_once(const Netlist& netlist);

}  // namespace

Netlist optimize(const Netlist& netlist) {
  // Folding can orphan intermediate gates (e.g. the inner NOT of a
  // double negation), so iterate to a fixed point; two or three passes
  // suffice in practice, the loop is bounded by the shrinking count.
  Netlist current = optimize_once(netlist);
  while (true) {
    Netlist next = optimize_once(current);
    if (next.gate_count() >= current.gate_count()) return current;
    current = std::move(next);
  }
}

namespace {

// Classification of a rebuilt net for folding decisions.
enum class NetKind { Const0, Const1, Other };

struct Rebuilder {
  Netlist out;
  std::map<std::tuple<GateKind, int, int>, int> cse;
  int const0 = -1;
  int const1 = -1;

  NetKind classify(int net) const {
    const Gate& gate = out.gates()[static_cast<std::size_t>(net)];
    if (gate.kind == GateKind::Const0) return NetKind::Const0;
    if (gate.kind == GateKind::Const1) return NetKind::Const1;
    return NetKind::Other;
  }

  int constant(bool value) {
    int& cached = value ? const1 : const0;
    if (cached < 0) cached = out.add_const(value);
    return cached;
  }

  int make_not(int a) {
    const NetKind kind = classify(a);
    if (kind == NetKind::Const0) return constant(true);
    if (kind == NetKind::Const1) return constant(false);
    const Gate& gate = out.gates()[static_cast<std::size_t>(a)];
    if (gate.kind == GateKind::Not) return gate.a;  // double negation
    const auto key = std::make_tuple(GateKind::Not, a, -1);
    const auto it = cse.find(key);
    if (it != cse.end()) return it->second;
    const int net = out.add_unary(GateKind::Not, a);
    cse.emplace(key, net);
    return net;
  }

  int make_binary(GateKind kind, int a, int b) {
    const NetKind ka = classify(a);
    const NetKind kb = classify(b);
    // Constant folding and identities.
    switch (kind) {
      case GateKind::And:
        if (ka == NetKind::Const0 || kb == NetKind::Const0) {
          return constant(false);
        }
        if (ka == NetKind::Const1) return b;
        if (kb == NetKind::Const1) return a;
        if (a == b) return a;
        break;
      case GateKind::Or:
        if (ka == NetKind::Const1 || kb == NetKind::Const1) {
          return constant(true);
        }
        if (ka == NetKind::Const0) return b;
        if (kb == NetKind::Const0) return a;
        if (a == b) return a;
        break;
      case GateKind::Xor:
        if (ka == NetKind::Const0) return b;
        if (kb == NetKind::Const0) return a;
        if (ka == NetKind::Const1) return make_not(b);
        if (kb == NetKind::Const1) return make_not(a);
        if (a == b) return constant(false);
        break;
      default:
        break;
    }
    // Commutative CSE key.
    const auto key =
        std::make_tuple(kind, std::min(a, b), std::max(a, b));
    const auto it = cse.find(key);
    if (it != cse.end()) return it->second;
    const int net = out.add_binary(kind, a, b);
    cse.emplace(key, net);
    return net;
  }
};

Netlist optimize_once(const Netlist& netlist) {
  const std::vector<Gate>& gates = netlist.gates();

  // Liveness: outputs and everything they transitively read.  Primary
  // inputs are ports and always live.
  std::vector<char> live(gates.size(), 0);
  for (const OutputPort& port : netlist.outputs()) {
    live[static_cast<std::size_t>(port.net)] = 1;
  }
  for (std::size_t i = gates.size(); i-- > 0;) {
    if (!live[i]) continue;
    const Gate& gate = gates[i];
    if (gate.a >= 0) live[static_cast<std::size_t>(gate.a)] = 1;
    if (gate.b >= 0) live[static_cast<std::size_t>(gate.b)] = 1;
  }

  Rebuilder rebuilder;
  std::vector<int> remap(gates.size(), -1);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& gate = gates[i];
    if (gate.kind == GateKind::Input) {
      remap[i] = rebuilder.out.add_input(gate.name);
      continue;
    }
    if (!live[i]) continue;
    switch (gate.kind) {
      case GateKind::Const0:
        remap[i] = rebuilder.constant(false);
        break;
      case GateKind::Const1:
        remap[i] = rebuilder.constant(true);
        break;
      case GateKind::Buf:
        remap[i] = remap[static_cast<std::size_t>(gate.a)];
        break;
      case GateKind::Not:
        remap[i] = rebuilder.make_not(remap[static_cast<std::size_t>(gate.a)]);
        break;
      case GateKind::And:
      case GateKind::Or:
      case GateKind::Xor:
        remap[i] = rebuilder.make_binary(
            gate.kind, remap[static_cast<std::size_t>(gate.a)],
            remap[static_cast<std::size_t>(gate.b)]);
        break;
      case GateKind::Input:
        break;  // handled above
    }
  }

  for (const OutputPort& port : netlist.outputs()) {
    rebuilder.out.set_output(port.name,
                             remap[static_cast<std::size_t>(port.net)]);
  }
  return rebuilder.out;
}

}  // namespace

}  // namespace sealpaa::rtl

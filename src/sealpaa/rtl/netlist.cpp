#include "sealpaa/rtl/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace sealpaa::rtl {

void Netlist::check_net(int net) const {
  if (net < 0 || net >= static_cast<int>(gates_.size())) {
    throw std::out_of_range("Netlist: net index " + std::to_string(net) +
                            " out of range");
  }
}

int Netlist::add_input(std::string name) {
  gates_.push_back(Gate{GateKind::Input, -1, -1, std::move(name)});
  const int net = static_cast<int>(gates_.size()) - 1;
  inputs_.push_back(net);
  return net;
}

int Netlist::add_const(bool value) {
  gates_.push_back(
      Gate{value ? GateKind::Const1 : GateKind::Const0, -1, -1, {}});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_unary(GateKind kind, int a) {
  if (kind != GateKind::Not && kind != GateKind::Buf) {
    throw std::invalid_argument("Netlist::add_unary: kind must be Not/Buf");
  }
  check_net(a);
  gates_.push_back(Gate{kind, a, -1, {}});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_binary(GateKind kind, int a, int b) {
  if (kind != GateKind::And && kind != GateKind::Or &&
      kind != GateKind::Xor) {
    throw std::invalid_argument(
        "Netlist::add_binary: kind must be And/Or/Xor");
  }
  check_net(a);
  check_net(b);
  gates_.push_back(Gate{kind, a, b, {}});
  return static_cast<int>(gates_.size()) - 1;
}

void Netlist::set_output(std::string name, int net) {
  check_net(net);
  outputs_.push_back(OutputPort{std::move(name), net});
}

std::size_t Netlist::logic_gate_count() const noexcept {
  std::size_t count = 0;
  for (const Gate& gate : gates_) {
    switch (gate.kind) {
      case GateKind::Not:
      case GateKind::And:
      case GateKind::Or:
      case GateKind::Xor:
        ++count;
        break;
      default:
        break;
    }
  }
  return count;
}

int Netlist::depth() const {
  std::vector<int> level(gates_.size(), 0);
  int deepest = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    int in_level = 0;
    if (gate.a >= 0) in_level = level[static_cast<std::size_t>(gate.a)];
    if (gate.b >= 0) {
      in_level = std::max(in_level, level[static_cast<std::size_t>(gate.b)]);
    }
    const bool is_logic =
        gate.kind == GateKind::Not || gate.kind == GateKind::And ||
        gate.kind == GateKind::Or || gate.kind == GateKind::Xor;
    level[i] = in_level + (is_logic ? 1 : 0);
    deepest = std::max(deepest, level[i]);
  }
  return deepest;
}

std::vector<bool> Netlist::evaluate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("Netlist::evaluate: expected " +
                                std::to_string(inputs_.size()) + " inputs");
  }
  std::vector<char> value(gates_.size(), 0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    switch (gate.kind) {
      case GateKind::Input:
        value[i] = input_values[next_input++] ? 1 : 0;
        break;
      case GateKind::Const0:
        value[i] = 0;
        break;
      case GateKind::Const1:
        value[i] = 1;
        break;
      case GateKind::Not:
        value[i] = value[static_cast<std::size_t>(gate.a)] ? 0 : 1;
        break;
      case GateKind::Buf:
        value[i] = value[static_cast<std::size_t>(gate.a)];
        break;
      case GateKind::And:
        value[i] = (value[static_cast<std::size_t>(gate.a)] &&
                    value[static_cast<std::size_t>(gate.b)])
                       ? 1
                       : 0;
        break;
      case GateKind::Or:
        value[i] = (value[static_cast<std::size_t>(gate.a)] ||
                    value[static_cast<std::size_t>(gate.b)])
                       ? 1
                       : 0;
        break;
      case GateKind::Xor:
        value[i] = (value[static_cast<std::size_t>(gate.a)] !=
                    value[static_cast<std::size_t>(gate.b)])
                       ? 1
                       : 0;
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const OutputPort& port : outputs_) {
    out.push_back(value[static_cast<std::size_t>(port.net)] != 0);
  }
  return out;
}

std::vector<double> Netlist::signal_probabilities(
    const std::vector<double>& input_probabilities) const {
  if (input_probabilities.size() != inputs_.size()) {
    throw std::invalid_argument(
        "Netlist::signal_probabilities: expected " +
        std::to_string(inputs_.size()) + " input probabilities");
  }
  std::vector<double> p(gates_.size(), 0.0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    const auto pa = [&] { return p[static_cast<std::size_t>(gate.a)]; };
    const auto pb = [&] { return p[static_cast<std::size_t>(gate.b)]; };
    switch (gate.kind) {
      case GateKind::Input:
        p[i] = input_probabilities[next_input++];
        break;
      case GateKind::Const0:
        p[i] = 0.0;
        break;
      case GateKind::Const1:
        p[i] = 1.0;
        break;
      case GateKind::Not:
        p[i] = 1.0 - pa();
        break;
      case GateKind::Buf:
        p[i] = pa();
        break;
      case GateKind::And:
        p[i] = pa() * pb();
        break;
      case GateKind::Or:
        p[i] = pa() + pb() - pa() * pb();
        break;
      case GateKind::Xor:
        p[i] = pa() + pb() - 2.0 * pa() * pb();
        break;
    }
  }
  return p;
}

double Netlist::switching_activity(
    const std::vector<double>& input_probabilities) const {
  const std::vector<double> p = signal_probabilities(input_probabilities);
  double activity = 0.0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const GateKind kind = gates_[i].kind;
    const bool is_logic = kind == GateKind::Not || kind == GateKind::And ||
                          kind == GateKind::Or || kind == GateKind::Xor;
    if (is_logic) activity += 2.0 * p[i] * (1.0 - p[i]);
  }
  return activity;
}

}  // namespace sealpaa::rtl

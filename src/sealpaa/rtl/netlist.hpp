// A minimal combinational gate-level netlist.
//
// The paper pitches its library at "design automation of complex
// approximate computing processors, and high-level synthesis" (§1.2).
// This substrate closes that loop: adder cells synthesize to gates,
// multi-bit topologies compose structurally, the result exports to
// Verilog, and the statistical machinery (signal probabilities from the
// analysis layer) drives switching-activity/power estimation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sealpaa::rtl {

/// Supported gate kinds (two-input except Not/Buf; Input/Const are
/// sources).
enum class GateKind : std::uint8_t {
  Input,
  Const0,
  Const1,
  Not,
  Buf,
  And,
  Or,
  Xor,
};

/// One node of the netlist.  `a`/`b` are indices of fan-in nets
/// (-1 when unused).
struct Gate {
  GateKind kind = GateKind::Const0;
  int a = -1;
  int b = -1;
  std::string name;  // non-empty for inputs (port name)
};

/// A named primary output.
struct OutputPort {
  std::string name;
  int net = -1;
};

/// Combinational netlist in topological order (fan-ins always precede a
/// gate), with named primary inputs/outputs.
class Netlist {
 public:
  /// Adds a primary input; returns its net index.
  int add_input(std::string name);
  /// Adds a constant net.
  int add_const(bool value);
  /// Adds a unary gate (Not/Buf).
  int add_unary(GateKind kind, int a);
  /// Adds a binary gate (And/Or/Xor).
  int add_binary(GateKind kind, int a, int b);
  /// Registers net `net` as primary output `name`.
  void set_output(std::string name, int net);

  [[nodiscard]] std::size_t gate_count() const noexcept {
    return gates_.size();
  }
  /// Number of two-input logic gates (excludes inputs/constants/buffers).
  [[nodiscard]] std::size_t logic_gate_count() const noexcept;
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] const std::vector<OutputPort>& outputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] const std::vector<int>& inputs() const noexcept {
    return inputs_;
  }

  /// Logic depth: longest input-to-output path counted in logic gates.
  [[nodiscard]] int depth() const;

  /// Evaluates the netlist; `input_values` in input-registration order.
  /// Returns outputs in output-registration order.
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& input_values) const;

  /// Per-net signal probabilities P(net = 1) under the standard
  /// spatial-independence approximation, given per-input probabilities.
  [[nodiscard]] std::vector<double> signal_probabilities(
      const std::vector<double>& input_probabilities) const;

  /// Switching-activity proxy: sum over all logic nets of 2*p*(1-p)
  /// (expected toggle probability per random input change).  A relative
  /// dynamic-power indicator for comparing cells/topologies.
  [[nodiscard]] double switching_activity(
      const std::vector<double>& input_probabilities) const;

 private:
  void check_net(int net) const;

  std::vector<Gate> gates_;
  std::vector<int> inputs_;
  std::vector<OutputPort> outputs_;
};

}  // namespace sealpaa::rtl

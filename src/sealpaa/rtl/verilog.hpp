// Verilog-2001 export of synthesized netlists — the hand-off point from
// the statistical library to a conventional EDA flow.
#pragma once

#include <string>

#include "sealpaa/rtl/netlist.hpp"

namespace sealpaa::rtl {

/// Renders `netlist` as a synthesizable Verilog module: one port per
/// primary input/output, one `assign` per gate.
[[nodiscard]] std::string to_verilog(const Netlist& netlist,
                                     const std::string& module_name);

/// Emits a self-checking Verilog testbench for the module produced by
/// `to_verilog`: expected outputs come from evaluating the netlist with
/// this library (the golden model).  Exhaustive when the input count is
/// <= `exhaustive_limit` bits; otherwise `sample_count` pseudo-random
/// vectors (deterministic seed).  Runs under any Verilog simulator
/// (iverilog/verilator): prints FAIL lines on mismatch and a final
/// SEALPAA_TB_PASS marker.
[[nodiscard]] std::string to_verilog_testbench(
    const Netlist& netlist, const std::string& module_name,
    std::size_t exhaustive_limit = 14, std::size_t sample_count = 1000);

}  // namespace sealpaa::rtl

// Structural netlist optimization: dead-gate elimination, constant
// folding, identity/idempotence simplification, double-negation
// elimination and common-subexpression sharing.  Output-equivalent by
// construction (property-tested on random vectors); gate count never
// increases.  Applied before Verilog export and before gate-count /
// switching-activity reporting to keep the SOP synthesis honest.
#pragma once

#include "sealpaa/rtl/netlist.hpp"

namespace sealpaa::rtl {

/// Returns an optimized, functionally equivalent netlist.  Primary
/// inputs are preserved in order (ports are part of the interface, even
/// when unused); primary outputs keep their names and order.
[[nodiscard]] Netlist optimize(const Netlist& netlist);

}  // namespace sealpaa::rtl

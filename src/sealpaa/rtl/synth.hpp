// Structural synthesis of adder cells and multi-bit topologies into
// gate-level netlists.
//
// Cells synthesize as two-level sum-of-minterms logic derived from their
// truth tables (with trivial constant/absorption simplifications), so
// ANY cell — including user-defined ones — flows to RTL without a
// hand-written netlist.  Multi-bit chains and GeAr adders compose the
// per-cell logic structurally, mirroring Figures 2 and 3 of the paper.
#pragma once

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/gear/gear.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/rtl/netlist.hpp"

namespace sealpaa::rtl {

/// Synthesizes one cell: inputs a, b, cin; outputs sum, cout.
[[nodiscard]] Netlist synthesize_cell(const adders::AdderCell& cell);

/// Synthesizes a ripple chain (Figure 3): inputs a[0..N-1], b[0..N-1],
/// cin; outputs sum[0..N-1], cout.
[[nodiscard]] Netlist synthesize_chain(const multibit::AdderChain& chain);

/// Synthesizes a GeAr adder (Figure 2) with exact sub-adders: inputs
/// a[0..N-1], b[0..N-1]; outputs sum[0..N-1], cout.
[[nodiscard]] Netlist synthesize_gear(const gear::GearConfig& config);

namespace detail {

/// Builds the (sum, cout) nets of `cell` on the given input nets inside
/// an existing netlist; returns {sum_net, cout_net}.
struct CellNets {
  int sum = -1;
  int cout = -1;
};
[[nodiscard]] CellNets instantiate_cell(Netlist& netlist,
                                        const adders::AdderCell& cell, int a,
                                        int b, int cin);

}  // namespace detail

}  // namespace sealpaa::rtl
